file(REMOVE_RECURSE
  "CMakeFiles/inspect_schedule.dir/inspect_schedule.cpp.o"
  "CMakeFiles/inspect_schedule.dir/inspect_schedule.cpp.o.d"
  "inspect_schedule"
  "inspect_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
