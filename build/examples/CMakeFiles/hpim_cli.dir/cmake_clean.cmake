file(REMOVE_RECURSE
  "CMakeFiles/hpim_cli.dir/hpim_cli.cpp.o"
  "CMakeFiles/hpim_cli.dir/hpim_cli.cpp.o.d"
  "hpim_cli"
  "hpim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
