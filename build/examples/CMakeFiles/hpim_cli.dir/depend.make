# Empty dependencies file for hpim_cli.
# This may be replaced when dependencies are built.
