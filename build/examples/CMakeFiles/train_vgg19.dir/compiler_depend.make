# Empty compiler generated dependencies file for train_vgg19.
# This may be replaced when dependencies are built.
