file(REMOVE_RECURSE
  "CMakeFiles/train_vgg19.dir/train_vgg19.cpp.o"
  "CMakeFiles/train_vgg19.dir/train_vgg19.cpp.o.d"
  "train_vgg19"
  "train_vgg19.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_vgg19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
