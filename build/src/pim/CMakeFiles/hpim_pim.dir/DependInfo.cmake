
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/placement.cc" "src/pim/CMakeFiles/hpim_pim.dir/placement.cc.o" "gcc" "src/pim/CMakeFiles/hpim_pim.dir/placement.cc.o.d"
  "/root/repo/src/pim/progr_pim.cc" "src/pim/CMakeFiles/hpim_pim.dir/progr_pim.cc.o" "gcc" "src/pim/CMakeFiles/hpim_pim.dir/progr_pim.cc.o.d"
  "/root/repo/src/pim/status_registers.cc" "src/pim/CMakeFiles/hpim_pim.dir/status_registers.cc.o" "gcc" "src/pim/CMakeFiles/hpim_pim.dir/status_registers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
