file(REMOVE_RECURSE
  "libhpim_pim.a"
)
