file(REMOVE_RECURSE
  "CMakeFiles/hpim_pim.dir/placement.cc.o"
  "CMakeFiles/hpim_pim.dir/placement.cc.o.d"
  "CMakeFiles/hpim_pim.dir/progr_pim.cc.o"
  "CMakeFiles/hpim_pim.dir/progr_pim.cc.o.d"
  "CMakeFiles/hpim_pim.dir/status_registers.cc.o"
  "CMakeFiles/hpim_pim.dir/status_registers.cc.o.d"
  "libhpim_pim.a"
  "libhpim_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
