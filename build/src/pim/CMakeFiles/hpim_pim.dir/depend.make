# Empty dependencies file for hpim_pim.
# This may be replaced when dependencies are built.
