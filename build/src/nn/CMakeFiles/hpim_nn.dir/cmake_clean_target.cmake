file(REMOVE_RECURSE
  "libhpim_nn.a"
)
