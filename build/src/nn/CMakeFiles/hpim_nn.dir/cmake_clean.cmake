file(REMOVE_RECURSE
  "CMakeFiles/hpim_nn.dir/builder.cc.o"
  "CMakeFiles/hpim_nn.dir/builder.cc.o.d"
  "CMakeFiles/hpim_nn.dir/graph.cc.o"
  "CMakeFiles/hpim_nn.dir/graph.cc.o.d"
  "CMakeFiles/hpim_nn.dir/models.cc.o"
  "CMakeFiles/hpim_nn.dir/models.cc.o.d"
  "CMakeFiles/hpim_nn.dir/op_cost.cc.o"
  "CMakeFiles/hpim_nn.dir/op_cost.cc.o.d"
  "CMakeFiles/hpim_nn.dir/op_type.cc.o"
  "CMakeFiles/hpim_nn.dir/op_type.cc.o.d"
  "CMakeFiles/hpim_nn.dir/summary.cc.o"
  "CMakeFiles/hpim_nn.dir/summary.cc.o.d"
  "CMakeFiles/hpim_nn.dir/tensor_shape.cc.o"
  "CMakeFiles/hpim_nn.dir/tensor_shape.cc.o.d"
  "libhpim_nn.a"
  "libhpim_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
