# Empty compiler generated dependencies file for hpim_nn.
# This may be replaced when dependencies are built.
