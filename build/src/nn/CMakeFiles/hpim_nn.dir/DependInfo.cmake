
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/builder.cc" "src/nn/CMakeFiles/hpim_nn.dir/builder.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/builder.cc.o.d"
  "/root/repo/src/nn/graph.cc" "src/nn/CMakeFiles/hpim_nn.dir/graph.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/graph.cc.o.d"
  "/root/repo/src/nn/models.cc" "src/nn/CMakeFiles/hpim_nn.dir/models.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/models.cc.o.d"
  "/root/repo/src/nn/op_cost.cc" "src/nn/CMakeFiles/hpim_nn.dir/op_cost.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/op_cost.cc.o.d"
  "/root/repo/src/nn/op_type.cc" "src/nn/CMakeFiles/hpim_nn.dir/op_type.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/op_type.cc.o.d"
  "/root/repo/src/nn/summary.cc" "src/nn/CMakeFiles/hpim_nn.dir/summary.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/summary.cc.o.d"
  "/root/repo/src/nn/tensor_shape.cc" "src/nn/CMakeFiles/hpim_nn.dir/tensor_shape.cc.o" "gcc" "src/nn/CMakeFiles/hpim_nn.dir/tensor_shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
