# Empty dependencies file for hpim_mem.
# This may be replaced when dependencies are built.
