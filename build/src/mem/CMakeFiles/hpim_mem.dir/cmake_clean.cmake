file(REMOVE_RECURSE
  "CMakeFiles/hpim_mem.dir/address_mapping.cc.o"
  "CMakeFiles/hpim_mem.dir/address_mapping.cc.o.d"
  "CMakeFiles/hpim_mem.dir/bank.cc.o"
  "CMakeFiles/hpim_mem.dir/bank.cc.o.d"
  "CMakeFiles/hpim_mem.dir/dram_energy.cc.o"
  "CMakeFiles/hpim_mem.dir/dram_energy.cc.o.d"
  "CMakeFiles/hpim_mem.dir/dram_timing.cc.o"
  "CMakeFiles/hpim_mem.dir/dram_timing.cc.o.d"
  "CMakeFiles/hpim_mem.dir/hmc_stack.cc.o"
  "CMakeFiles/hpim_mem.dir/hmc_stack.cc.o.d"
  "CMakeFiles/hpim_mem.dir/vault_controller.cc.o"
  "CMakeFiles/hpim_mem.dir/vault_controller.cc.o.d"
  "libhpim_mem.a"
  "libhpim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
