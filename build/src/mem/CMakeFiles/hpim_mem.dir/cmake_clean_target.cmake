file(REMOVE_RECURSE
  "libhpim_mem.a"
)
