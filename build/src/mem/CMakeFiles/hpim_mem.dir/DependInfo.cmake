
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_mapping.cc" "src/mem/CMakeFiles/hpim_mem.dir/address_mapping.cc.o" "gcc" "src/mem/CMakeFiles/hpim_mem.dir/address_mapping.cc.o.d"
  "/root/repo/src/mem/bank.cc" "src/mem/CMakeFiles/hpim_mem.dir/bank.cc.o" "gcc" "src/mem/CMakeFiles/hpim_mem.dir/bank.cc.o.d"
  "/root/repo/src/mem/dram_energy.cc" "src/mem/CMakeFiles/hpim_mem.dir/dram_energy.cc.o" "gcc" "src/mem/CMakeFiles/hpim_mem.dir/dram_energy.cc.o.d"
  "/root/repo/src/mem/dram_timing.cc" "src/mem/CMakeFiles/hpim_mem.dir/dram_timing.cc.o" "gcc" "src/mem/CMakeFiles/hpim_mem.dir/dram_timing.cc.o.d"
  "/root/repo/src/mem/hmc_stack.cc" "src/mem/CMakeFiles/hpim_mem.dir/hmc_stack.cc.o" "gcc" "src/mem/CMakeFiles/hpim_mem.dir/hmc_stack.cc.o.d"
  "/root/repo/src/mem/vault_controller.cc" "src/mem/CMakeFiles/hpim_mem.dir/vault_controller.cc.o" "gcc" "src/mem/CMakeFiles/hpim_mem.dir/vault_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
