# Empty compiler generated dependencies file for hpim_model.
# This may be replaced when dependencies are built.
