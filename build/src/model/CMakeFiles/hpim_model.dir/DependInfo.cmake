
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/area_power.cc" "src/model/CMakeFiles/hpim_model.dir/area_power.cc.o" "gcc" "src/model/CMakeFiles/hpim_model.dir/area_power.cc.o.d"
  "/root/repo/src/model/thermal.cc" "src/model/CMakeFiles/hpim_model.dir/thermal.cc.o" "gcc" "src/model/CMakeFiles/hpim_model.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/hpim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
