file(REMOVE_RECURSE
  "libhpim_model.a"
)
