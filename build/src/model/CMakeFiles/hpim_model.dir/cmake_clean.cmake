file(REMOVE_RECURSE
  "CMakeFiles/hpim_model.dir/area_power.cc.o"
  "CMakeFiles/hpim_model.dir/area_power.cc.o.d"
  "CMakeFiles/hpim_model.dir/thermal.cc.o"
  "CMakeFiles/hpim_model.dir/thermal.cc.o.d"
  "libhpim_model.a"
  "libhpim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
