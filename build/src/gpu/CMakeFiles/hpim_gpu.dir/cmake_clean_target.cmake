file(REMOVE_RECURSE
  "libhpim_gpu.a"
)
