file(REMOVE_RECURSE
  "CMakeFiles/hpim_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/hpim_gpu.dir/gpu_model.cc.o.d"
  "libhpim_gpu.a"
  "libhpim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
