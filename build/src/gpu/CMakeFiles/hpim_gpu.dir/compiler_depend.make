# Empty compiler generated dependencies file for hpim_gpu.
# This may be replaced when dependencies are built.
