file(REMOVE_RECURSE
  "libhpim_baseline.a"
)
