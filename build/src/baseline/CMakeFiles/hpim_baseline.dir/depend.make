# Empty dependencies file for hpim_baseline.
# This may be replaced when dependencies are built.
