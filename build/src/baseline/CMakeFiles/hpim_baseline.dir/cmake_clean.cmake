file(REMOVE_RECURSE
  "CMakeFiles/hpim_baseline.dir/presets.cc.o"
  "CMakeFiles/hpim_baseline.dir/presets.cc.o.d"
  "libhpim_baseline.a"
  "libhpim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
