# Empty compiler generated dependencies file for hpim_harness.
# This may be replaced when dependencies are built.
