
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/report_io.cc" "src/harness/CMakeFiles/hpim_harness.dir/report_io.cc.o" "gcc" "src/harness/CMakeFiles/hpim_harness.dir/report_io.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/harness/CMakeFiles/hpim_harness.dir/table_printer.cc.o" "gcc" "src/harness/CMakeFiles/hpim_harness.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/hpim_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hpim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hpim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/hpim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
