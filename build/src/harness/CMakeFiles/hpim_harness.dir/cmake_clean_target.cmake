file(REMOVE_RECURSE
  "libhpim_harness.a"
)
