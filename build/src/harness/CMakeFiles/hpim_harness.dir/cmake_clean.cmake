file(REMOVE_RECURSE
  "CMakeFiles/hpim_harness.dir/report_io.cc.o"
  "CMakeFiles/hpim_harness.dir/report_io.cc.o.d"
  "CMakeFiles/hpim_harness.dir/table_printer.cc.o"
  "CMakeFiles/hpim_harness.dir/table_printer.cc.o.d"
  "libhpim_harness.a"
  "libhpim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
