file(REMOVE_RECURSE
  "CMakeFiles/hpim_sim.dir/config.cc.o"
  "CMakeFiles/hpim_sim.dir/config.cc.o.d"
  "CMakeFiles/hpim_sim.dir/event_queue.cc.o"
  "CMakeFiles/hpim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/hpim_sim.dir/logging.cc.o"
  "CMakeFiles/hpim_sim.dir/logging.cc.o.d"
  "CMakeFiles/hpim_sim.dir/rng.cc.o"
  "CMakeFiles/hpim_sim.dir/rng.cc.o.d"
  "CMakeFiles/hpim_sim.dir/stats.cc.o"
  "CMakeFiles/hpim_sim.dir/stats.cc.o.d"
  "libhpim_sim.a"
  "libhpim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
