# Empty dependencies file for hpim_sim.
# This may be replaced when dependencies are built.
