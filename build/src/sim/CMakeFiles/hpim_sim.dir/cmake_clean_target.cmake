file(REMOVE_RECURSE
  "libhpim_sim.a"
)
