file(REMOVE_RECURSE
  "CMakeFiles/hpim_cl.dir/codegen.cc.o"
  "CMakeFiles/hpim_cl.dir/codegen.cc.o.d"
  "CMakeFiles/hpim_cl.dir/device.cc.o"
  "CMakeFiles/hpim_cl.dir/device.cc.o.d"
  "CMakeFiles/hpim_cl.dir/kernel.cc.o"
  "CMakeFiles/hpim_cl.dir/kernel.cc.o.d"
  "CMakeFiles/hpim_cl.dir/lowlevel_api.cc.o"
  "CMakeFiles/hpim_cl.dir/lowlevel_api.cc.o.d"
  "CMakeFiles/hpim_cl.dir/memory_model.cc.o"
  "CMakeFiles/hpim_cl.dir/memory_model.cc.o.d"
  "CMakeFiles/hpim_cl.dir/platform.cc.o"
  "CMakeFiles/hpim_cl.dir/platform.cc.o.d"
  "libhpim_cl.a"
  "libhpim_cl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
