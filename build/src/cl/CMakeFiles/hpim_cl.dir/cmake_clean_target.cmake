file(REMOVE_RECURSE
  "libhpim_cl.a"
)
