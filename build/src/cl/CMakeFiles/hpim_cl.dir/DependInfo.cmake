
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cl/codegen.cc" "src/cl/CMakeFiles/hpim_cl.dir/codegen.cc.o" "gcc" "src/cl/CMakeFiles/hpim_cl.dir/codegen.cc.o.d"
  "/root/repo/src/cl/device.cc" "src/cl/CMakeFiles/hpim_cl.dir/device.cc.o" "gcc" "src/cl/CMakeFiles/hpim_cl.dir/device.cc.o.d"
  "/root/repo/src/cl/kernel.cc" "src/cl/CMakeFiles/hpim_cl.dir/kernel.cc.o" "gcc" "src/cl/CMakeFiles/hpim_cl.dir/kernel.cc.o.d"
  "/root/repo/src/cl/lowlevel_api.cc" "src/cl/CMakeFiles/hpim_cl.dir/lowlevel_api.cc.o" "gcc" "src/cl/CMakeFiles/hpim_cl.dir/lowlevel_api.cc.o.d"
  "/root/repo/src/cl/memory_model.cc" "src/cl/CMakeFiles/hpim_cl.dir/memory_model.cc.o" "gcc" "src/cl/CMakeFiles/hpim_cl.dir/memory_model.cc.o.d"
  "/root/repo/src/cl/platform.cc" "src/cl/CMakeFiles/hpim_cl.dir/platform.cc.o" "gcc" "src/cl/CMakeFiles/hpim_cl.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/hpim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
