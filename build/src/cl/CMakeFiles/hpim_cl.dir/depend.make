# Empty dependencies file for hpim_cl.
# This may be replaced when dependencies are built.
