# Empty compiler generated dependencies file for hpim_cache.
# This may be replaced when dependencies are built.
