file(REMOVE_RECURSE
  "CMakeFiles/hpim_cache.dir/cache.cc.o"
  "CMakeFiles/hpim_cache.dir/cache.cc.o.d"
  "CMakeFiles/hpim_cache.dir/hierarchy.cc.o"
  "CMakeFiles/hpim_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/hpim_cache.dir/replacement.cc.o"
  "CMakeFiles/hpim_cache.dir/replacement.cc.o.d"
  "libhpim_cache.a"
  "libhpim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
