file(REMOVE_RECURSE
  "libhpim_cache.a"
)
