# Empty dependencies file for hpim_rt.
# This may be replaced when dependencies are built.
