file(REMOVE_RECURSE
  "CMakeFiles/hpim_rt.dir/executor.cc.o"
  "CMakeFiles/hpim_rt.dir/executor.cc.o.d"
  "CMakeFiles/hpim_rt.dir/hetero_runtime.cc.o"
  "CMakeFiles/hpim_rt.dir/hetero_runtime.cc.o.d"
  "CMakeFiles/hpim_rt.dir/offload_selector.cc.o"
  "CMakeFiles/hpim_rt.dir/offload_selector.cc.o.d"
  "CMakeFiles/hpim_rt.dir/profiler.cc.o"
  "CMakeFiles/hpim_rt.dir/profiler.cc.o.d"
  "CMakeFiles/hpim_rt.dir/schedule_trace.cc.o"
  "CMakeFiles/hpim_rt.dir/schedule_trace.cc.o.d"
  "CMakeFiles/hpim_rt.dir/schedule_validator.cc.o"
  "CMakeFiles/hpim_rt.dir/schedule_validator.cc.o.d"
  "libhpim_rt.a"
  "libhpim_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
