file(REMOVE_RECURSE
  "libhpim_rt.a"
)
