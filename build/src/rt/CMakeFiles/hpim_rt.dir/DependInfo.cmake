
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/executor.cc" "src/rt/CMakeFiles/hpim_rt.dir/executor.cc.o" "gcc" "src/rt/CMakeFiles/hpim_rt.dir/executor.cc.o.d"
  "/root/repo/src/rt/hetero_runtime.cc" "src/rt/CMakeFiles/hpim_rt.dir/hetero_runtime.cc.o" "gcc" "src/rt/CMakeFiles/hpim_rt.dir/hetero_runtime.cc.o.d"
  "/root/repo/src/rt/offload_selector.cc" "src/rt/CMakeFiles/hpim_rt.dir/offload_selector.cc.o" "gcc" "src/rt/CMakeFiles/hpim_rt.dir/offload_selector.cc.o.d"
  "/root/repo/src/rt/profiler.cc" "src/rt/CMakeFiles/hpim_rt.dir/profiler.cc.o" "gcc" "src/rt/CMakeFiles/hpim_rt.dir/profiler.cc.o.d"
  "/root/repo/src/rt/schedule_trace.cc" "src/rt/CMakeFiles/hpim_rt.dir/schedule_trace.cc.o" "gcc" "src/rt/CMakeFiles/hpim_rt.dir/schedule_trace.cc.o.d"
  "/root/repo/src/rt/schedule_validator.cc" "src/rt/CMakeFiles/hpim_rt.dir/schedule_validator.cc.o" "gcc" "src/rt/CMakeFiles/hpim_rt.dir/schedule_validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hpim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/hpim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hpim_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
