file(REMOVE_RECURSE
  "CMakeFiles/hpim_cpu.dir/cpu_model.cc.o"
  "CMakeFiles/hpim_cpu.dir/cpu_model.cc.o.d"
  "CMakeFiles/hpim_cpu.dir/memory_profiler.cc.o"
  "CMakeFiles/hpim_cpu.dir/memory_profiler.cc.o.d"
  "CMakeFiles/hpim_cpu.dir/trace_generator.cc.o"
  "CMakeFiles/hpim_cpu.dir/trace_generator.cc.o.d"
  "libhpim_cpu.a"
  "libhpim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
