# Empty dependencies file for hpim_cpu.
# This may be replaced when dependencies are built.
