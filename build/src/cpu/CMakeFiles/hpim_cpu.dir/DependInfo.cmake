
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu_model.cc" "src/cpu/CMakeFiles/hpim_cpu.dir/cpu_model.cc.o" "gcc" "src/cpu/CMakeFiles/hpim_cpu.dir/cpu_model.cc.o.d"
  "/root/repo/src/cpu/memory_profiler.cc" "src/cpu/CMakeFiles/hpim_cpu.dir/memory_profiler.cc.o" "gcc" "src/cpu/CMakeFiles/hpim_cpu.dir/memory_profiler.cc.o.d"
  "/root/repo/src/cpu/trace_generator.cc" "src/cpu/CMakeFiles/hpim_cpu.dir/trace_generator.cc.o" "gcc" "src/cpu/CMakeFiles/hpim_cpu.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hpim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
