file(REMOVE_RECURSE
  "libhpim_cpu.a"
)
