# Empty compiler generated dependencies file for fig13_sw_impact_time.
# This may be replaced when dependencies are built.
