# Empty dependencies file for fig2_op_classes.
# This may be replaced when dependencies are built.
