file(REMOVE_RECURSE
  "CMakeFiles/fig2_op_classes.dir/fig2_op_classes.cpp.o"
  "CMakeFiles/fig2_op_classes.dir/fig2_op_classes.cpp.o.d"
  "fig2_op_classes"
  "fig2_op_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_op_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
