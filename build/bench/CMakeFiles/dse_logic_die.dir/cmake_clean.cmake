file(REMOVE_RECURSE
  "CMakeFiles/dse_logic_die.dir/dse_logic_die.cpp.o"
  "CMakeFiles/dse_logic_die.dir/dse_logic_die.cpp.o.d"
  "dse_logic_die"
  "dse_logic_die.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_logic_die.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
