# Empty compiler generated dependencies file for dse_logic_die.
# This may be replaced when dependencies are built.
