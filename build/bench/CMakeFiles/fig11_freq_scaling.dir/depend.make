# Empty dependencies file for fig11_freq_scaling.
# This may be replaced when dependencies are built.
