# Empty dependencies file for fig10_neurocube.
# This may be replaced when dependencies are built.
