file(REMOVE_RECURSE
  "CMakeFiles/fig10_neurocube.dir/fig10_neurocube.cpp.o"
  "CMakeFiles/fig10_neurocube.dir/fig10_neurocube.cpp.o.d"
  "fig10_neurocube"
  "fig10_neurocube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_neurocube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
