file(REMOVE_RECURSE
  "CMakeFiles/fig17_edp_power.dir/fig17_edp_power.cpp.o"
  "CMakeFiles/fig17_edp_power.dir/fig17_edp_power.cpp.o.d"
  "fig17_edp_power"
  "fig17_edp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_edp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
