# Empty compiler generated dependencies file for fig17_edp_power.
# This may be replaced when dependencies are built.
