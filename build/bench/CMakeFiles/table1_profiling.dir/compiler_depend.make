# Empty compiler generated dependencies file for table1_profiling.
# This may be replaced when dependencies are built.
