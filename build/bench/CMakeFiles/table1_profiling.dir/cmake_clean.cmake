file(REMOVE_RECURSE
  "CMakeFiles/table1_profiling.dir/table1_profiling.cpp.o"
  "CMakeFiles/table1_profiling.dir/table1_profiling.cpp.o.d"
  "table1_profiling"
  "table1_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
