file(REMOVE_RECURSE
  "CMakeFiles/fig12_progr_scaling.dir/fig12_progr_scaling.cpp.o"
  "CMakeFiles/fig12_progr_scaling.dir/fig12_progr_scaling.cpp.o.d"
  "fig12_progr_scaling"
  "fig12_progr_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_progr_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
