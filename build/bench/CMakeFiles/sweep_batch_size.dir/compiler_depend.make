# Empty compiler generated dependencies file for sweep_batch_size.
# This may be replaced when dependencies are built.
