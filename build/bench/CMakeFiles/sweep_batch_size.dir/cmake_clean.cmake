file(REMOVE_RECURSE
  "CMakeFiles/sweep_batch_size.dir/sweep_batch_size.cpp.o"
  "CMakeFiles/sweep_batch_size.dir/sweep_batch_size.cpp.o.d"
  "sweep_batch_size"
  "sweep_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
