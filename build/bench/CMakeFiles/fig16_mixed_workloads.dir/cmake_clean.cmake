file(REMOVE_RECURSE
  "CMakeFiles/fig16_mixed_workloads.dir/fig16_mixed_workloads.cpp.o"
  "CMakeFiles/fig16_mixed_workloads.dir/fig16_mixed_workloads.cpp.o.d"
  "fig16_mixed_workloads"
  "fig16_mixed_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_mixed_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
