# Empty compiler generated dependencies file for fig16_mixed_workloads.
# This may be replaced when dependencies are built.
