# Empty dependencies file for dram_characterization.
# This may be replaced when dependencies are built.
