file(REMOVE_RECURSE
  "CMakeFiles/dram_characterization.dir/dram_characterization.cpp.o"
  "CMakeFiles/dram_characterization.dir/dram_characterization.cpp.o.d"
  "dram_characterization"
  "dram_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
