file(REMOVE_RECURSE
  "CMakeFiles/test_table_printer.dir/test_table_printer.cpp.o"
  "CMakeFiles/test_table_printer.dir/test_table_printer.cpp.o.d"
  "test_table_printer"
  "test_table_printer.pdb"
  "test_table_printer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
