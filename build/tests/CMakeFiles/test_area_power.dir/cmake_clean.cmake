file(REMOVE_RECURSE
  "CMakeFiles/test_area_power.dir/test_area_power.cpp.o"
  "CMakeFiles/test_area_power.dir/test_area_power.cpp.o.d"
  "test_area_power"
  "test_area_power.pdb"
  "test_area_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
