# Empty dependencies file for test_status_registers.
# This may be replaced when dependencies are built.
