file(REMOVE_RECURSE
  "CMakeFiles/test_status_registers.dir/test_status_registers.cpp.o"
  "CMakeFiles/test_status_registers.dir/test_status_registers.cpp.o.d"
  "test_status_registers"
  "test_status_registers.pdb"
  "test_status_registers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
