# Empty compiler generated dependencies file for test_vault_controller.
# This may be replaced when dependencies are built.
