file(REMOVE_RECURSE
  "CMakeFiles/test_vault_controller.dir/test_vault_controller.cpp.o"
  "CMakeFiles/test_vault_controller.dir/test_vault_controller.cpp.o.d"
  "test_vault_controller"
  "test_vault_controller.pdb"
  "test_vault_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vault_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
