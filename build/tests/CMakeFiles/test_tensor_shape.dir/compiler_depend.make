# Empty compiler generated dependencies file for test_tensor_shape.
# This may be replaced when dependencies are built.
