file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_shape.dir/test_tensor_shape.cpp.o"
  "CMakeFiles/test_tensor_shape.dir/test_tensor_shape.cpp.o.d"
  "test_tensor_shape"
  "test_tensor_shape.pdb"
  "test_tensor_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
