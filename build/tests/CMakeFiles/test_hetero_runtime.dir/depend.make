# Empty dependencies file for test_hetero_runtime.
# This may be replaced when dependencies are built.
