file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_runtime.dir/test_hetero_runtime.cpp.o"
  "CMakeFiles/test_hetero_runtime.dir/test_hetero_runtime.cpp.o.d"
  "test_hetero_runtime"
  "test_hetero_runtime.pdb"
  "test_hetero_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
