file(REMOVE_RECURSE
  "CMakeFiles/test_address_mapping.dir/test_address_mapping.cpp.o"
  "CMakeFiles/test_address_mapping.dir/test_address_mapping.cpp.o.d"
  "test_address_mapping"
  "test_address_mapping.pdb"
  "test_address_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_address_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
