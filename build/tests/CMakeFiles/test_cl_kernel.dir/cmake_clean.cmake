file(REMOVE_RECURSE
  "CMakeFiles/test_cl_kernel.dir/test_cl_kernel.cpp.o"
  "CMakeFiles/test_cl_kernel.dir/test_cl_kernel.cpp.o.d"
  "test_cl_kernel"
  "test_cl_kernel.pdb"
  "test_cl_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cl_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
