# Empty dependencies file for test_cl_kernel.
# This may be replaced when dependencies are built.
