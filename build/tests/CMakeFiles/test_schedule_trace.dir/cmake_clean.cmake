file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_trace.dir/test_schedule_trace.cpp.o"
  "CMakeFiles/test_schedule_trace.dir/test_schedule_trace.cpp.o.d"
  "test_schedule_trace"
  "test_schedule_trace.pdb"
  "test_schedule_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
