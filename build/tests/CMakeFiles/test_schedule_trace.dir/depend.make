# Empty dependencies file for test_schedule_trace.
# This may be replaced when dependencies are built.
