# Empty dependencies file for test_golden_results.
# This may be replaced when dependencies are built.
