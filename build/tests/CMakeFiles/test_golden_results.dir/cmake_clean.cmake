file(REMOVE_RECURSE
  "CMakeFiles/test_golden_results.dir/test_golden_results.cpp.o"
  "CMakeFiles/test_golden_results.dir/test_golden_results.cpp.o.d"
  "test_golden_results"
  "test_golden_results.pdb"
  "test_golden_results[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
