file(REMOVE_RECURSE
  "CMakeFiles/test_memory_profiler.dir/test_memory_profiler.cpp.o"
  "CMakeFiles/test_memory_profiler.dir/test_memory_profiler.cpp.o.d"
  "test_memory_profiler"
  "test_memory_profiler.pdb"
  "test_memory_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
