# Empty dependencies file for test_memory_profiler.
# This may be replaced when dependencies are built.
