file(REMOVE_RECURSE
  "CMakeFiles/test_dram_energy.dir/test_dram_energy.cpp.o"
  "CMakeFiles/test_dram_energy.dir/test_dram_energy.cpp.o.d"
  "test_dram_energy"
  "test_dram_energy.pdb"
  "test_dram_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
