# Empty dependencies file for test_dram_energy.
# This may be replaced when dependencies are built.
