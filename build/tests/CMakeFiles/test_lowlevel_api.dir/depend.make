# Empty dependencies file for test_lowlevel_api.
# This may be replaced when dependencies are built.
