file(REMOVE_RECURSE
  "CMakeFiles/test_lowlevel_api.dir/test_lowlevel_api.cpp.o"
  "CMakeFiles/test_lowlevel_api.dir/test_lowlevel_api.cpp.o.d"
  "test_lowlevel_api"
  "test_lowlevel_api.pdb"
  "test_lowlevel_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowlevel_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
