file(REMOVE_RECURSE
  "CMakeFiles/test_offload_selector.dir/test_offload_selector.cpp.o"
  "CMakeFiles/test_offload_selector.dir/test_offload_selector.cpp.o.d"
  "test_offload_selector"
  "test_offload_selector.pdb"
  "test_offload_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offload_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
