# Empty compiler generated dependencies file for test_offload_selector.
# This may be replaced when dependencies are built.
