# Empty compiler generated dependencies file for test_multi_corun.
# This may be replaced when dependencies are built.
