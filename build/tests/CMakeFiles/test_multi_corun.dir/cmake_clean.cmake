file(REMOVE_RECURSE
  "CMakeFiles/test_multi_corun.dir/test_multi_corun.cpp.o"
  "CMakeFiles/test_multi_corun.dir/test_multi_corun.cpp.o.d"
  "test_multi_corun"
  "test_multi_corun.pdb"
  "test_multi_corun[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_corun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
