# Empty compiler generated dependencies file for test_hmc_stack.
# This may be replaced when dependencies are built.
