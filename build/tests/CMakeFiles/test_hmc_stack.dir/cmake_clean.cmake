file(REMOVE_RECURSE
  "CMakeFiles/test_hmc_stack.dir/test_hmc_stack.cpp.o"
  "CMakeFiles/test_hmc_stack.dir/test_hmc_stack.cpp.o.d"
  "test_hmc_stack"
  "test_hmc_stack.pdb"
  "test_hmc_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmc_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
