# Empty compiler generated dependencies file for test_trace_generator.
# This may be replaced when dependencies are built.
