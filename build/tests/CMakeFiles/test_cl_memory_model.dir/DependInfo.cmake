
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cl_memory_model.cpp" "tests/CMakeFiles/test_cl_memory_model.dir/test_cl_memory_model.cpp.o" "gcc" "tests/CMakeFiles/test_cl_memory_model.dir/test_cl_memory_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hpim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hpim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/hpim_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/cl/CMakeFiles/hpim_cl.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hpim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/hpim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/hpim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hpim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hpim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
