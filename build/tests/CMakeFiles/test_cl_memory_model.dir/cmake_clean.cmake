file(REMOVE_RECURSE
  "CMakeFiles/test_cl_memory_model.dir/test_cl_memory_model.cpp.o"
  "CMakeFiles/test_cl_memory_model.dir/test_cl_memory_model.cpp.o.d"
  "test_cl_memory_model"
  "test_cl_memory_model.pdb"
  "test_cl_memory_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cl_memory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
