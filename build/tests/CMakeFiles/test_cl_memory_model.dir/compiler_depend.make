# Empty compiler generated dependencies file for test_cl_memory_model.
# This may be replaced when dependencies are built.
