# Empty dependencies file for test_cl_platform.
# This may be replaced when dependencies are built.
