file(REMOVE_RECURSE
  "CMakeFiles/test_cl_platform.dir/test_cl_platform.cpp.o"
  "CMakeFiles/test_cl_platform.dir/test_cl_platform.cpp.o.d"
  "test_cl_platform"
  "test_cl_platform.pdb"
  "test_cl_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cl_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
