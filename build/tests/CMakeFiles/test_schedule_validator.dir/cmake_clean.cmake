file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_validator.dir/test_schedule_validator.cpp.o"
  "CMakeFiles/test_schedule_validator.dir/test_schedule_validator.cpp.o.d"
  "test_schedule_validator"
  "test_schedule_validator.pdb"
  "test_schedule_validator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
