# Empty compiler generated dependencies file for test_schedule_validator.
# This may be replaced when dependencies are built.
