file(REMOVE_RECURSE
  "CMakeFiles/test_op_cost.dir/test_op_cost.cpp.o"
  "CMakeFiles/test_op_cost.dir/test_op_cost.cpp.o.d"
  "test_op_cost"
  "test_op_cost.pdb"
  "test_op_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
