# Empty compiler generated dependencies file for test_op_cost.
# This may be replaced when dependencies are built.
