file(REMOVE_RECURSE
  "CMakeFiles/test_pim_params.dir/test_pim_params.cpp.o"
  "CMakeFiles/test_pim_params.dir/test_pim_params.cpp.o.d"
  "test_pim_params"
  "test_pim_params.pdb"
  "test_pim_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
