# Empty dependencies file for test_cl_device.
# This may be replaced when dependencies are built.
