file(REMOVE_RECURSE
  "CMakeFiles/test_cl_device.dir/test_cl_device.cpp.o"
  "CMakeFiles/test_cl_device.dir/test_cl_device.cpp.o.d"
  "test_cl_device"
  "test_cl_device.pdb"
  "test_cl_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cl_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
