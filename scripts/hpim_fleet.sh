#!/usr/bin/env bash
# hpim_fleet.sh -- run a sweep bench as an N-process sharded fleet and
# prove the merged journal is byte-identical to a serial unsharded run.
#
# This is the distributed-sweep contract from docs/SWEEP_ENGINE.md,
# exercised end to end with real processes:
#
#   1. serial reference:  BENCH --jobs 1 --journal <work>/reference
#   2. fleet:             N x BENCH --shard i/N --journal <work>/fleet
#      (concurrent processes; shard indices are 1-based)
#   3. merge:             hpim_merge <work>/fleet --out <work>/merged
#   4. verdict:           diff -r reference merged  (must be empty)
#
# Any shard exiting non-zero, a failed merge, or a single differing
# byte fails the script. Used by CI and as an operator smoke test for
# multi-host sweep deployments (run step 2 on separate hosts against a
# shared filesystem, then steps 3-4 anywhere).
#
# usage: scripts/hpim_fleet.sh [-n SHARDS] [-j JOBS] [-b BENCH]
#                              [-B BUILDDIR] [-d WORKDIR] [-k]
#   -n SHARDS    number of shard processes (default 4)
#   -j JOBS      worker threads per shard process (default 2)
#   -b BENCH     sweep bench binary name (default fault_sweep)
#   -B BUILDDIR  cmake build directory (default <repo>/build)
#   -d WORKDIR   scratch directory (default: mktemp -d, removed on exit)
#   -k           keep the scratch directory for inspection

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

shards=4
jobs=2
bench=fault_sweep
build_dir="$repo_root/build"
work_dir=""
keep=0

while getopts "n:j:b:B:d:kh" opt; do
    case "$opt" in
        n) shards="$OPTARG" ;;
        j) jobs="$OPTARG" ;;
        b) bench="$OPTARG" ;;
        B) build_dir="$OPTARG" ;;
        d) work_dir="$OPTARG" ;;
        k) keep=1 ;;
        h|*) grep '^# ' "$0" | sed 's/^# \{0,1\}//'; exit 2 ;;
    esac
done

case "$shards" in
    ''|*[!0-9]*) echo "hpim_fleet: -n must be a positive integer" >&2; exit 2 ;;
esac
if [ "$shards" -lt 1 ] || [ "$shards" -gt 64 ]; then
    echo "hpim_fleet: -n must be in 1..64, got $shards" >&2
    exit 2
fi

bench_bin="$build_dir/bench/$bench"
merge_bin="$build_dir/examples/hpim_merge"
for bin in "$bench_bin" "$merge_bin"; do
    if [ ! -x "$bin" ]; then
        echo "hpim_fleet: missing binary '$bin' (build the repo first:" \
             "cmake -B build -S . && cmake --build build -j)" >&2
        exit 2
    fi
done

made_tmp=0
if [ -z "$work_dir" ]; then
    work_dir="$(mktemp -d /tmp/hpim_fleet.XXXXXX)"
    made_tmp=1
fi
mkdir -p "$work_dir"

cleanup() {
    if [ "$keep" -eq 0 ] && [ "$made_tmp" -eq 1 ]; then
        rm -rf "$work_dir"
    else
        echo "[fleet] scratch kept at $work_dir"
    fi
}
trap cleanup EXIT

echo "[fleet] bench=$bench shards=$shards jobs/shard=$jobs work=$work_dir"

# -- 1. serial unsharded reference ------------------------------------
# --jobs 1 journals records in grid order, which is exactly what the
# merge reconstructs; a parallel unsharded run would journal in
# completion order and the byte-diff below would be meaningless.
echo "[fleet] serial reference run..."
"$bench_bin" --jobs 1 --journal "$work_dir/reference" \
    > "$work_dir/reference.out" 2>&1 \
    || { echo "hpim_fleet: reference run failed; see $work_dir/reference.out" >&2
         keep=1; exit 1; }

# -- 2. the sharded fleet (shard indices are 1-based) -----------------
echo "[fleet] launching $shards shard processes..."
pids=()
for i in $(seq 1 "$shards"); do
    "$bench_bin" --jobs "$jobs" --journal "$work_dir/fleet" \
        --shard "$i/$shards" > "$work_dir/shard-$i.out" 2>&1 &
    pids+=("$!")
done

failed=0
for i in $(seq 1 "$shards"); do
    if ! wait "${pids[$((i - 1))]}"; then
        echo "hpim_fleet: shard $i/$shards failed; see $work_dir/shard-$i.out" >&2
        failed=1
    fi
done
if [ "$failed" -ne 0 ]; then
    keep=1
    exit 1
fi

# -- 3. merge the shard segments into an unsharded journal ------------
echo "[fleet] merging..."
"$merge_bin" "$work_dir/fleet" --out "$work_dir/merged" \
    > "$work_dir/merge.out" 2>&1 \
    || { echo "hpim_fleet: merge failed; see $work_dir/merge.out" >&2
         keep=1; exit 1; }
sed 's/^/[fleet] /' "$work_dir/merge.out"

# -- 4. the verdict: merged fleet == serial reference, byte for byte --
if diff -r "$work_dir/reference" "$work_dir/merged" > "$work_dir/diff.out" 2>&1; then
    echo "[fleet] OK: merged $shards-shard journal is byte-identical" \
         "to the serial run"
else
    echo "hpim_fleet: MERGE DIVERGES from the serial reference:" >&2
    head -20 "$work_dir/diff.out" >&2
    keep=1
    exit 1
fi
