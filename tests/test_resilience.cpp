/**
 * @file
 * Integration tests for the fault-injection and graceful-degradation
 * layer (docs/RESILIENCE.md): zero cost when off, training survives
 * losing a quarter of the fixed-function pool, deterministic fault
 * schedules, the degradation ladder's CPU guarantee, watchdog stall
 * recovery, and thermal throttling.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "rt/schedule_validator.hh"

using namespace hpim;

namespace {

rt::SystemConfig
heteroConfig()
{
    return baseline::makeConfig(baseline::SystemKind::HeteroPim);
}

struct FaultedRun
{
    rt::ExecutionReport report;
    std::vector<std::string> violations;
    std::size_t graphOps = 0;
};

/** Run @p model under @p config with a validated schedule trace. */
FaultedRun
runValidated(const rt::SystemConfig &config, nn::ModelId model,
             std::uint32_t steps)
{
    nn::Graph graph = nn::buildModel(model);
    rt::Executor executor(config);
    rt::ScheduleTrace trace;
    executor.attachTrace(&trace);

    FaultedRun run;
    run.report = executor.run(graph, steps);
    run.graphOps = graph.size();
    auto validation =
        validateSchedule(trace, {&graph}, {steps}, config);
    for (const auto &violation : validation.violations)
        run.violations.push_back(violation.what);
    return run;
}

std::uint64_t
totalPlaced(const rt::ExecutionReport &report)
{
    std::uint64_t total = 0;
    for (const auto &[placement, count] : report.opsByPlacement)
        total += count;
    return total;
}

} // namespace

TEST(Resilience, ZeroCostWhenOff)
{
    // Leaving every fault knob set but the master switch off must be
    // indistinguishable from a build without the fault layer.
    rt::SystemConfig clean = heteroConfig();
    rt::SystemConfig armed = heteroConfig();
    armed.faults.enabled = false; // the master switch rules them all
    armed.faults.transientRatePerOp = 0.5;
    armed.faults.stallRatePerOp = 0.5;
    armed.faults.killBanks = 16;
    armed.faults.throttleTempC = 0.0;

    nn::Graph graph = nn::buildModel(nn::ModelId::AlexNet);
    auto a = rt::Executor(clean).run(graph, 2);
    auto b = rt::Executor(armed).run(graph, 2);

    EXPECT_EQ(a.makespanSec, b.makespanSec); // bit-identical
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
    EXPECT_EQ(a.opsByPlacement, b.opsByPlacement);
    EXPECT_EQ(b.transientFaults, 0u);
    EXPECT_EQ(b.retries, 0u);
    EXPECT_EQ(b.banksFailed, 0u);
    EXPECT_TRUE(b.capacityTimeline.empty());
}

TEST(Resilience, KillingQuarterOfPoolStillCompletesTraining)
{
    rt::SystemConfig config = heteroConfig();
    config.faults.enabled = true;
    config.faults.killBanks = 8; // 25% of the 32 banks
    config.faults.transientRatePerOp = 1e-3;
    config.faults.killSpreadSec = 0.02;
    config.faults.seed = 1234;

    auto run = runValidated(config, nn::ModelId::AlexNet, 2);
    for (const auto &what : run.violations)
        ADD_FAILURE() << what;
    EXPECT_TRUE(run.violations.empty());

    const auto &r = run.report;
    EXPECT_EQ(r.banksFailed, 8u);
    EXPECT_GT(r.unitsLost, 0u);
    // Every op of every step completed exactly once, somewhere.
    EXPECT_EQ(totalPlaced(r), std::uint64_t(run.graphOps) * 2u);

    // The capacity timeline starts at full pool size and only shrinks
    // (kills are the only health events in this run).
    ASSERT_FALSE(r.capacityTimeline.empty());
    EXPECT_EQ(r.capacityTimeline.front().units,
              config.fixed.totalUnits);
    for (std::size_t i = 1; i < r.capacityTimeline.size(); ++i) {
        EXPECT_LE(r.capacityTimeline[i].units,
                  r.capacityTimeline[i - 1].units);
    }
    EXPECT_LT(r.capacityTimeline.back().units,
              config.fixed.totalUnits);
}

TEST(Resilience, FaultScheduleIsDeterministicAcrossReruns)
{
    rt::SystemConfig config = heteroConfig();
    config.faults.enabled = true;
    config.faults.killBanks = 4;
    config.faults.transientRatePerOp = 5e-3;
    config.faults.stallRatePerOp = 1e-3;
    config.faults.seed = 99;

    auto a = runValidated(config, nn::ModelId::Dcgan, 2);
    auto b = runValidated(config, nn::ModelId::Dcgan, 2);

    EXPECT_EQ(a.report.makespanSec, b.report.makespanSec);
    EXPECT_EQ(a.report.totalEnergyJ, b.report.totalEnergyJ);
    EXPECT_EQ(a.report.transientFaults, b.report.transientFaults);
    EXPECT_EQ(a.report.kernelStalls, b.report.kernelStalls);
    EXPECT_EQ(a.report.retries, b.report.retries);
    EXPECT_EQ(a.report.opsDegraded, b.report.opsDegraded);
    EXPECT_EQ(a.report.opsByPlacement, b.report.opsByPlacement);
    ASSERT_EQ(a.report.capacityTimeline.size(),
              b.report.capacityTimeline.size());
    for (std::size_t i = 0; i < a.report.capacityTimeline.size(); ++i) {
        EXPECT_EQ(a.report.capacityTimeline[i].timeSec,
                  b.report.capacityTimeline[i].timeSec);
        EXPECT_EQ(a.report.capacityTimeline[i].units,
                  b.report.capacityTimeline[i].units);
    }
}

TEST(Resilience, CertainFaultsDegradeEveryOpToTheCpu)
{
    // With every offload attempt failing verification, the ladder
    // must walk each op down to the (reliable) host CPU and training
    // must still terminate.
    rt::SystemConfig config = heteroConfig();
    config.faults.enabled = true;
    config.faults.transientRatePerOp = 1.0;
    config.faults.maxAttempts = 2;

    auto run = runValidated(config, nn::ModelId::Dcgan, 1);
    for (const auto &what : run.violations)
        ADD_FAILURE() << what;

    const auto &r = run.report;
    EXPECT_EQ(totalPlaced(r), std::uint64_t(run.graphOps));
    // Nothing can complete anywhere but the CPU.
    EXPECT_EQ(r.opsByPlacement.count(rt::PlacedOn::FixedPool), 0u);
    EXPECT_EQ(r.opsByPlacement.count(rt::PlacedOn::ProgrPim), 0u);
    EXPECT_EQ(r.opsByPlacement.at(rt::PlacedOn::Cpu),
              std::uint64_t(run.graphOps));
    EXPECT_GT(r.transientFaults, 0u);
    EXPECT_GT(r.opsDegraded, 0u);
    EXPECT_GT(r.retryBackoffSec, 0.0);
}

TEST(Resilience, StalledKernelsAreReclaimedByTheWatchdog)
{
    rt::SystemConfig config = heteroConfig();
    config.faults.enabled = true;
    config.faults.stallRatePerOp = 1.0;
    config.faults.maxAttempts = 1; // degrade on the first stall

    auto run = runValidated(config, nn::ModelId::Dcgan, 1);
    for (const auto &what : run.violations)
        ADD_FAILURE() << what;
    EXPECT_EQ(totalPlaced(run.report), std::uint64_t(run.graphOps));
    EXPECT_GT(run.report.kernelStalls, 0u);
    // Every programmable kernel stalls, so nothing completes there.
    EXPECT_EQ(run.report.opsByPlacement.count(rt::PlacedOn::ProgrPim),
              0u);
    EXPECT_EQ(
        run.report.opsByPlacement.count(rt::PlacedOn::ProgrRecursive),
        0u);
}

TEST(Resilience, ThermalThrottlingEngagesAndRecovers)
{
    rt::SystemConfig config = heteroConfig();
    config.faults.enabled = true;
    // At stock clocks the solved bank temperatures sit only a couple
    // of kelvin above the 45C ambient, so drop the threshold to force
    // the duty cycle.
    config.faults.throttleTempC = 40.0;
    config.faults.throttlePeriodSec = 2e-3;
    config.faults.throttleDutyFrac = 0.25;

    auto run = runValidated(config, nn::ModelId::Dcgan, 1);
    for (const auto &what : run.violations)
        ADD_FAILURE() << what;
    const auto &r = run.report;
    EXPECT_EQ(totalPlaced(r), std::uint64_t(run.graphOps));
    EXPECT_GT(r.throttleEvents, 0u);
    EXPECT_EQ(r.banksFailed, 0u);

    // Capacity dips below full and comes back (throttles recover).
    std::uint32_t min_units = r.capacityTimeline.front().units;
    std::uint32_t max_units = 0;
    for (const auto &sample : r.capacityTimeline) {
        min_units = std::min(min_units, sample.units);
        max_units = std::max(max_units, sample.units);
    }
    EXPECT_LT(min_units, config.fixed.totalUnits);
    EXPECT_EQ(max_units, config.fixed.totalUnits);
}

TEST(Resilience, FaultCountersStayZeroWithBenignRates)
{
    rt::SystemConfig config = heteroConfig();
    config.faults.enabled = true; // on, but nothing ever drawn

    auto run = runValidated(config, nn::ModelId::AlexNet, 2);
    EXPECT_TRUE(run.violations.empty());
    const auto &r = run.report;
    EXPECT_EQ(r.transientFaults, 0u);
    EXPECT_EQ(r.kernelStalls, 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.opsDegraded, 0u);
    EXPECT_EQ(r.banksFailed, 0u);
    EXPECT_EQ(r.throttleEvents, 0u);
    // The timeline exists (t = 0 sample) but never changes.
    ASSERT_FALSE(r.capacityTimeline.empty());
    for (const auto &sample : r.capacityTimeline)
        EXPECT_EQ(sample.units, config.fixed.totalUnits);
    // And the schedule equals the fault-free one bit for bit.
    rt::SystemConfig clean = heteroConfig();
    nn::Graph graph = nn::buildModel(nn::ModelId::AlexNet);
    auto reference = rt::Executor(clean).run(graph, 2);
    EXPECT_EQ(r.makespanSec, reference.makespanSec);
    EXPECT_EQ(r.opsByPlacement, reference.opsByPlacement);
}

