/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using hpim::sim::HistogramStat;
using hpim::sim::ScalarStat;
using hpim::sim::StatGroup;
using hpim::sim::VectorStat;

TEST(ScalarStat, AccumulatesAndResets)
{
    ScalarStat s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    s.inc();
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s -= 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(VectorStat, IndexingAndTotal)
{
    VectorStat v(4);
    v[0] = 1.0;
    v[3] = 2.5;
    EXPECT_DOUBLE_EQ(v.total(), 3.5);
    EXPECT_DOUBLE_EQ(v.at(3), 2.5);
    EXPECT_EQ(v.size(), 4u);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(VectorStat, ResizeClearsValues)
{
    VectorStat v(2);
    v[1] = 9.0;
    v.resize(8);
    EXPECT_EQ(v.size(), 8u);
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    HistogramStat h(0.0, 10.0, 5); // buckets of width 2
    h.sample(1.0);
    h.sample(3.0);
    h.sample(3.9);
    h.sample(9.99);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, UnderflowAndOverflow)
{
    HistogramStat h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(10.0); // max is exclusive
    h.sample(100.0, 3);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 4u);
}

TEST(Histogram, MeanWeightsByCount)
{
    HistogramStat h(0.0, 100.0, 10);
    h.sample(10.0, 3);
    h.sample(50.0, 1);
    EXPECT_DOUBLE_EQ(h.mean(), (30.0 + 50.0) / 4.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatGroup, ScalarRegistrationIsIdempotent)
{
    StatGroup group("hmc");
    group.scalar("reads", "read count") += 5.0;
    group.scalar("reads", "ignored") += 2.0;
    EXPECT_DOUBLE_EQ(group.lookup("reads"), 7.0);
    EXPECT_TRUE(group.hasScalar("reads"));
    EXPECT_FALSE(group.hasScalar("writes"));
}

TEST(StatGroup, DumpFormatsNameValueDesc)
{
    StatGroup group("vault0");
    group.scalar("rowHits", "row buffer hits").set(42.0);
    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("vault0.rowHits"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("row buffer hits"), std::string::npos);
}

TEST(StatGroup, ResetAllZeroesEverything)
{
    StatGroup group("g");
    group.scalar("a", "").set(1.0);
    group.scalar("b", "").set(2.0);
    group.resetAll();
    EXPECT_DOUBLE_EQ(group.lookup("a"), 0.0);
    EXPECT_DOUBLE_EQ(group.lookup("b"), 0.0);
}

TEST(StatGroupDeath, LookupMissingStatIsFatal)
{
    StatGroup group("g");
    EXPECT_EXIT(group.lookup("missing"), testing::ExitedWithCode(1),
                "no stat named");
}

TEST(HistogramDeath, ZeroBucketsIsFatal)
{
    EXPECT_EXIT(HistogramStat(0.0, 1.0, 0), testing::ExitedWithCode(1),
                "bucket");
}

TEST(HistogramDeath, EmptyRangeIsFatal)
{
    EXPECT_EXIT(HistogramStat(5.0, 5.0, 4), testing::ExitedWithCode(1),
                "empty");
}
