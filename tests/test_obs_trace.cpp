/**
 * @file
 * Unit tests for obs::TraceSession: recording, scope/ordering
 * invariants, and the Chrome trace-event export (which must
 * strict-parse with the harness JSON reader).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "harness/json.hh"
#include "obs/trace.hh"

using namespace hpim;
using obs::EventKind;
using obs::TraceEvent;
using obs::TraceSession;

TEST(ObsTrace, NoSessionAttachedByDefault)
{
    EXPECT_EQ(TraceSession::current(), nullptr);
    EXPECT_EQ(TraceSession::currentScope(), 0u);
}

TEST(ObsTrace, AttachDetachInstallTheGlobal)
{
    TraceSession session;
    session.attach();
    EXPECT_EQ(TraceSession::current(), &session);
    session.detach();
    EXPECT_EQ(TraceSession::current(), nullptr);
}

TEST(ObsTrace, DetachOnDestructionReleasesTheSlot)
{
    {
        TraceSession session;
        session.attach();
    }
    EXPECT_EQ(TraceSession::current(), nullptr);
    TraceSession next; // a successor can attach again
    next.attach();
    EXPECT_EQ(TraceSession::current(), &next);
}

TEST(ObsTrace, RecordsSpansInstantsAndCounters)
{
    TraceSession session;
    auto cpu = session.track("cpu");
    session.span(cpu, "conv1", 0.001, 0.002,
                 {{"energy_j", 0.5}, {"op", std::string("conv1")}});
    session.instant(cpu, "fault", 0.003, {{"attempt", std::int64_t{1}}});
    session.counter(cpu, "capacity", 0.004, 42.0);

    auto events = session.sortedEvents();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, EventKind::Span);
    EXPECT_EQ(events[0].name, "conv1");
    EXPECT_EQ(events[0].tsSec, 0.001);
    EXPECT_EQ(events[0].durSec, 0.002);
    EXPECT_EQ(events[1].kind, EventKind::Instant);
    EXPECT_EQ(events[2].kind, EventKind::Counter);
    EXPECT_EQ(events[2].value, 42.0);
}

TEST(ObsTrace, SeqReproducesProgramOrderWithinAScope)
{
    TraceSession session;
    auto t = session.track("t");
    for (int i = 0; i < 100; ++i)
        session.instant(t, "e" + std::to_string(i), double(i));
    auto events = session.sortedEvents();
    ASSERT_EQ(events.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(events[i].name, "e" + std::to_string(i));
}

TEST(ObsTrace, ScopeGuardTagsAndRestores)
{
    TraceSession session;
    auto t = session.track("sweep");
    session.instant(t, "outside", 0.0);
    {
        TraceSession::Scope scope(7);
        EXPECT_EQ(TraceSession::currentScope(), 7u);
        session.instant(t, "inside", 0.0);
        {
            TraceSession::Scope nested(9);
            EXPECT_EQ(TraceSession::currentScope(), 9u);
            session.instant(t, "nested", 0.0);
        }
        EXPECT_EQ(TraceSession::currentScope(), 7u);
    }
    EXPECT_EQ(TraceSession::currentScope(), 0u);

    auto events = session.sortedEvents();
    ASSERT_EQ(events.size(), 3u);
    // (scope, seq) sort: scope 0 first, then 7, then 9.
    EXPECT_EQ(events[0].name, "outside");
    EXPECT_EQ(events[0].scope, 0u);
    EXPECT_EQ(events[1].name, "inside");
    EXPECT_EQ(events[1].scope, 7u);
    EXPECT_EQ(events[2].name, "nested");
    EXPECT_EQ(events[2].scope, 9u);
}

TEST(ObsTrace, EventsMergeAcrossThreadsByScope)
{
    TraceSession session;
    auto t = session.track("t");
    std::vector<std::thread> threads;
    for (std::uint32_t w = 1; w <= 4; ++w) {
        threads.emplace_back([&session, t, w] {
            TraceSession::Scope scope(w);
            for (int i = 0; i < 50; ++i)
                session.instant(t, "w" + std::to_string(w), double(i));
        });
    }
    for (auto &thread : threads)
        thread.join();

    auto events = session.sortedEvents();
    ASSERT_EQ(events.size(), 200u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].scope, i / 50 + 1);
        EXPECT_EQ(events[i].seq, i % 50);
    }
}

TEST(ObsTrace, TrackInterningIsStable)
{
    TraceSession session;
    auto a = session.track("cpu");
    auto b = session.track("fixed");
    EXPECT_NE(a, b);
    EXPECT_EQ(session.track("cpu"), a);
    EXPECT_EQ(session.track("fixed"), b);
    auto names = session.trackNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[a], "cpu");
    EXPECT_EQ(names[b], "fixed");
}

TEST(ObsTrace, ExportStrictParsesAsChromeTrace)
{
    TraceSession session;
    auto cpu = session.track("cpu");
    session.span(cpu, "op \"quoted\"\n", 1e-6, 2e-6,
                 {{"energy_j", 0.25}});
    session.instant(cpu, "fault", 3e-6);
    session.counter(cpu, "capacity", 4e-6, 17.0);

    std::ostringstream os;
    session.exportChromeTrace(os);
    auto doc = harness::json::parse(os.str());
    ASSERT_TRUE(doc.isObject());
    const auto &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // 3 metadata (process_name + thread_name + sort_index) + 3 events.
    ASSERT_EQ(events.array.size(), 6u);

    const auto &span = events.array[3];
    EXPECT_EQ(span.at("ph").asString(), "X");
    EXPECT_EQ(span.at("name").asString(), "op \"quoted\"\n");
    EXPECT_EQ(span.at("ts").asDouble(), 1.0); // seconds -> micros
    EXPECT_EQ(span.at("dur").asDouble(), 2.0);
    EXPECT_EQ(span.at("args").at("energy_j").asDouble(), 0.25);
    const auto &instant = events.array[4];
    EXPECT_EQ(instant.at("ph").asString(), "i");
    EXPECT_EQ(instant.at("s").asString(), "t");
    const auto &counter = events.array[5];
    EXPECT_EQ(counter.at("ph").asString(), "C");
    EXPECT_EQ(counter.at("args").at("value").asDouble(), 17.0);
}

TEST(ObsTrace, ExportMetadataNamesEveryScopeAndTrack)
{
    TraceSession session;
    auto cpu = session.track("cpu");
    session.instant(cpu, "main", 0.0);
    {
        TraceSession::Scope scope(3);
        session.instant(cpu, "pointed", 0.0);
    }
    std::ostringstream os;
    session.exportChromeTrace(os);
    auto doc = harness::json::parse(os.str());
    std::vector<std::string> process_names;
    for (const auto &event : doc.at("traceEvents").array) {
        if (event.at("ph").asString() == "M"
            && event.at("name").asString() == "process_name")
            process_names.push_back(
                event.at("args").at("name").asString());
    }
    // Scope 0 is "run"; scope 3 is sweep point 2.
    ASSERT_EQ(process_names.size(), 2u);
    EXPECT_EQ(process_names[0], "run");
    EXPECT_EQ(process_names[1], "point 2");
}

TEST(ObsTrace, ExportTidsAreNameSortedNotInternOrdered)
{
    // Two sessions interning the same tracks in opposite orders must
    // export identical bytes: tids are remapped to name-sorted order
    // precisely because intern order is racy under parallel sweeps.
    TraceSession forward, backward;
    auto f_cpu = forward.track("cpu");
    auto f_fixed = forward.track("fixed");
    forward.span(f_cpu, "a", 0.0, 1e-6);
    forward.span(f_fixed, "b", 0.0, 1e-6);
    auto b_fixed = backward.track("fixed");
    auto b_cpu = backward.track("cpu");
    backward.span(b_cpu, "a", 0.0, 1e-6);
    backward.span(b_fixed, "b", 0.0, 1e-6);

    std::ostringstream fwd, bwd;
    forward.exportChromeTrace(fwd);
    backward.exportChromeTrace(bwd);
    EXPECT_EQ(fwd.str(), bwd.str());
}

TEST(ObsTrace, InstrumentationIsInertWithoutASession)
{
    // The zero-cost-when-off contract at the API level: nothing
    // attached, current() is null, and a session that never attached
    // records independently without touching the global slot.
    ASSERT_EQ(TraceSession::current(), nullptr);
    TraceSession session;
    session.track("cpu");
    session.instant(0, "local", 0.0);
    EXPECT_EQ(TraceSession::current(), nullptr);
    EXPECT_EQ(session.eventCount(), 1u);
}
