/**
 * @file
 * Tests for the schedule validator plus the strongest correctness
 * property in the suite: every schedule the executor produces -- for
 * every model, configuration and feature combination -- satisfies the
 * dependence, capacity, step-window and completeness invariants.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "rt/schedule_validator.hh"

using namespace hpim;
using namespace hpim::rt;

namespace {

ValidationResult
runAndValidate(const SystemConfig &config, const nn::Graph &graph,
               std::uint32_t steps)
{
    Executor executor(config);
    ScheduleTrace trace;
    executor.attachTrace(&trace);
    executor.run(graph, steps);
    return validateSchedule(trace, {&graph}, {steps}, config);
}

} // namespace

TEST(ScheduleValidator, AcceptsLegalHandBuiltSchedule)
{
    nn::Graph graph("g");
    auto a = graph.add(nn::OpType::MatMul, "a",
                       nn::matmulCost(2, 2, 2),
                       nn::fixedParallelism(nn::OpType::MatMul, 2, 1));
    graph.add(nn::OpType::Relu, "b",
              nn::activationCost(nn::OpType::Relu,
                                 nn::TensorShape{2, 2}),
              nn::fixedParallelism(nn::OpType::Relu, 1, 0.0), {a});

    ScheduleTrace trace;
    auto t0 = trace.begin("a", 0, PlacedOn::Cpu, 0, 0, 0.0);
    trace.end(t0, 1.0);
    auto t1 = trace.begin("b", 1, PlacedOn::Cpu, 0, 0, 1.0);
    trace.end(t1, 2.0);

    SystemConfig config;
    auto result = validateSchedule(trace, {&graph}, {1}, config);
    EXPECT_TRUE(result.ok());
}

TEST(ScheduleValidator, DetectsDependenceViolation)
{
    nn::Graph graph("g");
    auto a = graph.add(nn::OpType::MatMul, "a",
                       nn::matmulCost(2, 2, 2),
                       nn::fixedParallelism(nn::OpType::MatMul, 2, 1));
    graph.add(nn::OpType::Relu, "b",
              nn::activationCost(nn::OpType::Relu,
                                 nn::TensorShape{2, 2}),
              nn::fixedParallelism(nn::OpType::Relu, 1, 0.0), {a});

    ScheduleTrace trace;
    auto t0 = trace.begin("a", 0, PlacedOn::Cpu, 0, 0, 0.0);
    trace.end(t0, 1.0);
    // Consumer starts before the producer ends -> violation.
    auto t1 = trace.begin("b", 1, PlacedOn::ProgrPim, 0, 0, 0.5);
    trace.end(t1, 2.0);

    SystemConfig config;
    auto result = validateSchedule(trace, {&graph}, {1}, config);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.violations[0].what.find("dependence"),
              std::string::npos);
}

TEST(ScheduleValidator, DetectsCpuOversubscription)
{
    nn::Graph graph("g");
    graph.add(nn::OpType::MatMul, "a", nn::matmulCost(2, 2, 2),
              nn::fixedParallelism(nn::OpType::MatMul, 2, 1));
    graph.add(nn::OpType::MatMul, "b", nn::matmulCost(2, 2, 2),
              nn::fixedParallelism(nn::OpType::MatMul, 2, 1));

    ScheduleTrace trace;
    auto t0 = trace.begin("a", 0, PlacedOn::Cpu, 0, 0, 0.0);
    auto t1 = trace.begin("b", 1, PlacedOn::Cpu, 0, 0, 0.5);
    trace.end(t0, 1.0);
    trace.end(t1, 1.5);

    SystemConfig config;
    auto result = validateSchedule(trace, {&graph}, {1}, config);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.violations[0].what.find("capacity"),
              std::string::npos);
}

TEST(ScheduleValidator, DetectsMissingInterval)
{
    nn::Graph graph("g");
    graph.add(nn::OpType::MatMul, "a", nn::matmulCost(2, 2, 2),
              nn::fixedParallelism(nn::OpType::MatMul, 2, 1));
    ScheduleTrace trace; // empty
    SystemConfig config;
    auto result = validateSchedule(trace, {&graph}, {1}, config);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.violations[0].what.find("missing"),
              std::string::npos);
}

TEST(ScheduleValidator, DetectsStepWindowViolation)
{
    nn::Graph graph("g");
    graph.add(nn::OpType::MatMul, "a", nn::matmulCost(2, 2, 2),
              nn::fixedParallelism(nn::OpType::MatMul, 2, 1));

    ScheduleTrace trace;
    auto t0 = trace.begin("a", 0, PlacedOn::Cpu, 0, 0, 0.0);
    trace.end(t0, 2.0);
    // Step 1 starts before step 0 ends; window is 1 (no OP).
    auto t1 = trace.begin("a", 0, PlacedOn::ProgrPim, 0, 1, 1.0);
    trace.end(t1, 3.0);

    SystemConfig config;
    config.operationPipeline = false;
    auto result = validateSchedule(trace, {&graph}, {2}, config);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.violations[0].what.find("step-window"),
              std::string::npos);
}

// THE property: every executor schedule is legal, across models x
// configurations x feature flags.
struct SweepCase
{
    nn::ModelId model;
    baseline::SystemKind kind;
};

class ExecutorScheduleSweep : public testing::TestWithParam<SweepCase>
{};

TEST_P(ExecutorScheduleSweep, ScheduleIsLegal)
{
    auto [model, kind] = GetParam();
    auto config = baseline::makeConfig(kind);
    auto graph = nn::buildModel(model);
    auto result = runAndValidate(config, graph, 3);
    for (const auto &violation : result.violations)
        ADD_FAILURE() << violation.what;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByConfigs, ExecutorScheduleSweep,
    testing::Values(
        SweepCase{nn::ModelId::AlexNet, baseline::SystemKind::CpuOnly},
        SweepCase{nn::ModelId::AlexNet,
                  baseline::SystemKind::ProgrPimOnly},
        SweepCase{nn::ModelId::AlexNet,
                  baseline::SystemKind::FixedPimOnly},
        SweepCase{nn::ModelId::AlexNet,
                  baseline::SystemKind::HeteroPim},
        SweepCase{nn::ModelId::Dcgan, baseline::SystemKind::HeteroPim},
        SweepCase{nn::ModelId::Vgg19, baseline::SystemKind::HeteroPim},
        SweepCase{nn::ModelId::ResNet50,
                  baseline::SystemKind::HeteroPim},
        SweepCase{nn::ModelId::InceptionV3,
                  baseline::SystemKind::HeteroPim},
        SweepCase{nn::ModelId::Lstm, baseline::SystemKind::HeteroPim},
        SweepCase{nn::ModelId::Word2vec,
                  baseline::SystemKind::Neurocube}));

TEST(ExecutorScheduleSweep, RcOpFlagCombinationsAreLegal)
{
    auto graph = nn::buildAlexNet();
    for (bool rc : {false, true}) {
        for (bool op : {false, true}) {
            auto config = baseline::makeHetero(true, rc, op);
            auto result = runAndValidate(config, graph, 3);
            for (const auto &violation : result.violations) {
                ADD_FAILURE()
                    << "rc=" << rc << " op=" << op << ": "
                    << violation.what;
            }
        }
    }
}

TEST(ExecutorScheduleSweep, DeepPipelineIsLegal)
{
    auto config = baseline::makeHetero(true, true, true);
    config.pipelineDepth = 3;
    auto graph = nn::buildDcgan();
    auto result = runAndValidate(config, graph, 5);
    for (const auto &violation : result.violations)
        ADD_FAILURE() << violation.what;
}
