/**
 * @file
 * Unit tests for ExecutionReport CSV/JSON serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/presets.hh"
#include "harness/report_io.hh"
#include "nn/models.hh"

using namespace hpim;
using namespace hpim::harness;

namespace {

rt::ExecutionReport
sample()
{
    rt::ExecutionReport r;
    r.configName = "Hetero PIM";
    r.workloadName = "AlexNet";
    r.stepsSimulated = 4;
    r.stepSec = 0.1;
    r.opSec = 0.08;
    r.dataMovementSec = 0.015;
    r.syncSec = 0.005;
    r.energyPerStepJ = 5.0;
    r.averagePowerW = 50.0;
    r.edp = 0.5;
    r.opsByPlacement[rt::PlacedOn::Cpu] = 10;
    r.opsByPlacement[rt::PlacedOn::FixedPool] = 20;
    return r;
}

} // namespace

TEST(ReportIo, CsvRowMatchesHeaderArity)
{
    std::ostringstream header, row;
    writeCsvHeader(header);
    writeCsvRow(row, sample());
    auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header.str()), count(row.str()));
}

TEST(ReportIo, CsvBatchHasHeaderPlusRows)
{
    std::ostringstream os;
    writeCsv(os, {sample(), sample(), sample()});
    std::string text = os.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_EQ(text.rfind("config,workload", 0), 0u);
}

TEST(ReportIo, JsonContainsKeyFields)
{
    std::ostringstream os;
    writeJson(os, sample());
    std::string text = os.str();
    EXPECT_NE(text.find("\"config\":\"Hetero PIM\""),
              std::string::npos);
    EXPECT_NE(text.find("\"workload\":\"AlexNet\""),
              std::string::npos);
    EXPECT_NE(text.find("\"fixed\":20"), std::string::npos);
    EXPECT_NE(text.find("\"cpu\":10"), std::string::npos);
}

TEST(ReportIo, JsonBracesBalanced)
{
    std::ostringstream os;
    writeJson(os, sample());
    int depth = 0;
    for (char c : os.str()) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ReportIo, RealReportRoundTripsThroughCsv)
{
    auto report = baseline::runSystem(baseline::SystemKind::HeteroPim,
                                      nn::ModelId::Dcgan, 2);
    std::ostringstream os;
    writeCsv(os, {report});
    // The workload name and a plausible step time appear.
    EXPECT_NE(os.str().find("DCGAN"), std::string::npos);
    EXPECT_NE(os.str().find("Hetero PIM"), std::string::npos);
}
