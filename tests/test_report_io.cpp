/**
 * @file
 * Unit tests for ExecutionReport CSV/JSON serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/presets.hh"
#include "harness/report_io.hh"
#include "nn/models.hh"

using namespace hpim;
using namespace hpim::harness;

namespace {

rt::ExecutionReport
sample()
{
    rt::ExecutionReport r;
    r.configName = "Hetero PIM";
    r.workloadName = "AlexNet";
    r.stepsSimulated = 4;
    r.stepSec = 0.1;
    r.opSec = 0.08;
    r.dataMovementSec = 0.015;
    r.syncSec = 0.005;
    r.energyPerStepJ = 5.0;
    r.averagePowerW = 50.0;
    r.edp = 0.5;
    r.opsByPlacement[rt::PlacedOn::Cpu] = 10;
    r.opsByPlacement[rt::PlacedOn::FixedPool] = 20;
    r.transientFaults = 3;
    r.kernelStalls = 1;
    r.retries = 4;
    r.opsDegraded = 2;
    r.retryBackoffSec = 1.5e-4;
    r.banksFailed = 1;
    r.unitsLost = 14;
    r.throttleEvents = 6;
    r.capacityTimeline.push_back({0.0, 444});
    r.capacityTimeline.push_back({0.01, 430});
    return r;
}

} // namespace

TEST(ReportIo, CsvRowMatchesHeaderArity)
{
    std::ostringstream header, row;
    writeCsvHeader(header);
    writeCsvRow(row, sample());
    auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header.str()), count(row.str()));
}

TEST(ReportIo, CsvBatchHasHeaderPlusRows)
{
    std::ostringstream os;
    writeCsv(os, {sample(), sample(), sample()});
    std::string text = os.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_EQ(text.rfind("config,workload", 0), 0u);
}

TEST(ReportIo, JsonContainsKeyFields)
{
    std::ostringstream os;
    writeJson(os, sample());
    std::string text = os.str();
    EXPECT_NE(text.find("\"config\":\"Hetero PIM\""),
              std::string::npos);
    EXPECT_NE(text.find("\"workload\":\"AlexNet\""),
              std::string::npos);
    EXPECT_NE(text.find("\"fixed\":20"), std::string::npos);
    EXPECT_NE(text.find("\"cpu\":10"), std::string::npos);
}

TEST(ReportIo, ResilienceFieldsSerialized)
{
    std::ostringstream csv, json;
    writeCsv(csv, {sample()});
    writeJson(json, sample());
    EXPECT_NE(csv.str().find("transient_faults"), std::string::npos);
    EXPECT_NE(csv.str().find("banks_failed"), std::string::npos);
    EXPECT_NE(json.str().find("\"resilience\":{"), std::string::npos);
    EXPECT_NE(json.str().find("\"transient_faults\":3"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"units_lost\":14"), std::string::npos);
    EXPECT_NE(json.str().find("\"capacity_timeline\":[[0,444],"),
              std::string::npos);
}

TEST(ReportIo, JsonBracesBalanced)
{
    std::ostringstream os;
    writeJson(os, sample());
    int depth = 0;
    for (char c : os.str()) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ReportIo, RealReportRoundTripsThroughCsv)
{
    auto report = baseline::runSystem(baseline::SystemKind::HeteroPim,
                                      nn::ModelId::Dcgan, 2);
    std::ostringstream os;
    writeCsv(os, {report});
    // The workload name and a plausible step time appear.
    EXPECT_NE(os.str().find("DCGAN"), std::string::npos);
    EXPECT_NE(os.str().find("Hetero PIM"), std::string::npos);
}
