/**
 * @file
 * Unit tests for ExecutionReport CSV/JSON serialization and the
 * strict versioned parsers that read both formats back.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "baseline/presets.hh"
#include "harness/report_io.hh"
#include "nn/models.hh"
#include "obs/metrics.hh"

using namespace hpim;
using namespace hpim::harness;

namespace {

rt::ExecutionReport
sample()
{
    rt::ExecutionReport r;
    r.configName = "Hetero PIM";
    r.workloadName = "AlexNet";
    r.stepsSimulated = 4;
    r.makespanSec = 0.4;
    r.stepSec = 0.1;
    r.opSec = 0.08;
    r.dataMovementSec = 0.015;
    r.syncSec = 0.005;
    r.cpuBusySec = 0.02;
    r.progrBusySec = 0.3;
    r.fixedUnitSeconds = 12.5;
    r.fixedUtilization = 0.73;
    r.hostLaunches = 120;
    r.recursiveLaunches = 64;
    r.linkBytes = 1.25e9;
    r.internalBytes = 9.5e9;
    r.cpuEnergyJ = 1.0;
    r.progrEnergyJ = 2.0;
    r.fixedEnergyJ = 3.0;
    r.dramEnergyJ = 4.0;
    r.totalEnergyJ = 10.0;
    r.energyPerStepJ = 5.0;
    r.averagePowerW = 50.0;
    r.edp = 0.5;
    r.opsByPlacement[rt::PlacedOn::Cpu] = 10;
    r.opsByPlacement[rt::PlacedOn::FixedPool] = 20;
    r.opsByPlacement[rt::PlacedOn::ProgrRecursive] = 7;
    r.transientFaults = 3;
    r.kernelStalls = 1;
    r.retries = 4;
    r.opsDegraded = 2;
    r.opsEvicted = 1;
    r.retryBackoffSec = 1.5e-4;
    r.banksFailed = 1;
    r.unitsLost = 14;
    r.throttleEvents = 6;
    r.capacityTimeline.push_back({0.0, 444});
    r.capacityTimeline.push_back({0.01, 430});

    // Schema v2: the obs metrics snapshot rides in the report.
    obs::MetricSample counter;
    counter.name = "rt.ops.cpu";
    counter.kind = obs::MetricKind::Counter;
    counter.count = 10;
    obs::MetricSample gauge;
    gauge.name = "pim.alive_units";
    gauge.kind = obs::MetricKind::Gauge;
    gauge.value = 430.5;
    obs::MetricSample hist;
    hist.name = "mem.request_latency_s";
    hist.kind = obs::MetricKind::Histogram;
    hist.count = 3;
    hist.sum = 3.5e-7;
    hist.min = 1e-7;
    hist.max = 1.5e-7;
    hist.buckets = {{40, 1}, {41, 2}};
    r.metrics = {counter, gauge, hist};
    return r;
}

} // namespace

TEST(ReportIo, CsvRowMatchesHeaderArity)
{
    std::ostringstream header, row;
    writeCsvHeader(header);
    writeCsvRow(row, sample());
    auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header.str()), count(row.str()));
}

TEST(ReportIo, CsvBatchHasVersionHeaderPlusRows)
{
    std::ostringstream os;
    writeCsv(os, {sample(), sample(), sample()});
    std::string text = os.str();
    // Version line + header + three rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
    EXPECT_EQ(text.rfind("#hpim-report-csv v1\n", 0), 0u);
    EXPECT_NE(text.find("\nconfig,workload"), std::string::npos);
}

TEST(ReportIo, JsonContainsKeyFields)
{
    std::ostringstream os;
    writeJson(os, sample());
    std::string text = os.str();
    EXPECT_NE(text.find("\"config\":\"Hetero PIM\""),
              std::string::npos);
    EXPECT_NE(text.find("\"workload\":\"AlexNet\""),
              std::string::npos);
    EXPECT_NE(text.find("\"fixed\":20"), std::string::npos);
    EXPECT_NE(text.find("\"cpu\":10"), std::string::npos);
}

TEST(ReportIo, ResilienceFieldsSerialized)
{
    std::ostringstream csv, json;
    writeCsv(csv, {sample()});
    writeJson(json, sample());
    EXPECT_NE(csv.str().find("transient_faults"), std::string::npos);
    EXPECT_NE(csv.str().find("banks_failed"), std::string::npos);
    EXPECT_NE(json.str().find("\"resilience\":{"), std::string::npos);
    EXPECT_NE(json.str().find("\"transient_faults\":3"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"units_lost\":14"), std::string::npos);
    EXPECT_NE(json.str().find("\"capacity_timeline\":[[0,444],"),
              std::string::npos);
}

TEST(ReportIo, JsonBracesBalanced)
{
    std::ostringstream os;
    writeJson(os, sample());
    int depth = 0;
    for (char c : os.str()) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ReportIo, RealReportRoundTripsThroughCsv)
{
    auto report = baseline::runSystem(baseline::SystemKind::HeteroPim,
                                      nn::ModelId::Dcgan, 2);
    std::ostringstream os;
    writeCsv(os, {report});
    // The workload name and a plausible step time appear.
    EXPECT_NE(os.str().find("DCGAN"), std::string::npos);
    EXPECT_NE(os.str().find("Hetero PIM"), std::string::npos);
}

// ---- JSON round-tripping. -----------------------------------------

TEST(ReportIo, JsonSerializeParseReserializeIsIdentical)
{
    // The crash-safe journal depends on this: a report written,
    // parsed back, and written again must be byte-identical,
    // including every PR2 resilience field and the timeline.
    std::string once = jsonString(sample());
    rt::ExecutionReport parsed = readJson(once);
    EXPECT_EQ(jsonString(parsed), once);
}

TEST(ReportIo, JsonRoundTripPreservesEveryField)
{
    rt::ExecutionReport in = sample();
    rt::ExecutionReport out = readJson(jsonString(in));
    EXPECT_EQ(out.configName, in.configName);
    EXPECT_EQ(out.workloadName, in.workloadName);
    EXPECT_EQ(out.stepsSimulated, in.stepsSimulated);
    EXPECT_EQ(out.makespanSec, in.makespanSec);
    EXPECT_EQ(out.stepSec, in.stepSec);
    EXPECT_EQ(out.opSec, in.opSec);
    EXPECT_EQ(out.dataMovementSec, in.dataMovementSec);
    EXPECT_EQ(out.syncSec, in.syncSec);
    EXPECT_EQ(out.cpuBusySec, in.cpuBusySec);
    EXPECT_EQ(out.progrBusySec, in.progrBusySec);
    EXPECT_EQ(out.fixedUnitSeconds, in.fixedUnitSeconds);
    EXPECT_EQ(out.fixedUtilization, in.fixedUtilization);
    EXPECT_EQ(out.hostLaunches, in.hostLaunches);
    EXPECT_EQ(out.recursiveLaunches, in.recursiveLaunches);
    EXPECT_EQ(out.linkBytes, in.linkBytes);
    EXPECT_EQ(out.internalBytes, in.internalBytes);
    EXPECT_EQ(out.cpuEnergyJ, in.cpuEnergyJ);
    EXPECT_EQ(out.progrEnergyJ, in.progrEnergyJ);
    EXPECT_EQ(out.fixedEnergyJ, in.fixedEnergyJ);
    EXPECT_EQ(out.dramEnergyJ, in.dramEnergyJ);
    EXPECT_EQ(out.totalEnergyJ, in.totalEnergyJ);
    EXPECT_EQ(out.energyPerStepJ, in.energyPerStepJ);
    EXPECT_EQ(out.averagePowerW, in.averagePowerW);
    EXPECT_EQ(out.edp, in.edp);
    EXPECT_EQ(out.opsByPlacement, in.opsByPlacement);
    EXPECT_EQ(out.transientFaults, in.transientFaults);
    EXPECT_EQ(out.kernelStalls, in.kernelStalls);
    EXPECT_EQ(out.retries, in.retries);
    EXPECT_EQ(out.opsDegraded, in.opsDegraded);
    EXPECT_EQ(out.opsEvicted, in.opsEvicted);
    EXPECT_EQ(out.retryBackoffSec, in.retryBackoffSec);
    EXPECT_EQ(out.banksFailed, in.banksFailed);
    EXPECT_EQ(out.unitsLost, in.unitsLost);
    EXPECT_EQ(out.throttleEvents, in.throttleEvents);
    EXPECT_EQ(out.metrics, in.metrics);
    ASSERT_EQ(out.capacityTimeline.size(),
              in.capacityTimeline.size());
    for (std::size_t i = 0; i < in.capacityTimeline.size(); ++i) {
        EXPECT_EQ(out.capacityTimeline[i].timeSec,
                  in.capacityTimeline[i].timeSec);
        EXPECT_EQ(out.capacityTimeline[i].units,
                  in.capacityTimeline[i].units);
    }
}

TEST(ReportIo, RealSimulatedReportRoundTripsThroughJson)
{
    auto report = baseline::runSystem(baseline::SystemKind::HeteroPim,
                                      nn::ModelId::AlexNet, 2);
    std::string once = jsonString(report);
    EXPECT_EQ(jsonString(readJson(once)), once);
}

TEST(ReportIo, JsonAwkwardDoublesSurviveExactly)
{
    rt::ExecutionReport in = sample();
    in.stepSec = 0.1 + 0.2;          // 0.30000000000000004
    in.linkBytes = 1.0 / 3.0;
    in.edp = 1e-308;                 // near-denormal
    in.retryBackoffSec = 12345678.87654321;
    rt::ExecutionReport out = readJson(jsonString(in));
    EXPECT_EQ(out.stepSec, in.stepSec);
    EXPECT_EQ(out.linkBytes, in.linkBytes);
    EXPECT_EQ(out.edp, in.edp);
    EXPECT_EQ(out.retryBackoffSec, in.retryBackoffSec);
}

TEST(ReportIo, JsonParserRejectsUnknownField)
{
    std::string text = jsonString(sample());
    text.insert(1, "\"surprise\":1,");
    try {
        readJson(text);
        FAIL() << "unknown field accepted";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.field, "surprise");
    }
}

TEST(ReportIo, JsonParserRejectsMissingField)
{
    std::string text = jsonString(sample());
    auto pos = text.find("\"edp\":");
    auto end = text.find(',', pos);
    text.erase(pos, end - pos + 1);
    try {
        readJson(text);
        FAIL() << "missing field accepted";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.field, "edp");
    }
}

TEST(ReportIo, JsonParserRejectsWrongSchemaVersion)
{
    std::string text = jsonString(sample());
    auto pos = text.find("\"schema_version\":2");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::strlen("\"schema_version\":2"),
                 "\"schema_version\":999");
    try {
        readJson(text);
        FAIL() << "wrong schema version accepted";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.field, "schema_version");
    }
}

TEST(ReportIo, JsonParserRejectsTruncatedDocument)
{
    std::string text = jsonString(sample());
    EXPECT_THROW(readJson(text.substr(0, text.size() / 2)),
                 ParseError);
}

TEST(ReportIo, JsonParserRejectsNegativeCounter)
{
    std::string text = jsonString(sample());
    auto pos = text.find("\"retries\":4");
    text.replace(pos, std::strlen("\"retries\":4"), "\"retries\":-4");
    EXPECT_THROW(readJson(text), ParseError);
}

// ---- CSV parsing. -------------------------------------------------

TEST(ReportIo, CsvRoundTripPreservesCarriedFields)
{
    std::ostringstream os;
    writeCsv(os, {sample(), sample()});
    std::istringstream is(os.str());
    auto reports = readCsv(is);
    ASSERT_EQ(reports.size(), 2u);
    const auto &out = reports[0];
    const auto in = sample();
    EXPECT_EQ(out.configName, in.configName);
    EXPECT_EQ(out.workloadName, in.workloadName);
    EXPECT_EQ(out.stepsSimulated, in.stepsSimulated);
    EXPECT_EQ(out.stepSec, in.stepSec);
    EXPECT_EQ(out.fixedUtilization, in.fixedUtilization);
    EXPECT_EQ(out.hostLaunches, in.hostLaunches);
    EXPECT_EQ(out.energyPerStepJ, in.energyPerStepJ);
    EXPECT_EQ(out.transientFaults, in.transientFaults);
    EXPECT_EQ(out.retryBackoffSec, in.retryBackoffSec);
    EXPECT_EQ(out.banksFailed, in.banksFailed);
    EXPECT_EQ(out.throttleEvents, in.throttleEvents);

    // And a re-serialization of what the CSV carries is identical.
    std::ostringstream again;
    writeCsv(again, reports);
    EXPECT_EQ(again.str(), os.str());
}

TEST(ReportIo, CsvParserRejectsMissingVersionLine)
{
    std::istringstream is("config,workload\nfoo,bar\n");
    try {
        readCsv(is);
        FAIL() << "unversioned CSV accepted";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line, 1u);
    }
}

TEST(ReportIo, CsvParserRejectsBadCellWithLineAndColumn)
{
    std::ostringstream os;
    writeCsv(os, {sample()});
    std::string text = os.str();
    auto pos = text.find("AlexNet,4,"); // steps cell of the data row
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::strlen("AlexNet,4,"), "AlexNet,banana,");
    std::istringstream is(text);
    try {
        readCsv(is);
        FAIL() << "non-numeric cell accepted";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line, 3u);
        EXPECT_EQ(e.field, "steps");
    }
}

TEST(ReportIo, CsvParserRejectsShortRow)
{
    std::ostringstream os;
    writeCsv(os, {sample()});
    std::string text = os.str();
    text.erase(text.rfind(','));     // drop last column + value
    text += "\n";
    std::istringstream is(text);
    EXPECT_THROW(readCsv(is), ParseError);
}
