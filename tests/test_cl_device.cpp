/**
 * @file
 * Unit tests for the platform-model devices (paper Fig. 5b).
 */

#include <gtest/gtest.h>

#include "cl/device.hh"

using hpim::cl::ComputeDevice;
using hpim::cl::DeviceKind;
using hpim::cl::deviceKindName;
using hpim::nn::OffloadClass;

TEST(ClDevice, FixedPimTopology)
{
    // All fixed-function PIMs in a bank form a compute unit; all
    // banks form one compute device; each unit is a PE.
    ComputeDevice fixed("fixed", DeviceKind::FixedPim, 32, 14);
    EXPECT_EQ(fixed.computeUnits(), 32u);
    EXPECT_EQ(fixed.pesPerUnit(), 14u);
    EXPECT_EQ(fixed.totalPes(), 448u);
}

TEST(ClDevice, ProgrPimTopology)
{
    // The programmable PIM is a compute device; each core is a PE.
    ComputeDevice progr("progr", DeviceKind::ProgrPim, 1, 4);
    EXPECT_EQ(progr.totalPes(), 4u);
}

TEST(ClDevice, FixedPimOnlyRunsFixedFunctionKernels)
{
    ComputeDevice fixed("fixed", DeviceKind::FixedPim, 32, 14);
    EXPECT_TRUE(fixed.supports(OffloadClass::FixedFunction));
    EXPECT_FALSE(fixed.supports(OffloadClass::Recursive));
    EXPECT_FALSE(fixed.supports(OffloadClass::ProgrammableOnly));
    EXPECT_FALSE(fixed.supports(OffloadClass::DataMovement));
}

TEST(ClDevice, ProgrammableDevicesRunEverything)
{
    ComputeDevice progr("progr", DeviceKind::ProgrPim, 1, 4);
    ComputeDevice host("host", DeviceKind::HostCpu, 1, 8);
    for (auto cls : {OffloadClass::FixedFunction,
                     OffloadClass::Recursive,
                     OffloadClass::ProgrammableOnly,
                     OffloadClass::DataMovement}) {
        EXPECT_TRUE(progr.supports(cls));
        EXPECT_TRUE(host.supports(cls));
    }
}

TEST(ClDevice, KindNames)
{
    EXPECT_EQ(deviceKindName(DeviceKind::HostCpu), "host-cpu");
    EXPECT_EQ(deviceKindName(DeviceKind::FixedPim), "fixed-pim");
    EXPECT_EQ(deviceKindName(DeviceKind::ProgrPim), "progr-pim");
}
