/**
 * @file
 * Unit tests for the DRAM energy model -- including the PIM-critical
 * property that in-stack accesses are cheaper than link crossings.
 */

#include <gtest/gtest.h>

#include "mem/dram_energy.hh"

using hpim::mem::BankCounters;
using hpim::mem::DramEnergyModel;
using hpim::mem::DramEnergyParams;

TEST(DramEnergy, InternalAccessCheaperThanLink)
{
    DramEnergyParams hmc = DramEnergyParams::hmc();
    // Array access vs array + SerDes: the PIM advantage.
    EXPECT_LT(hmc.readPerBytePj, hmc.linkPerBytePj);
}

TEST(DramEnergy, Ddr4CostlierPerByteThanHmcArray)
{
    EXPECT_GT(DramEnergyParams::ddr4().linkPerBytePj,
              DramEnergyParams::hmc().readPerBytePj);
}

TEST(DramEnergy, BankActivityAccumulates)
{
    DramEnergyModel model(DramEnergyParams::hmc());
    BankCounters counters;
    counters.activates = 10;
    counters.reads = 100;
    counters.writes = 50;
    model.addBankActivity(counters, 32);
    double expected_pj = 10 * 900.0 + 100 * 32 * 4.0 + 50 * 32 * 4.4;
    EXPECT_NEAR(model.arrayEnergyJ(), expected_pj * 1e-12, 1e-18);
}

TEST(DramEnergy, LinkTrafficAccumulates)
{
    DramEnergyModel model(DramEnergyParams::hmc());
    model.addLinkTraffic(1'000'000);
    EXPECT_NEAR(model.linkEnergyJ(), 1e6 * 30.0 * 1e-12, 1e-12);
}

TEST(DramEnergy, BackgroundEnergyIsPowerTimesTime)
{
    DramEnergyModel model(DramEnergyParams::hmc());
    model.addBackgroundTime(2.0);
    EXPECT_NEAR(model.backgroundEnergyJ(), 2.0 * 1.2, 1e-9);
}

TEST(DramEnergy, TotalSumsComponents)
{
    DramEnergyModel model(DramEnergyParams::hmc());
    BankCounters counters;
    counters.reads = 10;
    model.addBankActivity(counters, 32);
    model.addLinkTraffic(1000);
    model.addBackgroundTime(1.0);
    EXPECT_NEAR(model.totalEnergyJ(),
                model.arrayEnergyJ() + model.linkEnergyJ()
                    + model.backgroundEnergyJ(),
                1e-15);
}

TEST(DramEnergy, SameTrafficCheaperInsideStack)
{
    // One megabyte moved: PIM pays array only; host pays array+link.
    const double bytes = 1e6;
    DramEnergyParams p = DramEnergyParams::hmc();
    double internal_pj = bytes * p.readPerBytePj;
    double external_pj = bytes * (p.readPerBytePj + p.linkPerBytePj);
    EXPECT_LT(internal_pj, external_pj / 5.0);
}
