/**
 * @file
 * Unit + property tests for the address decomposer.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_mapping.hh"
#include "sim/rng.hh"

using hpim::mem::AddressMapping;
using hpim::mem::Addr;
using hpim::mem::DramCoord;
using hpim::mem::Interleave;

TEST(AddressMapping, CapacityIsProductOfGeometry)
{
    AddressMapping map(32, 8, 1024, 256, Interleave::RoBaVaCo);
    EXPECT_EQ(map.capacity(),
              32ULL * 8ULL * 1024ULL * 256ULL);
}

TEST(AddressMapping, AddressZeroMapsToOrigin)
{
    AddressMapping map(32, 8, 1024, 256, Interleave::RoBaVaCo);
    DramCoord c = map.decompose(0);
    EXPECT_EQ(c, (DramCoord{0, 0, 0, 0}));
}

TEST(AddressMapping, SequentialBytesStayInColumnFirst)
{
    AddressMapping map(32, 8, 1024, 256, Interleave::RoBaVaCo);
    DramCoord a = map.decompose(0);
    DramCoord b = map.decompose(255);
    EXPECT_EQ(a.vault, b.vault);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(b.column, 255u);
}

TEST(AddressMapping, RoBaVaCoStripesVaultsAtRowGranularity)
{
    AddressMapping map(32, 8, 1024, 256, Interleave::RoBaVaCo);
    // Crossing one row-size boundary changes the vault field first.
    DramCoord a = map.decompose(0);
    DramCoord b = map.decompose(256);
    EXPECT_EQ(b.vault, a.vault + 1);
    EXPECT_EQ(b.bank, a.bank);
    EXPECT_EQ(b.row, a.row);
}

TEST(AddressMapping, VaBaRoCoKeepsWholeRowsPerVault)
{
    AddressMapping map(32, 8, 1024, 256, Interleave::VaBaRoCo);
    // All rows of bank 0 come before the next bank/vault.
    DramCoord a = map.decompose(0);
    DramCoord b = map.decompose(256);
    EXPECT_EQ(a.vault, b.vault);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(b.row, a.row + 1);
}

TEST(AddressMapping, WrapsOverCapacity)
{
    AddressMapping map(4, 2, 16, 64, Interleave::RoBaVaCo);
    Addr cap = map.capacity();
    EXPECT_EQ(map.decompose(cap), map.decompose(0));
    EXPECT_EQ(map.decompose(cap + 123), map.decompose(123));
}

TEST(AddressMappingDeath, NonPowerOfTwoGeometryIsFatal)
{
    EXPECT_EXIT(AddressMapping(3, 8, 16, 64, Interleave::RoBaVaCo),
                testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(AddressMapping(4, 8, 16, 100, Interleave::RoBaVaCo),
                testing::ExitedWithCode(1), "power of two");
}

TEST(AddressMapping, InterleaveNames)
{
    EXPECT_EQ(hpim::mem::interleaveName(Interleave::RoBaVaCo),
              "RoBaVaCo");
    EXPECT_EQ(hpim::mem::interleaveName(Interleave::RoVaBaCo),
              "RoVaBaCo");
    EXPECT_EQ(hpim::mem::interleaveName(Interleave::VaBaRoCo),
              "VaBaRoCo");
}

// Property: decomposition is a bijection over one full capacity for
// every interleave order (sampled).
class MappingBijection : public testing::TestWithParam<Interleave>
{};

TEST_P(MappingBijection, CoordsAreUniquePerAddress)
{
    AddressMapping map(4, 4, 64, 64, GetParam());
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                        std::uint32_t>>
        seen;
    // Sample one address per 64 B column chunk over the capacity.
    for (Addr a = 0; a < map.capacity(); a += 64) {
        DramCoord c = map.decompose(a);
        EXPECT_LT(c.vault, 4u);
        EXPECT_LT(c.bank, 4u);
        EXPECT_LT(c.row, 64u);
        EXPECT_LT(c.column, 64u);
        auto key = std::make_tuple(c.vault, c.bank, c.row,
                                   c.column / 64);
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate coordinates for address " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(AllInterleaves, MappingBijection,
                         testing::Values(Interleave::RoBaVaCo,
                                         Interleave::RoVaBaCo,
                                         Interleave::VaBaRoCo));

// Property: a streaming access pattern spreads across all vaults for
// the vault-striping orders.
TEST(AddressMapping, StreamTouchesEveryVault)
{
    AddressMapping map(32, 8, 1024, 256, Interleave::RoBaVaCo);
    std::set<std::uint32_t> vaults;
    for (Addr a = 0; a < 32 * 256; a += 256)
        vaults.insert(map.decompose(a).vault);
    EXPECT_EQ(vaults.size(), 32u);
}
