/**
 * @file
 * Unit + property tests for the analytic op cost model -- the numbers
 * every scheduling and energy result rests on.
 */

#include <gtest/gtest.h>

#include "nn/op_cost.hh"

using namespace hpim::nn;

TEST(OpCost, Conv2dMacCount)
{
    // 1x8x8x4 input, 3x3 kernel, 16 out channels, stride 1:
    // macs = 8*8*16*3*3*4 = 36864.
    TensorShape input{1, 8, 8, 4};
    CostStructure c = conv2dCost(input, 3, 16, 1);
    EXPECT_DOUBLE_EQ(c.muls, 36864.0);
    EXPECT_DOUBLE_EQ(c.adds, 36864.0);
    EXPECT_DOUBLE_EQ(c.specials, 0.0);
    EXPECT_GT(c.bytesRead, input.bytes());
    EXPECT_DOUBLE_EQ(c.bytesWritten, 8.0 * 8 * 16 * 4);
}

TEST(OpCost, Conv2dStrideShrinksOutputWork)
{
    TensorShape input{1, 8, 8, 4};
    CostStructure s1 = conv2dCost(input, 3, 16, 1);
    CostStructure s2 = conv2dCost(input, 3, 16, 2);
    EXPECT_DOUBLE_EQ(s2.muls, s1.muls / 4.0);
}

TEST(OpCost, ConvBackpropsMirrorForwardMacs)
{
    TensorShape input{2, 16, 16, 8};
    CostStructure fwd = conv2dCost(input, 3, 32, 1);
    CostStructure dw = conv2dBackpropFilterCost(input, 3, 32, 1);
    CostStructure dx = conv2dBackpropInputCost(input, 3, 32, 1);
    EXPECT_DOUBLE_EQ(dw.muls, fwd.muls);
    EXPECT_DOUBLE_EQ(dx.muls, fwd.muls);
    // Complex ops carry control work the fixed units cannot run.
    EXPECT_GT(dw.specials, 0.0);
    EXPECT_GT(dx.specials, 0.0);
    // Filter grad reads activations + upstream grad.
    EXPECT_GT(dw.bytesRead, fwd.bytesRead);
    // Input grad writes a dL/dx the size of the input.
    EXPECT_DOUBLE_EQ(dx.bytesWritten, double(input.bytes()));
}

TEST(OpCost, MatMulDimensions)
{
    CostStructure c = matmulCost(32, 512, 1000);
    EXPECT_DOUBLE_EQ(c.muls, 32.0 * 512 * 1000);
    EXPECT_DOUBLE_EQ(c.bytesRead, (32.0 * 512 + 512.0 * 1000) * 4);
    EXPECT_DOUBLE_EQ(c.bytesWritten, 32.0 * 1000 * 4);
}

TEST(OpCost, ElementwiseKinds)
{
    TensorShape shape{128, 64};
    CostStructure mul = elementwiseCost(OpType::Mul, shape);
    EXPECT_DOUBLE_EQ(mul.muls, 8192.0);
    EXPECT_DOUBLE_EQ(mul.adds, 0.0);
    CostStructure add = elementwiseCost(OpType::Add, shape);
    EXPECT_DOUBLE_EQ(add.adds, 8192.0);
    EXPECT_DOUBLE_EQ(add.muls, 0.0);
}

TEST(OpCost, BiasAddGradIsReductionHeavy)
{
    TensorShape act{32, 56, 56, 256};
    CostStructure c = biasAddGradCost(act, 256);
    EXPECT_DOUBLE_EQ(c.adds, double(act.elems()));
    // Writes only the channel vector.
    EXPECT_DOUBLE_EQ(c.bytesWritten, 256.0 * 4);
    // Reads everything: extremely memory intensive (paper Table I).
    EXPECT_DOUBLE_EQ(c.bytesRead, double(act.bytes()));
    EXPECT_LT(c.intensity(), 0.5);
}

TEST(OpCost, ActivationsAreAllSpecial)
{
    TensorShape shape{4, 1000};
    CostStructure relu = activationCost(OpType::Relu, shape);
    EXPECT_DOUBLE_EQ(relu.muls + relu.adds, 0.0);
    EXPECT_DOUBLE_EQ(relu.specials, 4000.0);
    CostStructure tanh = activationCost(OpType::Tanh, shape);
    EXPECT_GT(tanh.specials, relu.specials); // exp-based is pricier
}

TEST(OpCost, PoolingWindowsScaleCompares)
{
    TensorShape input{1, 8, 8, 2};
    CostStructure p2 = poolCost(OpType::MaxPool, input, 2, 2);
    CostStructure p3 = poolCost(OpType::MaxPool, input, 3, 2);
    EXPECT_GT(p3.specials, p2.specials);
    CostStructure avg = poolCost(OpType::AvgPool, input, 2, 2);
    EXPECT_GT(avg.adds, 0.0); // averaging is mul/add-ish
}

TEST(OpCost, ApplyAdamPerParameterWork)
{
    CostStructure c = applyAdamCost(1000);
    EXPECT_DOUBLE_EQ(c.muls, 6000.0);
    EXPECT_DOUBLE_EQ(c.adds, 4000.0);
    EXPECT_DOUBLE_EQ(c.specials, 2000.0);
    // Reads and writes param + both moments.
    EXPECT_DOUBLE_EQ(c.bytesRead, 12000.0);
    EXPECT_DOUBLE_EQ(c.bytesWritten, 12000.0);
}

TEST(OpCost, LstmCellGradDoublesForward)
{
    CostStructure fwd = lstmCellCost(OpType::LstmCell, 20, 650, 650);
    CostStructure bwd =
        lstmCellCost(OpType::LstmCellGrad, 20, 650, 650);
    EXPECT_NEAR(bwd.flops(), 2.0 * fwd.flops(), 1.0);
}

TEST(OpCost, DataMovementHasNoFlops)
{
    CostStructure c = dataMovementCost(4096.0);
    EXPECT_DOUBLE_EQ(c.flops(), 0.0);
    EXPECT_DOUBLE_EQ(c.bytesRead, 4096.0);
    EXPECT_DOUBLE_EQ(c.bytesWritten, 4096.0);
}

TEST(OpCost, AccumulateAndScale)
{
    CostStructure a = matmulCost(2, 3, 4);
    CostStructure b = applyAdamCost(10);
    CostStructure sum = a;
    sum += b;
    EXPECT_DOUBLE_EQ(sum.muls, a.muls + b.muls);
    CostStructure half = sum.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.muls, sum.muls / 2.0);
    EXPECT_DOUBLE_EQ(half.bytesRead, sum.bytesRead / 2.0);
}

TEST(OpCost, IntensityDefinition)
{
    CostStructure c;
    c.muls = 100;
    c.adds = 100;
    c.bytesRead = 50;
    c.bytesWritten = 50;
    EXPECT_DOUBLE_EQ(c.intensity(), 2.0);
    CostStructure empty;
    EXPECT_DOUBLE_EQ(empty.intensity(), 0.0);
}

TEST(FixedParallelismModel, PaperElevenByElevenExample)
{
    // Paper SectionIII-C: an 11x11 conv lane occupies 121 multipliers
    // + 120 adders = 241 units.
    FixedParallelism p =
        fixedParallelism(OpType::Conv2D, 11 * 11, 1000.0);
    EXPECT_EQ(p.unitsPerLane, 241u);
    EXPECT_DOUBLE_EQ(p.lanes, 1000.0);
}

TEST(FixedParallelismModel, ElementwiseUsesSingleUnitLanes)
{
    FixedParallelism p = fixedParallelism(OpType::Mul, 1, 64.0);
    EXPECT_EQ(p.unitsPerLane, 1u);
    EXPECT_DOUBLE_EQ(p.maxUnits(), 64.0);
}

TEST(FixedParallelismModel, NonOffloadableOpsGetZero)
{
    FixedParallelism p = fixedParallelism(OpType::Relu, 9, 100.0);
    EXPECT_EQ(p.unitsPerLane, 0u);
    EXPECT_DOUBLE_EQ(p.maxUnits(), 0.0);
}

// Property: conv cost grows linearly in batch for every kernel size.
class ConvBatchLinearity : public testing::TestWithParam<std::int64_t>
{};

TEST_P(ConvBatchLinearity, MacsLinearInBatch)
{
    std::int64_t k = GetParam();
    TensorShape one{1, 16, 16, 8};
    TensorShape four{4, 16, 16, 8};
    CostStructure c1 = conv2dCost(one, k, 8, 1);
    CostStructure c4 = conv2dCost(four, k, 8, 1);
    EXPECT_DOUBLE_EQ(c4.muls, 4.0 * c1.muls);
    EXPECT_DOUBLE_EQ(c4.bytesWritten, 4.0 * c1.bytesWritten);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ConvBatchLinearity,
                         testing::Values(1, 3, 5, 7, 11));
