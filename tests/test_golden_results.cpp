/**
 * @file
 * Golden-result regression pins: the calibrated headline numbers of
 * EXPERIMENTS.md, with generous tolerances. When a model change moves
 * one of these, EXPERIMENTS.md must be regenerated and re-checked
 * against the paper -- that is the point of this file.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

using namespace hpim;
using baseline::runSystem;
using baseline::SystemKind;

namespace {

constexpr std::uint32_t kSteps = 4;

double
stepMs(SystemKind kind, nn::ModelId model, double freq = 1.0)
{
    return runSystem(kind, model, kSteps, freq).stepSec * 1e3;
}

} // namespace

TEST(Golden, Vgg19StepTimes)
{
    // EXPERIMENTS.md Fig. 8 row, +-20%.
    EXPECT_NEAR(stepMs(SystemKind::CpuOnly, nn::ModelId::Vgg19),
                21600.0, 4300.0);
    EXPECT_NEAR(stepMs(SystemKind::Gpu, nn::ModelId::Vgg19), 772.0,
                155.0);
    EXPECT_NEAR(stepMs(SystemKind::HeteroPim, nn::ModelId::Vgg19),
                1041.0, 210.0);
    EXPECT_NEAR(stepMs(SystemKind::FixedPimOnly, nn::ModelId::Vgg19),
                2048.0, 410.0);
}

TEST(Golden, HeadlineRatios)
{
    double hetero = stepMs(SystemKind::HeteroPim, nn::ModelId::Vgg19);
    EXPECT_NEAR(stepMs(SystemKind::CpuOnly, nn::ModelId::Vgg19)
                    / hetero,
                20.7, 4.0);
    EXPECT_NEAR(stepMs(SystemKind::ProgrPimOnly, nn::ModelId::Vgg19)
                    / hetero,
                20.3, 4.0);
}

TEST(Golden, ResNetGpuCrossover)
{
    double ratio = stepMs(SystemKind::Gpu, nn::ModelId::ResNet50)
                   / stepMs(SystemKind::HeteroPim,
                            nn::ModelId::ResNet50);
    EXPECT_NEAR(ratio, 1.44, 0.35);
    EXPECT_GT(ratio, 1.05); // hetero must stay ahead on ResNet-50
}

TEST(Golden, EnergyRatios)
{
    auto cpu = runSystem(SystemKind::CpuOnly, nn::ModelId::Vgg19,
                         kSteps);
    auto hetero = runSystem(SystemKind::HeteroPim, nn::ModelId::Vgg19,
                            kSteps);
    EXPECT_NEAR(cpu.energyPerStepJ / hetero.energyPerStepJ, 27.8,
                6.0);
    EXPECT_NEAR(hetero.averagePowerW, 50.0, 12.0);
}

TEST(Golden, FrequencyScalingLadder)
{
    double t1 = stepMs(SystemKind::HeteroPim, nn::ModelId::Vgg19, 1.0);
    double t2 = stepMs(SystemKind::HeteroPim, nn::ModelId::Vgg19, 2.0);
    double t4 = stepMs(SystemKind::HeteroPim, nn::ModelId::Vgg19, 4.0);
    EXPECT_NEAR(t1 / t2, 1.94, 0.4);
    EXPECT_NEAR(t2 / t4, 1.30, 0.3);
    // Diminishing returns: the 2x->4x gain must be smaller.
    EXPECT_LT(t2 / t4, t1 / t2);
}

TEST(Golden, UtilizationLadder)
{
    auto util = [](bool rc, bool op) {
        auto config = baseline::makeHetero(true, rc, op);
        config.steps = kSteps;
        rt::HeteroRuntime runtime(config);
        return runtime.train(nn::buildVgg19())
            .execution.fixedUtilization;
    };
    double none = util(false, false);
    double rc = util(true, false);
    double both = util(true, true);
    EXPECT_NEAR(none, 0.355, 0.08);
    EXPECT_NEAR(rc, 0.655, 0.10);
    EXPECT_NEAR(both, 0.815, 0.10);
    EXPECT_LT(none, rc);
    EXPECT_LT(rc, both);
}

TEST(Golden, PipelineDepthMonotonicity)
{
    // Deeper OP windows cannot hurt steady-state throughput.
    auto step_with_depth = [](std::uint32_t depth) {
        auto config = baseline::makeHetero(true, true, true);
        config.pipelineDepth = depth;
        config.steps = 6;
        rt::HeteroRuntime runtime(config);
        return runtime.train(nn::buildAlexNet()).execution.stepSec;
    };
    double d2 = step_with_depth(2);
    double d3 = step_with_depth(3);
    EXPECT_LE(d3, d2 * 1.02);
}
