/**
 * @file
 * Unit tests for the fixed-function and programmable PIM parameter
 * models.
 */

#include <gtest/gtest.h>

#include "pim/fixed_pim.hh"
#include "pim/progr_pim.hh"

using hpim::pim::FixedPimParams;
using hpim::pim::ProgrPimParams;
using hpim::pim::progrOpSeconds;

TEST(FixedPim, PaperBaselineConfiguration)
{
    FixedPimParams params;
    EXPECT_EQ(params.totalUnits, 444u); // paper SectionIV-D
    EXPECT_EQ(params.banks, 32u);
    EXPECT_DOUBLE_EQ(params.frequencyHz, 312.5e6); // HMC 2.0 clock
}

TEST(FixedPim, PoolThroughputIsUnitsTimesUnitRate)
{
    FixedPimParams params;
    EXPECT_NEAR(params.poolFlops(),
                params.unitFlops() * 444.0, 1.0);
    EXPECT_NEAR(params.unitFlops(),
                312.5e6 * params.vectorWidth, 1.0);
}

TEST(FixedPim, FrequencyScalingMultipliesClockAndPower)
{
    FixedPimParams params;
    double base_flops = params.poolFlops();
    double base_power = params.unitPowerW();
    params.frequencyScale = 4.0;
    EXPECT_NEAR(params.poolFlops(), 4.0 * base_flops, 1.0);
    // P ~ f^1.2: superlinear but below quadratic.
    EXPECT_GT(params.unitPowerW(), 4.0 * base_power);
    EXPECT_LT(params.unitPowerW(), 16.0 * base_power);
}

TEST(ProgrPim, DefaultIsFourCoreA9)
{
    ProgrPimParams params;
    EXPECT_EQ(params.cores, 4u);          // paper SectionIV-D
    EXPECT_DOUBLE_EQ(params.frequencyHz, 2.0e9);
    EXPECT_GT(params.flops(), 0.0);
    EXPECT_GT(params.specials(), 0.0);
}

TEST(ProgrPim, AggregateScalesWithCoresAndFrequency)
{
    ProgrPimParams params;
    double base = params.flops();
    params.cores = 8;
    EXPECT_NEAR(params.flops(), 2.0 * base, 1.0);
    params.frequencyScale = 2.0;
    EXPECT_NEAR(params.flops(), 4.0 * base, 1.0);
}

TEST(ProgrPim, RecursiveLaunchCheaperThanHostLaunch)
{
    // The whole point of RC: progr->fixed spawns avoid the host.
    ProgrPimParams params;
    EXPECT_LT(params.recursiveLaunchSec, params.launchOverheadSec);
}

TEST(ProgrPim, OpSecondsRoofline)
{
    ProgrPimParams params;
    hpim::nn::CostStructure compute;
    compute.muls = params.flops(); // exactly one second of flops
    EXPECT_NEAR(progrOpSeconds(params, compute, 1e30), 1.0, 1e-9);

    hpim::nn::CostStructure memory;
    memory.bytesRead = 2e9;
    EXPECT_NEAR(progrOpSeconds(params, memory, 1e9), 2.0, 1e-9);
}

TEST(ProgrPim, MemoryAndComputeOverlap)
{
    ProgrPimParams params;
    hpim::nn::CostStructure both;
    both.muls = params.flops();   // 1 s compute
    both.bytesRead = 0.5e9;       // 0.5 s at 1 GB/s
    EXPECT_NEAR(progrOpSeconds(params, both, 1e9), 1.0, 1e-9);
}
