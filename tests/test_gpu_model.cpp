/**
 * @file
 * Unit tests for the analytic GPU baseline.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hh"
#include "nn/models.hh"

using hpim::gpu::GpuModel;
using hpim::gpu::GpuParams;

TEST(GpuModel, StepTimeScalesInverselyWithUtilization)
{
    GpuModel gpu;
    auto graph = hpim::nn::buildAlexNet();
    auto low = gpu.runStep(graph, 0.25, 1e6);
    auto high = gpu.runStep(graph, 0.75, 1e6);
    EXPECT_GT(low.opSec, high.opSec);
}

TEST(GpuModel, LaunchOverheadScalesWithOpCount)
{
    GpuModel gpu;
    auto alex = hpim::nn::buildAlexNet();
    auto vgg = hpim::nn::buildVgg19();
    auto a = gpu.runStep(alex, 0.5, 1e6);
    auto v = gpu.runStep(vgg, 0.5, 1e6);
    EXPECT_NEAR(a.syncSec,
                alex.size() * gpu.params().launchOverheadSec, 1e-9);
    EXPECT_GT(v.syncSec, a.syncSec);
}

TEST(GpuModel, UnhiddenTransferFollowsOverlapFactor)
{
    GpuParams params;
    params.transferOverlap = 0.5;
    GpuModel gpu(params);
    auto graph = hpim::nn::buildDcgan();
    double input = 1e9;
    auto rep = gpu.runStep(graph, 0.5, input);
    EXPECT_GE(rep.dataMovementSec,
              0.5 * input / params.pcieBandwidth - 1e-9);
}

TEST(GpuModel, WorkingSetSpillsAddPcieTraffic)
{
    GpuParams tiny;
    tiny.memCapacityBytes = 1e6; // force spills
    GpuModel small(tiny);
    GpuModel big;
    auto graph = hpim::nn::buildAlexNet();
    auto spill = small.runStep(graph, 0.5, 1e6);
    auto fits = big.runStep(graph, 0.5, 1e6);
    EXPECT_GT(spill.dataMovementSec, fits.dataMovementSec);
}

TEST(GpuModel, ResNetBatch128SpillsElevenGigabytes)
{
    // The root cause of Hetero PIM beating the GPU on ResNet-50
    // (paper SectionVI-A): its working set exceeds 11 GB GDDR5X.
    auto resnet = hpim::nn::buildResNet50();
    EXPECT_GT(GpuModel::workingSetBytes(resnet), 11e9);
    auto vgg = hpim::nn::buildVgg19();
    EXPECT_LT(GpuModel::workingSetBytes(vgg), 11e9);
}

TEST(GpuModel, EnergyIsPowerTimesTime)
{
    GpuModel gpu;
    auto graph = hpim::nn::buildDcgan();
    auto rep = gpu.runStep(graph, 0.5, 1e6);
    EXPECT_NEAR(rep.energyJ, rep.powerW * rep.totalSec(), 1e-9);
    EXPECT_NEAR(rep.powerW,
                gpu.params().dynamicPowerW + gpu.params().hostPowerW,
                1e-9);
}

TEST(GpuModelDeath, BadUtilizationIsFatal)
{
    GpuModel gpu;
    auto graph = hpim::nn::buildDcgan();
    EXPECT_EXIT(gpu.runStep(graph, 0.0, 0.0),
                testing::ExitedWithCode(1), "utilization");
    EXPECT_EXIT(gpu.runStep(graph, 1.5, 0.0),
                testing::ExitedWithCode(1), "utilization");
}
