/**
 * @file
 * Unit tests for OpenCL-C kernel source generation.
 */

#include <gtest/gtest.h>

#include "cl/codegen.hh"

using namespace hpim::cl;
using hpim::nn::OpType;

TEST(Codegen, FixedFunctionOpGetsExtractedSubKernel)
{
    auto set = generateKernelSources(OpType::MatMul);
    EXPECT_TRUE(validateKernelSource(set.full.source));
    ASSERT_EQ(set.fixedSubKernels.size(), 1u);
    EXPECT_TRUE(validateKernelSource(set.fixedSubKernels[0].source));
    // The sub-kernel is a pure multiply/accumulate loop.
    EXPECT_NE(set.fixedSubKernels[0].source.find("+="),
              std::string::npos);
    EXPECT_EQ(set.fixedSubKernels[0].source.find("hpim_special"),
              std::string::npos);
}

TEST(Codegen, RecursiveOpProgrKernelLaunchesFixedSub)
{
    auto set = generateKernelSources(OpType::Conv2DBackpropFilter);
    EXPECT_TRUE(validateKernelSource(set.progrKernel.source));
    // The rewritten kernel calls into the fixed-function PIMs
    // (paper Fig. 6) and synchronizes.
    EXPECT_NE(set.progrKernel.source.find("hpim_launch_fixed"),
              std::string::npos);
    EXPECT_NE(set.progrKernel.source.find("hpim_wait_fixed"),
              std::string::npos);
    // Phases 1 and 2 stay in the programmable kernel.
    EXPECT_NE(set.progrKernel.source.find("phase 1"),
              std::string::npos);
    EXPECT_NE(set.progrKernel.source.find("phase 2"),
              std::string::npos);
}

TEST(Codegen, ProgrammableOnlyOpHasNothingToExtract)
{
    auto set = generateKernelSources(OpType::MaxPool);
    EXPECT_TRUE(set.fixedSubKernels.empty());
    // The progr kernel IS the full kernel.
    EXPECT_EQ(set.progrKernel.source, set.full.source);
    EXPECT_EQ(set.full.source.find("hpim_launch_fixed"),
              std::string::npos);
}

TEST(Codegen, KernelNamesFollowOpNames)
{
    auto set = generateKernelSources(OpType::Conv2D);
    EXPECT_EQ(set.full.name, "Conv2D");
    EXPECT_EQ(set.fixedSubKernels[0].name, "Conv2D_fixed_sub");
    EXPECT_EQ(set.progrKernel.name, "Conv2D_progr");
}

TEST(Codegen, ExtensionHeaderDeclaresIntrinsics)
{
    std::string header = extensionHeader();
    for (const char *symbol :
         {"hpim_launch_fixed", "hpim_wait_fixed", "hpim_barrier_all",
          "hpim_lock_global", "hpim_unlock_global"}) {
        EXPECT_NE(header.find(symbol), std::string::npos) << symbol;
    }
}

TEST(Codegen, ValidatorCatchesBrokenSource)
{
    EXPECT_FALSE(validateKernelSource("__kernel void f() {"));
    EXPECT_FALSE(validateKernelSource("void f() {}"));
    EXPECT_FALSE(validateKernelSource("__kernel void f() { $X }"));
    EXPECT_FALSE(validateKernelSource(")("));
    EXPECT_TRUE(validateKernelSource("__kernel void f() {}"));
}

// Property: every op type generates structurally valid source for
// every unit in its set.
class CodegenSweep : public testing::TestWithParam<int>
{};

TEST_P(CodegenSweep, AllSourcesValidate)
{
    auto type = static_cast<OpType>(GetParam());
    auto set = generateKernelSources(type);
    EXPECT_TRUE(validateKernelSource(set.full.source))
        << hpim::nn::opName(type);
    EXPECT_TRUE(validateKernelSource(set.progrKernel.source))
        << hpim::nn::opName(type);
    for (const auto &sub : set.fixedSubKernels) {
        EXPECT_TRUE(validateKernelSource(sub.source))
            << hpim::nn::opName(type);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpTypes, CodegenSweep,
    testing::Range(0, static_cast<int>(hpim::nn::numOpTypes)));
