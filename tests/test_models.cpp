/**
 * @file
 * Tests of the seven workload models against the paper's structural
 * facts: batch sizes (SectionV-C), op invocation counts (Table I),
 * and relative model sizes.
 */

#include <gtest/gtest.h>

#include "nn/models.hh"

using namespace hpim::nn;

TEST(Models, PaperBatchSizes)
{
    // SectionV-C: 32/32/64/128/32/20/128.
    EXPECT_EQ(defaultBatchSize(ModelId::Vgg19), 32);
    EXPECT_EQ(defaultBatchSize(ModelId::AlexNet), 32);
    EXPECT_EQ(defaultBatchSize(ModelId::Dcgan), 64);
    EXPECT_EQ(defaultBatchSize(ModelId::ResNet50), 128);
    EXPECT_EQ(defaultBatchSize(ModelId::InceptionV3), 32);
    EXPECT_EQ(defaultBatchSize(ModelId::Lstm), 20);
    EXPECT_EQ(defaultBatchSize(ModelId::Word2vec), 128);
}

TEST(Models, NamesRoundTrip)
{
    EXPECT_EQ(modelName(ModelId::Vgg19), "VGG-19");
    EXPECT_EQ(modelName(ModelId::ResNet50), "ResNet-50");
    EXPECT_EQ(cnnModels().size(), 5u);
    EXPECT_EQ(allModels().size(), 7u);
}

TEST(Models, Vgg19MatchesTableOneInvocations)
{
    Graph g = buildVgg19();
    // Table I (VGG-19): Conv2DBackpropFilter x16,
    // Conv2DBackpropInput x15, Conv2D x16.
    EXPECT_EQ(g.countType(OpType::Conv2D), 16u);
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropFilter), 16u);
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropInput), 15u);
    // 16 conv + 3 fc bias grads = 19.
    EXPECT_EQ(g.countType(OpType::BiasAddGrad), 19u);
    EXPECT_EQ(g.countType(OpType::MaxPool), 5u);
    EXPECT_EQ(g.countType(OpType::MaxPoolGrad), 5u);
    // Relu on every conv and the two hidden fc layers.
    EXPECT_EQ(g.countType(OpType::Relu), 18u);
}

TEST(Models, AlexNetMatchesTableOneInvocations)
{
    Graph g = buildAlexNet();
    // Table I (AlexNet): 5 convs, filter grads x5, input grads x4,
    // MatMul x3 forward (+ grads).
    EXPECT_EQ(g.countType(OpType::Conv2D), 5u);
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropFilter), 5u);
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropInput), 4u);
    EXPECT_EQ(g.countType(OpType::MatMul), 3u);
    EXPECT_EQ(g.countType(OpType::MatMulGradWeights), 3u);
}

TEST(Models, DcganContainsForwardDeconvAndManyMuls)
{
    Graph g = buildDcgan();
    // Generator deconvs lower to Conv2DBackpropInput in the forward
    // pass; the GAN loss sprays Mul ops (Table I: Mul x84).
    EXPECT_GE(g.countType(OpType::Conv2DBackpropInput), 3u);
    EXPECT_GE(g.countType(OpType::Mul), 60u);
    EXPECT_GE(g.countType(OpType::Slice), 2u);
}

TEST(Models, RelativeComputeOrdering)
{
    double vgg = buildVgg19().totalCost().flops();
    double alex = buildAlexNet().totalCost().flops();
    double dcgan = buildDcgan().totalCost().flops();
    double resnet = buildResNet50().totalCost().flops();
    // VGG-19 is the heaviest per-image CNN; DCGAN is tiny.
    EXPECT_GT(vgg, alex);
    EXPECT_GT(alex, dcgan);
    EXPECT_GT(resnet, alex); // batch 128 makes ResNet heavy in total
}

TEST(Models, BatchScalesCost)
{
    double b32 = buildVgg19(32).totalCost().flops();
    double b8 = buildVgg19(8).totalCost().flops();
    EXPECT_NEAR(b32 / b8, 4.0, 0.1);
}

TEST(Models, LstmHasRecurrentStructure)
{
    Graph g = buildLstm();
    // 2 layers x 35 timesteps.
    EXPECT_EQ(g.countType(OpType::LstmCell), 70u);
    EXPECT_EQ(g.countType(OpType::LstmCellGrad), 70u);
    EXPECT_GE(g.countType(OpType::EmbeddingLookup), 1u);
    // BPTT forces a long critical path.
    EXPECT_GT(g.criticalPathLength(), 140u);
}

TEST(Models, Word2vecIsSmallAndEmbeddingHeavy)
{
    Graph g = buildWord2vec();
    EXPECT_LT(g.size(), 16u);
    EXPECT_EQ(g.countType(OpType::EmbeddingLookup), 2u);
    EXPECT_EQ(g.countType(OpType::NceLoss), 1u);
    EXPECT_EQ(g.countType(OpType::EmbeddingGrad), 2u);
}

TEST(Models, BuildModelDispatchesAllIds)
{
    for (ModelId id : allModels()) {
        Graph g = buildModel(id);
        EXPECT_GT(g.size(), 0u) << modelName(id);
        EXPECT_GT(g.totalCost().flops() + g.totalCost().specials, 0.0);
    }
}

// Property: every model graph is executable to completion (acyclic,
// no dangling dependences).
class ModelGraphSweep : public testing::TestWithParam<ModelId>
{};

TEST_P(ModelGraphSweep, GraphDrainsCompletely)
{
    Graph g = buildModel(GetParam());
    std::vector<bool> done(g.size(), false);
    std::size_t completed = 0;
    while (completed < g.size()) {
        auto ready = g.readyOps(done);
        ASSERT_FALSE(ready.empty())
            << modelName(GetParam()) << " deadlocked at "
            << completed << "/" << g.size();
        for (auto id : ready) {
            done[id] = true;
            ++completed;
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelGraphSweep,
                         testing::ValuesIn(allModels()),
                         [](const auto &info) {
                             std::string name =
                                 modelName(info.param);
                             for (char &ch : name) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(
                                             ch)))
                                     ch = '_';
                             }
                             return name;
                         });
