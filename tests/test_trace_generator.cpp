/**
 * @file
 * Unit tests for the synthetic (Pin-substitute) trace generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "cpu/trace_generator.hh"

using hpim::cpu::AccessPattern;
using hpim::cpu::accessPattern;
using hpim::cpu::TraceConfig;
using hpim::cpu::TraceGenerator;
using hpim::mem::AccessType;
using hpim::nn::CostStructure;
using hpim::nn::OpType;

namespace {

CostStructure
trafficOf(double read_bytes, double write_bytes)
{
    CostStructure c;
    c.bytesRead = read_bytes;
    c.bytesWritten = write_bytes;
    return c;
}

} // namespace

TEST(TracePatterns, OpTypesMapToExpectedPatterns)
{
    EXPECT_EQ(accessPattern(OpType::Conv2D), AccessPattern::Strided);
    EXPECT_EQ(accessPattern(OpType::MatMul), AccessPattern::Strided);
    EXPECT_EQ(accessPattern(OpType::Relu), AccessPattern::Streaming);
    EXPECT_EQ(accessPattern(OpType::BiasAdd), AccessPattern::Streaming);
    EXPECT_EQ(accessPattern(OpType::EmbeddingLookup),
              AccessPattern::Random);
    EXPECT_EQ(accessPattern(OpType::Dropout), AccessPattern::Random);
}

TEST(TraceGenerator, EmitsOneRequestPerLine)
{
    TraceGenerator gen;
    auto reqs = gen.generate(OpType::Relu, trafficOf(64.0 * 100, 0));
    EXPECT_EQ(reqs.size(), 100u);
    EXPECT_DOUBLE_EQ(gen.scale(), 1.0);
}

TEST(TraceGenerator, SamplesLargeOps)
{
    TraceConfig config;
    config.maxRequests = 1000;
    TraceGenerator gen(config);
    auto reqs = gen.generate(OpType::Relu,
                             trafficOf(64.0 * 10000, 0));
    EXPECT_EQ(reqs.size(), 1000u);
    EXPECT_DOUBLE_EQ(gen.scale(), 10.0);
}

TEST(TraceGenerator, StreamingIsUnitStride)
{
    TraceGenerator gen;
    auto reqs = gen.generate(OpType::BiasAdd,
                             trafficOf(64.0 * 50, 0), 0x1000);
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(reqs[i].addr, 0x1000u + i * 64);
}

TEST(TraceGenerator, WriteFractionFollowsCost)
{
    TraceGenerator gen;
    auto reqs =
        gen.generate(OpType::Relu, trafficOf(64.0 * 5000, 64.0 * 5000));
    int writes = 0;
    for (const auto &req : reqs)
        writes += req.type == AccessType::Write ? 1 : 0;
    EXPECT_NEAR(writes / double(reqs.size()), 0.5, 0.05);
}

TEST(TraceGenerator, RandomPatternCoversRegion)
{
    TraceGenerator gen;
    auto reqs = gen.generate(OpType::EmbeddingLookup,
                             trafficOf(64.0 * 4096, 0));
    std::set<hpim::mem::Addr> unique;
    for (const auto &req : reqs) {
        EXPECT_EQ(req.addr % 64, 0u);
        unique.insert(req.addr);
    }
    // Random gather revisits some lines but covers many.
    EXPECT_GT(unique.size(), reqs.size() / 3);
}

TEST(TraceGenerator, StridedPatternJumpsBetweenTiles)
{
    TraceGenerator gen;
    auto reqs = gen.generate(OpType::MatMul,
                             trafficOf(64.0 * 8192, 0));
    int jumps = 0;
    for (std::size_t i = 1; i < reqs.size(); ++i) {
        if (reqs[i].addr != reqs[i - 1].addr + 64)
            ++jumps;
    }
    EXPECT_GT(jumps, 4);
}

TEST(TraceGenerator, RequestIdsAreUniqueAcrossCalls)
{
    TraceGenerator gen;
    auto a = gen.generate(OpType::Relu, trafficOf(64.0 * 10, 0));
    auto b = gen.generate(OpType::Relu, trafficOf(64.0 * 10, 0));
    std::set<std::uint64_t> ids;
    for (const auto &req : a)
        ids.insert(req.id);
    for (const auto &req : b)
        ids.insert(req.id);
    EXPECT_EQ(ids.size(), 20u);
}

TEST(TraceGenerator, TinyOpStillEmitsOneRequest)
{
    TraceGenerator gen;
    auto reqs = gen.generate(OpType::Relu, trafficOf(4.0, 0));
    EXPECT_EQ(reqs.size(), 1u);
}
