/**
 * @file
 * Unit tests for the analytic host-CPU model.
 */

#include <gtest/gtest.h>

#include "cpu/cpu_model.hh"

using hpim::cpu::CpuModel;
using hpim::cpu::CpuParams;
using hpim::nn::CostStructure;

namespace {

CostStructure
computeBound()
{
    CostStructure c;
    c.muls = 1e12;
    c.adds = 1e12;
    c.bytesRead = 1e6;
    return c;
}

CostStructure
memoryBound()
{
    CostStructure c;
    c.adds = 1e6;
    c.bytesRead = 10e9;
    c.bytesWritten = 10e9;
    return c;
}

} // namespace

TEST(CpuModel, ComputeBoundOpTimeMatchesThroughput)
{
    CpuModel cpu;
    auto t = cpu.opTiming(computeBound());
    EXPECT_NEAR(t.computeSec, 2e12 / cpu.params().flopsPerSec, 1e-6);
    EXPECT_GT(t.computeSec, t.memorySec);
    EXPECT_DOUBLE_EQ(t.exposedMemorySec(), 0.0);
}

TEST(CpuModel, MemoryBoundOpExposesStalls)
{
    CpuModel cpu;
    auto t = cpu.opTiming(memoryBound());
    EXPECT_GT(t.memorySec, t.computeSec);
    EXPECT_NEAR(t.memorySec, 20e9 / cpu.params().memBandwidth, 1e-6);
    EXPECT_GT(t.exposedMemorySec(), 0.0);
}

TEST(CpuModel, TotalIsMaxPlusOverhead)
{
    CpuModel cpu;
    auto t = cpu.opTiming(memoryBound());
    EXPECT_NEAR(t.totalSec(),
                t.memorySec + cpu.params().opOverheadSec, 1e-12);
}

TEST(CpuModel, SpecialsUseSeparateThroughput)
{
    CpuModel cpu;
    CostStructure c;
    c.specials = 1e9;
    auto t = cpu.opTiming(c);
    EXPECT_NEAR(t.computeSec, 1e9 / cpu.params().specialsPerSec, 1e-9);
}

TEST(CpuModel, EmptyOpCostsOnlyOverhead)
{
    CpuModel cpu;
    CostStructure c;
    EXPECT_NEAR(cpu.opSeconds(c), cpu.params().opOverheadSec, 1e-12);
}

TEST(CpuModel, MainMemoryAccessesAreLines)
{
    CpuModel cpu;
    CostStructure c;
    c.bytesRead = 6400;
    EXPECT_DOUBLE_EQ(cpu.mainMemoryAccesses(c), 100.0);
}

TEST(CpuModel, BandwidthSwapModelsPimSystemHost)
{
    CpuModel cpu;
    double ddr4_time = cpu.opTiming(memoryBound()).memorySec;
    cpu.setMemBandwidth(120e9); // stack links
    double link_time = cpu.opTiming(memoryBound()).memorySec;
    EXPECT_LT(link_time, ddr4_time);
}

TEST(CpuModel, CustomParamsRespected)
{
    CpuParams params;
    params.flopsPerSec = 1e9;
    params.opOverheadSec = 0.0;
    CpuModel cpu(params);
    CostStructure c;
    c.muls = 1e9;
    EXPECT_NEAR(cpu.opSeconds(c), 1.0, 1e-9);
}
