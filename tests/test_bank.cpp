/**
 * @file
 * Unit tests for the DRAM bank row-buffer state machine.
 */

#include <gtest/gtest.h>

#include "mem/bank.hh"

using hpim::mem::AccessType;
using hpim::mem::Bank;
using hpim::mem::DramTiming;
using hpim::mem::hmc2Timing;
using hpim::sim::Tick;

namespace {

DramTiming
timing()
{
    return hmc2Timing();
}

} // namespace

TEST(Bank, FirstAccessIsRowMiss)
{
    Bank bank(timing());
    Tick done = bank.access(5, AccessType::Read, 0);
    EXPECT_EQ(bank.counters().rowMisses, 1u);
    EXPECT_EQ(bank.counters().activates, 1u);
    EXPECT_EQ(bank.counters().reads, 1u);
    EXPECT_TRUE(bank.rowOpen());
    EXPECT_EQ(bank.openRow(), 5u);
    // Closed-row latency: tRCD + tCL + tBurst cycles.
    EXPECT_EQ(done, timing().rowClosedLatency());
}

TEST(Bank, SecondAccessSameRowIsHit)
{
    Bank bank(timing());
    Tick first = bank.access(5, AccessType::Read, 0);
    Tick second = bank.access(5, AccessType::Read, first);
    EXPECT_EQ(bank.counters().rowHits, 1u);
    EXPECT_GT(second, first);
    // A hit needs only CAS + burst from its issue point.
    EXPECT_LE(second - first, timing().rowHitLatency());
}

TEST(Bank, DifferentRowIsConflict)
{
    Bank bank(timing());
    Tick first = bank.access(5, AccessType::Read, 0);
    Tick second = bank.access(9, AccessType::Read, first);
    EXPECT_EQ(bank.counters().rowConflicts, 1u);
    EXPECT_EQ(bank.counters().precharges, 1u);
    EXPECT_EQ(bank.counters().activates, 2u);
    EXPECT_EQ(bank.openRow(), 9u);
    // Conflict costs at least PRE + ACT + CAS from issue.
    EXPECT_GE(second - first,
              static_cast<Tick>(timing().tRCD + timing().tCL)
                  * timing().tCK);
}

TEST(Bank, ConflictRespectsTRas)
{
    Bank bank(timing());
    // Immediately conflicting: the precharge must wait for tRAS.
    bank.access(1, AccessType::Read, 0);
    Tick done = bank.access(2, AccessType::Read, 0);
    Tick t_ras_bound = static_cast<Tick>(timing().tRAS + timing().tRP
                                         + timing().tRCD + timing().tCL
                                         + timing().tBurst)
                       * timing().tCK;
    EXPECT_GE(done, t_ras_bound);
}

TEST(Bank, WritesTrackWriteRecovery)
{
    Bank bank(timing());
    Tick w = bank.access(3, AccessType::Write, 0);
    EXPECT_EQ(bank.counters().writes, 1u);
    // Conflict after a write also pays tWR before precharge.
    Tick r = bank.access(4, AccessType::Read, w);
    EXPECT_GE(r - w, static_cast<Tick>(timing().tWR + timing().tRP)
                         * timing().tCK);
}

TEST(Bank, ExplicitPrechargeClosesRow)
{
    Bank bank(timing());
    bank.access(5, AccessType::Read, 0);
    bank.precharge(1'000'000);
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_EQ(bank.counters().precharges, 1u);
    // Next access to the same row is a miss, not a hit.
    bank.access(5, AccessType::Read, 2'000'000);
    EXPECT_EQ(bank.counters().rowMisses, 2u);
}

TEST(Bank, PrechargeOnClosedBankIsNoop)
{
    Bank bank(timing());
    bank.precharge(0);
    EXPECT_EQ(bank.counters().precharges, 0u);
}

TEST(Bank, ColumnCommandsSpacedByTccd)
{
    Bank bank(timing());
    Tick a = bank.access(1, AccessType::Read, 0);
    Tick b = bank.access(1, AccessType::Read, 0);
    // Issued back to back, data completes at least tCCD apart.
    EXPECT_GE(b - a, 0u);
    EXPECT_GE(b, static_cast<Tick>(timing().tCCD) * timing().tCK);
}

TEST(Bank, StreamOfHitsSustainsPeakBandwidth)
{
    Bank bank(timing());
    Tick done = 0;
    const int bursts = 100;
    for (int i = 0; i < bursts; ++i)
        done = bank.access(7, AccessType::Read, 0);
    // 100 bursts; steady state one burstBytes transfer per tCCD.
    double seconds = hpim::sim::ticksToSeconds(done);
    double bw = bursts * double(timing().burstBytes) / seconds;
    EXPECT_GT(bw, 0.9 * timing().peakBankBandwidth());
}

TEST(Bank, RefreshClosesRowAndBlocksBank)
{
    Bank bank(timing());
    bank.access(5, AccessType::Read, 0);
    Tick refresh_at = 1'000'000;
    bank.refresh(refresh_at);
    EXPECT_FALSE(bank.rowOpen());
    EXPECT_EQ(bank.counters().refreshes, 1u);
    // The next access cannot activate before tRFC elapses.
    Tick done = bank.access(5, AccessType::Read, refresh_at);
    EXPECT_GE(done, refresh_at
                        + static_cast<Tick>(timing().tRFC)
                              * timing().tCK);
}
