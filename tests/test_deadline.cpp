/**
 * @file
 * sim::Deadline / DeadlineScope / checkDeadline unit tests plus the
 * integration contract: an expired deadline unwinds a simulation at
 * a phase boundary with the typed DeadlineExceeded, and an aborted
 * run never poisons the memo cache.
 */

#include <gtest/gtest.h>

#include "serve/simulate.hh"
#include "sim/deadline.hh"
#include "sim/memo_cache.hh"

namespace {

using namespace hpim;

TEST(Deadline, NoDeadlineInstalledIsANoOp)
{
    EXPECT_EQ(sim::DeadlineScope::current(), nullptr);
    EXPECT_NO_THROW(sim::checkDeadline("anywhere"));
}

TEST(Deadline, ExpiredNowExpiresImmediately)
{
    sim::Deadline deadline = sim::Deadline::expiredNow();
    EXPECT_TRUE(deadline.expired());
    EXPECT_LE(deadline.remainingMs(), 0.0);
    EXPECT_EQ(deadline.budgetMs(), 0.0);
}

TEST(Deadline, GenerousBudgetDoesNotExpire)
{
    sim::Deadline deadline = sim::Deadline::afterMs(60'000.0);
    EXPECT_FALSE(deadline.expired());
    EXPECT_GT(deadline.remainingMs(), 0.0);
    EXPECT_EQ(deadline.budgetMs(), 60'000.0);
}

TEST(Deadline, CheckThrowsTypedErrorNamingThePhase)
{
    sim::DeadlineScope scope(sim::Deadline::expiredNow());
    try {
        sim::checkDeadline("profile");
        FAIL() << "checkDeadline did not throw";
    } catch (const sim::DeadlineExceeded &e) {
        EXPECT_EQ(e.phase, "profile");
        EXPECT_EQ(e.budgetMs, 0.0);
        EXPECT_NE(std::string(e.what()).find("profile"),
                  std::string::npos);
    }
}

TEST(Deadline, ScopeInstallsAndRestores)
{
    EXPECT_EQ(sim::DeadlineScope::current(), nullptr);
    {
        sim::DeadlineScope scope(sim::Deadline::afterMs(60'000.0));
        ASSERT_NE(sim::DeadlineScope::current(), nullptr);
        EXPECT_NO_THROW(sim::checkDeadline("inside"));
    }
    EXPECT_EQ(sim::DeadlineScope::current(), nullptr);
    EXPECT_NO_THROW(sim::checkDeadline("after"));
}

TEST(Deadline, InnerScopeTightens)
{
    sim::DeadlineScope outer(sim::Deadline::afterMs(60'000.0));
    {
        sim::DeadlineScope inner(sim::Deadline::expiredNow());
        EXPECT_THROW(sim::checkDeadline("inner"),
                     sim::DeadlineExceeded);
    }
    // The outer (generous) deadline is back in force.
    EXPECT_NO_THROW(sim::checkDeadline("outer"));
}

TEST(Deadline, InnerScopeCannotLoosen)
{
    sim::DeadlineScope outer(sim::Deadline::expiredNow());
    sim::DeadlineScope inner(sim::Deadline::afterMs(60'000.0));
    // The tighter of the two applies: still expired.
    EXPECT_THROW(sim::checkDeadline("nested"),
                 sim::DeadlineExceeded);
}

TEST(Deadline, GlobalStopOverridesEverything)
{
    EXPECT_NO_THROW(sim::checkDeadline("before"));
    EXPECT_FALSE(sim::globalStopArmed());
    sim::armGlobalStop();
    EXPECT_TRUE(sim::globalStopArmed());
    // No per-thread deadline installed, yet every check throws.
    EXPECT_THROW(sim::checkDeadline("stopping"),
                 sim::DeadlineExceeded);
    sim::disarmGlobalStop();
    EXPECT_FALSE(sim::globalStopArmed());
    EXPECT_NO_THROW(sim::checkDeadline("after"));
}

TEST(Deadline, SimulationUnwindsAndDoesNotPoisonMemoCache)
{
    serve::SimulateSpec spec;
    spec.model = "alexnet";
    spec.system = "hetero";
    spec.steps = 3;

    {
        sim::DeadlineScope scope(sim::Deadline::expiredNow());
        EXPECT_THROW(serve::runSimulate(spec),
                     sim::DeadlineExceeded);
    }

    // The aborted run must not have published a partial result: the
    // same spec now runs to completion and matches a fresh run.
    rt::ExecutionReport first = serve::runSimulate(spec);
    rt::ExecutionReport second = serve::runSimulate(spec);
    EXPECT_EQ(first.stepSec, second.stepSec);
    EXPECT_EQ(first.energyPerStepJ, second.energyPerStepJ);
    EXPECT_GT(first.stepSec, 0.0);
}

TEST(Deadline, TinyBudgetAbortsALongSimulation)
{
    serve::SimulateSpec spec;
    spec.model = "vgg19";
    spec.system = "hetero";
    spec.steps = 93; // unique steps: never memoized by other tests

    sim::DeadlineScope scope(sim::Deadline::afterMs(0.001));
    EXPECT_THROW(serve::runSimulate(spec), sim::DeadlineExceeded);
}

} // namespace
