/**
 * @file
 * Unit tests for the step-1 profiler (paper SectionIII-C step 1).
 */

#include <gtest/gtest.h>

#include "cpu/cpu_model.hh"
#include "nn/models.hh"
#include "rt/profiler.hh"

using namespace hpim;
using rt::Profiler;

namespace {

Profiler
profiler()
{
    return Profiler(cpu::CpuModel{});
}

} // namespace

TEST(Profiler, PerOpEntriesMatchGraph)
{
    auto graph = nn::buildAlexNet();
    auto report = profiler().profile(graph);
    EXPECT_EQ(report.ops.size(), graph.size());
    for (const auto &op : report.ops) {
        EXPECT_GT(op.timeSec, 0.0);
        EXPECT_GE(op.mainMemoryAccesses, 0.0);
    }
}

TEST(Profiler, TotalsAreSums)
{
    auto graph = nn::buildDcgan();
    auto report = profiler().profile(graph);
    double time = 0.0, accesses = 0.0;
    for (const auto &op : report.ops) {
        time += op.timeSec;
        accesses += op.mainMemoryAccesses;
    }
    EXPECT_NEAR(report.totalTimeSec, time, 1e-9);
    EXPECT_NEAR(report.totalAccesses, accesses, 1e-3);
}

TEST(Profiler, TypeAggregationCountsInvocations)
{
    auto graph = nn::buildVgg19();
    auto report = profiler().profile(graph);
    for (const auto &t : report.byType) {
        EXPECT_EQ(t.invocations, graph.countType(t.type))
            << nn::opName(t.type);
    }
}

TEST(Profiler, PercentagesSumToHundred)
{
    auto graph = nn::buildVgg19();
    auto report = profiler().profile(graph);
    double time_pct = 0.0, access_pct = 0.0;
    for (const auto &t : report.byType) {
        time_pct += t.timePct;
        access_pct += t.accessPct;
    }
    EXPECT_NEAR(time_pct, 100.0, 1e-6);
    EXPECT_NEAR(access_pct, 100.0, 1e-6);
}

TEST(Profiler, TopByTimeIsSortedDescending)
{
    auto report = profiler().profile(nn::buildVgg19());
    auto sorted = report.topByTime();
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_GE(sorted[i - 1].timeSec, sorted[i].timeSec);
    auto by_access = report.topByAccesses();
    for (std::size_t i = 1; i < by_access.size(); ++i)
        EXPECT_GE(by_access[i - 1].accesses, by_access[i].accesses);
}

TEST(Profiler, Vgg19TopOpsMatchPaperTableOne)
{
    // Paper Table I: the top-5 CI ops of VGG-19 consume over 95% of
    // step time, led by Conv2DBackpropFilter and Conv2DBackpropInput.
    auto report = profiler().profile(nn::buildVgg19());
    auto top = report.topByTime();
    ASSERT_GE(top.size(), 5u);
    EXPECT_EQ(top[0].type, nn::OpType::Conv2DBackpropFilter);
    EXPECT_EQ(top[1].type, nn::OpType::Conv2DBackpropInput);
    double top5 = 0.0;
    for (int i = 0; i < 5; ++i)
        top5 += top[static_cast<std::size_t>(i)].timePct;
    EXPECT_GT(top5, 90.0);
}

TEST(Profiler, TopFiveMemoryOpsDominateTraffic)
{
    // Paper: top-5 MI ops contribute over 98% of main-memory
    // accesses. Our compulsory-traffic cost model spreads activation
    // traffic more evenly (see EXPERIMENTS.md), so we assert a clear
    // majority rather than the paper's 98%.
    for (auto model : {nn::ModelId::Vgg19, nn::ModelId::AlexNet}) {
        auto report = profiler().profile(nn::buildModel(model));
        auto top = report.topByAccesses();
        double top5 = 0.0;
        for (std::size_t i = 0; i < 5 && i < top.size(); ++i)
            top5 += top[i].accessPct;
        EXPECT_GT(top5, 60.0) << nn::modelName(model);
    }
}

TEST(Profiler, EmptyGraphYieldsEmptyReport)
{
    nn::Graph empty("empty");
    auto report = profiler().profile(empty);
    EXPECT_TRUE(report.ops.empty());
    EXPECT_DOUBLE_EQ(report.totalTimeSec, 0.0);
}
