/**
 * @file
 * Unit tests for the FR-FCFS vault controller.
 */

#include <gtest/gtest.h>

#include "mem/vault_controller.hh"
#include "obs/metrics.hh"

using hpim::mem::AccessType;
using hpim::mem::DramCoord;
using hpim::mem::hmc2Timing;
using hpim::mem::MemoryRequest;
using hpim::mem::SchedulingPolicy;
using hpim::mem::VaultController;

namespace {

MemoryRequest
makeReq(std::uint64_t id, AccessType type = AccessType::Read,
        hpim::sim::Tick arrival = 0)
{
    MemoryRequest req;
    req.id = id;
    req.bytes = 32;
    req.type = type;
    req.arrival = arrival;
    return req;
}

} // namespace

TEST(VaultController, DrainReturnsAllRequests)
{
    VaultController vault(hmc2Timing(), 8);
    for (std::uint64_t i = 0; i < 10; ++i)
        vault.enqueue(makeReq(i), DramCoord{0, 0, 0, 0});
    EXPECT_TRUE(vault.busy());
    auto done = vault.drain();
    EXPECT_EQ(done.size(), 10u);
    EXPECT_FALSE(vault.busy());
    EXPECT_EQ(vault.stats().requests, 10u);
}

TEST(VaultController, CompletionTimesMonotonic)
{
    VaultController vault(hmc2Timing(), 8);
    for (std::uint64_t i = 0; i < 32; ++i) {
        vault.enqueue(makeReq(i),
                      DramCoord{0, std::uint32_t(i % 4),
                                std::uint32_t(i % 3), 0});
    }
    auto done = vault.drain();
    for (std::size_t i = 1; i < done.size(); ++i)
        EXPECT_LE(done[i - 1].completion, done[i].completion);
}

TEST(VaultController, FrfcfsPrefersRowHits)
{
    VaultController vault(hmc2Timing(), 8,
                          SchedulingPolicy::FRFCFS, 8);
    // req0 opens row 1; req1 targets row 2 (conflict);
    // req2 targets row 1 (hit). FR-FCFS should service req2
    // before req1.
    vault.enqueue(makeReq(0), DramCoord{0, 0, 1, 0});
    vault.enqueue(makeReq(1), DramCoord{0, 0, 2, 0});
    vault.enqueue(makeReq(2), DramCoord{0, 0, 1, 0});
    auto done = vault.drain();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].id, 0u);
    EXPECT_EQ(done[1].id, 2u); // row hit reordered ahead
    EXPECT_EQ(done[2].id, 1u);
}

TEST(VaultController, FcfsKeepsArrivalOrder)
{
    VaultController vault(hmc2Timing(), 8, SchedulingPolicy::FCFS);
    vault.enqueue(makeReq(0), DramCoord{0, 0, 1, 0});
    vault.enqueue(makeReq(1), DramCoord{0, 0, 2, 0});
    vault.enqueue(makeReq(2), DramCoord{0, 0, 1, 0});
    auto done = vault.drain();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].id, 0u);
    EXPECT_EQ(done[1].id, 1u);
    EXPECT_EQ(done[2].id, 2u);
}

TEST(VaultController, FrfcfsBeatsFcfsOnConflictHeavyStream)
{
    auto run = [](SchedulingPolicy policy) {
        VaultController vault(hmc2Timing(), 8, policy, 8);
        // Alternate two rows: FCFS ping-pongs; FR-FCFS batches.
        for (std::uint64_t i = 0; i < 64; ++i) {
            vault.enqueue(makeReq(i),
                          DramCoord{0, 0, std::uint32_t(i % 2), 0});
        }
        auto done = vault.drain();
        return done.back().completion;
    };
    EXPECT_LT(run(SchedulingPolicy::FRFCFS),
              run(SchedulingPolicy::FCFS));
}

TEST(VaultController, MultiBurstRequestTakesLonger)
{
    VaultController small(hmc2Timing(), 8);
    MemoryRequest req = makeReq(0);
    req.bytes = 32;
    small.enqueue(req, DramCoord{0, 0, 0, 0});
    auto a = small.drain();

    VaultController big(hmc2Timing(), 8);
    req.bytes = 256; // 8 bursts
    big.enqueue(req, DramCoord{0, 0, 0, 0});
    auto b = big.drain();
    EXPECT_GT(b[0].completion, a[0].completion);
}

TEST(VaultController, ArrivalTimeDelaysService)
{
    VaultController vault(hmc2Timing(), 8);
    vault.enqueue(makeReq(0, AccessType::Read, 1'000'000),
                  DramCoord{0, 0, 0, 0});
    auto done = vault.drain();
    EXPECT_GE(done[0].completion, 1'000'000u);
}

TEST(VaultController, StatsTrackReadsAndWrites)
{
    VaultController vault(hmc2Timing(), 8);
    vault.enqueue(makeReq(0, AccessType::Read),
                  DramCoord{0, 0, 0, 0});
    vault.enqueue(makeReq(1, AccessType::Write),
                  DramCoord{0, 1, 0, 0});
    vault.drain();
    EXPECT_EQ(vault.stats().readBytes, 32u);
    EXPECT_EQ(vault.stats().writeBytes, 32u);
    EXPECT_GT(vault.stats().averageLatency(), 0.0);
}

TEST(VaultController, BankAccessorExposesCounters)
{
    VaultController vault(hmc2Timing(), 4);
    vault.enqueue(makeReq(0), DramCoord{0, 2, 7, 0});
    vault.drain();
    EXPECT_EQ(vault.bank(2).counters().activates, 1u);
    EXPECT_EQ(vault.bank(0).counters().activates, 0u);
    EXPECT_EQ(vault.bankCount(), 4u);
}

TEST(VaultControllerDeath, ZeroBanksIsFatal)
{
    EXPECT_EXIT(VaultController(hmc2Timing(), 0),
                testing::ExitedWithCode(1), "at least one bank");
}

TEST(VaultController, LongStreamsTriggerRefreshRounds)
{
    VaultController vault(hmc2Timing(), 8);
    // Spread arrivals over ~3 refresh intervals (tREFI = 1219 cycles
    // at 3200 ps = ~3.9 us).
    hpim::sim::Tick refi =
        hpim::sim::Tick(hmc2Timing().tREFI) * hmc2Timing().tCK;
    for (std::uint64_t i = 0; i < 12; ++i) {
        vault.enqueue(makeReq(i, AccessType::Read, i * refi / 4),
                      DramCoord{0, 0, std::uint32_t(i), 0});
    }
    vault.drain();
    EXPECT_GE(vault.stats().refreshRounds, 2u);
    EXPECT_EQ(vault.bank(0).counters().refreshes,
              vault.stats().refreshRounds);
}

TEST(VaultController, RefreshDelaysCollidingRequest)
{
    // A request arriving exactly at a refresh boundary pays tRFC.
    VaultController vault(hmc2Timing(), 8);
    hpim::sim::Tick refi =
        hpim::sim::Tick(hmc2Timing().tREFI) * hmc2Timing().tCK;
    vault.enqueue(makeReq(0, AccessType::Read, refi),
                  DramCoord{0, 0, 0, 0});
    auto done = vault.drain();
    EXPECT_GE(done[0].completion,
              refi + hpim::sim::Tick(hmc2Timing().tRFC)
                         * hmc2Timing().tCK);
}

TEST(VaultController, RequestArenaIsFlatInSteadyState)
{
    // The ring may grow while it learns the working-set size, but
    // repeated enqueue/drain cycles of the same depth must then run
    // allocation-free: capacity and grow-count stay put.
    VaultController vault(hmc2Timing(), 8);
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t i = 0; i < 64; ++i) {
            vault.enqueue(makeReq(i, AccessType::Read, i * 2),
                          DramCoord{0, std::uint32_t(i % 8),
                                    std::uint32_t(i % 5), 0});
        }
        vault.drain();
    }
    const std::size_t capacity = vault.queueCapacity();
    const std::uint64_t grows = vault.queueGrows();
    EXPECT_GE(capacity, 64u);
    for (int round = 0; round < 16; ++round) {
        for (std::uint64_t i = 0; i < 64; ++i) {
            vault.enqueue(makeReq(i, AccessType::Read, i * 2),
                          DramCoord{0, std::uint32_t(i % 8),
                                    std::uint32_t(i % 5), 0});
        }
        vault.drain();
    }
    EXPECT_EQ(vault.queueCapacity(), capacity);
    EXPECT_EQ(vault.queueGrows(), grows);
}

TEST(VaultController, ArenaGaugesReachMetricsRegistry)
{
    // The no-allocations-per-request acceptance check: drain() pushes
    // the arena counters into an attached obs::MetricsRegistry.
    hpim::obs::MetricsRegistry registry;
    registry.attach();
    VaultController vault(hmc2Timing(), 8);
    for (std::uint64_t i = 0; i < 8; ++i)
        vault.enqueue(makeReq(i), DramCoord{0, 0, 0, 0});
    vault.drain();
    registry.detach();
    EXPECT_GE(registry.gauge("mem.arena.capacity").value(), 8.0);
    EXPECT_EQ(registry.gauge("mem.arena.grows").value(),
              static_cast<double>(vault.queueGrows()));
}
