/**
 * @file
 * Unit tests of the harness::ThreadPool contract: results delivered
 * per-future in submission order, exceptions crossing from worker to
 * caller, graceful shutdown with work still queued, and the inline
 * (zero-thread) fallback.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/thread_pool.hh"

using hpim::harness::ThreadPool;

TEST(ThreadPool, ResultsMatchSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([i] {
            // Stagger durations so completion order differs from
            // submission order; the futures must not care.
            if (i % 7 == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            return i * i;
        }));
    }
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsTasksInFifoOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
    for (auto &future : futures)
        future.get();
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 42; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take its worker down with it.
    EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedWork)
{
    std::atomic<int> completed{0};
    std::vector<std::future<void>> futures;
    {
        // One worker, deep queue: most tasks are still queued when
        // the destructor runs; all must complete anyway.
        ThreadPool pool(1, 64);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&completed] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                completed.fetch_add(1);
            }));
        }
    }
    EXPECT_EQ(completed.load(), 32);
    for (auto &future : futures)
        EXPECT_NO_THROW(future.get());
}

TEST(ThreadPool, ZeroThreadsRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    std::thread::id caller = std::this_thread::get_id();
    auto future =
        pool.submit([] { return std::this_thread::get_id(); });
    // Inline mode: the task already ran, on the calling thread.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get(), caller);
}

TEST(ThreadPool, BoundedQueueAcceptsMoreTasksThanCapacity)
{
    // Queue capacity 2 with 500 tasks: submit must block-and-release
    // rather than drop or deadlock.
    ThreadPool pool(2, 2);
    std::atomic<int> completed{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(
            pool.submit([&completed] { completed.fetch_add(1); }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(completed.load(), 500);
}

TEST(ThreadPool, DrainWaitsForAllSubmittedWork)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&completed] {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            completed.fetch_add(1);
        });
    }
    pool.drain();
    EXPECT_EQ(completed.load(), 64);
}
