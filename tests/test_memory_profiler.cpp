/**
 * @file
 * Unit tests for the trace-driven memory profiler, including its
 * agreement with the analytic cost model.
 */

#include <gtest/gtest.h>

#include "cpu/memory_profiler.hh"
#include "nn/builder.hh"
#include "nn/models.hh"

using namespace hpim;
using cpu::MemoryProfiler;
using cpu::TraceConfig;

namespace {

nn::Graph
smallCnn()
{
    nn::CnnBuilder b("small", nn::TensorShape{2, 16, 16, 3});
    b.conv(3, 8, 1).maxPool(2, 2).fc(10, false);
    return b.finish();
}

} // namespace

TEST(MemoryProfiler, ProfilesEveryOp)
{
    MemoryProfiler profiler;
    auto graph = smallCnn();
    auto report = profiler.profileGraph(graph);
    EXPECT_EQ(report.ops.size(), graph.size());
    for (const auto &p : report.ops) {
        EXPECT_GE(p.mainMemoryAccesses, 0.0);
        EXPECT_LE(p.missFactor, 1.0);
        EXPECT_GE(p.missFactor, 0.0);
    }
}

TEST(MemoryProfiler, LargeStreamingOpMissesEverywhere)
{
    // An op streaming far more than the LLC must miss on nearly all
    // of its compulsory traffic.
    MemoryProfiler profiler;
    nn::Operation op;
    op.id = 0;
    op.type = nn::OpType::Relu;
    op.cost.bytesRead = 256e6; // 256 MB >> 20 MiB LLC
    op.cost.bytesWritten = 0;
    auto hierarchy = cache::CacheHierarchy::xeonLike();
    auto profile = profiler.profileOp(op, hierarchy);
    EXPECT_GT(profile.missFactor, 0.9);
}

TEST(MemoryProfiler, SmallHotOpIsCacheFiltered)
{
    MemoryProfiler profiler;
    nn::Operation op;
    op.id = 0;
    op.type = nn::OpType::Relu;
    op.cost.bytesRead = 16e3; // 16 KB, fits L1
    auto hierarchy = cache::CacheHierarchy::xeonLike();
    // Warm it once, then measure again: second pass mostly hits.
    profiler.profileOp(op, hierarchy);
    MemoryProfiler second;
    auto profile = second.profileOp(op, hierarchy);
    // Different profiler instance uses a different base address, so
    // force the same one by re-running the first.
    (void)profile;
    auto again = profiler.profileOp(op, hierarchy);
    EXPECT_GE(again.missFactor, 0.0); // consistency smoke
}

TEST(MemoryProfiler, ScalesSampledTraces)
{
    TraceConfig config;
    config.maxRequests = 100;
    MemoryProfiler profiler(config);
    nn::Operation op;
    op.id = 0;
    op.type = nn::OpType::Relu;
    op.cost.bytesRead = 64.0 * 100000; // 100k lines, sampled to 100
    auto hierarchy = cache::CacheHierarchy::xeonLike();
    auto profile = profiler.profileOp(op, hierarchy);
    EXPECT_NEAR(profile.issuedAccesses, 100000.0, 1.0);
}

TEST(MemoryProfiler, RowHitRateMeasuredWhenReplaying)
{
    TraceConfig config;
    config.maxRequests = 5000;
    MemoryProfiler profiler(config, /*replay_dram=*/true);
    nn::Operation op;
    op.id = 0;
    op.type = nn::OpType::BiasAdd; // streaming
    op.cost.bytesRead = 64.0 * 50000;
    auto hierarchy = cache::CacheHierarchy::xeonLike();
    auto profile = profiler.profileOp(op, hierarchy);
    // Streaming misses visit rows sequentially: decent locality.
    EXPECT_GT(profile.rowHitRate, 0.3);
}

TEST(MemoryProfiler, AgreesWithAnalyticModelForStreamingOps)
{
    // For big streaming ops, measured main-memory accesses should be
    // within ~2x of the analytic compulsory-traffic estimate
    // (bytes / 64); this ties the two profiling paths together.
    TraceConfig config;
    config.maxRequests = 20000;
    MemoryProfiler profiler(config);
    nn::Operation op;
    op.id = 0;
    op.type = nn::OpType::Relu;
    op.cost.bytesRead = 128e6;
    op.cost.bytesWritten = 128e6;
    auto hierarchy = cache::CacheHierarchy::xeonLike();
    auto profile = profiler.profileOp(op, hierarchy);
    double analytic = op.cost.bytes() / 64.0;
    EXPECT_GT(profile.mainMemoryAccesses, 0.5 * analytic);
    EXPECT_LT(profile.mainMemoryAccesses, 2.0 * analytic);
}
