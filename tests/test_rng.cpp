/**
 * @file
 * Unit + statistical property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using hpim::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = rng.inRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeScales)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-10.0, 10.0);
        EXPECT_GE(v, -10.0);
        EXPECT_LT(v, 10.0);
    }
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(1);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalHasExpectedMoments)
{
    Rng rng(77);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales)
{
    Rng rng(88);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

// Property sweep: modulo-bias-free uniformity over odd bounds.
class RngBoundSweep : public testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngBoundSweep, BelowIsRoughlyUniform)
{
    std::uint64_t bound = GetParam();
    Rng rng(bound * 97 + 13);
    std::vector<int> counts(bound, 0);
    const int samples = 3000 * static_cast<int>(bound);
    for (int i = 0; i < samples; ++i)
        ++counts[rng.below(bound)];
    double expected = static_cast<double>(samples) / bound;
    for (std::uint64_t v = 0; v < bound; ++v)
        EXPECT_NEAR(counts[v], expected, expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(OddBounds, RngBoundSweep,
                         testing::Values(3, 5, 7, 11, 13));
