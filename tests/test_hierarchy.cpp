/**
 * @file
 * Unit tests for the multi-level cache hierarchy and its
 * main-memory-access counting (the profiler's key metric).
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "sim/rng.hh"

using hpim::cache::CacheConfig;
using hpim::cache::CacheHierarchy;
using hpim::mem::AccessType;

namespace {

CacheHierarchy
twoLevel()
{
    CacheConfig l1{1024, 64, 2, "lru", 4};   // 16 lines
    CacheConfig l2{8192, 64, 4, "lru", 12};  // 128 lines
    return CacheHierarchy({l1, l2});
}

} // namespace

TEST(Hierarchy, ColdAccessReachesMainMemory)
{
    auto h = twoLevel();
    auto r = h.access(0, AccessType::Read);
    EXPECT_TRUE(r.mainMemory);
    EXPECT_EQ(r.hitLevel, 2u);
    EXPECT_EQ(h.mainMemoryAccesses(), 1u);
    // Walked both levels.
    EXPECT_EQ(r.latencyCycles, 4u + 12u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    auto h = twoLevel();
    h.access(0, AccessType::Read);
    auto r = h.access(0, AccessType::Read);
    EXPECT_FALSE(r.mainMemory);
    EXPECT_EQ(r.hitLevel, 0u);
    EXPECT_EQ(r.latencyCycles, 4u);
    EXPECT_EQ(h.mainMemoryAccesses(), 1u);
}

TEST(Hierarchy, L1EvictionStillHitsL2)
{
    auto h = twoLevel();
    // Fill one L1 set (2 ways; set count 8; stride 8*64).
    const std::uint64_t stride = 8ULL * 64ULL;
    h.access(0 * stride, AccessType::Read);
    h.access(1 * stride, AccessType::Read);
    h.access(2 * stride, AccessType::Read); // evicts line 0 from L1
    auto r = h.access(0, AccessType::Read);
    EXPECT_FALSE(r.mainMemory);
    EXPECT_EQ(r.hitLevel, 1u);
}

TEST(Hierarchy, DirtyL2EvictionCountsMainMemoryWriteback)
{
    CacheConfig l1{128, 64, 2, "lru", 1};  // 2 lines, 1 set
    CacheConfig l2{256, 64, 4, "lru", 2};  // 4 lines, 1 set
    CacheHierarchy h({l1, l2});
    // Write lines until the L2 (write-allocated via L1 writebacks)
    // must evict a dirty line.
    for (std::uint64_t i = 0; i < 16; ++i)
        h.access(i * 64, AccessType::Write);
    EXPECT_GT(h.mainMemoryWritebacks(), 0u);
}

TEST(Hierarchy, XeonLikeHasThreeLevels)
{
    auto h = CacheHierarchy::xeonLike();
    EXPECT_EQ(h.levels(), 3u);
    EXPECT_EQ(h.level(0).config().sizeBytes, 32u * 1024u);
    EXPECT_EQ(h.level(2).config().sizeBytes, 20u * 1024u * 1024u);
}

TEST(Hierarchy, StreamingLargerThanLlcIsMemoryBound)
{
    auto h = twoLevel();
    // Stream 64 KiB through an 8 KiB L2: every new line misses.
    std::uint64_t lines = 1024;
    for (std::uint64_t i = 0; i < lines; ++i)
        h.access(i * 64, AccessType::Read);
    EXPECT_EQ(h.mainMemoryAccesses(), lines);
}

TEST(Hierarchy, FlushAllForcesMissesEverywhere)
{
    auto h = twoLevel();
    h.access(0, AccessType::Read);
    h.flushAll();
    auto r = h.access(0, AccessType::Read);
    EXPECT_TRUE(r.mainMemory);
}

TEST(HierarchyDeath, EmptyLevelsIsFatal)
{
    EXPECT_EXIT(CacheHierarchy({}), testing::ExitedWithCode(1),
                "at least one level");
}

// Property: repeated random traffic over a footprint that fits in L2
// eventually stops generating main-memory accesses.
TEST(HierarchyProperty, WarmWorkingSetStopsMissingToMemory)
{
    auto h = twoLevel();
    hpim::sim::Rng rng(5);
    // 4 KiB footprint fits the 8 KiB L2.
    for (int i = 0; i < 2000; ++i)
        h.access(rng.below(4096), AccessType::Read);
    std::uint64_t warm = h.mainMemoryAccesses();
    for (int i = 0; i < 2000; ++i)
        h.access(rng.below(4096), AccessType::Read);
    EXPECT_EQ(h.mainMemoryAccesses(), warm);
}
