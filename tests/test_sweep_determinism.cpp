/**
 * @file
 * The sweep engine's determinism contract (see harness/sweep.hh):
 * the same experiment grid run with 1, 2 and 8 workers produces
 * byte-identical serialized reports, rerunning with the same seed
 * reproduces them exactly, and results always come back in
 * submission order regardless of completion order.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/report_io.hh"
#include "harness/sweep.hh"

using namespace hpim;
using harness::ExperimentPoint;
using harness::SweepOptions;
using harness::SweepRunner;

namespace {

/** A small but heterogeneous grid touching every execution path. */
std::vector<ExperimentPoint>
sampleGrid()
{
    using baseline::SystemKind;
    using nn::ModelId;
    return {
        {.kind = SystemKind::CpuOnly, .model = ModelId::AlexNet,
         .steps = 2},
        {.kind = SystemKind::Gpu, .model = ModelId::AlexNet,
         .steps = 2},
        {.kind = SystemKind::ProgrPimOnly, .model = ModelId::Dcgan,
         .steps = 2},
        {.kind = SystemKind::FixedPimOnly, .model = ModelId::AlexNet,
         .steps = 2},
        {.kind = SystemKind::HeteroPim, .model = ModelId::Dcgan,
         .steps = 3},
        {.kind = SystemKind::HeteroPim, .model = ModelId::AlexNet,
         .steps = 2, .freqScale = 2.0},
        {.kind = SystemKind::HeteroPim, .model = ModelId::AlexNet,
         .steps = 2, .progrPims = 4},
        {.kind = SystemKind::Neurocube, .model = ModelId::Dcgan,
         .steps = 2},
        {.kind = SystemKind::HeteroPim, .model = ModelId::Lstm,
         .steps = 2},
        {.kind = SystemKind::HeteroPim, .model = ModelId::AlexNet,
         .steps = 2, .batch = 16},
    };
}

/** Full CSV + JSON serialization of a sweep's reports. */
std::string
serialize(const std::vector<rt::ExecutionReport> &reports)
{
    std::ostringstream os;
    harness::writeCsv(os, reports);
    for (const auto &report : reports)
        harness::writeJson(os, report);
    return os.str();
}

std::string
runWithJobs(std::uint32_t jobs, std::uint64_t seed)
{
    SweepOptions options;
    options.jobs = jobs;
    options.baseSeed = seed;
    SweepRunner runner(options);
    return serialize(runner.run(sampleGrid()));
}

} // namespace

TEST(SweepDeterminism, ByteIdenticalAcrossWorkerCounts)
{
    std::string serial = runWithJobs(1, 1234);
    EXPECT_EQ(serial, runWithJobs(2, 1234));
    EXPECT_EQ(serial, runWithJobs(8, 1234));
}

TEST(SweepDeterminism, RerunWithSameSeedReproduces)
{
    EXPECT_EQ(runWithJobs(4, 99), runWithJobs(4, 99));
}

TEST(SweepDeterminism, ResultsAlignWithSubmissionOrder)
{
    auto points = sampleGrid();
    SweepOptions options;
    options.jobs = 8;
    SweepRunner runner(options);
    auto reports = runner.run(points);
    ASSERT_EQ(reports.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(reports[i].configName,
                  baseline::systemName(points[i].kind));
        EXPECT_EQ(reports[i].stepsSimulated, points[i].steps);
    }
}

TEST(SweepDeterminism, MapStreamsDependOnlyOnSeedAndIndex)
{
    auto draw = [](std::uint32_t jobs, std::uint64_t seed) {
        SweepOptions options;
        options.jobs = jobs;
        options.baseSeed = seed;
        SweepRunner runner(options);
        return runner.map(64, [](std::size_t, sim::Rng &rng) {
            return rng.next();
        });
    };
    auto serial = draw(1, 7);
    EXPECT_EQ(serial, draw(8, 7));
    // A different base seed must give different streams.
    EXPECT_NE(serial, draw(1, 8));
    // Neighbouring streams must not collide.
    for (std::size_t i = 1; i < serial.size(); ++i)
        EXPECT_NE(serial[i - 1], serial[i]);
}

TEST(SweepDeterminism, StatsAccountForEveryPoint)
{
    SweepOptions options;
    options.jobs = 2;
    SweepRunner runner(options);
    runner.run(sampleGrid());
    runner.map(5, [](std::size_t i, sim::Rng &) { return i; });
    EXPECT_EQ(runner.stats().points, sampleGrid().size() + 5);
    EXPECT_EQ(runner.stats().jobs, 2u);
    EXPECT_GE(runner.stats().wallSec, 0.0);
    EXPECT_GE(runner.stats().serialSec, 0.0);
}

TEST(SweepDeterminism, ThrowingPointsAreRecordedNotFatal)
{
    // A sweep survives points that throw: the failure is captured in
    // the stats (index order, whatever the worker count), the failed
    // slot is default-constructed and every other point still runs.
    SweepOptions options;
    options.jobs = 4;
    SweepRunner runner(options);
    auto results =
        runner.map(8, [](std::size_t i, sim::Rng &) -> int {
            if (i == 2 || i == 5)
                throw std::runtime_error("point " + std::to_string(i)
                                         + " failed");
            return int(i) + 1;
        });
    ASSERT_EQ(results.size(), 8u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], (i == 2 || i == 5) ? 0 : int(i) + 1);

    const auto &failures = runner.stats().failures;
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].index, 2u);
    EXPECT_EQ(failures[0].what, "point 2 failed");
    EXPECT_EQ(failures[1].index, 5u);
    EXPECT_EQ(failures[1].what, "point 5 failed");

    // The summary footer reports them.
    std::ostringstream os;
    harness::printSweepSummary(os, runner.stats());
    EXPECT_NE(os.str().find("2 points FAILED"), std::string::npos);
    EXPECT_NE(os.str().find("point 5: point 5 failed"),
              std::string::npos);
}
