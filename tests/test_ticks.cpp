/**
 * @file
 * Unit tests for the time base and clock domains.
 */

#include <gtest/gtest.h>

#include "sim/ticks.hh"

using namespace hpim::sim;

TEST(Ticks, SecondConversionsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), ticksPerSecond);
    EXPECT_DOUBLE_EQ(ticksToSeconds(ticksPerSecond), 1.0);
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_EQ(usToTicks(1.0), 1'000'000u);
    EXPECT_EQ(msToTicks(1.0), 1'000'000'000u);
    EXPECT_DOUBLE_EQ(ticksToMs(msToTicks(2.5)), 2.5);
}

TEST(Ticks, RoundsToNearestTick)
{
    // 1.4 ps rounds down, 1.6 ps rounds up.
    EXPECT_EQ(secondsToTicks(1.4e-12), 1u);
    EXPECT_EQ(secondsToTicks(1.6e-12), 2u);
}

TEST(ClockDomain, PaperClocks)
{
    ClockDomain hmc(312.5e6);
    EXPECT_EQ(hmc.period(), 3200u); // 3.2 ns
    ClockDomain arm(2.0e9);
    EXPECT_EQ(arm.period(), 500u); // 0.5 ns
}

TEST(ClockDomain, CycleConversions)
{
    ClockDomain clock(1e9); // 1 ns period
    EXPECT_EQ(clock.cyclesToTicks(5), 5000u);
    EXPECT_EQ(clock.ticksToCycles(5999), 5u); // floor
}

TEST(ClockDomain, ScaledMultipliesFrequency)
{
    ClockDomain base(312.5e6);
    ClockDomain fast = base.scaled(4.0);
    EXPECT_DOUBLE_EQ(fast.hz(), 1.25e9);
    EXPECT_EQ(fast.period(), 800u);
}

TEST(ClockDomainDeath, NonPositiveFrequencyIsFatal)
{
    EXPECT_EXIT(ClockDomain(0.0), testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(ClockDomain(-5.0), testing::ExitedWithCode(1),
                "positive");
}

TEST(ClockDomainDeath, TooFastForTickBaseIsFatal)
{
    // > 1 THz has a sub-tick period.
    EXPECT_EXIT(ClockDomain(3e12), testing::ExitedWithCode(1),
                "too fast");
}
