/**
 * @file
 * The observability determinism contract: for a fixed seed, the
 * exported trace is byte-identical whatever --jobs says, because
 * events sort by (scope, seq) -- never by wall-clock or worker
 * identity -- and exported track ids are name-sorted, not
 * intern-ordered.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/json.hh"
#include "harness/sweep.hh"
#include "obs/trace.hh"

using namespace hpim;
using harness::ExperimentPoint;
using harness::SweepOptions;
using harness::SweepRunner;

namespace {

/** Small but real grid: full simulations, three system kinds. */
std::vector<ExperimentPoint>
smallGrid()
{
    std::vector<ExperimentPoint> points;
    for (auto kind : {baseline::SystemKind::HeteroPim,
                      baseline::SystemKind::CpuOnly,
                      baseline::SystemKind::ProgrPimOnly}) {
        for (auto model :
             {nn::ModelId::Word2vec, nn::ModelId::Lstm}) {
            ExperimentPoint p;
            p.kind = kind;
            p.model = model;
            p.steps = 1;
            points.push_back(p);
        }
    }
    return points;
}

/** Run the grid traced with @p jobs workers; return the trace text. */
std::string
tracedSweep(std::uint32_t jobs, std::uint64_t seed)
{
    std::string path = testing::TempDir() + "hpim-trace-"
                       + std::to_string(jobs) + "-"
                       + std::to_string(seed) + ".json";
    {
        SweepOptions options;
        options.jobs = jobs;
        options.baseSeed = seed;
        options.traceFile = path;
        SweepRunner runner(options);
        auto reports = runner.run(smallGrid());
        EXPECT_EQ(reports.size(), smallGrid().size());
        // Trace export happens in the runner destructor.
    }
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    std::remove(path.c_str());
    return text.str();
}

} // namespace

TEST(ObsDeterminism, TraceBytesIdenticalAcrossJobs1And8)
{
    std::string serial = tracedSweep(1, 1234);
    std::string parallel = tracedSweep(8, 1234);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(ObsDeterminism, TraceBytesIdenticalAcrossReruns)
{
    EXPECT_EQ(tracedSweep(4, 99), tracedSweep(4, 99));
}

TEST(ObsDeterminism, TraceIsValidChromeTraceJson)
{
    std::string text = tracedSweep(2, 7);
    auto doc = harness::json::parse(text); // throws on violation
    ASSERT_TRUE(doc.isObject());
    const auto &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_FALSE(events.array.empty());
    std::size_t spans = 0, metadata = 0;
    for (const auto &event : events.array) {
        const std::string &ph = event.at("ph").asString();
        if (ph == "X")
            ++spans;
        else if (ph == "M")
            ++metadata;
        // Every event addresses a (pid, tid) pair.
        event.at("pid").asUInt64();
        event.at("tid").asUInt64();
    }
    EXPECT_GT(spans, 0u);
    EXPECT_GT(metadata, 0u);
}

TEST(ObsDeterminism, SweepPointsRecordUnderTheirOwnScopes)
{
    std::string text = tracedSweep(8, 5);
    auto doc = harness::json::parse(text);
    std::size_t max_pid = 0;
    for (const auto &event : doc.at("traceEvents").array)
        max_pid = std::max<std::size_t>(max_pid,
                                        event.at("pid").asUInt64());
    // 6 points -> scopes 1..6 (scope 0 is the main run).
    EXPECT_EQ(max_pid, smallGrid().size());
}

TEST(ObsDeterminism, BenchOutputUnaffectedByTracing)
{
    // The same sweep with and without a trace session attached must
    // produce identical reports (tracing is observation, never
    // perturbation).
    auto run = [](bool traced) {
        std::string path =
            testing::TempDir() + "hpim-trace-perturb.json";
        SweepOptions options;
        options.jobs = 2;
        options.baseSeed = 42;
        if (traced)
            options.traceFile = path;
        SweepRunner runner(options);
        auto reports = runner.run(smallGrid());
        std::ostringstream digest;
        for (const auto &report : reports)
            digest << report.configName << ' ' << report.workloadName
                   << ' ' << report.makespanSec << ' '
                   << report.totalEnergyJ << '\n';
        if (traced)
            std::remove(path.c_str());
        return digest.str();
    };
    std::string untraced = run(false);
    std::string traced = run(true);
    EXPECT_EQ(untraced, traced);
}
