/**
 * @file
 * Unit tests for kernels and four-binary compilation (paper Fig. 4).
 */

#include <gtest/gtest.h>

#include "cl/kernel.hh"

using namespace hpim::cl;
using hpim::nn::CostStructure;
using hpim::nn::fixedParallelism;
using hpim::nn::OpType;

namespace {

Kernel
makeKernel(OpType type, double muls = 1000.0, double specials = 0.0,
           double lanes = 64.0)
{
    Kernel k;
    k.name = "k";
    k.opType = type;
    k.cost.muls = muls;
    k.cost.adds = muls;
    k.cost.specials = specials;
    k.parallelism = fixedParallelism(type, 9, lanes);
    return k;
}

} // namespace

TEST(ClKernel, FixedFunctionKernelGetsAllFourBinaries)
{
    BinarySet set = compileKernel(makeKernel(OpType::MatMul));
    EXPECT_EQ(set.binaries.size(), 4u);
    EXPECT_TRUE(set.hasTarget(BinaryTarget::Cpu));
    EXPECT_TRUE(set.hasTarget(BinaryTarget::FixedWhole));
    EXPECT_TRUE(set.hasTarget(BinaryTarget::FixedExtract));
    EXPECT_TRUE(set.hasTarget(BinaryTarget::ProgrRecursive));
}

TEST(ClKernel, RecursiveKernelLacksWholeFixedBinary)
{
    // A Conv2DBackpropFilter contains instructions the fixed units
    // cannot execute: no #2 binary, but #3 and #4 exist.
    BinarySet set = compileKernel(
        makeKernel(OpType::Conv2DBackpropFilter, 1000.0, 50.0));
    EXPECT_FALSE(set.hasTarget(BinaryTarget::FixedWhole));
    EXPECT_TRUE(set.hasTarget(BinaryTarget::FixedExtract));
    EXPECT_TRUE(set.hasTarget(BinaryTarget::ProgrRecursive));
    EXPECT_GE(set.get(BinaryTarget::ProgrRecursive).recursiveCalls, 1u);
}

TEST(ClKernel, ProgrammableOnlyKernelHasNoFixedBinaries)
{
    BinarySet set =
        compileKernel(makeKernel(OpType::MaxPool, 0.0, 500.0));
    EXPECT_FALSE(set.hasTarget(BinaryTarget::FixedWhole));
    EXPECT_FALSE(set.hasTarget(BinaryTarget::FixedExtract));
    EXPECT_TRUE(set.hasTarget(BinaryTarget::Cpu));
    EXPECT_EQ(set.get(BinaryTarget::ProgrRecursive).recursiveCalls, 0u);
}

TEST(ClKernel, WorkSplitsBetweenBinaries)
{
    Kernel k = makeKernel(OpType::Conv2DBackpropFilter, 1000.0, 77.0);
    BinarySet set = compileKernel(k);
    // The extracted fixed portion carries the mul/add core.
    EXPECT_DOUBLE_EQ(set.get(BinaryTarget::FixedExtract).workOps,
                     2000.0);
    // The progr binary keeps the special/control phases.
    EXPECT_DOUBLE_EQ(set.get(BinaryTarget::ProgrRecursive).workOps,
                     77.0);
    // The CPU binary always carries everything.
    EXPECT_DOUBLE_EQ(set.get(BinaryTarget::Cpu).workOps, 2077.0);
}

TEST(ClKernel, RecursiveCallCountScalesWithLanes)
{
    Kernel small = makeKernel(OpType::Conv2DBackpropInput, 1e6, 10.0,
                              1024.0);
    Kernel big = makeKernel(OpType::Conv2DBackpropInput, 1e6, 10.0,
                            8.0 * 1048576.0);
    auto small_calls = compileKernel(small)
                           .get(BinaryTarget::ProgrRecursive)
                           .recursiveCalls;
    auto big_calls = compileKernel(big)
                         .get(BinaryTarget::ProgrRecursive)
                         .recursiveCalls;
    EXPECT_EQ(small_calls, 1u);
    EXPECT_EQ(big_calls, 8u);
}

TEST(ClKernel, OffloadClassDerivedFromOpType)
{
    EXPECT_EQ(makeKernel(OpType::Conv2D).offloadClass(),
              hpim::nn::OffloadClass::FixedFunction);
    EXPECT_EQ(makeKernel(OpType::Relu).offloadClass(),
              hpim::nn::OffloadClass::ProgrammableOnly);
    EXPECT_EQ(makeKernel(OpType::Slice).offloadClass(),
              hpim::nn::OffloadClass::DataMovement);
}

TEST(ClKernelDeath, MissingTargetIsFatal)
{
    BinarySet set = compileKernel(makeKernel(OpType::MaxPool));
    EXPECT_EXIT(set.get(BinaryTarget::FixedWhole),
                testing::ExitedWithCode(1), "lacks");
}
