/**
 * @file
 * Unit + property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "sim/rng.hh"

using hpim::cache::Cache;
using hpim::cache::CacheConfig;
using hpim::mem::AccessType;

namespace {

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 4096; // 64 lines
    cfg.lineBytes = 64;
    cfg.ways = 4;         // 16 sets
    cfg.policy = "lru";
    return cfg;
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallCache(), "L1");
    auto miss = cache.access(0x1000, AccessType::Read);
    EXPECT_FALSE(miss.hit);
    auto hit = cache.access(0x1000, AccessType::Read);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, SameLineDifferentBytesHit)
{
    Cache cache(smallCache(), "L1");
    cache.access(0x1000, AccessType::Read);
    EXPECT_TRUE(cache.access(0x103F, AccessType::Read).hit);
    EXPECT_FALSE(cache.access(0x1040, AccessType::Read).hit);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache cache(smallCache(), "L1");
    EXPECT_FALSE(cache.probe(0x2000));
    cache.access(0x2000, AccessType::Read);
    EXPECT_TRUE(cache.probe(0x2000));
    EXPECT_EQ(cache.stats().accesses, 1u); // probe not counted
}

TEST(Cache, EvictionAfterAssociativityOverflow)
{
    Cache cache(smallCache(), "L1");
    // Five lines mapping to the same set (stride = sets x line).
    const std::uint64_t stride = 16ULL * 64ULL;
    for (std::uint64_t i = 0; i < 5; ++i)
        cache.access(i * stride, AccessType::Read);
    EXPECT_EQ(cache.stats().evictions, 1u);
    // LRU: line 0 evicted, line 1 still resident.
    EXPECT_FALSE(cache.probe(0));
    EXPECT_TRUE(cache.probe(stride));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(smallCache(), "L1");
    const std::uint64_t stride = 16ULL * 64ULL;
    cache.access(0, AccessType::Write); // dirty line in set 0
    for (std::uint64_t i = 1; i <= 4; ++i) {
        auto result = cache.access(i * stride, AccessType::Read);
        if (i < 4) {
            EXPECT_FALSE(result.writeback);
        } else {
            EXPECT_TRUE(result.writeback);
            EXPECT_EQ(result.writebackAddr, 0u);
        }
    }
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache cache(smallCache(), "L1");
    const std::uint64_t stride = 16ULL * 64ULL;
    for (std::uint64_t i = 0; i <= 4; ++i) {
        auto result = cache.access(i * stride, AccessType::Read);
        EXPECT_FALSE(result.writeback);
    }
}

TEST(Cache, WriteHitMarksLineDirty)
{
    Cache cache(smallCache(), "L1");
    const std::uint64_t stride = 16ULL * 64ULL;
    cache.access(0, AccessType::Read);
    cache.access(0, AccessType::Write); // dirty via write hit
    for (std::uint64_t i = 1; i <= 4; ++i)
        cache.access(i * stride, AccessType::Read);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache(smallCache(), "L1");
    cache.access(0x40, AccessType::Read);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_FALSE(cache.access(0x40, AccessType::Read).hit);
}

TEST(Cache, MissRateComputation)
{
    Cache cache(smallCache(), "L1");
    cache.access(0, AccessType::Read);   // miss
    cache.access(0, AccessType::Read);   // hit
    cache.access(64, AccessType::Read);  // miss
    EXPECT_NEAR(cache.stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    CacheConfig cfg = smallCache();
    cfg.lineBytes = 48; // not a power of two
    EXPECT_EXIT(Cache(cfg, "bad"), testing::ExitedWithCode(1),
                "power of two");
}

// Property: a working set that fits is fully resident after one pass
// (no conflict misses with LRU and full associativity usage).
TEST(CacheProperty, FittingWorkingSetHitsOnSecondPass)
{
    Cache cache(smallCache(), "L1");
    for (std::uint64_t line = 0; line < 64; ++line)
        cache.access(line * 64, AccessType::Read);
    for (std::uint64_t line = 0; line < 64; ++line)
        EXPECT_TRUE(cache.access(line * 64, AccessType::Read).hit);
}

// Property sweep over policies: stats stay consistent
// (hits + misses == accesses) under random traffic.
class CachePolicySweep : public testing::TestWithParam<const char *>
{};

TEST_P(CachePolicySweep, StatsConsistentUnderRandomTraffic)
{
    CacheConfig cfg = smallCache();
    cfg.policy = GetParam();
    Cache cache(cfg, "L1");
    hpim::sim::Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        auto type = rng.chance(0.3) ? AccessType::Write
                                    : AccessType::Read;
        cache.access(rng.below(1 << 20), type);
    }
    const auto &stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
    EXPECT_LE(stats.writebacks, stats.evictions);
    EXPECT_GT(stats.missRate(), 0.0);
    EXPECT_LE(stats.missRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicySweep,
                         testing::Values("lru", "plru", "random"));
