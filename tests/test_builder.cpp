/**
 * @file
 * Unit tests for the CNN training-graph builder -- the forward layers
 * plus the auto-generated backward pass and optimizer ops.
 */

#include <gtest/gtest.h>

#include "nn/builder.hh"

using namespace hpim::nn;

TEST(Builder, ConvUpdatesRunningShape)
{
    CnnBuilder b("t", TensorShape{2, 32, 32, 3});
    b.conv(3, 16, 2);
    EXPECT_EQ(b.shape(), (TensorShape{2, 16, 16, 16}));
    b.maxPool(2, 2);
    EXPECT_EQ(b.shape(), (TensorShape{2, 8, 8, 16}));
}

TEST(Builder, FcFlattensAutomatically)
{
    CnnBuilder b("t", TensorShape{2, 8, 8, 4});
    b.fc(10, false);
    EXPECT_EQ(b.shape(), (TensorShape{2, 10}));
}

TEST(Builder, ForwardOnlyEmitsNoGradOps)
{
    CnnBuilder b("t", TensorShape{2, 8, 8, 4});
    b.conv(3, 8, 1);
    Graph g = b.finishForwardOnly();
    EXPECT_EQ(g.countType(OpType::Conv2D), 1u);
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropFilter), 0u);
    EXPECT_EQ(g.countType(OpType::ApplyAdam), 0u);
}

TEST(Builder, TrainingStepHasBackwardAndOptimizer)
{
    CnnBuilder b("t", TensorShape{2, 16, 16, 3});
    b.conv(3, 8, 1).maxPool(2, 2).fc(10, false);
    Graph g = b.finish();

    EXPECT_EQ(g.countType(OpType::Conv2D), 1u);
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropFilter), 1u);
    // First conv layer: no input gradient needed.
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropInput), 0u);
    EXPECT_EQ(g.countType(OpType::MaxPoolGrad), 1u);
    EXPECT_EQ(g.countType(OpType::MatMul), 1u);
    EXPECT_EQ(g.countType(OpType::MatMulGradWeights), 1u);
    EXPECT_EQ(g.countType(OpType::Softmax), 1u);
    EXPECT_EQ(g.countType(OpType::SoftmaxGrad), 1u);
    // conv kernel + conv bias + fc kernel + fc bias.
    EXPECT_EQ(g.countType(OpType::ApplyAdam), 4u);
}

TEST(Builder, TwoConvLayersShareOneInputGrad)
{
    CnnBuilder b("t", TensorShape{2, 16, 16, 3});
    b.conv(3, 8, 1).conv(3, 8, 1).fc(10, false);
    Graph g = b.finish();
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropFilter), 2u);
    // Only the second conv propagates into the first.
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropInput), 1u);
}

TEST(Builder, ReluEmitsReluAndGrad)
{
    CnnBuilder b("t", TensorShape{2, 8, 8, 3});
    b.conv(3, 4, 1, /*relu=*/true).fc(10, false);
    Graph g = b.finish();
    EXPECT_EQ(g.countType(OpType::Relu), 1u);
    EXPECT_EQ(g.countType(OpType::ReluGrad), 1u);
}

TEST(Builder, DropoutRoundTrips)
{
    CnnBuilder b("t", TensorShape{2, 8, 8, 3});
    b.conv(3, 4, 1).fc(16).dropout().fc(10, false);
    Graph g = b.finish();
    EXPECT_EQ(g.countType(OpType::Dropout), 1u);
    EXPECT_EQ(g.countType(OpType::DropoutGrad), 1u);
}

TEST(Builder, BatchNormContributesParams)
{
    CnnBuilder b("t", TensorShape{2, 8, 8, 3});
    b.conv(3, 4, 1).batchNorm().fc(10, false);
    Graph g = b.finish();
    EXPECT_EQ(g.countType(OpType::BatchNorm), 1u);
    EXPECT_EQ(g.countType(OpType::BatchNormGrad), 1u);
    // conv(k+b) + bn(scale/offset) + fc(k+b) = 5 Adam ops.
    EXPECT_EQ(g.countType(OpType::ApplyAdam), 5u);
}

TEST(Builder, DeconvLowersToConvBackpropInput)
{
    // TensorFlow's conv2d_transpose -> Conv2DBackpropInput, the
    // reason DCGAN's forward pass profiles that op (Table I).
    CnnBuilder b("t", TensorShape{2, 8, 8, 16});
    b.deconv(5, 8, 2);
    EXPECT_EQ(b.shape(), (TensorShape{2, 16, 16, 8}));
    Graph g = b.finishForwardOnly();
    EXPECT_EQ(g.countType(OpType::Conv2DBackpropInput), 1u);
}

TEST(Builder, ExtraLossMulsAppear)
{
    CnnBuilder b("t", TensorShape{2, 8, 8, 3});
    b.conv(3, 4, 1).fc(10, false);
    Graph g = b.finish(/*extra_loss_muls=*/12);
    EXPECT_GE(g.countType(OpType::Mul), 12u);
}

TEST(Builder, GraphIsAcyclicByConstruction)
{
    CnnBuilder b("t", TensorShape{2, 16, 16, 3});
    b.conv(3, 8, 1).maxPool(2, 2).conv(3, 16, 1).fc(10, false);
    Graph g = b.finish();
    // Every input id precedes its consumer (checked in add()), and
    // readyOps() from nothing-done yields only true sources.
    std::vector<bool> done(g.size(), false);
    auto ready = g.readyOps(done);
    ASSERT_FALSE(ready.empty());
    for (OpId id : ready)
        EXPECT_TRUE(g.op(id).inputs.empty());
}

TEST(Builder, EveryOpReachableFromExecution)
{
    CnnBuilder b("t", TensorShape{2, 16, 16, 3});
    b.conv(3, 8, 1).fc(10, false);
    Graph g = b.finish();
    // Simulate executing ops as they become ready; everything must
    // complete (no dangling dependences).
    std::vector<bool> done(g.size(), false);
    std::size_t completed = 0;
    while (completed < g.size()) {
        auto ready = g.readyOps(done);
        ASSERT_FALSE(ready.empty()) << "deadlocked graph";
        for (OpId id : ready) {
            done[id] = true;
            ++completed;
        }
    }
    SUCCEED();
}

// ---- Shape-inference edge cases through the delegating CnnBuilder
// (the op-by-op Builder underneath is covered in
// test_graph_builder.cpp).

TEST(Builder, OddStrideRoundsUp)
{
    CnnBuilder b("t", TensorShape{2, 13, 13, 3});
    b.conv(3, 8, 3);
    EXPECT_EQ(b.shape(), (TensorShape{2, 5, 5, 8}));
    b.maxPool(3, 3);
    EXPECT_EQ(b.shape(), (TensorShape{2, 2, 2, 8}));
}

TEST(Builder, FlattenAfterPoolFeedsFc)
{
    CnnBuilder b("t", TensorShape{2, 16, 16, 8});
    b.maxPool(2, 2).fc(10, false);
    EXPECT_EQ(b.shape(), (TensorShape{2, 10}));
    Graph g = b.finish();
    // fc flattened the pooled NHWC activation before its MatMul.
    EXPECT_EQ(g.countType(OpType::Reshape), 1u);
    EXPECT_EQ(g.countType(OpType::MaxPoolGrad), 1u);
}

TEST(Builder, DeconvUpsamplesByItsFactor)
{
    CnnBuilder b("t", TensorShape{1, 7, 7, 128});
    b.deconv(5, 64, 4);
    EXPECT_EQ(b.shape(), (TensorShape{1, 28, 28, 64}));
}

TEST(Builder, DelegatesToTheSameBuilderOpStream)
{
    // The refactor contract: CnnBuilder is a shell over nn::Builder,
    // so identical layer sequences produce identical signatures.
    CnnBuilder a("net", TensorShape{2, 16, 16, 3});
    a.conv(3, 8, 1).maxPool(2, 2).fc(10, false);
    CnnBuilder c("net", TensorShape{2, 16, 16, 3});
    c.conv(3, 8, 1).maxPool(2, 2).fc(10, false);
    EXPECT_EQ(a.finish().signature(), c.finish().signature());
}
