/**
 * @file
 * Degenerate-input coverage for the journal readers: empty files,
 * header-only segments, schema-version mismatches, truncated and
 * corrupt record tails, and headers whose `points` count disagrees
 * with the records on disk. These are exactly the shapes a crashed
 * or half-provisioned sweep leaves behind (docs/RESILIENCE.md), so
 * the readers must degrade predictably instead of trusting them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

#include "harness/journal.hh"

namespace {

using namespace hpim;

/** Scratch file that cleans up after itself. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &tag)
        : _path("/tmp/hpim_journal_scan." + std::to_string(::getpid())
                + "." + tag)
    {
        std::remove(_path.c_str());
    }

    ~ScratchFile() { std::remove(_path.c_str()); }

    void
    write(const std::string &content)
    {
        std::ofstream os(_path, std::ios::trunc | std::ios::binary);
        os << content;
    }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** A syntactically valid record line (no trailing newline). */
std::string
recordLine(std::size_t index, std::uint64_t point_hash)
{
    return "{\"index\":" + std::to_string(index) + ",\"point_hash\":"
           + std::to_string(point_hash)
           + ",\"report\":{\"schema\":2}}";
}

// ------------------------------------------------------ readJournalHeader

TEST(JournalHeader, MissingFileThrows)
{
    EXPECT_THROW(
        harness::readJournalHeader("/tmp/hpim_no_such_journal.meta"),
        harness::JournalFormatError);
}

TEST(JournalHeader, EmptyFileThrows)
{
    ScratchFile file("empty_header");
    file.write("");
    EXPECT_THROW(harness::readJournalHeader(file.path()),
                 harness::JournalFormatError);
}

TEST(JournalHeader, GarbageThrows)
{
    ScratchFile file("garbage_header");
    file.write("not json at all\n");
    EXPECT_THROW(harness::readJournalHeader(file.path()),
                 harness::JournalFormatError);
}

TEST(JournalHeader, WriteReadRoundTrip)
{
    ScratchFile file("roundtrip_header");
    harness::SweepJournal::Header header;
    header.baseSeed = 0xDEADBEEFCAFEF00DULL;
    header.gridHash = 42;
    header.points = 17;
    header.shardIndex = 2;
    header.shardCount = 3;
    harness::writeJournalHeaderFile(file.path(), header);

    harness::SweepJournal::Header read =
        harness::readJournalHeader(file.path());
    EXPECT_EQ(read.schemaVersion, harness::journalSchemaVersion);
    EXPECT_EQ(read.baseSeed, header.baseSeed);
    EXPECT_EQ(read.gridHash, header.gridHash);
    EXPECT_EQ(read.points, header.points);
    EXPECT_EQ(read.shardIndex, header.shardIndex);
    EXPECT_EQ(read.shardCount, header.shardCount);
}

TEST(JournalHeader, VersionMismatchFillsOnlySchemaVersion)
{
    ScratchFile file("old_header");
    // A plausible future layout: recognizable version field, other
    // fields unknown to this build.
    file.write("{\"schema_version\":99,\"base_seed\":7,"
               "\"grid_hash\":8,\"points\":9}\n");
    harness::SweepJournal::Header read =
        harness::readJournalHeader(file.path());
    EXPECT_EQ(read.schemaVersion, 99);
    // The caller must check schemaVersion; the rest stays default.
    EXPECT_EQ(read.baseSeed, 0u);
    EXPECT_EQ(read.gridHash, 0u);
    EXPECT_EQ(read.points, 0u);
}

// ----------------------------------------------------- scanJournalRecords

TEST(JournalScan, MissingFileReturnsFalse)
{
    std::vector<harness::RawRecord> records;
    EXPECT_FALSE(harness::scanJournalRecords(
        "/tmp/hpim_no_such_journal.records", 4, records));
    EXPECT_TRUE(records.empty());
}

TEST(JournalScan, EmptyFileIsAValidEmptyJournal)
{
    // The header-only segment: meta written, no point finished yet.
    ScratchFile file("empty_records");
    file.write("");
    std::vector<harness::RawRecord> records;
    std::string tail_note = "sentinel";
    std::size_t good_bytes = 999;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 4, records,
                                            &tail_note, &good_bytes));
    EXPECT_TRUE(records.empty());
    EXPECT_TRUE(tail_note.empty());
    EXPECT_EQ(good_bytes, 0u);
}

TEST(JournalScan, FullyValidFileParsesEveryRecord)
{
    ScratchFile file("good_records");
    const std::string content =
        recordLine(0, 111) + "\n" + recordLine(2, 222) + "\n";
    file.write(content);
    std::vector<harness::RawRecord> records;
    std::string tail_note;
    std::size_t good_bytes = 0;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 4, records,
                                            &tail_note, &good_bytes));
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].index, 0u);
    EXPECT_EQ(records[0].pointHash, 111u);
    EXPECT_EQ(records[0].lineNo, 1u);
    EXPECT_EQ(records[1].index, 2u);
    EXPECT_EQ(records[1].lineNo, 2u);
    EXPECT_TRUE(tail_note.empty());
    EXPECT_EQ(good_bytes, content.size());
}

TEST(JournalScan, TruncatedTailIsDroppedAndReported)
{
    // The mid-append crash: a good record, then a record whose write
    // never reached its newline.
    ScratchFile file("truncated_records");
    const std::string good = recordLine(0, 111) + "\n";
    file.write(good + "{\"index\":1,\"point_ha");
    std::vector<harness::RawRecord> records;
    std::string tail_note;
    std::size_t good_bytes = 0;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 4, records,
                                            &tail_note, &good_bytes));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].index, 0u);
    EXPECT_NE(tail_note.find("truncated"), std::string::npos);
    EXPECT_EQ(good_bytes, good.size());
}

TEST(JournalScan, CorruptLineStopsTheScan)
{
    // A complete but unparsable line poisons everything after it:
    // records past it are NOT returned even when well-formed.
    ScratchFile file("corrupt_records");
    const std::string good = recordLine(0, 111) + "\n";
    file.write(good + "garbage line\n" + recordLine(1, 222) + "\n");
    std::vector<harness::RawRecord> records;
    std::string tail_note;
    std::size_t good_bytes = 0;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 4, records,
                                            &tail_note, &good_bytes));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_NE(tail_note.find("corrupt"), std::string::npos);
    EXPECT_EQ(good_bytes, good.size());
}

TEST(JournalScan, RecordWithoutReportFieldIsCorrupt)
{
    ScratchFile file("reportless_records");
    file.write("{\"index\":0,\"point_hash\":1}\n");
    std::vector<harness::RawRecord> records;
    std::string tail_note;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 4, records,
                                            &tail_note));
    EXPECT_TRUE(records.empty());
    EXPECT_NE(tail_note.find("corrupt"), std::string::npos);
}

TEST(JournalScan, IndexBeyondHeaderPointsIsRejected)
{
    // The header/records disagreement: the header announces a
    // 2-point grid but a record claims index 5 -- e.g. a journal dir
    // reused for a different sweep. The out-of-range record (and
    // everything after it) must be dropped, not replayed into a
    // nonexistent grid slot.
    ScratchFile file("overrun_records");
    const std::string good = recordLine(1, 111) + "\n";
    file.write(good + recordLine(5, 222) + "\n");
    std::vector<harness::RawRecord> records;
    std::string tail_note;
    std::size_t good_bytes = 0;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 2, records,
                                            &tail_note, &good_bytes));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].index, 1u);
    EXPECT_NE(tail_note.find("out of range"), std::string::npos);
    EXPECT_EQ(good_bytes, good.size());
}

TEST(JournalScan, ZeroPointHeaderRejectsEveryRecord)
{
    // points = 0 means *no* index is valid.
    ScratchFile file("zero_points");
    file.write(recordLine(0, 111) + "\n");
    std::vector<harness::RawRecord> records;
    std::string tail_note;
    EXPECT_TRUE(harness::scanJournalRecords(file.path(), 0, records,
                                            &tail_note));
    EXPECT_TRUE(records.empty());
    EXPECT_NE(tail_note.find("out of range"), std::string::npos);
}

} // namespace
