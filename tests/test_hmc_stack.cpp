/**
 * @file
 * Unit tests for the 3D-stacked memory cube.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/hmc_stack.hh"
#include "sim/rng.hh"

using hpim::mem::AccessType;
using hpim::mem::HmcConfig;
using hpim::mem::HmcStack;
using hpim::mem::MemoryRequest;

TEST(HmcStack, DefaultConfigMatchesPaper)
{
    HmcStack stack{HmcConfig{}};
    EXPECT_EQ(stack.vaultCount(), 32u); // 32 bank slices (Fig. 3)
    EXPECT_GT(stack.capacity(), 0u);
    // Internal bandwidth must exceed the external links -- the
    // entire premise of PIM.
    EXPECT_GT(stack.peakInternalBandwidth(),
              stack.peakExternalBandwidth());
}

TEST(HmcStack, ExternalBandwidthFromLinks)
{
    HmcConfig config;
    config.links = 4;
    config.linkGBps = 30.0;
    HmcStack stack{config};
    EXPECT_DOUBLE_EQ(stack.peakExternalBandwidth(), 120e9);
}

TEST(HmcStack, RoutesRequestsToCorrectVault)
{
    HmcStack stack{HmcConfig{}};
    MemoryRequest req;
    req.id = 1;
    req.addr = 256; // second row chunk -> vault 1 under RoBaVaCo
    stack.enqueue(req);
    EXPECT_TRUE(stack.vault(1).busy());
    EXPECT_FALSE(stack.vault(0).busy());
    stack.drainAll();
}

TEST(HmcStack, DrainAllCompletesEverythingInOrder)
{
    HmcStack stack{HmcConfig{}};
    hpim::sim::Rng rng(3);
    for (std::uint64_t i = 0; i < 256; ++i) {
        MemoryRequest req;
        req.id = i;
        req.addr = rng.next() % stack.capacity();
        req.type = (i % 4 == 0) ? AccessType::Write : AccessType::Read;
        stack.enqueue(req);
    }
    auto done = stack.drainAll();
    ASSERT_EQ(done.size(), 256u);
    std::set<std::uint64_t> ids;
    for (std::size_t i = 0; i < done.size(); ++i) {
        ids.insert(done[i].id);
        if (i > 0) {
            EXPECT_LE(done[i - 1].completion, done[i].completion);
        }
        EXPECT_GT(done[i].completion, 0u);
    }
    EXPECT_EQ(ids.size(), 256u);
}

TEST(HmcStack, StreamingSpreadsLoadAcrossVaults)
{
    HmcStack stack{HmcConfig{}};
    for (std::uint64_t i = 0; i < 32 * 4; ++i) {
        MemoryRequest req;
        req.id = i;
        req.addr = i * 256; // one row chunk per request
        stack.enqueue(req);
    }
    stack.drainAll();
    for (std::uint32_t v = 0; v < stack.vaultCount(); ++v)
        EXPECT_EQ(stack.vault(v).stats().requests, 4u);
}

TEST(HmcStack, FrequencyScalingShortensService)
{
    auto run = [](double scale) {
        HmcConfig config;
        config.frequencyScale = scale;
        HmcStack stack{config};
        for (std::uint64_t i = 0; i < 128; ++i) {
            MemoryRequest req;
            req.id = i;
            req.addr = i * 64;
            stack.enqueue(req);
        }
        auto done = stack.drainAll();
        return done.back().completion;
    };
    EXPECT_LT(run(2.0), run(1.0));
}

TEST(HmcStack, HarvestEnergyAccumulatesArrayEnergy)
{
    HmcStack stack{HmcConfig{}};
    for (std::uint64_t i = 0; i < 64; ++i) {
        MemoryRequest req;
        req.id = i;
        req.addr = i * 4096;
        stack.enqueue(req);
    }
    stack.drainAll();
    EXPECT_DOUBLE_EQ(stack.energy().arrayEnergyJ(), 0.0);
    stack.harvestEnergy();
    EXPECT_GT(stack.energy().arrayEnergyJ(), 0.0);
}

TEST(HmcStack, PerVaultBandwidthConsistentWithTotal)
{
    HmcStack stack{HmcConfig{}};
    EXPECT_NEAR(stack.peakInternalBandwidth(),
                stack.perVaultBandwidth() * 32.0, 1.0);
}

TEST(HmcStackDeath, VaultIndexOutOfRangePanics)
{
    HmcStack stack{HmcConfig{}};
    EXPECT_DEATH(stack.vault(32), "out of range");
}
