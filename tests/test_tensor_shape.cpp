/**
 * @file
 * Unit tests for tensor shapes.
 */

#include <gtest/gtest.h>

#include "nn/tensor_shape.hh"

using hpim::nn::TensorShape;

TEST(TensorShape, ElementAndByteCounts)
{
    TensorShape s{32, 224, 224, 3};
    EXPECT_EQ(s.rank(), 4u);
    EXPECT_EQ(s.elems(), 32LL * 224 * 224 * 3);
    EXPECT_EQ(s.bytes(), s.elems() * 4);
    EXPECT_EQ(s.dim(1), 224);
}

TEST(TensorShape, ScalarShape)
{
    TensorShape s;
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_EQ(s.elems(), 1);
    EXPECT_EQ(s.bytes(), 4);
}

TEST(TensorShape, VectorConstructor)
{
    TensorShape s(std::vector<std::int64_t>{7, 9});
    EXPECT_EQ(s.elems(), 63);
}

TEST(TensorShape, Equality)
{
    EXPECT_EQ((TensorShape{2, 3}), (TensorShape{2, 3}));
    EXPECT_FALSE((TensorShape{2, 3}) == (TensorShape{3, 2}));
}

TEST(TensorShape, StringForm)
{
    TensorShape s{32, 224, 224, 3};
    EXPECT_EQ(s.str(), "[32, 224, 224, 3]");
    EXPECT_EQ(TensorShape{}.str(), "[]");
}

TEST(TensorShapeDeath, NonPositiveDimIsFatal)
{
    EXPECT_EXIT((TensorShape{4, 0}), testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT((TensorShape{-1}), testing::ExitedWithCode(1),
                "positive");
}

TEST(TensorShapeDeath, DimIndexOutOfRangePanics)
{
    TensorShape s{2, 2};
    EXPECT_DEATH(s.dim(2), "out of rank");
}
