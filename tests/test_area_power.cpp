/**
 * @file
 * Unit tests for the logic-die area/power design-space exploration.
 */

#include <gtest/gtest.h>

#include "model/area_power.hh"

using hpim::model::exploreDesign;
using hpim::model::LogicDieBudget;
using hpim::model::UnitCosts;

TEST(AreaPower, BaselineYieldsPaperUnitCount)
{
    // Paper SectionIV-D: 444 fixed-function PIMs beside one ARM core.
    auto point = exploreDesign(LogicDieBudget{}, UnitCosts{}, 1);
    EXPECT_EQ(point.fixedUnits, 444u);
    EXPECT_TRUE(point.feasible());
}

TEST(AreaPower, MoreCoresMeansFewerUnits)
{
    LogicDieBudget budget;
    UnitCosts costs;
    auto p1 = exploreDesign(budget, costs, 1);
    auto p4 = exploreDesign(budget, costs, 4);
    auto p16 = exploreDesign(budget, costs, 16);
    EXPECT_GT(p1.fixedUnits, p4.fixedUnits);
    EXPECT_GT(p4.fixedUnits, p16.fixedUnits);
}

TEST(AreaPower, AreaNeverExceedsComputeBudget)
{
    LogicDieBudget budget;
    UnitCosts costs;
    for (std::uint32_t cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
        auto point = exploreDesign(budget, costs, cores);
        EXPECT_LE(point.areaUsedMm2, budget.computeAreaMm2() + 1e-9);
    }
}

TEST(AreaPower, PowerBudgetChecked)
{
    LogicDieBudget budget;
    budget.powerBudgetW = 1.0; // absurdly tight
    auto point = exploreDesign(budget, UnitCosts{}, 1);
    EXPECT_FALSE(point.powerFeasible);
    EXPECT_TRUE(point.areaFeasible);
}

TEST(AreaPower, TooManyCoresIsInfeasible)
{
    LogicDieBudget budget;
    UnitCosts costs;
    auto cores_limit = static_cast<std::uint32_t>(
        budget.computeAreaMm2() / costs.armCoreAreaMm2);
    auto point = exploreDesign(budget, costs, cores_limit + 1);
    EXPECT_FALSE(point.feasible());
    EXPECT_EQ(point.fixedUnits, 0u);
}

TEST(AreaPower, PeakPowerSumsUnitContributions)
{
    UnitCosts costs;
    auto point = exploreDesign(LogicDieBudget{}, costs, 2);
    EXPECT_NEAR(point.peakPowerW,
                2 * costs.armCorePowerW
                    + point.fixedUnits * costs.fixedUnitPowerW,
                1e-9);
}
