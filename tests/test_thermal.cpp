/**
 * @file
 * Unit tests for the steady-state thermal solver and the paper's
 * placement rationale (edge banks dissipate better).
 */

#include <gtest/gtest.h>

#include "model/thermal.hh"
#include "pim/placement.hh"

using hpim::model::solveThermal;
using hpim::model::ThermalParams;
using hpim::pim::BankGrid;
using hpim::pim::placeUnits;
using hpim::pim::Placement;

TEST(Thermal, ConvergesOnUniformLoad)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.0);
    auto result = solveThermal(grid, placement, 0.015);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.maxC, 45.0); // above ambient
    EXPECT_GE(result.maxC, result.minC);
}

TEST(Thermal, ZeroPowerSitsNearAmbientPlusBackground)
{
    BankGrid grid;
    Placement empty;
    empty.unitsPerBank.assign(grid.count(), 0);
    auto result = solveThermal(grid, empty, 0.015);
    // Only the background power heats the die.
    EXPECT_LT(result.maxC - 45.0, 1.0);
}

TEST(Thermal, HotterWithMorePower)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.35);
    auto cool = solveThermal(grid, placement, 0.015);
    auto hot = solveThermal(grid, placement, 0.060);
    EXPECT_GT(hot.maxC, cool.maxC);
}

TEST(Thermal, InteriorHotterThanEdgeUnderUniformLoad)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.0);
    auto result = solveThermal(grid, placement, 0.015);
    double corner = result.tempC[0];
    double interior = result.tempC[1 * grid.cols + 3];
    EXPECT_GT(interior, corner);
}

TEST(Thermal, EdgeBiasedPlacementRunsCoolerAtPeak)
{
    // The justification for the paper's placement policy.
    BankGrid grid;
    auto biased = placeUnits(grid, 444, 0.35);
    auto uniform = placeUnits(grid, 444, 0.0);
    auto t_biased = solveThermal(grid, biased, 0.030);
    auto t_uniform = solveThermal(grid, uniform, 0.030);
    EXPECT_LE(t_biased.maxC, t_uniform.maxC + 1e-9);
}

TEST(Thermal, BaselineDesignStaysUnderJunctionLimit)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.35);
    auto result = solveThermal(grid, placement, 0.015);
    EXPECT_LT(result.maxC, 85.0);
}

TEST(ThermalDeath, PlacementGridMismatchIsFatal)
{
    BankGrid grid;
    Placement bad;
    bad.unitsPerBank.assign(7, 1);
    EXPECT_EXIT(solveThermal(grid, bad, 0.015),
                testing::ExitedWithCode(1), "banks");
}

// Property: total heat in equals heat out (power balance) --
// approximated by checking the solution is a fixed point.
TEST(ThermalProperty, SolutionIsStationary)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.35);
    ThermalParams params;
    auto result = solveThermal(grid, placement, 0.015, params);
    // Re-solving from the solution must not move temperatures.
    auto again = solveThermal(grid, placement, 0.015, params);
    for (std::size_t i = 0; i < result.tempC.size(); ++i)
        EXPECT_NEAR(result.tempC[i], again.tempC[i], 1e-6);
}
