/**
 * @file
 * Unit tests for the table/CSV output helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table_printer.hh"

using namespace hpim::harness;

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"model", "time"});
    table.addRow({"VGG-19", "1.5"});
    table.addRow({"A", "123456"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("| model  | time   |"), std::string::npos);
    EXPECT_NE(text.find("| VGG-19 | 1.5    |"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterDeath, RowAritiesChecked)
{
    TablePrinter table({"a", "b"});
    EXPECT_EXIT(table.addRow({"only one"}), testing::ExitedWithCode(1),
                "cells");
}

TEST(TablePrinterDeath, EmptyHeaderIsFatal)
{
    EXPECT_EXIT(TablePrinter({}), testing::ExitedWithCode(1),
                "at least one column");
}

TEST(Formatters, FixedDigits)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmtRatio(2.5), "2.50x");
    EXPECT_EQ(fmtPct(99.95, 1), "100.0%"); // round-half-up
    EXPECT_EQ(fmtPct(12.34, 1), "12.3%");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    banner(os, "Fig. 8");
    EXPECT_NE(os.str().find("Fig. 8"), std::string::npos);
    EXPECT_NE(os.str().find("===="), std::string::npos);
}
