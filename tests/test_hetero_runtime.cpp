/**
 * @file
 * Unit tests for the runtime facade: profiling integration, co-run
 * and the sequential baseline.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

using namespace hpim;
using namespace hpim::rt;
using baseline::makeConfig;
using baseline::SystemKind;

TEST(HeteroRuntime, TrainProfilesWhenSchedulingEnabled)
{
    auto config = makeConfig(SystemKind::HeteroPim);
    config.steps = 2;
    HeteroRuntime runtime(config);
    auto result = runtime.train(nn::buildDcgan());
    EXPECT_FALSE(result.profile.ops.empty());
    EXPECT_FALSE(result.selection.candidates.empty());
    EXPECT_GE(result.selection.coveredTimePct,
              config.offloadCoveragePct);
    EXPECT_GT(result.execution.stepSec, 0.0);
}

TEST(HeteroRuntime, NoProfilingForStaticBaselines)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    config.steps = 1;
    HeteroRuntime runtime(config);
    auto result = runtime.train(nn::buildDcgan());
    EXPECT_TRUE(result.profile.ops.empty());
    EXPECT_TRUE(result.selection.candidates.empty());
}

TEST(HeteroRuntime, StepsOverrideHonored)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    config.steps = 4;
    HeteroRuntime runtime(config);
    auto result = runtime.train(nn::buildDcgan(), 2);
    EXPECT_EQ(result.execution.stepsSimulated, 2u);
}

TEST(HeteroRuntime, CorunBeatsSequential)
{
    // The Fig. 16 headline: co-running a CNN with a guest model beats
    // running them back to back.
    auto config = makeConfig(SystemKind::HeteroPim);
    config.steps = 2;
    HeteroRuntime runtime(config);
    auto primary = nn::buildAlexNet();
    auto guest = nn::buildLstm();
    auto seq = runtime.corunSequential(primary, guest);
    auto co = runtime.corun(primary, guest);
    EXPECT_LT(co.execution.makespanSec, seq.execution.makespanSec);
}

TEST(HeteroRuntime, GuestStepsBalanceAgainstPrimary)
{
    auto config = makeConfig(SystemKind::HeteroPim);
    config.steps = 2;
    HeteroRuntime runtime(config);
    auto primary = nn::buildVgg19();
    auto guest = nn::buildWord2vec();
    // The word2vec step is tiny: many steps fit one VGG step.
    EXPECT_GT(runtime.guestSteps(primary, guest, 2), 10u);
    // A guest as big as the primary runs about the same step count.
    EXPECT_EQ(runtime.guestSteps(primary, primary, 2), 2u);
}

TEST(HeteroRuntime, SequentialReportAggregatesBothPhases)
{
    auto config = makeConfig(SystemKind::HeteroPim);
    config.steps = 2;
    HeteroRuntime runtime(config);
    auto primary = nn::buildDcgan();
    auto guest = nn::buildWord2vec();
    auto solo = runtime.train(primary).execution;
    auto seq = runtime.corunSequential(primary, guest).execution;
    EXPECT_GT(seq.makespanSec, solo.makespanSec);
    EXPECT_GT(seq.totalEnergyJ, solo.totalEnergyJ);
}

TEST(HeteroRuntime, FrequencyScaledConfigSpeedsUp)
{
    auto base = makeConfig(SystemKind::HeteroPim);
    base.steps = 2;
    auto fast = base.withFrequencyScale(2.0);
    auto graph = nn::buildAlexNet();
    auto slow_t = HeteroRuntime(base).train(graph).execution.stepSec;
    auto fast_t = HeteroRuntime(fast).train(graph).execution.stepSec;
    EXPECT_LT(fast_t, slow_t);
}
