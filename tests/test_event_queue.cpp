/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using hpim::sim::Event;
using hpim::sim::EventQueue;
using hpim::sim::LambdaEvent;
using hpim::sim::maxTick;
using hpim::sim::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_EQ(queue.nextEventTick(), maxTick);
    EXPECT_FALSE(queue.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleCallback(30, [&] { order.push_back(3); });
    queue.scheduleCallback(10, [&] { order.push_back(1); });
    queue.scheduleCallback(20, [&] { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickBreaksTiesByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        queue.scheduleCallback(5, [&order, i] { order.push_back(i); });
    queue.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityOrdersEventsAtSameTick)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleCallback(5, [&] { order.push_back(1); },
                           Event::schedulePriority);
    queue.scheduleCallback(5, [&] { order.push_back(0); },
                           Event::completionPriority);
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, AdvancesNowToEventTime)
{
    EventQueue queue;
    Tick seen = 0;
    queue.scheduleCallback(123, [&] { seen = queue.now(); });
    queue.runAll();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, DescheduleSquashesEvent)
{
    EventQueue queue;
    bool ran = false;
    LambdaEvent ev([&] { ran = true; });
    queue.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    queue.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    queue.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue queue;
    Tick fired_at = 0;
    LambdaEvent ev([&] { fired_at = queue.now(); });
    queue.schedule(&ev, 10);
    queue.reschedule(&ev, 50);
    queue.runAll();
    EXPECT_EQ(fired_at, 50u);
    EXPECT_EQ(queue.processedCount(), 1u);
}

TEST(EventQueue, RescheduleUnscheduledEventJustSchedules)
{
    EventQueue queue;
    bool ran = false;
    LambdaEvent ev([&] { ran = true; });
    queue.reschedule(&ev, 7);
    queue.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            queue.scheduleCallback(queue.now() + 10, chain);
    };
    queue.scheduleCallback(0, chain);
    queue.runAll();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue queue;
    int ran = 0;
    queue.scheduleCallback(10, [&] { ++ran; });
    queue.scheduleCallback(20, [&] { ++ran; });
    queue.scheduleCallback(30, [&] { ++ran; });
    queue.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(queue.now(), 20u);
    queue.runAll();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue queue;
    queue.runUntil(500);
    EXPECT_EQ(queue.now(), 500u);
}

TEST(EventQueue, NextEventTickSkipsSquashedEntries)
{
    EventQueue queue;
    LambdaEvent early([] {});
    queue.schedule(&early, 5);
    queue.scheduleCallback(10, [] {});
    queue.deschedule(&early);
    EXPECT_EQ(queue.nextEventTick(), 10u);
    queue.runAll();
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue queue;
    LambdaEvent a([] {}), b([] {});
    queue.schedule(&a, 1);
    queue.schedule(&b, 2);
    EXPECT_EQ(queue.size(), 2u);
    queue.deschedule(&a);
    EXPECT_EQ(queue.size(), 1u);
    queue.runAll();
    EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, RunAllHonorsLimit)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> forever = [&] {
        ++count;
        queue.scheduleCallback(queue.now() + 1, forever);
    };
    queue.scheduleCallback(0, forever);
    queue.runAll(100);
    EXPECT_EQ(count, 100);
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    EventQueue queue;
    for (Tick t = 0; t < 10; ++t)
        queue.scheduleCallback(t, [] {});
    queue.runAll();
    EXPECT_EQ(queue.processedCount(), 10u);
}

TEST(EventQueue, RescheduleAfterDescheduleFiresOnce)
{
    // The descheduled ("squashed") entry must not linger: a
    // subsequent reschedule fires exactly once, at the new tick.
    EventQueue queue;
    std::vector<Tick> fired;
    LambdaEvent ev([&] { fired.push_back(queue.now()); });
    queue.schedule(&ev, 10);
    queue.deschedule(&ev);
    queue.reschedule(&ev, 25);
    queue.runAll();
    EXPECT_EQ(fired, (std::vector<Tick>{25}));
    EXPECT_EQ(queue.processedCount(), 1u);
}

TEST(EventQueue, DescheduleRescheduleLoopKeepsHeapConsistent)
{
    // Repeated in-place removals from interior heap slots must keep
    // every back-pointer valid; firing order stays time-ordered.
    EventQueue queue;
    std::vector<int> fired;
    std::vector<LambdaEvent *> events;
    for (int i = 0; i < 32; ++i)
        events.push_back(
            new LambdaEvent([&fired, i] { fired.push_back(i); }));
    for (int i = 0; i < 32; ++i)
        queue.schedule(events[static_cast<std::size_t>(i)],
                       static_cast<Tick>(1 + (i * 7) % 31));
    // Deschedule every third event out of the middle of the heap,
    // then put them back at later ticks.
    for (int i = 0; i < 32; i += 3)
        queue.deschedule(events[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 32; i += 3)
        queue.schedule(events[static_cast<std::size_t>(i)],
                       static_cast<Tick>(100 + i));
    queue.runAll();
    EXPECT_EQ(fired.size(), 32u);
    for (auto *ev : events)
        delete ev;
}

TEST(EventQueue, InterleavedDeschedulePreservesPriorityTies)
{
    // Three same-tick events at mixed priorities; descheduling and
    // re-adding the middle one must not disturb the (priority,
    // insertion-order) contract among the survivors.
    EventQueue queue;
    std::vector<int> order;
    LambdaEvent first([&] { order.push_back(0); },
                      Event::completionPriority);
    LambdaEvent second([&] { order.push_back(1); });
    LambdaEvent third([&] { order.push_back(2); },
                      Event::schedulePriority);
    queue.schedule(&third, 5);
    queue.schedule(&second, 5);
    queue.schedule(&first, 5);
    // Pull the default-priority event out and put it back: it gets a
    // fresh sequence number but its priority class still slots it
    // between the completion and the scheduler event.
    queue.deschedule(&second);
    queue.schedule(&second, 5);
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RescheduleAssignsFreshSequenceForTieBreaks)
{
    // Sequence numbers break (when, priority) ties by *scheduling*
    // order, not construction order: rescheduling an event moves it
    // behind events already queued at that tick.
    EventQueue queue;
    std::vector<int> order;
    LambdaEvent a([&] { order.push_back(0); });
    LambdaEvent b([&] { order.push_back(1); });
    queue.schedule(&a, 5);
    queue.schedule(&b, 5);
    queue.reschedule(&a, 5); // a now sequences after b
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(EventQueue, CallbackPoolRecyclesAfterRelease)
{
    // The pooled-callback arena must reach a steady state: once every
    // in-flight callback has fired and been released, new callbacks
    // reuse pooled objects instead of growing the arena.
    EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 16; ++i)
        queue.scheduleCallback(static_cast<Tick>(1 + i),
                               [&fired] { ++fired; });
    const std::size_t peak = queue.callbackPoolCapacity();
    EXPECT_EQ(peak, 16u);
    EXPECT_EQ(queue.callbackPoolFree(), 0u);
    queue.runAll();
    EXPECT_EQ(fired, 16);
    EXPECT_EQ(queue.callbackPoolFree(), peak); // all returned
    // Steady-state churn: never more than 16 in flight again, so the
    // arena must not grow past its peak.
    for (int round = 0; round < 64; ++round) {
        for (int i = 0; i < 16; ++i)
            queue.scheduleCallback(queue.now() + 1 + i,
                                   [&fired] { ++fired; });
        queue.runAll();
    }
    EXPECT_EQ(queue.callbackPoolCapacity(), peak);
    EXPECT_EQ(queue.callbackPoolFree(), peak);
    EXPECT_EQ(fired, 16 + 64 * 16);
}

TEST(EventQueue, CallbacksSchedulingCallbacksDrawFreshPoolObjects)
{
    // A callback that schedules another callback while running must
    // not clobber its own inline captures: the new callback draws a
    // different pooled object (recycling happens after invocation).
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleCallback(1, [&] {
        order.push_back(1);
        queue.scheduleCallback(queue.now() + 1,
                               [&order] { order.push_back(2); });
    });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_GE(queue.callbackPoolCapacity(), 1u);
    EXPECT_EQ(queue.callbackPoolFree(), queue.callbackPoolCapacity());
}

TEST(EventQueue, DestructorReleasesPendingPooledCallbacks)
{
    // Destroying a queue with armed, never-fired pooled callbacks
    // must not trip the scheduled-event destructor panic.
    auto queue = std::make_unique<EventQueue>();
    int fired = 0;
    for (int i = 0; i < 4; ++i)
        queue->scheduleCallback(static_cast<Tick>(10 + i),
                                [&fired] { ++fired; });
    queue.reset(); // no panic, no leak (ASan job watches the latter)
    EXPECT_EQ(fired, 0);
}

// Property: interleaved schedule/run at random times preserves
// global time ordering.
TEST(EventQueueProperty, MonotonicProcessingUnderRandomLoad)
{
    EventQueue queue;
    std::vector<Tick> fired;
    std::uint64_t seed = 12345;
    auto next_rand = [&seed] {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        return seed >> 33;
    };
    for (int i = 0; i < 500; ++i) {
        Tick when = next_rand() % 10000;
        queue.scheduleCallback(when,
                               [&fired, &queue] {
                                   fired.push_back(queue.now());
                               });
    }
    queue.runAll();
    ASSERT_EQ(fired.size(), 500u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}
