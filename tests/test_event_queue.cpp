/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using hpim::sim::Event;
using hpim::sim::EventQueue;
using hpim::sim::LambdaEvent;
using hpim::sim::maxTick;
using hpim::sim::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_EQ(queue.nextEventTick(), maxTick);
    EXPECT_FALSE(queue.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleCallback(30, [&] { order.push_back(3); });
    queue.scheduleCallback(10, [&] { order.push_back(1); });
    queue.scheduleCallback(20, [&] { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickBreaksTiesByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        queue.scheduleCallback(5, [&order, i] { order.push_back(i); });
    queue.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityOrdersEventsAtSameTick)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleCallback(5, [&] { order.push_back(1); },
                           Event::schedulePriority);
    queue.scheduleCallback(5, [&] { order.push_back(0); },
                           Event::completionPriority);
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, AdvancesNowToEventTime)
{
    EventQueue queue;
    Tick seen = 0;
    queue.scheduleCallback(123, [&] { seen = queue.now(); });
    queue.runAll();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, DescheduleSquashesEvent)
{
    EventQueue queue;
    bool ran = false;
    LambdaEvent ev([&] { ran = true; });
    queue.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    queue.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    queue.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue queue;
    Tick fired_at = 0;
    LambdaEvent ev([&] { fired_at = queue.now(); });
    queue.schedule(&ev, 10);
    queue.reschedule(&ev, 50);
    queue.runAll();
    EXPECT_EQ(fired_at, 50u);
    EXPECT_EQ(queue.processedCount(), 1u);
}

TEST(EventQueue, RescheduleUnscheduledEventJustSchedules)
{
    EventQueue queue;
    bool ran = false;
    LambdaEvent ev([&] { ran = true; });
    queue.reschedule(&ev, 7);
    queue.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            queue.scheduleCallback(queue.now() + 10, chain);
    };
    queue.scheduleCallback(0, chain);
    queue.runAll();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue queue;
    int ran = 0;
    queue.scheduleCallback(10, [&] { ++ran; });
    queue.scheduleCallback(20, [&] { ++ran; });
    queue.scheduleCallback(30, [&] { ++ran; });
    queue.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(queue.now(), 20u);
    queue.runAll();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue queue;
    queue.runUntil(500);
    EXPECT_EQ(queue.now(), 500u);
}

TEST(EventQueue, NextEventTickSkipsSquashedEntries)
{
    EventQueue queue;
    LambdaEvent early([] {});
    queue.schedule(&early, 5);
    queue.scheduleCallback(10, [] {});
    queue.deschedule(&early);
    EXPECT_EQ(queue.nextEventTick(), 10u);
    queue.runAll();
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue queue;
    LambdaEvent a([] {}), b([] {});
    queue.schedule(&a, 1);
    queue.schedule(&b, 2);
    EXPECT_EQ(queue.size(), 2u);
    queue.deschedule(&a);
    EXPECT_EQ(queue.size(), 1u);
    queue.runAll();
    EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, RunAllHonorsLimit)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> forever = [&] {
        ++count;
        queue.scheduleCallback(queue.now() + 1, forever);
    };
    queue.scheduleCallback(0, forever);
    queue.runAll(100);
    EXPECT_EQ(count, 100);
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    EventQueue queue;
    for (Tick t = 0; t < 10; ++t)
        queue.scheduleCallback(t, [] {});
    queue.runAll();
    EXPECT_EQ(queue.processedCount(), 10u);
}

// Property: interleaved schedule/run at random times preserves
// global time ordering.
TEST(EventQueueProperty, MonotonicProcessingUnderRandomLoad)
{
    EventQueue queue;
    std::vector<Tick> fired;
    std::uint64_t seed = 12345;
    auto next_rand = [&seed] {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        return seed >> 33;
    };
    for (int i = 0; i < 500; ++i) {
        Tick when = next_rand() % 10000;
        queue.scheduleCallback(when,
                               [&fired, &queue] {
                                   fired.push_back(queue.now());
                               });
    }
    queue.runAll();
    ASSERT_EQ(fired.size(), 500u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}
