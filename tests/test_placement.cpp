/**
 * @file
 * Unit tests for the thermally-aware unit placement.
 */

#include <gtest/gtest.h>

#include "pim/placement.hh"

using hpim::pim::BankGrid;
using hpim::pim::placeUnits;

TEST(BankGrid, ExposedEdgesClassification)
{
    BankGrid grid; // 4 x 8
    EXPECT_EQ(grid.count(), 32u);
    EXPECT_EQ(grid.exposedEdges(0, 0), 2u); // corner
    EXPECT_EQ(grid.exposedEdges(0, 3), 1u); // edge
    EXPECT_EQ(grid.exposedEdges(1, 3), 0u); // interior
    EXPECT_EQ(grid.exposedEdges(3, 7), 2u); // far corner
}

TEST(Placement, ConservesTotalUnits)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.35);
    EXPECT_EQ(placement.totalUnits(), 444u);
    EXPECT_EQ(placement.unitsPerBank.size(), 32u);
}

TEST(Placement, CornerBanksGetMoreThanInterior)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.35);
    // Paper SectionIV-D: more units on edge and corner banks.
    std::uint32_t corner = placement.unitsPerBank[0];
    std::uint32_t interior = placement.unitsPerBank[1 * 8 + 3];
    EXPECT_GT(corner, interior);
}

TEST(Placement, ZeroBiasIsNearlyUniform)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 444, 0.0);
    // 444 / 32 = 13.875: every bank gets 13 or 14.
    EXPECT_EQ(placement.minPerBank(), 13u);
    EXPECT_EQ(placement.maxPerBank(), 14u);
}

TEST(Placement, Deterministic)
{
    BankGrid grid;
    auto a = placeUnits(grid, 444, 0.35);
    auto b = placeUnits(grid, 444, 0.35);
    EXPECT_EQ(a.unitsPerBank, b.unitsPerBank);
}

TEST(Placement, SmallCounts)
{
    BankGrid grid;
    auto placement = placeUnits(grid, 5, 0.35);
    EXPECT_EQ(placement.totalUnits(), 5u);
    EXPECT_EQ(placement.minPerBank(), 0u);
}

TEST(PlacementDeath, NegativeBiasIsFatal)
{
    BankGrid grid;
    EXPECT_EXIT(placeUnits(grid, 444, -0.1),
                testing::ExitedWithCode(1), "non-negative");
}

// Property sweep: conservation and monotone edge preference across
// unit counts and bias levels.
class PlacementSweep
    : public testing::TestWithParam<std::tuple<std::uint32_t, double>>
{};

TEST_P(PlacementSweep, ConservedAndEdgeBiased)
{
    auto [units, bias] = GetParam();
    BankGrid grid;
    auto placement = placeUnits(grid, units, bias);
    EXPECT_EQ(placement.totalUnits(), units);
    if (bias > 0.0 && units >= 128) {
        double edge_sum = 0.0, interior_sum = 0.0;
        int edge_n = 0, interior_n = 0;
        for (std::uint32_t r = 0; r < grid.rows; ++r) {
            for (std::uint32_t c = 0; c < grid.cols; ++c) {
                std::uint32_t u =
                    placement.unitsPerBank[r * grid.cols + c];
                if (grid.exposedEdges(r, c) > 0) {
                    edge_sum += u;
                    ++edge_n;
                } else {
                    interior_sum += u;
                    ++interior_n;
                }
            }
        }
        EXPECT_GT(edge_sum / edge_n, interior_sum / interior_n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementSweep,
    testing::Combine(testing::Values(64u, 128u, 444u, 1024u),
                     testing::Values(0.0, 0.2, 0.35, 1.0)));
