/**
 * @file
 * Unit tests for the DRAM timing parameter sets.
 */

#include <gtest/gtest.h>

#include "mem/dram_timing.hh"

using hpim::mem::ddr4Timing;
using hpim::mem::DramTiming;
using hpim::mem::hmc2Timing;

TEST(DramTiming, Hmc2MatchesPaperClock)
{
    DramTiming t = hmc2Timing();
    // 312.5 MHz -> 3200 ps (paper SectionV-A).
    EXPECT_EQ(t.tCK, 3200u);
    EXPECT_GT(t.tRAS, t.tRCD);
    EXPECT_EQ(t.burstBytes, 64u);
}

TEST(DramTiming, LatencyOrderingHoldsForBothPresets)
{
    for (const DramTiming &t : {hmc2Timing(), ddr4Timing()}) {
        EXPECT_LT(t.rowHitLatency(), t.rowClosedLatency());
        EXPECT_LT(t.rowClosedLatency(), t.rowConflictLatency());
    }
}

TEST(DramTiming, RowHitLatencyFormula)
{
    DramTiming t = hmc2Timing();
    EXPECT_EQ(t.rowHitLatency(),
              static_cast<hpim::sim::Tick>(t.tCL + t.tBurst) * t.tCK);
}

TEST(DramTiming, PeakBankBandwidthIsBurstOverCcd)
{
    DramTiming t = hmc2Timing();
    // 64 B per tCCD=2 cycles at 3.2 ns -> 10 GB/s per bank path.
    EXPECT_NEAR(t.peakBankBandwidth(), 64.0 / (2 * 3200e-12), 1e6);
}

TEST(DramTiming, ScalingHalvesCycleTime)
{
    DramTiming t = hmc2Timing();
    DramTiming fast = t.scaled(2.0);
    EXPECT_EQ(fast.tCK, 1600u);
    // Cycle-denominated constraints unchanged.
    EXPECT_EQ(fast.tRCD, t.tRCD);
    EXPECT_EQ(fast.rowHitLatency(), t.rowHitLatency() / 2);
    EXPECT_NEAR(fast.peakBankBandwidth(),
                2.0 * t.peakBankBandwidth(), 1e6);
}

TEST(DramTiming, FractionalScaleRoundsCycle)
{
    DramTiming t = hmc2Timing().scaled(1.5);
    EXPECT_NEAR(static_cast<double>(t.tCK), 3200.0 / 1.5, 1.0);
}

TEST(DramTimingDeath, NonPositiveScaleIsFatal)
{
    EXPECT_EXIT(hmc2Timing().scaled(0.0), testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(hmc2Timing().scaled(-2.0), testing::ExitedWithCode(1),
                "positive");
}

TEST(DramTiming, Ddr4IsFasterClockButLongerCyclesCounts)
{
    DramTiming hmc = hmc2Timing();
    DramTiming ddr = ddr4Timing();
    EXPECT_LT(ddr.tCK, hmc.tCK);
    EXPECT_GT(ddr.tCL, hmc.tCL);
}
