/**
 * @file
 * hpim_serve tests: framing, request/response codecs, and the
 * daemon's robustness contract -- typed overload rejection, deadline
 * expiry both queued and mid-simulation, bad-request recovery,
 * oversize-frame rejection, graceful drain (with and without the
 * grace hard-stop), byte-identical served reports, and client
 * reconnect.
 *
 * Each server test runs a real Server on its own scratch socket with
 * the IO loop on a background thread -- the same wiring as the
 * daemon binary minus the signal handlers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/failpoint.hh"
#include "harness/json.hh"
#include "harness/report_io.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/simulate.hh"

namespace {

using namespace hpim;

std::string
scratchSocket(const std::string &tag)
{
    return "/tmp/hpim_test_serve." + std::to_string(::getpid()) + "."
           + tag + ".sock";
}

/** Server + IO thread with unconditional drain on destruction. */
class TestServer
{
  public:
    explicit TestServer(serve::ServerOptions options)
        : _server(std::move(options)),
          _thread([this] { _server.run(); })
    {
    }

    ~TestServer() { stop(); }

    void
    stop()
    {
        _server.requestStop();
        if (_thread.joinable())
            _thread.join();
    }

    serve::Server &operator*() { return _server; }
    serve::Server *operator->() { return &_server; }

  private:
    serve::Server _server;
    std::thread _thread;
};

serve::ServerOptions
smallServer(const std::string &tag)
{
    serve::ServerOptions options;
    options.socketPath = scratchSocket(tag);
    options.workers = 2;
    options.admissionLimit = 4;
    return options;
}

serve::Client
makeClient(const std::string &socket_path)
{
    serve::ClientOptions options;
    options.socketPath = socket_path;
    options.ioTimeoutMs = 60'000.0; // a hang fails, never wedges
    return serve::Client(options);
}

/** Raw pipelining helper for tests the Client (strict
 *  request/response) cannot express. */
class RawConn
{
  public:
    explicit RawConn(const std::string &socket_path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        _fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(_fd, 0);
        EXPECT_EQ(::connect(_fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        timeval tv{60, 0};
        ::setsockopt(_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    ~RawConn()
    {
        if (_fd >= 0)
            ::close(_fd);
    }

    void
    sendBytes(const std::string &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(_fd, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            off += static_cast<std::size_t>(n);
        }
    }

    void
    sendFrame(const std::string &payload)
    {
        std::string wire;
        serve::appendFrame(wire, payload);
        sendBytes(wire);
    }

    /** Read one response frame; empty optional on EOF/timeout. */
    std::optional<serve::Response>
    readResponse()
    {
        char chunk[65536];
        while (true) {
            serve::FrameSplit split = serve::splitFrame(
                _rbuf, serve::defaultMaxFrameBytes);
            if (split.status == serve::FrameSplit::Status::Frame) {
                serve::Response response = serve::parseResponse(
                    std::string(split.payload));
                _rbuf.erase(0, split.frameEnd);
                return response;
            }
            ssize_t n = ::read(_fd, chunk, sizeof chunk);
            if (n <= 0)
                return std::nullopt;
            _rbuf.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** True when the daemon closed its end. */
    bool
    atEof()
    {
        char byte;
        ssize_t n = ::read(_fd, &byte, 1);
        if (n > 0)
            _rbuf.push_back(byte);
        return n == 0;
    }

  private:
    int _fd = -1;
    std::string _rbuf;
};

serve::Request
simulateRequest(std::uint64_t id, const std::string &model,
                std::uint32_t steps, double deadline_ms = 0.0)
{
    serve::Request request;
    request.id = id;
    request.kind = serve::RequestKind::Simulate;
    request.deadlineMs = deadline_ms;
    request.sim.model = model;
    request.sim.system = "hetero";
    request.sim.steps = steps;
    return request;
}

// ---------------------------------------------------------------- framing

TEST(ServeFraming, RoundTripsOneFrame)
{
    std::string wire;
    serve::appendFrame(wire, "{\"x\":1}");
    ASSERT_EQ(wire.size(), 4u + 7u);
    serve::FrameSplit split = serve::splitFrame(wire, 1024);
    ASSERT_EQ(split.status, serve::FrameSplit::Status::Frame);
    EXPECT_EQ(split.payload, "{\"x\":1}");
    EXPECT_EQ(split.frameEnd, wire.size());
}

TEST(ServeFraming, PartialHeaderAndPayloadNeedMore)
{
    std::string wire;
    serve::appendFrame(wire, "{\"x\":1}");
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        serve::FrameSplit split =
            serve::splitFrame(std::string_view(wire).substr(0, cut),
                              1024);
        EXPECT_EQ(split.status, serve::FrameSplit::Status::NeedMore)
            << "at cut " << cut;
    }
}

TEST(ServeFraming, OversizeLengthIsInvalidAtFourBytes)
{
    // 16 MiB announced against a 1 KiB cap: rejected from the header
    // alone, long before any payload arrives.
    const std::string header = {'\x01', '\x00', '\x00', '\x00'};
    serve::FrameSplit split = serve::splitFrame(header, 1024);
    ASSERT_EQ(split.status, serve::FrameSplit::Status::Invalid);
    EXPECT_EQ(split.announced, 0x01000000u);
}

TEST(ServeFraming, ZeroLengthIsInvalid)
{
    const std::string header(4, '\0');
    EXPECT_EQ(serve::splitFrame(header, 1024).status,
              serve::FrameSplit::Status::Invalid);
}

TEST(ServeFraming, BackToBackFramesSplitInOrder)
{
    std::string wire;
    serve::appendFrame(wire, "first");
    serve::appendFrame(wire, "second");
    serve::FrameSplit one = serve::splitFrame(wire, 1024);
    ASSERT_EQ(one.status, serve::FrameSplit::Status::Frame);
    EXPECT_EQ(one.payload, "first");
    serve::FrameSplit two = serve::splitFrame(
        std::string_view(wire).substr(one.frameEnd), 1024);
    ASSERT_EQ(two.status, serve::FrameSplit::Status::Frame);
    EXPECT_EQ(two.payload, "second");
}

// ----------------------------------------------------------------- codecs

TEST(ServeProtocol, RequestRoundTripsIncludingFullRangeSeed)
{
    serve::Request request = simulateRequest(7, "resnet50", 12, 250.0);
    request.sim.freqScale = 0.25;
    request.sim.progrPims = 8;
    request.sim.batch = 16;
    request.sim.rc = false;
    request.sim.faultRate = 0.001;
    request.sim.killBanks = 3;
    // Larger than int64: must survive the wire exactly.
    request.sim.faultSeed = 0xFFFFFFFFFFFFFFF5ULL;

    serve::Request parsed =
        serve::parseRequest(serve::encodeRequest(request));
    EXPECT_EQ(parsed.id, 7u);
    EXPECT_EQ(parsed.kind, serve::RequestKind::Simulate);
    EXPECT_EQ(parsed.deadlineMs, 250.0);
    EXPECT_EQ(parsed.sim.model, "resnet50");
    EXPECT_EQ(parsed.sim.steps, 12u);
    EXPECT_EQ(parsed.sim.freqScale, 0.25);
    EXPECT_EQ(parsed.sim.progrPims, 8u);
    EXPECT_EQ(parsed.sim.batch, 16);
    EXPECT_FALSE(parsed.sim.rc);
    EXPECT_TRUE(parsed.sim.op);
    EXPECT_EQ(parsed.sim.faultRate, 0.001);
    EXPECT_EQ(parsed.sim.killBanks, 3u);
    EXPECT_EQ(parsed.sim.faultSeed, 0xFFFFFFFFFFFFFFF5ULL);
}

TEST(ServeProtocol, MalformedRequestsThrowTyped)
{
    EXPECT_THROW(serve::parseRequest("not json"),
                 serve::ProtocolError);
    EXPECT_THROW(serve::parseRequest("[1,2]"), serve::ProtocolError);
    // Missing required fields.
    EXPECT_THROW(serve::parseRequest("{\"v\":1,\"id\":1}"),
                 serve::ProtocolError);
    // Wrong version.
    EXPECT_THROW(
        serve::parseRequest("{\"v\":2,\"id\":1,\"kind\":\"ping\"}"),
        serve::ProtocolError);
    // Unknown top-level field.
    EXPECT_THROW(serve::parseRequest("{\"v\":1,\"id\":1,\"kind\":"
                                     "\"ping\",\"bogus\":1}"),
                 serve::ProtocolError);
    // Unknown sim field (a typo must not silently default).
    EXPECT_THROW(
        serve::parseRequest("{\"v\":1,\"id\":1,\"kind\":\"simulate\","
                            "\"sim\":{\"stepz\":4}}"),
        serve::ProtocolError);
    // Out-of-range sim value.
    EXPECT_THROW(
        serve::parseRequest("{\"v\":1,\"id\":1,\"kind\":\"simulate\","
                            "\"sim\":{\"steps\":0}}"),
        serve::ProtocolError);
    // Unknown model.
    EXPECT_THROW(
        serve::parseRequest("{\"v\":1,\"id\":1,\"kind\":\"simulate\","
                            "\"sim\":{\"model\":\"gpt5\"}}"),
        serve::ProtocolError);
    // Faults on the analytic GPU model.
    EXPECT_THROW(
        serve::parseRequest("{\"v\":1,\"id\":1,\"kind\":\"simulate\","
                            "\"sim\":{\"system\":\"gpu\","
                            "\"fault_rate\":0.1}}"),
        serve::ProtocolError);
    // 'sim' on a non-simulate request.
    EXPECT_THROW(serve::parseRequest("{\"v\":1,\"id\":1,\"kind\":"
                                     "\"ping\",\"sim\":{}}"),
                 serve::ProtocolError);
}

TEST(ServeProtocol, ErrorResponseRoundTrips)
{
    const std::string payload = serve::encodeError(
        9, serve::ErrorCode::Overloaded, "queue full \"now\"");
    serve::Response response = serve::parseResponse(payload);
    EXPECT_EQ(response.id, 9u);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, serve::ErrorCode::Overloaded);
    EXPECT_EQ(response.message, "queue full \"now\"");
}

TEST(ServeProtocol, ErrorCodeNamesRoundTrip)
{
    for (serve::ErrorCode code :
         {serve::ErrorCode::BadRequest, serve::ErrorCode::FrameTooLarge,
          serve::ErrorCode::Overloaded,
          serve::ErrorCode::DeadlineExceeded,
          serve::ErrorCode::ShuttingDown, serve::ErrorCode::Internal}) {
        auto parsed =
            serve::errorCodeFromName(serve::errorCodeName(code));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, code);
    }
    EXPECT_FALSE(serve::errorCodeFromName("nope").has_value());
}

TEST(ServeProtocol, ReportResponseEmbedsReportByteIdentically)
{
    serve::SimulateSpec spec;
    spec.model = "alexnet";
    spec.steps = 1;
    rt::ExecutionReport report = serve::runSimulate(spec);

    serve::Response response = serve::parseResponse(
        serve::encodeReport(3, report, 1.5, 20.25));
    ASSERT_TRUE(response.ok);
    ASSERT_TRUE(response.hasReport);
    EXPECT_EQ(response.queueMs, 1.5);
    EXPECT_EQ(response.runMs, 20.25);
    // The decoded report re-serializes to the exact same bytes.
    EXPECT_EQ(harness::jsonString(response.report),
              harness::jsonString(report));
}

TEST(ServeClient, BackoffIsBoundedExponential)
{
    serve::ClientOptions options;
    options.backoffBaseMs = 50.0;
    options.backoffCapMs = 2'000.0;
    EXPECT_EQ(serve::backoffMs(options, 1), 50.0);
    EXPECT_EQ(serve::backoffMs(options, 2), 100.0);
    EXPECT_EQ(serve::backoffMs(options, 3), 200.0);
    EXPECT_EQ(serve::backoffMs(options, 6), 1'600.0);
    EXPECT_EQ(serve::backoffMs(options, 7), 2'000.0); // capped
    EXPECT_EQ(serve::backoffMs(options, 20), 2'000.0);
}

// ------------------------------------------------------------ the daemon

TEST(ServeServer, PingAndStats)
{
    TestServer server(smallServer("ping"));
    serve::Client client = makeClient(server->socketPath());

    serve::Request ping;
    ping.id = 1;
    ping.kind = serve::RequestKind::Ping;
    serve::Response pong = client.call(ping);
    ASSERT_TRUE(pong.ok);
    EXPECT_EQ(pong.kind, "pong");

    serve::Request stats;
    stats.id = 2;
    stats.kind = serve::RequestKind::Stats;
    serve::Response reply = client.call(stats);
    ASSERT_TRUE(reply.ok);
    ASSERT_FALSE(reply.statsJson.empty());
    harness::json::Value parsed =
        harness::json::parse(reply.statsJson);
    EXPECT_FALSE(parsed.at("draining").asBool());
    EXPECT_EQ(parsed.at("admission_limit").asUInt64(), 4u);
    EXPECT_EQ(parsed.at("requests").asUInt64(), 2u);
}

TEST(ServeServer, ServedReportIsByteIdenticalToLocalRun)
{
    TestServer server(smallServer("identity"));
    serve::Client client = makeClient(server->socketPath());

    serve::Request request = simulateRequest(5, "alexnet", 2);
    serve::Response response = client.call(request);
    ASSERT_TRUE(response.ok);
    ASSERT_TRUE(response.hasReport);
    EXPECT_GE(response.runMs, 0.0);

    rt::ExecutionReport local = serve::runSimulate(request.sim);
    EXPECT_EQ(harness::jsonString(response.report),
              harness::jsonString(local));
}

TEST(ServeServer, BadRequestGetsTypedErrorAndConnectionSurvives)
{
    TestServer server(smallServer("badreq"));
    RawConn conn(server->socketPath());

    conn.sendFrame("{\"v\":1,\"id\":77,\"kind\":\"simulate\","
                   "\"sim\":{\"model\":\"gpt5\"}}");
    auto error = conn.readResponse();
    ASSERT_TRUE(error.has_value());
    EXPECT_FALSE(error->ok);
    EXPECT_EQ(error->code, serve::ErrorCode::BadRequest);
    EXPECT_EQ(error->id, 77u); // best-effort id echo

    // The stream is still framed correctly: the next request works.
    serve::Request ping;
    ping.id = 78;
    ping.kind = serve::RequestKind::Ping;
    conn.sendFrame(serve::encodeRequest(ping));
    auto pong = conn.readResponse();
    ASSERT_TRUE(pong.has_value());
    EXPECT_TRUE(pong->ok);
    EXPECT_EQ(pong->id, 78u);
}

TEST(ServeServer, OversizeFrameIsRejectedAndConnectionClosed)
{
    serve::ServerOptions options = smallServer("oversize");
    options.maxFrameBytes = 256;
    TestServer server(std::move(options));
    RawConn conn(server->socketPath());

    // Announce 1 MiB against the 256-byte cap; send only the header.
    conn.sendBytes({'\x00', '\x10', '\x00', '\x00'});
    auto error = conn.readResponse();
    ASSERT_TRUE(error.has_value());
    EXPECT_FALSE(error->ok);
    EXPECT_EQ(error->code, serve::ErrorCode::FrameTooLarge);
    // After the typed error the daemon hangs up (the stream cannot
    // be resynchronized).
    EXPECT_TRUE(conn.atEof());
}

TEST(ServeServer, OverloadRejectsTypedAndAnswersEverything)
{
    serve::ServerOptions options = smallServer("overload");
    options.workers = 1;
    options.admissionLimit = 1;
    TestServer server(std::move(options));
    RawConn conn(server->socketPath());

    // Pipeline 6 requests at a 1-deep admission queue with 1 worker:
    // some complete, the spill gets typed `overloaded` -- and every
    // single one is answered. The requests must be slow enough that
    // the worker cannot drain the queue between two enqueues of the
    // same pipelined burst (a fast model here makes the spill count
    // a race), hence the big-model, many-step configuration.
    constexpr int kBurst = 6;
    for (int i = 0; i < kBurst; ++i)
        conn.sendFrame(serve::encodeRequest(
            simulateRequest(100 + i, "vgg19", 64)));

    int ok = 0, overloaded = 0;
    for (int i = 0; i < kBurst; ++i) {
        auto response = conn.readResponse();
        ASSERT_TRUE(response.has_value()) << "request " << i
                                          << " was never answered";
        if (response->ok)
            ++ok;
        else if (response->code == serve::ErrorCode::Overloaded)
            ++overloaded;
        else
            FAIL() << "unexpected error "
                   << serve::errorCodeName(response->code);
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(overloaded, 1);
    EXPECT_EQ(ok + overloaded, kBurst);
}

TEST(ServeServer, DeadlineExpiresWhileQueued)
{
    serve::ServerOptions options = smallServer("dlqueue");
    options.workers = 1;
    options.admissionLimit = 4;
    TestServer server(std::move(options));
    RawConn conn(server->socketPath());

    // A slow request occupies the only worker; the microscopic
    // deadline behind it expires before a worker ever picks it up.
    conn.sendFrame(serve::encodeRequest(
        simulateRequest(1, "alexnet", 16)));
    conn.sendFrame(serve::encodeRequest(
        simulateRequest(2, "vgg19", 91, 0.001)));

    auto first = conn.readResponse();
    auto second = conn.readResponse();
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(first->ok);
    ASSERT_FALSE(second->ok);
    EXPECT_EQ(second->code, serve::ErrorCode::DeadlineExceeded);
    EXPECT_NE(second->message.find("queue"), std::string::npos);
}

TEST(ServeServer, DeadlineExpiresMidSimulation)
{
    TestServer server(smallServer("dlrun"));
    serve::Client client = makeClient(server->socketPath());

    // Runs immediately (idle workers) but cannot finish 4001 VGG-19
    // steps in a millisecond: expires at a phase boundary.
    serve::Response response =
        client.call(simulateRequest(1, "vgg19", 4'001, 1.0));
    ASSERT_FALSE(response.ok);
    EXPECT_EQ(response.code, serve::ErrorCode::DeadlineExceeded);
    EXPECT_NE(response.message.find("phase"), std::string::npos);
}

TEST(ServeServer, DrainFinishesInFlightWorkAndStopsAccepting)
{
    TestServer server(smallServer("drain"));
    RawConn conn(server->socketPath());

    // In-flight request, then stop before reading the response.
    conn.sendFrame(serve::encodeRequest(
        simulateRequest(1, "alexnet", 8)));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server->requestStop();

    // The admitted request still completes and its response is
    // flushed before run() returns.
    auto response = conn.readResponse();
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->ok);

    server.stop(); // joins run()
    EXPECT_GE(server->drainMs(), 0.0);

    // The socket is gone: new connections fail.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server->socketPath().c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ::close(fd);
}

TEST(ServeServer, DrainingDaemonRejectsNewWorkTyped)
{
    TestServer server(smallServer("drainreject"));
    RawConn conn(server->socketPath());

    // Park a genuinely slow request so the drain stays open while we
    // poke at it, then stop.
    conn.sendFrame(serve::encodeRequest(
        simulateRequest(1, "vgg19", 9'001)));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server->requestStop();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // The established connection is still served during the drain --
    // but simulate requests on it are rejected typed.
    conn.sendFrame(serve::encodeRequest(
        simulateRequest(2, "alexnet", 1)));

    // The rejection is generated inline while request 1 is still
    // simulating, so responses arrive in completion order: match by
    // id, not arrival order.
    std::map<std::uint64_t, serve::Response> by_id;
    for (int i = 0; i < 2; ++i) {
        auto response = conn.readResponse();
        ASSERT_TRUE(response.has_value());
        by_id[response->id] = *response;
    }
    ASSERT_EQ(by_id.count(1u), 1u);
    ASSERT_EQ(by_id.count(2u), 1u);
    EXPECT_TRUE(by_id[1].ok);
    ASSERT_FALSE(by_id[2].ok);
    EXPECT_EQ(by_id[2].code, serve::ErrorCode::ShuttingDown);
}

TEST(ServeServer, DrainGraceHardStopsEndlessWork)
{
    serve::ServerOptions options = smallServer("graceston");
    options.workers = 1;
    options.drainGraceMs = 50.0;
    TestServer server(std::move(options));
    RawConn conn(server->socketPath());

    // A deadline-less request that would run for a very long time.
    conn.sendFrame(serve::encodeRequest(
        simulateRequest(1, "vgg19", 7'001)));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server->requestStop();

    // The grace expires, the global stop unwinds the simulation, the
    // response is a typed shutting_down -- and run() returns instead
    // of waiting minutes.
    auto response = conn.readResponse();
    ASSERT_TRUE(response.has_value());
    ASSERT_FALSE(response->ok);
    EXPECT_EQ(response->code, serve::ErrorCode::ShuttingDown);
    server.stop();
}

TEST(ServeServer, SharedMemoCacheServesRepeatsFromMemo)
{
    TestServer server(smallServer("memo"));
    serve::Client client = makeClient(server->socketPath());

    serve::Request request = simulateRequest(1, "dcgan", 3);
    serve::Response first = client.call(request);
    request.id = 2;
    serve::Response second = client.call(request);
    ASSERT_TRUE(first.ok);
    ASSERT_TRUE(second.ok);
    EXPECT_EQ(harness::jsonString(first.report),
              harness::jsonString(second.report));

    serve::Request stats;
    stats.id = 3;
    stats.kind = serve::RequestKind::Stats;
    serve::Response reply = client.call(stats);
    ASSERT_TRUE(reply.ok);
    harness::json::Value parsed =
        harness::json::parse(reply.statsJson);
    // At least the repeat must have hit the process-wide memo cache.
    EXPECT_GE(parsed.at("memo").at("hits").asUInt64(), 1u);
    // The delta-evaluation counters are part of the stats contract.
    EXPECT_GE(parsed.at("memo").at("partial_hits").asUInt64(), 0u);
    EXPECT_GE(parsed.at("memo").at("evictions").asUInt64(), 0u);
    // No cap was configured for this daemon.
    EXPECT_EQ(parsed.at("memo").at("max_entries").asUInt64(), 0u);
}

TEST(ServeClient, ReconnectsToARestartedDaemonTransparently)
{
    const std::string socket_path = scratchSocket("reconnect");
    serve::ClientOptions client_options;
    client_options.socketPath = socket_path;
    client_options.ioTimeoutMs = 60'000.0;
    client_options.backoffBaseMs = 5.0;
    serve::Client client(client_options);

    serve::Request ping;
    ping.id = 1;
    ping.kind = serve::RequestKind::Ping;

    {
        serve::ServerOptions options;
        options.socketPath = socket_path;
        options.workers = 1;
        TestServer server(std::move(options));
        EXPECT_TRUE(client.call(ping).ok);
    } // daemon gone; the client still holds the dead connection

    serve::ServerOptions options;
    options.socketPath = socket_path;
    options.workers = 1;
    TestServer server(std::move(options));
    // One transparent reconnect+resend; no error surfaces.
    ping.id = 2;
    serve::Response pong = client.call(ping);
    EXPECT_TRUE(pong.ok);
    EXPECT_EQ(pong.id, 2u);
}

TEST(ServeClient, UnreachableDaemonFailsAfterBoundedRetries)
{
    serve::ClientOptions options;
    options.socketPath = "/tmp/hpim_test_serve.nowhere.sock";
    options.connectAttempts = 2;
    options.backoffBaseMs = 1.0;
    serve::Client client(options);
    serve::Request ping;
    ping.id = 1;
    ping.kind = serve::RequestKind::Ping;
    EXPECT_THROW(client.call(ping), serve::ProtocolError);
}

TEST(ServeServer, ReplacesStaleSocketButRefusesLiveDaemon)
{
    const std::string socket_path = scratchSocket("stale");
    // Plant a stale socket file nobody listens on.
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // bound but never listened: stale on disk
    }

    // A new daemon must replace it and come up serving.
    serve::ServerOptions options;
    options.socketPath = socket_path;
    options.workers = 1;
    TestServer server(std::move(options));
    serve::Client client = makeClient(socket_path);
    serve::Request ping;
    ping.id = 1;
    ping.kind = serve::RequestKind::Ping;
    EXPECT_TRUE(client.call(ping).ok);
}

// ------------------------------------------------- host-IO fail points

/** Arms a fail-point spec for one scope; always disarms on exit so a
 *  failing EXPECT cannot leak a chaos program into later tests. */
struct ArmedFailPoints
{
    explicit ArmedFailPoints(const std::string &spec)
    {
        harness::configureFailPoints(spec);
    }

    ~ArmedFailPoints() { harness::clearFailPoints(); }
};

TEST(ServeFailPoints, ServeSitesAreRegistered)
{
    // server.cc is linked into this binary, so its static sites are
    // live: the daemon-side IO boundaries the chaos harness arms.
    std::vector<std::string> sites = harness::failPointSites();
    for (const char *expected :
         {"serve.send", "serve.recv", "serve.trace.export"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), expected),
                  sites.end())
            << "site '" << expected << "' is not registered";
    }
}

TEST(ServeFailPoints, EintrStormOnSocketIoIsInvisible)
{
    // Injected EINTR on every few send()/recv() calls must be
    // absorbed by the daemon's bounded retry loop: every request is
    // answered normally, no connection is torn.
    TestServer server(smallServer("fp-eintr"));
    serve::Client client = makeClient(server->socketPath());
    ArmedFailPoints armed(
        "serve.send=every(3):eintr;serve.recv=every(4):eintr");
    for (int i = 0; i < 12; ++i) {
        serve::Request ping;
        ping.id = 100 + i;
        ping.kind = serve::RequestKind::Ping;
        EXPECT_TRUE(client.call(ping).ok) << "request " << i;
    }
}

TEST(ServeFailPoints, ShortSendsReassembleByteIdentical)
{
    // Short socket writes fragment response frames; the daemon's
    // write loop and the client's frame splitter must reassemble
    // them with no byte lost. A simulate response is the probe: its
    // embedded report must match an uninjected local run exactly.
    TestServer server(smallServer("fp-short"));
    serve::Client client = makeClient(server->socketPath());

    serve::Request request;
    request.id = 1;
    request.kind = serve::RequestKind::Simulate;
    request.sim.model = "alexnet";
    request.sim.system = "hetero";
    request.sim.steps = 1;
    serve::Response clean = client.call(request);
    ASSERT_TRUE(clean.ok);

    ArmedFailPoints armed("serve.send=every(2):short(7)");
    request.id = 2;
    serve::Response fragmented = client.call(request);
    ASSERT_TRUE(fragmented.ok);
    EXPECT_EQ(harness::jsonString(fragmented.report),
              harness::jsonString(clean.report));
}

TEST(ServeFailPoints, HardSendFaultTearsConnectionNotDaemon)
{
    // A hard EIO on a response send tears that one connection. The
    // client reconnects and resends (idempotent request), the daemon
    // keeps serving, and a clean probe afterwards succeeds.
    TestServer server(smallServer("fp-eio"));
    serve::Client client = makeClient(server->socketPath());
    {
        ArmedFailPoints armed("serve.send=after(1):eio");
        for (int i = 0; i < 6; ++i) {
            serve::Request ping;
            ping.id = 200 + i;
            ping.kind = serve::RequestKind::Ping;
            EXPECT_TRUE(client.call(ping).ok) << "request " << i;
        }
    }
    serve::Request ping;
    ping.id = 300;
    ping.kind = serve::RequestKind::Ping;
    EXPECT_TRUE(client.call(ping).ok) << "daemon died in the storm";
}

TEST(ServeFailPoints, HardRecvFaultTearsConnectionNotDaemon)
{
    TestServer server(smallServer("fp-recv"));
    {
        ArmedFailPoints armed("serve.recv=after(1):eio");
        serve::Client client = makeClient(server->socketPath());
        for (int i = 0; i < 6; ++i) {
            serve::Request ping;
            ping.id = 400 + i;
            ping.kind = serve::RequestKind::Ping;
            EXPECT_TRUE(client.call(ping).ok) << "request " << i;
        }
    }
    serve::Client probe = makeClient(server->socketPath());
    serve::Request ping;
    ping.id = 500;
    ping.kind = serve::RequestKind::Ping;
    EXPECT_TRUE(probe.call(ping).ok) << "daemon died in the storm";
}

} // namespace
