/**
 * @file
 * Unit tests for the op-by-op nn::Builder (docs/GRAPHS.md): per-op
 * shape inference and its edge cases, the CnnBuilder-equivalence
 * contract (byte-identical op streams, so equal signatures), the
 * pluggable optimizer, gradient accumulation at fan-out, and the
 * death tests for invalid shapes and foreign/dangling refs.
 */

#include <gtest/gtest.h>

#include <string>

#include "nn/builder.hh"
#include "nn/graph_builder.hh"

using namespace hpim::nn;

namespace {

bool
hasLabel(const Graph &g, const std::string &label)
{
    for (const Operation &op : g.ops())
        if (op.label == label)
            return true;
    return false;
}

} // namespace

// ------------------------------------------------------ shape inference

TEST(GraphBuilder, ConvOddStrideRoundsUp)
{
    Builder b("t");
    // 13x13 at stride 3 -> ceil(13/3) = 5.
    auto x = b.conv2d(b.input(TensorShape{2, 13, 13, 3}), 3, 8, 3);
    EXPECT_EQ(b.shape(x), (TensorShape{2, 5, 5, 8}));
}

TEST(GraphBuilder, NonSquarePoolingInfersPerAxis)
{
    Builder b("t");
    // LSTM/W2V-style wide activations pool asymmetrically.
    auto x = b.maxPool(b.input(TensorShape{2, 24, 36, 4}),
                       /*kh=*/3, /*kw=*/2, /*sh=*/3, /*sw=*/2);
    EXPECT_EQ(b.shape(x), (TensorShape{2, 8, 18, 4}));
    Builder b2("t");
    auto y = b2.avgPool(b2.input(TensorShape{2, 24, 36, 4}), 2, 6, 2, 6);
    EXPECT_EQ(b2.shape(y), (TensorShape{2, 12, 6, 4}));
}

TEST(GraphBuilder, FlattenAfterPoolCollapsesSpatialDims)
{
    Builder b("t");
    auto x = b.input(TensorShape{4, 16, 16, 8});
    x = b.maxPool(x, 2, 2);
    x = b.flatten(x);
    EXPECT_EQ(b.shape(x), (TensorShape{4, 8 * 8 * 8}));
}

TEST(GraphBuilder, DeconvUpsamples)
{
    Builder b("t");
    auto x = b.deconv2d(b.input(TensorShape{2, 7, 7, 64}), 5, 32, 2);
    EXPECT_EQ(b.shape(x), (TensorShape{2, 14, 14, 32}));
}

TEST(GraphBuilder, MatmulAndTransposeShapes)
{
    Builder b("t");
    auto a = b.input(TensorShape{8, 32});
    auto t = b.transpose(a);
    EXPECT_EQ(b.shape(t), (TensorShape{32, 8}));
    auto s = b.matmul(a, t);
    EXPECT_EQ(b.shape(s), (TensorShape{8, 8}));
    auto m = b.matmul(b.softmax(s), a);
    EXPECT_EQ(b.shape(m), (TensorShape{8, 32}));
}

// ------------------------------------------- CnnBuilder equivalence

TEST(GraphBuilder, MatchesCnnBuilderOpStream)
{
    CnnBuilder legacy("net", TensorShape{2, 16, 16, 3});
    legacy.conv(3, 8, 1).maxPool(2, 2).fc(10, false);
    Graph expected = legacy.finish();

    Builder b("net");
    auto x = b.input(TensorShape{2, 16, 16, 3});
    x = b.conv2d(x, 3, 8, 1);
    x = b.maxPool(x, 2, 2);
    x = b.flatten(x);
    x = b.dense(x, 10, false);
    Graph got = b.trainingStep(x, Optimizer::Adam);

    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(got.signature(), expected.signature());
}

TEST(GraphBuilder, ForwardOnlyMatchesCnnBuilder)
{
    CnnBuilder legacy("net", TensorShape{1, 28, 28, 1});
    legacy.conv(5, 6, 1).avgPool(2, 2).fc(10, false);
    Graph expected = legacy.finishForwardOnly();

    Builder b("net");
    auto x = b.input(TensorShape{1, 28, 28, 1});
    x = b.conv2d(x, 5, 6, 1);
    x = b.avgPool(x, 2, 2);
    x = b.flatten(x);
    x = b.dense(x, 10, false);
    Graph got = b.finishForward();

    EXPECT_EQ(got.signature(), expected.signature());
    EXPECT_EQ(got.countType(OpType::ApplyAdam), 0u);
    EXPECT_EQ(got.countType(OpType::SoftmaxGrad), 0u);
}

// ------------------------------------------------- training-step mode

TEST(GraphBuilder, SgdOptimizerSwapsApplyOps)
{
    Builder b("t");
    auto x = b.dense(b.input(TensorShape{4, 32}), 10, false);
    Graph g = b.trainingStep(x, Optimizer::Sgd);
    EXPECT_EQ(g.countType(OpType::ApplyAdam), 0u);
    // dense kernel + bias.
    EXPECT_EQ(g.countType(OpType::ApplySgd), 2u);
}

TEST(GraphBuilder, ResidualFanOutAccumulatesGradients)
{
    Builder b("t");
    auto in = b.input(TensorShape{4, 32});
    auto h = b.dense(in, 32, false);  // consumed twice below
    auto m = b.dense(h, 32, false);
    auto r = b.add(m, h);
    auto logits = b.dense(r, 10, false);
    Graph g = b.trainingStep(logits, Optimizer::Adam);

    // h's two gradient contributions (through m and through the
    // residual Add) merge in one accumulation op.
    EXPECT_TRUE(hasLabel(g, "fc1/AddGrad_0"));
    // Both matmul operand gradients exist for the interior layers.
    EXPECT_GE(g.countType(OpType::MatMulGradInputs), 2u);
}

TEST(GraphBuilder, MatmulBackpropsBothOperands)
{
    Builder b("t");
    auto a = b.input(TensorShape{8, 16});
    auto q = b.dense(a, 16, false);
    auto k = b.dense(a, 16, false);
    auto s = b.matmul(q, b.transpose(k));
    auto logits = b.dense(b.matmul(b.softmax(s), q), 10, false);
    Graph g = b.trainingStep(logits, Optimizer::Adam);

    EXPECT_TRUE(hasLabel(g, "matmul_2/MatMul_grad_a"));
    EXPECT_TRUE(hasLabel(g, "matmul_2/MatMul_grad_b"));
    EXPECT_EQ(g.countType(OpType::SoftmaxGrad), 2u); // attn + loss
}

TEST(GraphBuilder, LayerNormEmitsGradAndOptimizer)
{
    Builder b("t");
    auto x = b.layerNorm(b.dense(b.input(TensorShape{4, 32}), 32,
                                 false));
    Graph g = b.trainingStep(b.dense(x, 10, false), Optimizer::Adam);
    EXPECT_TRUE(hasLabel(g, "ln_1/LayerNorm"));
    EXPECT_TRUE(hasLabel(g, "ln_1/LayerNormGrad"));
    // dense x2 (kernel+bias each) + layer-norm scale/offset.
    EXPECT_EQ(g.countType(OpType::ApplyAdam), 5u);
}

// ------------------------------------------------------- death tests

TEST(GraphBuilderDeath, DanglingRefIsFatal)
{
    Builder b("t");
    TensorRef dangling;
    EXPECT_DEATH(b.relu(dangling), "invalid");
}

TEST(GraphBuilderDeath, ForeignRefIsFatal)
{
    Builder b1("a"), b2("b");
    auto x = b1.input(TensorShape{2, 8});
    EXPECT_DEATH(b2.relu(x), "different Builder");
}

TEST(GraphBuilderDeath, DenseOnRank4IsFatal)
{
    Builder b("t");
    auto x = b.input(TensorShape{2, 8, 8, 3});
    EXPECT_DEATH(b.dense(x, 10), "rank-2");
}

TEST(GraphBuilderDeath, MatmulDimMismatchIsFatal)
{
    Builder b("t");
    auto a = b.input(TensorShape{4, 8});
    auto c = b.input(TensorShape{4, 8}); // inner dims 8 vs 4 clash
    EXPECT_DEATH(b.matmul(a, c), "matmul");
}

TEST(GraphBuilderDeath, AddShapeMismatchIsFatal)
{
    Builder b("t");
    auto a = b.input(TensorShape{4, 8});
    auto c = b.input(TensorShape{4, 9});
    EXPECT_DEATH(b.add(a, c), "same-shaped");
}

TEST(GraphBuilderDeath, ConvOnFlatTensorIsFatal)
{
    Builder b("t");
    auto x = b.input(TensorShape{4, 64});
    EXPECT_DEATH(b.conv2d(x, 3, 8, 1), "NHWC");
}

TEST(GraphBuilderDeath, TrainingStepOnRawInputIsFatal)
{
    Builder b("t");
    auto x = b.input(TensorShape{4, 10});
    b.relu(x); // tape is non-empty; the input check itself must fire
    EXPECT_DEATH(b.trainingStep(x), "graph input");
}

TEST(GraphBuilderDeath, UseAfterFinishIsFatal)
{
    Builder b("t");
    auto x = b.dense(b.input(TensorShape{4, 16}), 10, false);
    Graph g = b.trainingStep(x);
    EXPECT_DEATH(b.input(TensorShape{2, 2}), "finished");
}

TEST(GraphBuilderDeath, EmptyModelIsFatal)
{
    Builder b("t");
    auto x = b.input(TensorShape{4, 10});
    EXPECT_DEATH(b.trainingStep(x), "empty model");
}
