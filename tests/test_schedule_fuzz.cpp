/**
 * @file
 * Property/fuzz test of the executor and schedule validator: ~200
 * random (graph, config) points -- random DAG shapes, op mixes and
 * batch sizes crossed with random SystemConfigs (pipeline window,
 * PIM counts, pimManaged guests) -- must all produce schedules with
 * zero validator violations and reports whose invariants hold
 * (non-negative times/energy, device busy time <= makespan).
 *
 * Each point draws from its own sim::Rng stream
 * (Rng::streamSeed(base, i)), so a failure reproduces from the
 * printed point index alone. The points execute on the sweep engine,
 * which also exercises the thread pool under the sanitizer jobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "nn/graph.hh"
#include "nn/graph_builder.hh"
#include "nn/op_cost.hh"
#include "rt/executor.hh"
#include "rt/schedule_validator.hh"
#include "rt/system_config.hh"

using namespace hpim;
using nn::OpType;

namespace {

constexpr std::size_t numFuzzPoints = 200;
constexpr std::uint64_t fuzzBaseSeed = 0xf022ed5eedULL;
constexpr std::uint64_t faultFuzzBaseSeed = 0xfa17f022edULL;
constexpr std::uint64_t builderFuzzBaseSeed = 0xb117de2f022ULL;

/** Append one random op, depending on up to 3 earlier ops. */
void
addRandomOp(nn::Graph &graph, sim::Rng &rng, std::uint32_t index,
            std::int64_t batch)
{
    std::vector<nn::OpId> inputs;
    if (index > 0) {
        std::set<nn::OpId> chosen;
        std::uint64_t fanin = rng.below(4);
        for (std::uint64_t d = 0; d < fanin; ++d)
            chosen.insert(
                static_cast<nn::OpId>(rng.below(index)));
        inputs.assign(chosen.begin(), chosen.end());
    }

    std::string label = "op" + std::to_string(index);
    switch (rng.below(10)) {
      case 0: { // fully fixed-function: matmul
        std::int64_t m = batch;
        std::int64_t k = rng.inRange(4, 64);
        std::int64_t n = rng.inRange(4, 64);
        graph.add(OpType::MatMul, label, nn::matmulCost(m, k, n),
                  nn::fixedParallelism(OpType::MatMul, k,
                                       double(m * n)),
                  inputs);
        break;
      }
      case 1: { // fully fixed-function: conv
        nn::TensorShape in{batch, rng.inRange(8, 32),
                           rng.inRange(8, 32), rng.inRange(1, 16)};
        std::int64_t k = 1 + 2 * rng.inRange(0, 2); // 1/3/5
        std::int64_t c_out = rng.inRange(1, 32);
        graph.add(OpType::Conv2D, label,
                  nn::conv2dCost(in, k, c_out, 1),
                  nn::fixedParallelism(OpType::Conv2D, k * k * in.dim(3),
                                       double(in.dim(1) * in.dim(2)
                                              * c_out)),
                  inputs);
        break;
      }
      case 2: { // elementwise fixed-function
        OpType type = rng.chance(0.5) ? OpType::Mul : OpType::Add;
        nn::TensorShape shape{batch, rng.inRange(16, 512)};
        graph.add(type, label, nn::elementwiseCost(type, shape),
                  nn::fixedParallelism(type, 1, double(shape.elems())),
                  inputs);
        break;
      }
      case 3: { // recursive-class: matmul gradient
        std::int64_t m = batch;
        std::int64_t k = rng.inRange(4, 64);
        std::int64_t n = rng.inRange(4, 64);
        OpType type = rng.chance(0.5) ? OpType::MatMulGradWeights
                                      : OpType::MatMulGradInputs;
        graph.add(type, label, nn::matmulCost(m, k, n),
                  nn::fixedParallelism(type, k, double(m * n)),
                  inputs);
        break;
      }
      case 4: { // recursive-class: conv filter gradient
        nn::TensorShape in{batch, rng.inRange(8, 16),
                           rng.inRange(8, 16), rng.inRange(1, 8)};
        std::int64_t k = 3;
        std::int64_t c_out = rng.inRange(1, 16);
        graph.add(OpType::Conv2DBackpropFilter, label,
                  nn::conv2dBackpropFilterCost(in, k, c_out, 1),
                  nn::fixedParallelism(OpType::Conv2DBackpropFilter,
                                       k * k * in.dim(3),
                                       double(in.dim(1) * in.dim(2))),
                  inputs);
        break;
      }
      case 5: { // recursive-class: bias gradient
        nn::TensorShape shape{batch, rng.inRange(8, 32),
                              rng.inRange(8, 32), rng.inRange(1, 16)};
        graph.add(OpType::BiasAddGrad, label,
                  nn::biasAddGradCost(shape, shape.dim(3)),
                  nn::fixedParallelism(OpType::BiasAddGrad,
                                       shape.elems()
                                           / std::max<std::int64_t>(
                                               shape.dim(3), 1),
                                       double(shape.dim(3))),
                  inputs);
        break;
      }
      case 6: { // programmable-only activation
        OpType type = rng.chance(0.5)
                          ? OpType::Relu
                          : (rng.chance(0.5) ? OpType::Tanh
                                             : OpType::Sigmoid);
        nn::TensorShape shape{batch, rng.inRange(16, 256)};
        graph.add(type, label, nn::activationCost(type, shape),
                  nn::fixedParallelism(type, 1, 0.0), inputs);
        break;
      }
      case 7: { // programmable-only pooling
        nn::TensorShape in{batch, rng.inRange(8, 32),
                           rng.inRange(8, 32), rng.inRange(1, 16)};
        graph.add(OpType::MaxPool, label,
                  nn::poolCost(OpType::MaxPool, in, 2, 2),
                  nn::fixedParallelism(OpType::MaxPool, 1, 0.0),
                  inputs);
        break;
      }
      case 8: { // programmable-only optimizer step
        graph.add(OpType::ApplyAdam, label,
                  nn::applyAdamCost(rng.inRange(256, 1 << 16)),
                  nn::fixedParallelism(OpType::ApplyAdam, 1, 0.0),
                  inputs);
        break;
      }
      default: { // data movement
        OpType type = rng.chance(0.5) ? OpType::Slice : OpType::Concat;
        graph.add(type, label,
                  nn::dataMovementCost(
                      double(rng.inRange(1 << 10, 1 << 22))),
                  nn::fixedParallelism(type, 1, 0.0), inputs);
        break;
      }
    }
}

nn::Graph
randomGraph(sim::Rng &rng, const std::string &name)
{
    nn::Graph graph(name);
    std::int64_t batch = 1 << rng.inRange(0, 6); // 1..64
    auto ops = static_cast<std::uint32_t>(rng.inRange(5, 40));
    for (std::uint32_t i = 0; i < ops; ++i)
        addRandomOp(graph, rng, i, batch);
    return graph;
}

/**
 * A random but always shape-legal DAG through the public nn::Builder
 * (docs/GRAPHS.md): an NHWC conv/pool/norm phase, flatten, then a
 * rank-2 phase mixing dense layers, residual adds, and attention
 * motifs (matmul over a transpose, softmax, mix), closed either as a
 * training step (random optimizer, random extra loss Muls) or
 * forward-only. Exercises the same autodiff/fan-out machinery user
 * graphs go through before they reach the executor.
 */
nn::Graph
randomBuilderGraph(sim::Rng &rng, const std::string &name)
{
    nn::Builder b(name);
    std::int64_t batch = 1 << rng.inRange(0, 4); // 1..16
    nn::TensorRef x = b.input(
        nn::TensorShape{batch, 8 * rng.inRange(1, 4),
                        8 * rng.inRange(1, 4), rng.inRange(1, 8)});

    auto spatial_ops = static_cast<std::uint32_t>(rng.inRange(1, 5));
    for (std::uint32_t i = 0; i < spatial_ops; ++i) {
        std::int64_t h = b.shape(x).dim(1), w = b.shape(x).dim(2);
        switch (rng.below(5)) {
          case 0: {
            std::int64_t k = 1 + 2 * rng.inRange(0, 2); // 1/3/5
            if (k > std::min(h, w))
                k = 1;
            x = b.conv2d(x, k, rng.inRange(1, 16),
                         rng.chance(0.3) ? 2 : 1, rng.chance(0.7));
            break;
          }
          case 1:
            if (h >= 2 && w >= 2) {
                // Occasionally a non-square window/stride.
                if (rng.chance(0.3) && h >= 3)
                    x = b.maxPool(x, 3, 2, 3, 2);
                else if (rng.chance(0.5))
                    x = b.maxPool(x, 2, 2);
                else
                    x = b.avgPool(x, 2, 2);
            }
            break;
          case 2: x = b.batchNorm(x); break;
          case 3: x = b.dropout(x); break;
          default: x = b.relu(x); break;
        }
    }
    x = b.flatten(x);

    auto flat_ops = static_cast<std::uint32_t>(rng.inRange(1, 6));
    nn::TensorRef prev = x;
    for (std::uint32_t i = 0; i < flat_ops; ++i) {
        nn::TensorRef before = x;
        switch (rng.below(7)) {
          case 0: x = b.dense(x, rng.inRange(8, 64), rng.chance(0.5));
                  break;
          case 1: x = b.layerNorm(x); break;
          case 2: x = b.dropout(x); break;
          case 3: x = rng.chance(0.5) ? b.tanh(x) : b.sigmoid(x);
                  break;
          case 4: x = b.mulChain(x); break;
          case 5: { // attention motif: x @ x^T, softmax, re-mix
            if (b.shape(x).dim(0) <= 64) {
                auto scores = b.matmul(x, b.transpose(x));
                x = b.matmul(b.softmax(scores), x);
            }
            break;
          }
          default: // residual fan-out when the shape allows it
            if (b.shape(x) == b.shape(prev))
                x = rng.chance(0.5) ? b.add(x, prev) : b.mul(x, prev);
            break;
        }
        prev = before;
    }

    auto logits = b.dense(x, rng.inRange(2, 32), false);
    if (rng.chance(0.6)) {
        return b.trainingStep(logits,
                              rng.chance(0.5) ? nn::Optimizer::Adam
                                              : nn::Optimizer::Sgd,
                              rng.below(3));
    }
    return b.finishForward();
}

rt::SystemConfig
randomConfig(sim::Rng &rng)
{
    rt::SystemConfig config;
    config.name = "fuzz";
    config.hasFixedPim = rng.chance(0.7);
    config.hasProgrPim = rng.chance(0.7);
    config.progrPimCount =
        config.hasProgrPim
            ? static_cast<std::uint32_t>(rng.inRange(1, 4))
            : 1;
    config.dynamicScheduling = rng.chance(0.5);
    // RC needs both the programmable PIM (control part) and the
    // fixed pool (multiply/add part).
    config.recursiveKernels =
        config.hasProgrPim && config.hasFixedPim && rng.chance(0.5);
    config.operationPipeline = rng.chance(0.5);
    config.pipelineDepth =
        static_cast<std::uint32_t>(rng.inRange(1, 3));
    config.fixed.totalUnits =
        static_cast<std::uint32_t>(rng.inRange(16, 444));
    config.hostDrivenMaxUnits =
        static_cast<std::uint32_t>(rng.inRange(8, 192));
    config.offloadCoveragePct = rng.uniform(30.0, 99.0);
    config.hostCoordinationFloor = rng.uniform(0.0, 0.75);
    return config;
}

/** Arm the resilience layer with a random fault schedule. */
void
randomFaults(rt::SystemConfig &config, sim::Rng &rng)
{
    config.faults.enabled = true;
    config.faults.seed = rng.next();
    // Mostly moderate rates, occasionally certain failure so the
    // degradation ladder's CPU rung gets exercised too.
    config.faults.transientRatePerOp =
        rng.chance(0.15) ? 1.0 : rng.uniform(0.0, 0.05);
    config.faults.stallRatePerOp =
        rng.chance(0.1) ? 1.0 : rng.uniform(0.0, 0.02);
    config.faults.maxAttempts =
        static_cast<std::uint32_t>(rng.inRange(1, 4));
    config.faults.killBanks = static_cast<std::uint32_t>(
        rng.below(std::max(config.fixed.banks / 2, 1u) + 1));
    config.faults.killSpreadSec = rng.uniform(1e-4, 0.05);
    // Sometimes drop the threshold below the solved bank
    // temperatures so throttling actually engages.
    config.faults.throttleTempC =
        rng.chance(0.3) ? rng.uniform(0.0, 50.0) : 85.0;
    config.faults.throttlePeriodSec = rng.uniform(5e-4, 5e-3);
    config.faults.throttleDutyFrac = rng.uniform(0.1, 0.9);
}

struct FuzzOutcome
{
    std::size_t point = 0;
    std::vector<std::string> violations;
};

/** Run one random (graphs, config) point and collect violations. */
FuzzOutcome
fuzzPoint(std::size_t index, sim::Rng &rng, bool with_faults = false)
{
    FuzzOutcome outcome;
    outcome.point = index;

    rt::SystemConfig config = randomConfig(rng);
    if (with_faults)
        randomFaults(config, rng);
    nn::Graph primary =
        randomGraph(rng, "fuzz" + std::to_string(index));

    std::vector<rt::WorkloadSpec> workloads;
    rt::WorkloadSpec spec;
    spec.graph = &primary;
    spec.steps = static_cast<std::uint32_t>(rng.inRange(1, 3));
    workloads.push_back(spec);

    // Sometimes co-run a guest, sometimes demoted (pimManaged=false).
    nn::Graph guest("guest");
    if (rng.chance(0.3)) {
        guest = randomGraph(rng, "guest" + std::to_string(index));
        rt::WorkloadSpec guest_spec;
        guest_spec.graph = &guest;
        guest_spec.steps =
            static_cast<std::uint32_t>(rng.inRange(1, 2));
        guest_spec.pimManaged = rng.chance(0.5);
        workloads.push_back(guest_spec);
    }

    rt::Executor executor(config);
    rt::ScheduleTrace trace;
    executor.attachTrace(&trace);
    rt::ExecutionReport report = executor.run(workloads);

    std::vector<const nn::Graph *> graphs;
    std::vector<std::uint32_t> steps;
    for (const auto &workload : workloads) {
        graphs.push_back(workload.graph);
        steps.push_back(workload.steps);
    }
    auto validation = validateSchedule(trace, graphs, steps, config);
    for (const auto &violation : validation.violations)
        outcome.violations.push_back(violation.what);

    // ---- ExecutionReport invariants.
    auto check = [&outcome](bool ok, const std::string &what) {
        if (!ok)
            outcome.violations.push_back("report invariant: " + what);
    };
    if (with_faults) {
        // Graceful degradation must never drop work: every op of
        // every step completes somewhere (possibly on the CPU).
        std::uint64_t expected = 0;
        for (const auto &workload : workloads)
            expected += std::uint64_t(workload.graph->size())
                        * workload.steps;
        std::uint64_t placed = 0;
        for (const auto &[placement, count] : report.opsByPlacement)
            placed += count;
        check(placed == expected,
              "all " + std::to_string(expected)
                  + " ops complete under faults (got "
                  + std::to_string(placed) + ")");
    }
    double makespan = report.makespanSec;
    double slack = 1e-9 + 1e-6 * makespan;
    check(makespan > 0.0, "makespan must be positive");
    check(report.stepSec >= 0.0, "stepSec >= 0");
    check(report.opSec >= 0.0, "opSec >= 0");
    check(report.dataMovementSec >= 0.0, "dataMovementSec >= 0");
    check(report.syncSec >= 0.0, "syncSec >= 0");
    double parts =
        report.opSec + report.dataMovementSec + report.syncSec;
    check(std::abs(parts - report.stepSec) <= slack,
          "op+dm+sync must equal stepSec");
    check(report.cpuBusySec <= makespan + slack,
          "cpuBusySec <= makespan");
    check(report.progrBusySec
              <= makespan * config.progrPimCount + slack,
          "progrBusySec <= makespan x progrPimCount");
    check(report.fixedUtilization >= 0.0
              && report.fixedUtilization <= 1.0 + 1e-6,
          "fixedUtilization in [0, 1]");
    check(report.cpuEnergyJ >= 0.0, "cpuEnergyJ >= 0");
    check(report.progrEnergyJ >= 0.0, "progrEnergyJ >= 0");
    check(report.fixedEnergyJ >= 0.0, "fixedEnergyJ >= 0");
    check(report.dramEnergyJ >= 0.0, "dramEnergyJ >= 0");
    check(report.totalEnergyJ >= 0.0, "totalEnergyJ >= 0");
    check(report.edp >= 0.0, "edp >= 0");
    return outcome;
}

/** One random Builder-DAG point: build, execute, validate. */
FuzzOutcome
builderFuzzPoint(std::size_t index, sim::Rng &rng)
{
    FuzzOutcome outcome;
    outcome.point = index;

    rt::SystemConfig config = randomConfig(rng);
    nn::Graph graph =
        randomBuilderGraph(rng, "builder" + std::to_string(index));

    std::vector<rt::WorkloadSpec> workloads;
    rt::WorkloadSpec spec;
    spec.graph = &graph;
    spec.steps = static_cast<std::uint32_t>(rng.inRange(1, 3));
    workloads.push_back(spec);

    rt::Executor executor(config);
    rt::ScheduleTrace trace;
    executor.attachTrace(&trace);
    executor.run(workloads);

    auto validation = validateSchedule(trace, {&graph}, {spec.steps},
                                       config);
    for (const auto &violation : validation.violations)
        outcome.violations.push_back(violation.what);
    return outcome;
}

} // namespace

TEST(ScheduleFuzz, RandomGraphsAndConfigsProduceLegalSchedules)
{
    harness::SweepOptions options;
    options.baseSeed = fuzzBaseSeed;
    harness::SweepRunner runner(options);
    auto outcomes =
        runner.map(numFuzzPoints, [](std::size_t index, sim::Rng &rng) {
            return fuzzPoint(index, rng, false);
        });

    std::size_t failing_points = 0;
    for (const FuzzOutcome &outcome : outcomes) {
        if (outcome.violations.empty())
            continue;
        ++failing_points;
        for (const auto &what : outcome.violations) {
            ADD_FAILURE() << "point " << outcome.point
                          << " (stream seed "
                          << sim::Rng::streamSeed(fuzzBaseSeed,
                                                  outcome.point)
                          << "): " << what;
        }
    }
    EXPECT_EQ(failing_points, 0u);
}

TEST(ScheduleFuzz, RandomFaultSchedulesStillProduceLegalSchedules)
{
    // Second 200-point pass with the resilience layer armed: random
    // transient/stall rates, bank kills and thermal throttling on top
    // of the random (graph, config) points. Schedules must stay
    // violation-free and no op may be lost to a fault.
    harness::SweepOptions options;
    options.baseSeed = faultFuzzBaseSeed;
    harness::SweepRunner runner(options);
    auto outcomes =
        runner.map(numFuzzPoints, [](std::size_t index, sim::Rng &rng) {
            return fuzzPoint(index, rng, true);
        });

    std::size_t failing_points = 0;
    for (const FuzzOutcome &outcome : outcomes) {
        if (outcome.violations.empty())
            continue;
        ++failing_points;
        for (const auto &what : outcome.violations) {
            ADD_FAILURE() << "fault point " << outcome.point
                          << " (stream seed "
                          << sim::Rng::streamSeed(faultFuzzBaseSeed,
                                                  outcome.point)
                          << "): " << what;
        }
    }
    EXPECT_EQ(failing_points, 0u);
}

TEST(ScheduleFuzz, PointsAreReproducible)
{
    // The same stream index must regenerate the identical point.
    sim::Rng a(sim::Rng::streamSeed(fuzzBaseSeed, 17));
    sim::Rng b(sim::Rng::streamSeed(fuzzBaseSeed, 17));
    nn::Graph ga = randomGraph(a, "g");
    nn::Graph gb = randomGraph(b, "g");
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
        auto id = static_cast<nn::OpId>(i);
        EXPECT_EQ(ga.op(id).type, gb.op(id).type);
        EXPECT_EQ(ga.op(id).inputs, gb.op(id).inputs);
        EXPECT_DOUBLE_EQ(ga.op(id).cost.flops(),
                         gb.op(id).cost.flops());
    }
}

TEST(ScheduleFuzz, RandomBuilderDagsProduceLegalSchedules)
{
    // 100 random user-style DAGs authored through the public
    // nn::Builder -- autodiff, gradient fan-in Adds, both optimizers
    // -- crossed with random SystemConfigs. Every schedule must pass
    // validateSchedule with zero violations, the same bar the
    // hand-rolled random graphs meet.
    constexpr std::size_t numBuilderPoints = 100;
    harness::SweepOptions options;
    options.baseSeed = builderFuzzBaseSeed;
    harness::SweepRunner runner(options);
    auto outcomes = runner.map(
        numBuilderPoints, [](std::size_t index, sim::Rng &rng) {
            return builderFuzzPoint(index, rng);
        });

    std::size_t failing_points = 0;
    for (const FuzzOutcome &outcome : outcomes) {
        if (outcome.violations.empty())
            continue;
        ++failing_points;
        for (const auto &what : outcome.violations) {
            ADD_FAILURE() << "builder point " << outcome.point
                          << " (stream seed "
                          << sim::Rng::streamSeed(builderFuzzBaseSeed,
                                                  outcome.point)
                          << "): " << what;
        }
    }
    EXPECT_EQ(failing_points, 0u);
}

TEST(ScheduleFuzz, BuilderPointsAreReproducible)
{
    sim::Rng a(sim::Rng::streamSeed(builderFuzzBaseSeed, 23));
    sim::Rng b(sim::Rng::streamSeed(builderFuzzBaseSeed, 23));
    nn::Graph ga = randomBuilderGraph(a, "g");
    nn::Graph gb = randomBuilderGraph(b, "g");
    EXPECT_EQ(ga.signature(), gb.signature());
}
