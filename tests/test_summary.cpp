/**
 * @file
 * Unit tests for graph summaries and Graphviz export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "nn/models.hh"
#include "nn/summary.hh"

using namespace hpim::nn;

TEST(Summary, AggregatesMatchGraphTotals)
{
    Graph graph = buildAlexNet();
    GraphSummary summary = summarize(graph);
    EXPECT_EQ(summary.ops, graph.size());
    EXPECT_EQ(summary.criticalPath, graph.criticalPathLength());
    EXPECT_NEAR(summary.totalGflops,
                graph.totalCost().flops() / 1e9, 1e-6);
    std::size_t invocations = 0;
    double pct = 0.0;
    for (const auto &row : summary.rows) {
        invocations += row.invocations;
        pct += row.flopsPct;
    }
    EXPECT_EQ(invocations, graph.size());
    EXPECT_NEAR(pct, 100.0, 1e-6);
}

TEST(Summary, RowsSortedByGflopsDescending)
{
    GraphSummary summary = summarize(buildVgg19());
    for (std::size_t i = 1; i < summary.rows.size(); ++i)
        EXPECT_GE(summary.rows[i - 1].gflops, summary.rows[i].gflops);
    // The heaviest type in VGG-19 training is a conv op.
    auto top = summary.rows[0].type;
    EXPECT_TRUE(top == OpType::Conv2D
                || top == OpType::Conv2DBackpropFilter
                || top == OpType::Conv2DBackpropInput);
}

TEST(Summary, PrintMentionsTopTypes)
{
    GraphSummary summary = summarize(buildAlexNet());
    std::ostringstream os;
    summary.print(os);
    EXPECT_NE(os.str().find("AlexNet"), std::string::npos);
    EXPECT_NE(os.str().find("Conv2DBackpropFilter"),
              std::string::npos);
}

TEST(Dot, WellFormedDocument)
{
    Graph graph = buildDcgan();
    std::ostringstream os;
    exportDot(graph, os);
    std::string dot = os.str();
    EXPECT_EQ(dot.rfind("digraph", 0), 0u);
    EXPECT_EQ(dot.back(), '\n');
    EXPECT_NE(dot.find("}\n"), std::string::npos);
    // One node line per op.
    std::size_t nodes = 0;
    for (OpId id = 0; id < graph.size(); ++id) {
        if (dot.find("n" + std::to_string(id) + " [label=")
            != std::string::npos)
            ++nodes;
    }
    EXPECT_EQ(nodes, graph.size());
}

TEST(Dot, EdgesMatchDependences)
{
    Graph graph("g");
    auto a = graph.add(OpType::MatMul, "a", matmulCost(2, 2, 2),
                       fixedParallelism(OpType::MatMul, 2, 4.0));
    auto b = graph.add(OpType::Relu, "b",
                       activationCost(OpType::Relu,
                                      TensorShape{2, 2}),
                       fixedParallelism(OpType::Relu, 1, 0.0), {a});
    (void)b;
    std::ostringstream os;
    exportDot(graph, os);
    EXPECT_NE(os.str().find("n0 -> n1;"), std::string::npos);
}

TEST(Dot, EscapesQuotesInLabels)
{
    Graph graph("quoted\"name");
    graph.add(OpType::Relu, "op\"label",
              activationCost(OpType::Relu, TensorShape{2}),
              fixedParallelism(OpType::Relu, 1, 0.0));
    std::ostringstream os;
    exportDot(graph, os);
    EXPECT_NE(os.str().find("\\\""), std::string::npos);
}
