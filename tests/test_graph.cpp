/**
 * @file
 * Unit tests for the training-step DAG.
 */

#include <gtest/gtest.h>

#include "nn/graph.hh"

using namespace hpim::nn;

namespace {

CostStructure
unitCost()
{
    CostStructure c;
    c.muls = 100;
    c.adds = 100;
    c.bytesRead = 64;
    return c;
}

FixedParallelism
unitPar()
{
    return fixedParallelism(OpType::MatMul, 4, 10.0);
}

} // namespace

TEST(Graph, AddAssignsDenseIds)
{
    Graph g("test");
    OpId a = g.add(OpType::MatMul, "a", unitCost(), unitPar());
    OpId b = g.add(OpType::Relu, "b", unitCost(), unitPar(), {a});
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.op(b).inputs, std::vector<OpId>{a});
}

TEST(Graph, ConsumersAreReverseEdges)
{
    Graph g("test");
    OpId a = g.add(OpType::MatMul, "a", unitCost(), unitPar());
    OpId b = g.add(OpType::Relu, "b", unitCost(), unitPar(), {a});
    OpId c = g.add(OpType::Softmax, "c", unitCost(), unitPar(), {a, b});
    EXPECT_EQ(g.consumers()[a], (std::vector<OpId>{b, c}));
    EXPECT_EQ(g.consumers()[b], std::vector<OpId>{c});
    EXPECT_TRUE(g.consumers()[c].empty());
}

TEST(GraphDeath, ForwardReferenceIsFatal)
{
    Graph g("test");
    EXPECT_EXIT(
        g.add(OpType::MatMul, "bad", unitCost(), unitPar(), {5}),
        testing::ExitedWithCode(1), "does not precede");
}

TEST(Graph, TopoOrderIsInsertionOrder)
{
    Graph g("test");
    g.add(OpType::MatMul, "a", unitCost(), unitPar());
    g.add(OpType::Relu, "b", unitCost(), unitPar(), {0});
    auto order = g.topoOrder();
    EXPECT_EQ(order, (std::vector<OpId>{0, 1}));
}

TEST(Graph, ReadyOpsRespectsDependences)
{
    Graph g("test");
    OpId a = g.add(OpType::MatMul, "a", unitCost(), unitPar());
    OpId b = g.add(OpType::MatMul, "b", unitCost(), unitPar());
    OpId c = g.add(OpType::Add, "c", unitCost(), unitPar(), {a, b});

    std::vector<bool> done(3, false);
    auto ready = g.readyOps(done);
    EXPECT_EQ(ready, (std::vector<OpId>{a, b}));

    done[a] = true;
    ready = g.readyOps(done);
    EXPECT_EQ(ready, std::vector<OpId>{b});

    done[b] = true;
    ready = g.readyOps(done);
    EXPECT_EQ(ready, std::vector<OpId>{c});
}

TEST(Graph, TotalCostSums)
{
    Graph g("test");
    g.add(OpType::MatMul, "a", unitCost(), unitPar());
    g.add(OpType::MatMul, "b", unitCost(), unitPar());
    CostStructure total = g.totalCost();
    EXPECT_DOUBLE_EQ(total.muls, 200.0);
    EXPECT_DOUBLE_EQ(total.bytesRead, 128.0);
}

TEST(Graph, CountType)
{
    Graph g("test");
    g.add(OpType::MatMul, "a", unitCost(), unitPar());
    g.add(OpType::Relu, "b", unitCost(), unitPar());
    g.add(OpType::MatMul, "c", unitCost(), unitPar());
    EXPECT_EQ(g.countType(OpType::MatMul), 2u);
    EXPECT_EQ(g.countType(OpType::Relu), 1u);
    EXPECT_EQ(g.countType(OpType::Softmax), 0u);
}

TEST(Graph, CriticalPathOfChainEqualsLength)
{
    Graph g("chain");
    OpId prev = g.add(OpType::MatMul, "0", unitCost(), unitPar());
    for (int i = 1; i < 10; ++i)
        prev = g.add(OpType::MatMul, std::to_string(i), unitCost(),
                     unitPar(), {prev});
    EXPECT_EQ(g.criticalPathLength(), 10u);
}

TEST(Graph, CriticalPathOfParallelOpsIsOne)
{
    Graph g("wide");
    for (int i = 0; i < 5; ++i)
        g.add(OpType::MatMul, std::to_string(i), unitCost(), unitPar());
    EXPECT_EQ(g.criticalPathLength(), 1u);
}

TEST(Graph, FixedAndSpecialWorkSplit)
{
    Graph g("split");
    CostStructure c;
    c.muls = 50;
    c.specials = 7;
    OpId mm = g.add(OpType::MatMul, "mm", c,
                    fixedParallelism(OpType::MatMul, 2, 1.0));
    OpId relu = g.add(OpType::Relu, "r", c,
                      fixedParallelism(OpType::Relu, 1, 1.0));
    EXPECT_DOUBLE_EQ(g.op(mm).fixedWork(), 50.0);
    EXPECT_DOUBLE_EQ(g.op(relu).fixedWork(), 0.0);
    EXPECT_DOUBLE_EQ(g.op(relu).specialWork(), 7.0);
}

TEST(GraphDeath, BadOpIdPanics)
{
    Graph g("empty");
    EXPECT_DEATH(g.op(0), "out of range");
}
