/**
 * @file
 * Unit tests for the cache replacement policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hh"

using hpim::cache::LruPolicy;
using hpim::cache::makePolicy;
using hpim::cache::RandomPolicy;
using hpim::cache::TreePlruPolicy;

TEST(Lru, VictimIsLeastRecentlyTouched)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.install(0, w);
    lru.touch(0, 0); // way 0 most recent; victim should be way 1
    EXPECT_EQ(lru.victim(0), 1u);
    lru.touch(0, 1);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.install(0, 0);
    lru.install(0, 1);
    lru.install(1, 1);
    lru.install(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(TreePlru, VictimAvoidsRecentlyTouchedWay)
{
    TreePlruPolicy plru(1, 8);
    for (std::uint32_t w = 0; w < 8; ++w)
        plru.install(0, w);
    for (int round = 0; round < 16; ++round) {
        std::uint32_t victim = plru.victim(0);
        plru.touch(0, victim);
        // Immediately after touching, the same way must not be the
        // next victim.
        EXPECT_NE(plru.victim(0), victim);
    }
}

TEST(TreePlru, CyclesThroughAllWaysUnderRoundRobinFill)
{
    TreePlruPolicy plru(1, 4);
    std::set<std::uint32_t> victims;
    for (int i = 0; i < 4; ++i) {
        std::uint32_t v = plru.victim(0);
        victims.insert(v);
        plru.install(0, v);
    }
    EXPECT_EQ(victims.size(), 4u);
}

TEST(TreePlruDeath, NonPowerOfTwoWaysIsFatal)
{
    EXPECT_EXIT(TreePlruPolicy(1, 3), testing::ExitedWithCode(1),
                "power-of-two");
}

TEST(Random, VictimsStayInRangeAndVary)
{
    RandomPolicy random(1, 8, 42);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 256; ++i) {
        std::uint32_t v = random.victim(0);
        EXPECT_LT(v, 8u);
        seen.insert(v);
    }
    EXPECT_GT(seen.size(), 4u);
}

TEST(PolicyFactory, BuildsEachKind)
{
    EXPECT_EQ(makePolicy("lru", 4, 4)->policyName(), "LRU");
    EXPECT_EQ(makePolicy("plru", 4, 4)->policyName(), "TreePLRU");
    EXPECT_EQ(makePolicy("random", 4, 4)->policyName(), "Random");
}

TEST(PolicyFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makePolicy("mru", 4, 4), testing::ExitedWithCode(1),
                "unknown replacement policy");
}
