/**
 * @file
 * Unit tests for the versioned JSON graph format (nn/graph_io.hh):
 * byte-identical save/load round trips, signature preservation (the
 * memo-cache/journal identity), and the strict loader -- every
 * malformed document must produce a typed GraphParseError naming the
 * offending field and line, never a crash or a silent default.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "nn/graph_builder.hh"
#include "nn/graph_io.hh"
#include "nn/models.hh"

using namespace hpim::nn;

namespace {

Graph
smallTrainingGraph()
{
    Builder b("tiny");
    auto x = b.input(TensorShape{2, 8, 8, 3});
    x = b.conv2d(x, 3, 4, 1);
    x = b.maxPool(x, 2, 2);
    x = b.flatten(x);
    x = b.dense(x, 10, false);
    return b.trainingStep(x, Optimizer::Adam);
}

/** Expect loadGraph(text) to throw naming @p field. */
void
expectRejected(const std::string &text, const std::string &field,
               const char *note)
{
    try {
        loadGraph(text);
        FAIL() << note << ": malformed document was accepted";
    } catch (const GraphParseError &e) {
        EXPECT_EQ(e.field, field) << note << ": " << e.what();
        if (!field.empty())
            EXPECT_NE(std::string(e.what()).find(field),
                      std::string::npos)
                << note << ": what() must name the field";
    }
}

/** A valid one-op document to mutate from. */
std::string
validDoc(const std::string &op_overrides = "")
{
    std::string op = "{\"type\":\"MatMul\",\"label\":\"l/MatMul\","
                     "\"muls\":8,\"adds\":8,\"specials\":0,"
                     "\"bytes_read\":64,\"bytes_written\":32,"
                     "\"units_per_lane\":4,\"lanes\":2,\"inputs\":[]";
    if (!op_overrides.empty())
        op += "," + op_overrides;
    op += "}";
    return "{\"schema_version\":1,\"name\":\"t\",\"ops\":[" + op
           + "]}";
}

} // namespace

// ---------------------------------------------------------- round trips

TEST(GraphIo, SaveLoadRoundTripIsByteIdentical)
{
    Graph g = smallTrainingGraph();
    std::string first = graphToJson(g);
    Graph reloaded = loadGraph(first);
    std::string second = graphToJson(reloaded);
    EXPECT_EQ(first, second);
}

TEST(GraphIo, RoundTripPreservesStructureAndSignature)
{
    Graph g = smallTrainingGraph();
    Graph r = loadGraph(graphToJson(g));
    ASSERT_EQ(r.size(), g.size());
    EXPECT_EQ(r.name(), g.name());
    EXPECT_EQ(r.signature(), g.signature());
    for (OpId id = 0; id < g.size(); ++id) {
        EXPECT_EQ(r.op(id).type, g.op(id).type);
        EXPECT_EQ(r.op(id).label, g.op(id).label);
        EXPECT_EQ(r.op(id).inputs, g.op(id).inputs);
        EXPECT_EQ(r.op(id).cost.muls, g.op(id).cost.muls);
        EXPECT_EQ(r.op(id).cost.bytesRead, g.op(id).cost.bytesRead);
        EXPECT_EQ(r.op(id).parallelism.unitsPerLane,
                  g.op(id).parallelism.unitsPerLane);
        EXPECT_EQ(r.op(id).parallelism.lanes,
                  g.op(id).parallelism.lanes);
    }
}

TEST(GraphIo, BuiltInModelsSurviveTheRoundTrip)
{
    // The --graph <--> --model byte-identity anchor: a dumped built-in
    // reloads with the same signature, so the same memo-cache identity
    // and the same simulation results.
    for (ModelId model : {ModelId::AlexNet, ModelId::Lstm}) {
        Graph g = buildModel(model);
        Graph r = loadGraph(graphToJson(g));
        EXPECT_EQ(r.signature(), g.signature())
            << modelName(model);
        EXPECT_EQ(graphToJson(r), graphToJson(g));
    }
}

TEST(GraphIo, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "graph_io_rt.json";
    Graph g = smallTrainingGraph();
    saveGraphFile(path, g);
    Graph r = loadGraphFile(path);
    EXPECT_EQ(r.signature(), g.signature());
    std::remove(path.c_str());
}

// -------------------------------------------------------- typed errors

TEST(GraphIo, RejectsNonJson)
{
    try {
        loadGraph("not json at all");
        FAIL();
    } catch (const GraphParseError &e) {
        EXPECT_GT(e.line, 0);
    }
}

TEST(GraphIo, RejectsRootShapeErrors)
{
    expectRejected("[1,2,3]", "", "root must be an object");
    expectRejected("{\"name\":\"t\",\"ops\":[]}", "schema_version",
                   "missing schema_version");
    expectRejected(
        "{\"schema_version\":99,\"name\":\"t\",\"ops\":[]}",
        "schema_version", "unsupported version");
    expectRejected(
        "{\"schema_version\":1.5,\"name\":\"t\",\"ops\":[]}",
        "schema_version", "non-integer version");
    expectRejected("{\"schema_version\":1,\"ops\":[]}", "name",
                   "missing name");
    expectRejected("{\"schema_version\":1,\"name\":\"\",\"ops\":[]}",
                   "name", "empty name");
    expectRejected("{\"schema_version\":1,\"name\":\"t\"}", "ops",
                   "missing ops");
    expectRejected("{\"schema_version\":1,\"name\":\"t\",\"ops\":[]}",
                   "ops", "empty ops");
    expectRejected("{\"schema_version\":1,\"name\":\"t\",\"ops\":{}}",
                   "ops", "ops must be an array");
    expectRejected("{\"schema_version\":1,\"name\":\"t\",\"ops\":[],"
                   "\"extra\":0}",
                   "extra", "unknown root field");
}

TEST(GraphIo, RejectsOpShapeErrors)
{
    expectRejected("{\"schema_version\":1,\"name\":\"t\",\"ops\":[5]}",
                   "ops[0]", "op must be an object");

    std::string no_type = validDoc();
    no_type.replace(no_type.find("\"type\":\"MatMul\","), 16, "");
    expectRejected(no_type, "ops[0].type", "missing type");

    std::string bad_type = validDoc();
    bad_type.replace(bad_type.find("MatMul"), 6, "Nonsense");
    expectRejected(bad_type, "ops[0].type", "unknown op type");

    std::string bad_label = validDoc();
    bad_label.replace(bad_label.find("l/MatMul"), 8, "");
    expectRejected(bad_label, "ops[0].label", "empty label");

    std::string bad_cost = validDoc();
    bad_cost.replace(bad_cost.find("\"muls\":8"), 8,
                     "\"muls\":\"x\"");
    expectRejected(bad_cost, "ops[0].muls", "non-number cost");

    std::string neg_cost = validDoc();
    neg_cost.replace(neg_cost.find("\"adds\":8"), 8, "\"adds\":-1");
    expectRejected(neg_cost, "ops[0].adds", "negative cost");

    std::string bad_units = validDoc();
    bad_units.replace(bad_units.find("\"units_per_lane\":4"), 18,
                      "\"units_per_lane\":4.5");
    expectRejected(bad_units, "ops[0].units_per_lane",
                   "fractional units");

    std::string huge_units = validDoc();
    huge_units.replace(huge_units.find("\"units_per_lane\":4"), 18,
                       "\"units_per_lane\":4294967296");
    expectRejected(huge_units, "ops[0].units_per_lane",
                   "units out of 32-bit range");

    expectRejected(validDoc("\"bogus\":1"), "ops[0].bogus",
                   "unknown op field");
    expectRejected(validDoc("\"lanes\":3"), "ops[0].lanes",
                   "duplicate op field");
}

TEST(GraphIo, RejectsNonTopologicalInputs)
{
    std::string forward_ref = validDoc();
    forward_ref.replace(forward_ref.find("\"inputs\":[]"), 11,
                        "\"inputs\":[0]");
    expectRejected(forward_ref, "ops[0].inputs",
                   "self/forward reference");

    std::string neg_input = validDoc();
    neg_input.replace(neg_input.find("\"inputs\":[]"), 11,
                      "\"inputs\":[-1]");
    expectRejected(neg_input, "ops[0].inputs", "negative input");
}

TEST(GraphIo, ErrorsCarryLineNumbers)
{
    std::string doc = "{\n\"schema_version\":1,\n\"name\":\"t\",\n"
                      "\"ops\":\n[\n{\"type\":\"Nope\"}\n]}";
    try {
        loadGraph(doc);
        FAIL();
    } catch (const GraphParseError &e) {
        EXPECT_EQ(e.field, "ops[0].type");
        EXPECT_EQ(e.line, 6);
        EXPECT_NE(std::string(e.what()).find("line 6"),
                  std::string::npos);
    }
}

TEST(GraphIo, MissingFileIsTypedError)
{
    try {
        loadGraphFile("/nonexistent/definitely_missing.json");
        FAIL();
    } catch (const GraphParseError &e) {
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos);
    }
}

TEST(GraphIo, FileErrorsNameTheFile)
{
    std::string path = ::testing::TempDir() + "graph_io_bad.json";
    {
        std::ofstream out(path);
        out << "{\"schema_version\":2,\"name\":\"t\",\"ops\":[]}";
    }
    try {
        loadGraphFile(path);
        FAIL();
    } catch (const GraphParseError &e) {
        EXPECT_EQ(e.field, "schema_version");
        EXPECT_NE(std::string(e.what()).find(path),
                  std::string::npos);
    }
    std::remove(path.c_str());
}
