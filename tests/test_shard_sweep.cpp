/**
 * @file
 * Shard-torture tests for distributed sweeps (docs/SWEEP_ENGINE.md,
 * "Sharded distributed sweeps"). The whole feature's contract is
 * "distributed execution is indistinguishable from sequential
 * execution", so the suite leans on byte comparison: fuzzed grids
 * swept across shard counts {1,2,3,8} -- sequentially, concurrently,
 * and with a SIGKILLed shard whose slice siblings must steal -- are
 * merged with mergeShardJournals() and compared byte-for-byte against
 * the unsharded single-process journal. Alongside: claim-race
 * arbitration (exactly one owner, TSan-checked in CI), the failure
 * footer across shards, every merge failure mode as a typed
 * ShardMergeError naming the offending file, and --shard flag
 * parsing.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/journal.hh"
#include "harness/shard_merge.hh"
#include "harness/sweep.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hpim;
using namespace hpim::harness;

namespace {

/** Deterministic synthetic report: a function of (i, rng) only. */
rt::ExecutionReport
makePoint(std::size_t i, sim::Rng &rng)
{
    rt::ExecutionReport r;
    r.configName = "synthetic";
    r.workloadName = "point-" + std::to_string(i);
    r.stepsSimulated = static_cast<std::uint32_t>(i + 1);
    r.stepSec = rng.uniform();
    r.opSec = rng.uniform();
    r.energyPerStepJ = rng.uniform(1.0, 10.0);
    r.retries = rng.below(100);
    r.opsByPlacement[rt::PlacedOn::Cpu] = rng.below(1000);
    return r;
}

std::string
tempDir(const char *tag)
{
    std::string tmpl = testing::TempDir() + "hpim-" + tag + "-XXXXXX";
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir);
}

std::string
tempJournalDir()
{
    return tempDir("shard") + "/journal";
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

SweepOptions
shardOptions(const std::string &dir, std::uint32_t shard_index = 1,
             std::uint32_t shard_count = 1, bool steal = true,
             std::uint32_t jobs = 1)
{
    SweepOptions options;
    options.jobs = jobs;
    options.journalDir = dir;
    options.shardIndex = shard_index;
    options.shardCount = shard_count;
    options.workSteal = steal;
    return options;
}

/** Run one shard of the grid; @return its stats. */
SweepStats
runShard(const SweepOptions &options, std::size_t points,
         std::uint64_t grid_hash,
         const SweepRunner::ReportFn &fn = makePoint)
{
    SweepRunner runner(options);
    runner.mapReports(points, grid_hash, fn);
    return runner.stats();
}

/** Unsharded --jobs 1 reference journal for the grid. */
std::string
referenceJournal(std::size_t points, std::uint64_t grid_hash,
                 const SweepRunner::ReportFn &fn = makePoint)
{
    std::string dir = tempJournalDir();
    runShard(shardOptions(dir), points, grid_hash, fn);
    return dir;
}

/**
 * Merge @p dir and compare every segment file byte-for-byte against
 * the unsharded reference journal @p ref_dir.
 */
void
expectMergeMatchesReference(const std::string &dir,
                            const std::string &ref_dir,
                            std::uint32_t segment = 0)
{
    std::string out = tempDir("merged");
    writeMergedJournal(out, mergeShardJournals(dir));
    EXPECT_EQ(readFile(journalRecordsPath(out, segment)),
              readFile(journalRecordsPath(ref_dir, segment)));
    EXPECT_EQ(readFile(journalMetaPath(out, segment)),
              readFile(journalMetaPath(ref_dir, segment)));
}

/** Replicates hpim_merge's error path for exit-code death tests. */
[[noreturn]] void
mergeOrDie(const std::string &dir)
{
    try {
        mergeShardJournals(dir);
    } catch (const ShardMergeError &e) {
        fatal(e.what());
    }
    std::exit(0);
}

/** A ready-made 2-shard directory for the corruption tests. */
std::string
twoShardJournal(std::size_t points = 8,
                std::uint64_t grid_hash = 0x5eedULL)
{
    std::string dir = tempJournalDir();
    runShard(shardOptions(dir, 1, 2, /*steal=*/false), points,
             grid_hash);
    runShard(shardOptions(dir, 2, 2, /*steal=*/false), points,
             grid_hash);
    return dir;
}

} // namespace

TEST(ShardSweep, OwnerPartitionsEveryGridEvenly)
{
    for (std::uint32_t shards : {1u, 2u, 3u, 8u}) {
        std::vector<std::size_t> per_shard(shards + 1, 0);
        for (std::size_t i = 0; i < 200; ++i) {
            std::uint32_t owner = journalShardOwner(i, shards);
            ASSERT_GE(owner, 1u);
            ASSERT_LE(owner, shards);
            ++per_shard[owner];
        }
        for (std::uint32_t s = 1; s <= shards; ++s)
            EXPECT_NEAR(static_cast<double>(per_shard[s]),
                        200.0 / shards, 1.0);
    }
}

TEST(ShardSweep, FuzzedGridsMergeByteIdenticalAcrossShardCounts)
{
    // Property fuzz: random grid sizes, every shard count, shards run
    // sequentially without stealing (pure slice partition). The
    // merged journal must match the unsharded --jobs 1 journal
    // byte-for-byte, meta file included.
    sim::Rng fuzz(0xf022);
    for (int round = 0; round < 4; ++round) {
        const std::size_t points = 1 + fuzz.below(33);
        const std::uint64_t grid_hash = fuzz.next();
        const std::string ref = referenceJournal(points, grid_hash);
        for (std::uint32_t shards : {1u, 2u, 3u, 8u}) {
            std::string dir = tempJournalDir();
            std::size_t slices = 0;
            for (std::uint32_t s = 1; s <= shards; ++s) {
                SweepStats stats = runShard(
                    shardOptions(dir, s, shards, /*steal=*/false),
                    points, grid_hash);
                EXPECT_EQ(stats.stolenPoints, 0u);
                slices += stats.slicePoints;
            }
            // The slices partition the grid: no point shared, none
            // dropped.
            EXPECT_EQ(slices, points)
                << points << " points over " << shards << " shards";
            expectMergeMatchesReference(dir, ref);
        }
    }
}

TEST(ShardSweep, SequentialStealingShardsConvergeByteIdentical)
{
    // With stealing on, the first shard to run drains the entire
    // grid; late shards find every point recorded and add nothing.
    const std::size_t points = 17;
    const std::uint64_t grid_hash = 0xabcdefULL;
    const std::string ref = referenceJournal(points, grid_hash);
    std::string dir = tempJournalDir();
    SweepStats first =
        runShard(shardOptions(dir, 2, 3), points, grid_hash);
    EXPECT_EQ(first.slicePoints + first.stolenPoints, points);
    for (std::uint32_t s : {1u, 3u}) {
        SweepStats late =
            runShard(shardOptions(dir, s, 3), points, grid_hash);
        EXPECT_EQ(late.stolenPoints, 0u);
    }
    expectMergeMatchesReference(dir, ref);
}

TEST(ShardSweep, ConcurrentShardsMergeByteIdentical)
{
    // All shards at once (threads; flock arbitration is per open file
    // description, so in-process concurrency exercises the same claim
    // path as separate hosts), each with a 2-worker pool.
    const std::size_t points = 29;
    const std::uint64_t grid_hash = 0xc0ffeeULL;
    const std::string ref = referenceJournal(points, grid_hash);
    for (std::uint32_t shards : {2u, 3u, 8u}) {
        std::string dir = tempJournalDir();
        std::vector<std::thread> threads;
        for (std::uint32_t s = 1; s <= shards; ++s) {
            threads.emplace_back([&, s] {
                runShard(shardOptions(dir, s, shards, /*steal=*/true,
                                      /*jobs=*/2),
                         points, grid_hash);
            });
        }
        for (auto &thread : threads)
            thread.join();
        expectMergeMatchesReference(dir, ref);
    }
}

TEST(ShardSweep, KilledShardsSliceIsStolenAndMergesByteIdentical)
{
    // The torture headline: SIGKILL a shard mid-slice, let the
    // siblings steal the remainder, and demand the merged journal
    // still matches the unsharded run byte-for-byte -- with the
    // restarted victim finding nothing left to do (no double-counted
    // points).
    const std::size_t points = 10;
    const std::uint64_t grid_hash = 0xdeadULL;
    const std::string ref = referenceJournal(points, grid_hash);
    std::string dir = tempJournalDir();

    // Shard 1 owns {0,3,6,9}; jobs=1 simulates them in order. Killing
    // inside point 6 leaves 0 and 3 journaled, 6 and 9 stranded, and
    // point 6's claim file stale on disk.
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        runShard(shardOptions(dir, 1, 3), points, grid_hash,
                 [](std::size_t i, sim::Rng &rng) {
                     if (i == 6)
                         raise(SIGKILL);
                     return makePoint(i, rng);
                 });
        _exit(0); // not reached
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Shard 2 sweeps its slice {1,4,7} and then steals everything
    // unfinished: the victim's {6,9} plus all of not-yet-started
    // shard 3's {2,5,8}. Shard 3 finds a complete grid.
    SweepStats s2 = runShard(shardOptions(dir, 2, 3), points,
                             grid_hash);
    SweepStats s3 = runShard(shardOptions(dir, 3, 3), points,
                             grid_hash);
    EXPECT_EQ(s2.stolenPoints, 5u);
    EXPECT_EQ(s3.stolenPoints, 0u);

    // The victim restarts: resumes its two journaled points, steals
    // nothing, appends nothing.
    const std::string victim_records =
        journalRecordsPath(dir, 0, 1, 3);
    const std::string before = readFile(victim_records);
    SweepStats s1 = runShard(shardOptions(dir, 1, 3), points,
                             grid_hash);
    EXPECT_EQ(s1.resumedPoints, 2u);
    EXPECT_EQ(s1.stolenPoints, 0u);
    EXPECT_EQ(readFile(victim_records), before);

    expectMergeMatchesReference(dir, ref);
}

TEST(ShardSweep, MergeSucceedsWhenDeadShardNeverRestarts)
{
    // A host that dies and never comes back must not block the merge
    // as long as siblings stole its whole slice.
    const std::size_t points = 9;
    const std::uint64_t grid_hash = 0xfadeULL;
    const std::string ref = referenceJournal(points, grid_hash);
    std::string dir = tempJournalDir();
    runShard(shardOptions(dir, 2, 3), points, grid_hash);
    runShard(shardOptions(dir, 3, 3), points, grid_hash);
    // Shard 1 never ran: no sweep-0.shard-1of3.* files at all.
    EXPECT_FALSE(
        std::ifstream(journalMetaPath(dir, 0, 1, 3)).good());
    expectMergeMatchesReference(dir, ref);
}

TEST(ShardSweep, ClaimRaceHasExactlyOneWinner)
{
    // The atomic-claim contract work-stealing rests on: many racers,
    // one owner. Run under TSan in CI.
    const std::string dir = tempJournalDir();
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    constexpr int kRacers = 8;
    for (int round = 0; round < 20; ++round) {
        std::vector<std::optional<ShardClaim>> claims(kRacers);
        std::vector<std::thread> threads;
        for (int t = 0; t < kRacers; ++t) {
            threads.emplace_back([&, t] {
                claims[t] = ShardClaim::tryAcquire(
                    dir, 0, 7, static_cast<std::uint32_t>(t + 1));
            });
        }
        for (auto &thread : threads)
            thread.join();
        int winners = 0;
        for (const auto &claim : claims)
            winners += claim.has_value();
        ASSERT_EQ(winners, 1) << "round " << round;
        // Releasing the claim (destructor) frees the point for the
        // next round and removes the claim file.
        claims.clear();
        EXPECT_FALSE(
            std::ifstream(journalClaimPath(dir, 0, 7)).good());
    }
}

TEST(ShardSweep, FailureFooterUnionMatchesUnshardedRun)
{
    // Failed points are never journaled; each shard reports its own
    // attempts in stats().failures. Without stealing the footers
    // partition exactly; with stealing every shard that attempted a
    // bad point reports it, so the union still equals the unsharded
    // footer.
    const std::size_t points = 12;
    const std::uint64_t grid_hash = 0xbad5eedULL;
    auto flaky = [](std::size_t i, sim::Rng &rng) {
        if (i % 5 == 3)
            throw std::runtime_error("point " + std::to_string(i)
                                     + " diverged");
        return makePoint(i, rng);
    };

    SweepOptions plain;
    plain.jobs = 1;
    SweepRunner reference(plain);
    reference.mapReports(points, grid_hash, flaky);
    std::set<std::pair<std::size_t, std::string>> expect;
    for (const PointFailure &f : reference.stats().failures)
        expect.insert({f.index, f.what});
    ASSERT_EQ(expect.size(), 2u); // points 3 and 8

    for (bool steal : {false, true}) {
        std::string dir = tempJournalDir();
        std::set<std::pair<std::size_t, std::string>> seen;
        std::size_t reported = 0;
        for (std::uint32_t s = 1; s <= 3; ++s) {
            SweepStats stats =
                runShard(shardOptions(dir, s, 3, steal), points,
                         grid_hash, flaky);
            for (const PointFailure &f : stats.failures)
                seen.insert({f.index, f.what});
            reported += stats.failures.size();
        }
        EXPECT_EQ(seen, expect) << "steal=" << steal;
        if (!steal) { // exact partition: no point failed twice
            EXPECT_EQ(reported, expect.size());
        }
    }
}

// --- merge failure modes -------------------------------------------
//
// Every corruption is a typed ShardMergeError whose .file names the
// offending shard file; the death tests assert the hpim_merge exit
// path (fatal, exit code 1) carries the same diagnostic.

TEST(ShardMergeErrors, MismatchedGridHashHeaderIsRejected)
{
    std::string dir = twoShardJournal();
    SweepJournal::Header header =
        readJournalHeader(journalMetaPath(dir, 0, 2, 2));
    header.gridHash ^= 1;
    writeJournalHeaderFile(journalMetaPath(dir, 0, 2, 2), header);
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted mismatched grid hashes";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.file, journalMetaPath(dir, 0, 2, 2));
        EXPECT_EQ(e.field, "grid_hash");
        EXPECT_NE(std::string(e.what()).find("disagree"),
                  std::string::npos);
    }
}

TEST(ShardMergeErrors, MismatchedSeedHeaderIsRejected)
{
    std::string dir = twoShardJournal();
    SweepJournal::Header header =
        readJournalHeader(journalMetaPath(dir, 0, 2, 2));
    header.baseSeed += 1;
    writeJournalHeaderFile(journalMetaPath(dir, 0, 2, 2), header);
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted mismatched seeds";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.field, "base_seed");
        EXPECT_EQ(e.file, journalMetaPath(dir, 0, 2, 2));
    }
}

TEST(ShardMergeErrors, UnknownSchemaVersionIsRejected)
{
    std::string dir = twoShardJournal();
    {
        std::ofstream os(journalMetaPath(dir, 0, 1, 2),
                         std::ios::trunc);
        os << "{\"schema_version\":1,\"base_seed\":0}\n";
    }
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted a v1 journal";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.field, "schema_version");
        EXPECT_EQ(e.file, journalMetaPath(dir, 0, 1, 2));
    }
}

TEST(ShardMergeErrors, MissingPointRangeIsRejectedNamingOwner)
{
    // Shard 2 never ran and nobody stole: every point of its slice is
    // a gap, attributed to shard 2's records file.
    const std::size_t points = 8;
    std::string dir = tempJournalDir();
    runShard(shardOptions(dir, 1, 2, /*steal=*/false), points,
             0x5eedULL);
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted a half-finished sweep";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.file, journalRecordsPath(dir, 0, 2, 2));
        EXPECT_NE(std::string(e.what()).find("grid point 1"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("shard 2/2"),
                  std::string::npos);
    }
}

TEST(ShardMergeErrors, ConflictingDuplicateRecordIsRejected)
{
    std::string dir = twoShardJournal();
    // Shard 2 re-records point 0 (owned by shard 1) with different
    // bytes: an overlap that is corruption, not redundancy.
    {
        std::ofstream os(journalRecordsPath(dir, 0, 2, 2),
                         std::ios::app);
        os << "{\"index\":0,\"point_hash\":"
           << journalPointHash(0x5eedULL, 0) << ",\"report\":{}}\n";
    }
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted conflicting duplicates";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.file, journalRecordsPath(dir, 0, 2, 2));
        EXPECT_NE(std::string(e.what()).find("conflicting"),
                  std::string::npos);
    }
}

TEST(ShardMergeErrors, IdenticalDuplicateRecordIsTolerated)
{
    // Cross-host redundancy: a point journaled by its owner and again
    // by a stealing sibling produces byte-identical lines. The merge
    // keeps one.
    const std::size_t points = 8;
    const std::uint64_t grid_hash = 0x5eedULL;
    const std::string ref = referenceJournal(points, grid_hash);
    std::string dir = twoShardJournal(points, grid_hash);
    std::string first_line;
    {
        std::ifstream is(journalRecordsPath(dir, 0, 1, 2));
        ASSERT_TRUE(std::getline(is, first_line));
    }
    {
        std::ofstream os(journalRecordsPath(dir, 0, 2, 2),
                         std::ios::app);
        os << first_line << '\n';
    }
    expectMergeMatchesReference(dir, ref);
}

TEST(ShardMergeErrors, TornClaimRecordIsRejected)
{
    std::string dir = twoShardJournal();
    {
        std::ofstream os(journalClaimPath(dir, 0, 3));
        os << "{\"index\":3,\"sh"; // torn mid-write
    }
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted a torn claim record";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.file, journalClaimPath(dir, 0, 3));
        EXPECT_NE(std::string(e.what()).find("torn claim"),
                  std::string::npos);
    }
}

TEST(ShardMergeErrors, StaleButCompleteClaimIsTolerated)
{
    // What a SIGKILLed owner actually leaves behind: a complete claim
    // record whose flock died with the process.
    const std::size_t points = 8;
    const std::uint64_t grid_hash = 0x5eedULL;
    const std::string ref = referenceJournal(points, grid_hash);
    std::string dir = twoShardJournal(points, grid_hash);
    {
        std::ofstream os(journalClaimPath(dir, 0, 3));
        os << "{\"index\":3,\"shard\":2,\"pid\":12345}\n";
    }
    expectMergeMatchesReference(dir, ref);
}

TEST(ShardMergeErrors, MixedShardLayoutsAreRejected)
{
    const std::size_t points = 8;
    const std::uint64_t grid_hash = 0x5eedULL;
    std::string dir = twoShardJournal(points, grid_hash);
    runShard(shardOptions(dir), points, grid_hash); // 1/1 on top
    EXPECT_THROW(mergeShardJournals(dir), ShardMergeError);
}

TEST(ShardMergeErrors, RenamedShardFileIsRejected)
{
    // File name and header must agree on the shard assignment;
    // renaming a journal cannot reassign its slice.
    std::string dir = twoShardJournal();
    ASSERT_EQ(std::rename(journalMetaPath(dir, 0, 2, 2).c_str(),
                          journalMetaPath(dir, 0, 2, 3).c_str()),
              0);
    ASSERT_EQ(
        std::rename(journalRecordsPath(dir, 0, 2, 2).c_str(),
                    journalRecordsPath(dir, 0, 2, 3).c_str()),
        0);
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted a renamed shard journal";
    } catch (const ShardMergeError &e) {
        // Either the layout mix (2-way vs 3-way) or the name/header
        // disagreement fires first; both name the renamed file.
        EXPECT_EQ(e.file, journalMetaPath(dir, 0, 2, 3));
    }
}

TEST(ShardMergeErrors, ForeignGridRecordIsRejected)
{
    std::string dir = twoShardJournal();
    {
        std::ofstream os(journalRecordsPath(dir, 0, 2, 2),
                         std::ios::app);
        os << "{\"index\":2,\"point_hash\":42,\"report\":{}}\n";
    }
    try {
        mergeShardJournals(dir);
        FAIL() << "merge accepted a foreign-grid record";
    } catch (const ShardMergeError &e) {
        EXPECT_EQ(e.file, journalRecordsPath(dir, 0, 2, 2));
        EXPECT_NE(std::string(e.what()).find("different sweep grid"),
                  std::string::npos);
    }
}

TEST(ShardMergeErrors, EmptyDirectoryIsRejected)
{
    std::string dir = tempDir("empty");
    EXPECT_THROW(mergeShardJournals(dir), ShardMergeError);
    EXPECT_THROW(mergeShardJournals(dir + "/missing"),
                 ShardMergeError);
}

TEST(ShardMergeDeath, MergeToolExitsOneWithDiagnostic)
{
    // The hpim_merge exit path: ShardMergeError -> fatal -> exit 1,
    // diagnostic naming the offending file on stderr.
    std::string dir = twoShardJournal();
    SweepJournal::Header header =
        readJournalHeader(journalMetaPath(dir, 0, 2, 2));
    header.gridHash ^= 1;
    writeJournalHeaderFile(journalMetaPath(dir, 0, 2, 2), header);
    EXPECT_EXIT(mergeOrDie(dir), testing::ExitedWithCode(1),
                "shard-2of2\\.meta\\.json.*grid_hash");
}

TEST(ShardMergeDeath, GapExitsOneNamingOwningShard)
{
    std::string dir = tempJournalDir();
    runShard(shardOptions(dir, 1, 2, /*steal=*/false), 8, 0x5eedULL);
    EXPECT_EXIT(mergeOrDie(dir), testing::ExitedWithCode(1),
                "never recorded.*shard 2/2");
}

// --- --shard flag parsing ------------------------------------------

namespace {

SweepOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string name = "bench";
    argv.push_back(name.data());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return parseSweepArgs(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(ShardArgs, ShardFlagParsesIndexAndCount)
{
    SweepOptions options =
        parseArgs({"--shard", "2/3", "--journal", "jdir"});
    EXPECT_EQ(options.shardIndex, 2u);
    EXPECT_EQ(options.shardCount, 3u);
    EXPECT_TRUE(options.workSteal);

    options = parseArgs({"--shard=8/8", "--journal=jdir",
                         "--no-steal"});
    EXPECT_EQ(options.shardIndex, 8u);
    EXPECT_EQ(options.shardCount, 8u);
    EXPECT_FALSE(options.workSteal);
}

TEST(ShardArgs, UnshardedDefaultNeedsNoJournal)
{
    SweepOptions options = parseArgs({"--jobs", "2"});
    EXPECT_EQ(options.shardIndex, 1u);
    EXPECT_EQ(options.shardCount, 1u);
}

TEST(ShardArgsDeath, MalformedShardSpecsAreRejected)
{
    EXPECT_EXIT(parseArgs({"--shard", "3", "--journal", "j"}),
                testing::ExitedWithCode(1), "i/N");
    EXPECT_EXIT(parseArgs({"--shard", "0/3", "--journal", "j"}),
                testing::ExitedWithCode(1), "1 <= i <= N");
    EXPECT_EXIT(parseArgs({"--shard", "4/3", "--journal", "j"}),
                testing::ExitedWithCode(1), "1 <= i <= N");
    EXPECT_EXIT(parseArgs({"--shard", "2/0", "--journal", "j"}),
                testing::ExitedWithCode(1), "1 <= i <= N");
    EXPECT_EXIT(parseArgs({"--shard", "1/99999", "--journal", "j"}),
                testing::ExitedWithCode(1), "1 <= i <= N");
    EXPECT_EXIT(parseArgs({"--shard", "a/b", "--journal", "j"}),
                testing::ExitedWithCode(1), "unsigned integer");
}

TEST(ShardArgsDeath, ShardWithoutJournalIsRejected)
{
    EXPECT_EXIT(parseArgs({"--shard", "2/3"}),
                testing::ExitedWithCode(1),
                "--shard requires --journal");
}

TEST(ShardArgsDeath, ShardAssignmentMismatchOnResumeIsRejected)
{
    // A process must keep its original --shard assignment when it
    // resumes; the journal header pins it.
    const std::size_t points = 6;
    std::string dir = tempJournalDir();
    runShard(shardOptions(dir, 1, 2, /*steal=*/false), points,
             0x5eedULL);
    // Same file name would not even exist for 1/3; the mismatch that
    // matters is same-name different-header, i.e. shard 1 of 2
    // reopened claiming a different count is caught by the on-disk
    // header when the layout matches. Rewrite the header to simulate
    // a stale assignment.
    SweepJournal::Header header =
        readJournalHeader(journalMetaPath(dir, 0, 1, 2));
    header.shardIndex = 2;
    writeJournalHeaderFile(journalMetaPath(dir, 0, 1, 2), header);
    EXPECT_EXIT(runShard(shardOptions(dir, 1, 2, false), points,
                         0x5eedULL),
                testing::ExitedWithCode(1),
                "original --shard assignment");
}
