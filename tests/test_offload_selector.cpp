/**
 * @file
 * Unit tests for the dual-index offload-candidate selection
 * (paper SectionIII-C step 1).
 */

#include <gtest/gtest.h>

#include "cpu/cpu_model.hh"
#include "nn/models.hh"
#include "rt/offload_selector.hh"
#include "rt/profiler.hh"

using namespace hpim;
using namespace hpim::rt;
using nn::OpType;

namespace {

/** Hand-built profile: three types with known time/access ranks. */
ProfileReport
syntheticReport()
{
    ProfileReport report;
    auto add = [&report](OpType type, double time, double accesses) {
        TypeProfile t;
        t.type = type;
        t.timeSec = time;
        t.accesses = accesses;
        ++t.invocations;
        report.byType.push_back(t);
        report.totalTimeSec += time;
        report.totalAccesses += accesses;
    };
    add(OpType::Conv2D, 50.0, 500.0);   // hot + memory heavy
    add(OpType::MatMul, 30.0, 100.0);   // hot, less memory
    add(OpType::Relu, 15.0, 300.0);     // cooler, memory heavy
    add(OpType::Reshape, 5.0, 10.0);    // negligible
    for (auto &t : report.byType) {
        t.timePct = 100.0 * t.timeSec / report.totalTimeSec;
        t.accessPct = 100.0 * t.accesses / report.totalAccesses;
    }
    return report;
}

} // namespace

TEST(OffloadSelector, GlobalIndexCombinesBothRankings)
{
    auto selection = selectOffloadCandidates(syntheticReport(), 90.0);
    ASSERT_FALSE(selection.ranking.empty());
    // Conv2D: rank 0 by time, rank 0 by accesses -> global 0, first.
    EXPECT_EQ(selection.ranking[0].type, OpType::Conv2D);
    EXPECT_EQ(selection.ranking[0].globalIndex, 0u);
    // Reshape is last on both lists -> last globally.
    EXPECT_EQ(selection.ranking.back().type, OpType::Reshape);
}

TEST(OffloadSelector, CoverageStopsAtTarget)
{
    // Conv2D(50%) + MatMul(30%) + Relu(15%) = 95% >= 90%.
    auto selection = selectOffloadCandidates(syntheticReport(), 90.0);
    EXPECT_EQ(selection.candidates.size(), 3u);
    EXPECT_TRUE(selection.isCandidate(OpType::Conv2D));
    EXPECT_TRUE(selection.isCandidate(OpType::MatMul));
    EXPECT_TRUE(selection.isCandidate(OpType::Relu));
    EXPECT_FALSE(selection.isCandidate(OpType::Reshape));
    EXPECT_GE(selection.coveredTimePct, 90.0);
}

TEST(OffloadSelector, LowCoverageSelectsFewer)
{
    auto selection = selectOffloadCandidates(syntheticReport(), 40.0);
    EXPECT_EQ(selection.candidates.size(), 1u);
    EXPECT_TRUE(selection.isCandidate(OpType::Conv2D));
}

TEST(OffloadSelector, FullCoverageSelectsEverything)
{
    auto selection = selectOffloadCandidates(syntheticReport(), 100.0);
    EXPECT_EQ(selection.candidates.size(), 4u);
}

TEST(OffloadSelector, EmptyReportYieldsNoCandidates)
{
    ProfileReport empty;
    auto selection = selectOffloadCandidates(empty, 90.0);
    EXPECT_TRUE(selection.candidates.empty());
    EXPECT_TRUE(selection.ranking.empty());
}

TEST(OffloadSelectorDeath, BadCoverageIsFatal)
{
    EXPECT_EXIT(selectOffloadCandidates(syntheticReport(), 0.0),
                testing::ExitedWithCode(1), "coverage");
    EXPECT_EXIT(selectOffloadCandidates(syntheticReport(), 120.0),
                testing::ExitedWithCode(1), "coverage");
}

TEST(OffloadSelector, Vgg19SelectsTheBackpropOps)
{
    // On the real VGG-19 profile the offload set must include the
    // dominating convolution ops of paper Table I.
    Profiler profiler{cpu::CpuModel{}};
    auto report = profiler.profile(nn::buildVgg19());
    auto selection = selectOffloadCandidates(report, 90.0);
    EXPECT_TRUE(
        selection.isCandidate(OpType::Conv2DBackpropFilter));
    EXPECT_TRUE(selection.isCandidate(OpType::Conv2DBackpropInput));
    EXPECT_TRUE(selection.isCandidate(OpType::Conv2D));
    EXPECT_GE(selection.coveredTimePct, 90.0);
}

// Property: candidates always cover at least the requested share of
// step time (or everything when impossible), for every model.
class SelectorCoverageSweep
    : public testing::TestWithParam<hpim::nn::ModelId>
{};

TEST_P(SelectorCoverageSweep, CoverageInvariantHolds)
{
    Profiler profiler{cpu::CpuModel{}};
    auto report = profiler.profile(nn::buildModel(GetParam()));
    for (double pct : {50.0, 90.0, 99.0}) {
        auto selection = selectOffloadCandidates(report, pct);
        EXPECT_TRUE(selection.coveredTimePct >= pct
                    || selection.candidates.size()
                           == report.byType.size());
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SelectorCoverageSweep,
                         testing::ValuesIn(hpim::nn::allModels()));
