/**
 * @file
 * harness::FailPoint -- deterministic host-IO fault injection
 * (docs/RESILIENCE.md, "Host-IO fault injection").
 *
 * Covered: the spec grammar (valid programs, every malformed-token
 * diagnostic, parse-all-before-arm atomicity), trigger semantics
 * (after/every/prob determinism, off, reconfiguration resetting the
 * activation counter), the zero-cost-when-off contract, site
 * registration lifetime, and the syscall wrappers (errno mapping,
 * real short writes, fpWriteAll's bounded transient retry, fpCheck's
 * typed IoError).
 */

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/failpoint.hh"
#include "harness/journal.hh"
#include "harness/report_io.hh"
#include "harness/shard_merge.hh"
#include "harness/sweep.hh"

namespace {

using namespace hpim::harness;

/** Every test starts and ends with nothing armed. */
class FailPointTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearFailPoints(); }
    void TearDown() override { clearFailPoints(); }
};

/** A scratch file the write wrappers can really write to. */
struct ScratchFile
{
    ScratchFile()
    {
        path = ::testing::TempDir() + "fp_scratch_XXXXXX";
        fd = ::mkstemp(path.data());
        EXPECT_GE(fd, 0);
    }

    ~ScratchFile()
    {
        if (fd >= 0)
            ::close(fd);
        std::remove(path.c_str());
    }

    std::string contents() const
    {
        std::string text(4096, '\0');
        ssize_t n = ::pread(fd, text.data(), text.size(), 0);
        text.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
        return text;
    }

    std::string path;
    int fd = -1;
};

// ------------------------------------------------------------ registration

TEST_F(FailPointTest, SitesRegisterForTheirLifetime)
{
    const std::string name = "test.registration.site";
    {
        FailPoint site(name.c_str());
        std::vector<std::string> sites = failPointSites();
        EXPECT_NE(std::find(sites.begin(), sites.end(), name),
                  sites.end());
    }
    std::vector<std::string> sites = failPointSites();
    EXPECT_EQ(std::find(sites.begin(), sites.end(), name),
              sites.end());
}

TEST_F(FailPointTest, ProductionSitesAreRegistered)
{
    // Static-library sites only exist once their translation unit is
    // linked in; odr-use one symbol from each IO-owning file so the
    // harness-side site catalog is really present in this binary.
    // (The serve.* sites are checked in test_serve, which links the
    // server.)
    (void)journalMetaPath("dir", 0);            // journal.cc
    std::ostringstream header;
    writeCsvHeader(header);                     // report_io.cc
    SweepOptions options = parseSweepArgs(0, nullptr); // sweep.cc
    (void)options;
    EXPECT_THROW(mergeShardJournals("/nonexistent-journal-dir"),
                 ShardMergeError);              // shard_merge.cc

    std::vector<std::string> sites = failPointSites();
    for (const char *expected :
         {"journal.append.write", "journal.append.fsync",
          "journal.header.write", "journal.header.fsync",
          "journal.header.rename", "journal.dir.fsync",
          "journal.claim.open", "merge.read", "report.write",
          "trace.export.write"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), expected),
                  sites.end())
            << "site '" << expected << "' is not registered";
    }
}

// ------------------------------------------------------------ spec grammar

TEST_F(FailPointTest, MalformedSpecsThrowNamingTheToken)
{
    FailPoint site("test.grammar.site");
    EXPECT_THROW(configureFailPoints("no-equals-sign"),
                 FailPointError);
    EXPECT_THROW(configureFailPoints("=after(1):eio"), FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=bogus(1):eio"),
        FailPointError);
    EXPECT_THROW(configureFailPoints("test.grammar.site=after(1)"),
                 FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=after(1):bogus"),
        FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=after(-3):eio"),
        FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=every(0):eio"),
        FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=prob(1.5,7):eio"),
        FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=prob(0.5):eio"),
        FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=after(1):short"),
        FailPointError);
    EXPECT_THROW(
        configureFailPoints("test.grammar.site=off:eio"),
        FailPointError);
}

TEST_F(FailPointTest, UnknownSiteListsRegisteredSites)
{
    FailPoint site("test.known.site");
    try {
        configureFailPoints("test.unknown.site=after(1):eio");
        FAIL() << "expected FailPointError";
    } catch (const FailPointError &e) {
        EXPECT_NE(std::string(e.what()).find("test.unknown.site"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test.known.site"),
                  std::string::npos);
    }
    EXPECT_FALSE(failPointsArmed());
}

TEST_F(FailPointTest, MalformedTailArmsNothing)
{
    FailPoint site("test.atomic.site");
    EXPECT_THROW(
        configureFailPoints(
            "test.atomic.site=after(0):eio;garbage-program"),
        FailPointError);
    // Parse-all-before-arm: the valid prefix must not be live.
    EXPECT_FALSE(failPointsArmed());
    EXPECT_FALSE(site.fire());
}

// ------------------------------------------------------------- triggers

TEST_F(FailPointTest, AfterFiresExactlyOnce)
{
    FailPoint site("test.after.site");
    configureFailPoints("test.after.site=after(2):eio");
    EXPECT_TRUE(failPointsArmed());
    EXPECT_FALSE(site.fire());
    EXPECT_FALSE(site.fire());
    FailDecision hit = site.fire();
    EXPECT_TRUE(hit);
    EXPECT_EQ(hit.kind, FailKind::Eio);
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(site.fire());
    EXPECT_EQ(site.hits(), 19u);
}

TEST_F(FailPointTest, EveryFiresEachNthActivation)
{
    FailPoint site("test.every.site");
    configureFailPoints("test.every.site=every(3):enospc");
    std::vector<std::size_t> failed;
    for (std::size_t i = 1; i <= 12; ++i) {
        if (site.fire())
            failed.push_back(i);
    }
    EXPECT_EQ(failed, (std::vector<std::size_t>{3, 6, 9, 12}));
}

TEST_F(FailPointTest, ProbScheduleIsSeedDeterministic)
{
    FailPoint site("test.prob.site");
    auto schedule = [&](const std::string &spec) {
        configureFailPoints(spec);
        std::vector<bool> decisions;
        for (int i = 0; i < 256; ++i)
            decisions.push_back(static_cast<bool>(site.fire()));
        return decisions;
    };
    std::vector<bool> first =
        schedule("test.prob.site=prob(0.5,7):eio");
    std::vector<bool> second =
        schedule("test.prob.site=prob(0.5,7):eio");
    EXPECT_EQ(first, second)
        << "same (P,SEED) must reproduce the same schedule";
    std::vector<bool> other =
        schedule("test.prob.site=prob(0.5,8):eio");
    EXPECT_NE(first, other)
        << "a different seed must produce a different schedule";
    // The rate must be plausibly 0.5, not degenerate.
    std::size_t fails =
        static_cast<std::size_t>(std::count(first.begin(),
                                            first.end(), true));
    EXPECT_GT(fails, 64u);
    EXPECT_LT(fails, 192u);
}

TEST_F(FailPointTest, OffDisarmsOneSiteOthersStayArmed)
{
    FailPoint alpha("test.off.alpha");
    FailPoint beta("test.off.beta");
    configureFailPoints(
        "test.off.alpha=every(1):eio;test.off.beta=every(1):eio");
    EXPECT_TRUE(alpha.fire());
    EXPECT_TRUE(beta.fire());
    configureFailPoints("test.off.alpha=off");
    EXPECT_FALSE(alpha.fire());
    EXPECT_TRUE(beta.fire());
    EXPECT_TRUE(failPointsArmed());
    configureFailPoints("test.off.beta=off");
    EXPECT_FALSE(failPointsArmed());
}

TEST_F(FailPointTest, ReconfigureResetsTheActivationCounter)
{
    FailPoint site("test.reset.site");
    configureFailPoints("test.reset.site=after(1):eio");
    EXPECT_FALSE(site.fire());
    EXPECT_TRUE(site.fire());
    // Re-arming the same program restarts the schedule.
    configureFailPoints("test.reset.site=after(1):eio");
    EXPECT_EQ(site.hits(), 0u);
    EXPECT_FALSE(site.fire());
    EXPECT_TRUE(site.fire());
}

TEST_F(FailPointTest, DisarmedFireCountsNothing)
{
    FailPoint site("test.cold.site");
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(site.fire());
    // Nothing armed: the fast path never reached the counter.
    EXPECT_EQ(site.hits(), 0u);
    EXPECT_FALSE(failPointsArmed());
}

// ------------------------------------------------------------- wrappers

TEST_F(FailPointTest, WrappersMapOutcomesToErrno)
{
    FailPoint site("test.errno.site");
    ScratchFile file;

    configureFailPoints("test.errno.site=every(1):enospc");
    errno = 0;
    EXPECT_EQ(fpWrite(site, file.fd, "x", 1), -1);
    EXPECT_EQ(errno, ENOSPC);

    configureFailPoints("test.errno.site=every(1):eintr");
    errno = 0;
    EXPECT_EQ(fpWrite(site, file.fd, "x", 1), -1);
    EXPECT_EQ(errno, EINTR);

    configureFailPoints("test.errno.site=every(1):fsync");
    errno = 0;
    EXPECT_EQ(fpFsync(site, file.fd), -1);
    EXPECT_EQ(errno, EIO);

    configureFailPoints("test.errno.site=every(1):rename");
    errno = 0;
    EXPECT_EQ(fpRename(site, file.path.c_str(),
                       (file.path + ".renamed").c_str()),
              -1);
    EXPECT_EQ(errno, EIO);

    configureFailPoints("test.errno.site=every(1):eio");
    errno = 0;
    EXPECT_EQ(fpOpen(site, file.path.c_str(), O_RDONLY, 0), -1);
    EXPECT_EQ(errno, EIO);

    configureFailPoints("test.errno.site=every(1):alloc");
    EXPECT_THROW(fpWrite(site, file.fd, "x", 1), std::bad_alloc);

    // Disarmed, the wrapper performs the real syscall.
    clearFailPoints();
    EXPECT_EQ(fpWrite(site, file.fd, "ok", 2), 2);
    EXPECT_EQ(file.contents(), "ok");
}

TEST_F(FailPointTest, ShortWriteTransfersRealBytes)
{
    FailPoint site("test.short.site");
    ScratchFile file;
    configureFailPoints("test.short.site=after(0):short(3)");
    // First write is capped at 3 real bytes; the retry completes.
    EXPECT_EQ(fpWrite(site, file.fd, "abcdef", 6), 3);
    EXPECT_EQ(file.contents(), "abc");
    EXPECT_EQ(fpWrite(site, file.fd, "def", 3), 3);
    EXPECT_EQ(file.contents(), "abcdef");
}

TEST_F(FailPointTest, WriteAllAbsorbsTransientsCompletely)
{
    FailPoint site("test.writeall.site");
    ScratchFile file;
    const std::string payload =
        "the quick brown fox jumps over the lazy dog";
    // EINTR storm plus repeating short writes: fpWriteAll must land
    // every byte exactly once anyway.
    configureFailPoints("test.writeall.site=every(2):short(5)");
    fpWriteAll(site, file.fd, payload, file.path);
    EXPECT_EQ(file.contents(), payload);

    configureFailPoints("test.writeall.site=every(3):eintr");
    fpWriteAll(site, file.fd, payload, file.path);
    EXPECT_EQ(file.contents(), payload + payload);
}

TEST_F(FailPointTest, WriteAllEscalatesDurableFailures)
{
    FailPoint site("test.writeall.hard");
    ScratchFile file;
    configureFailPoints("test.writeall.hard=after(0):enospc");
    try {
        fpWriteAll(site, file.fd, std::string(64, 'x'), file.path);
        FAIL() << "expected IoError";
    } catch (const IoError &e) {
        EXPECT_EQ(e.err, ENOSPC);
        EXPECT_EQ(e.op, "write");
        EXPECT_EQ(e.path, file.path);
    }
}

TEST_F(FailPointTest, WriteAllBoundsZeroProgressRetries)
{
    FailPoint site("test.writeall.storm");
    ScratchFile file;
    // An unbroken EINTR storm must escalate, not spin forever.
    configureFailPoints("test.writeall.storm=every(1):eintr");
    try {
        fpWriteAll(site, file.fd, "payload", file.path);
        FAIL() << "expected IoError";
    } catch (const IoError &e) {
        EXPECT_EQ(e.err, EINTR);
    }
    EXPECT_LE(site.hits(), failPointTransientRetryLimit + 1);
}

TEST_F(FailPointTest, CheckThrowsTypedIoError)
{
    FailPoint site("test.check.site");
    configureFailPoints("test.check.site=after(0):eio");
    try {
        fpCheck(site, "read", "/some/shard/file");
        FAIL() << "expected IoError";
    } catch (const IoError &e) {
        EXPECT_EQ(e.err, EIO);
        EXPECT_EQ(e.op, "read");
        EXPECT_EQ(e.path, "/some/shard/file");
        EXPECT_NE(std::string(e.what()).find("/some/shard/file"),
                  std::string::npos);
    }
    // after(0) is one-shot: the next check passes.
    fpCheck(site, "read", "/some/shard/file");

    configureFailPoints("test.check.site=after(0):alloc");
    EXPECT_THROW(fpCheck(site, "read", "/p"), std::bad_alloc);
}

} // namespace
