/**
 * @file
 * Unit tests for the platform, command queues and events.
 */

#include <gtest/gtest.h>

#include "cl/platform.hh"

using namespace hpim::cl;
using hpim::nn::OpType;

namespace {

Kernel
kernelOf(OpType type, double muls)
{
    Kernel k;
    k.name = "k";
    k.opType = type;
    k.cost.muls = muls;
    k.parallelism = hpim::nn::fixedParallelism(type, 4, 16.0);
    return k;
}

/** Toy timing: 1 us per 1000 multiplies, regardless of device. */
double
toyTiming(const Kernel &k, const ComputeDevice &)
{
    return k.cost.muls * 1e-9;
}

} // namespace

TEST(Platform, DeviceRegistry)
{
    Platform platform(1 << 20);
    platform.addDevice("host", DeviceKind::HostCpu, 1, 8);
    platform.addDevice("fixed", DeviceKind::FixedPim, 32, 14);
    platform.addDevice("progr", DeviceKind::ProgrPim, 1, 4);
    EXPECT_EQ(platform.devices().size(), 3u);
    EXPECT_EQ(platform.devicesByKind(DeviceKind::FixedPim).size(), 1u);
    EXPECT_EQ(platform.devicesByKind(DeviceKind::ProgrPim).size(), 1u);
}

TEST(Platform, InOrderQueueSerializesKernels)
{
    Platform platform(1 << 20);
    auto &progr = platform.addDevice("progr", DeviceKind::ProgrPim, 1, 4);
    auto &queue = platform.createQueue(progr);
    auto e1 = queue.enqueue(kernelOf(OpType::Relu, 1000.0));
    auto e2 = queue.enqueue(kernelOf(OpType::Relu, 2000.0));
    queue.finish(toyTiming);
    EXPECT_EQ(e1->status, EventStatus::Complete);
    EXPECT_DOUBLE_EQ(e1->startSec, 0.0);
    EXPECT_DOUBLE_EQ(e2->startSec, e1->endSec);
    EXPECT_DOUBLE_EQ(queue.deviceTimeSec(), e2->endSec);
}

TEST(Platform, WaitListOrdersAcrossQueues)
{
    Platform platform(1 << 20);
    auto &fixed = platform.addDevice("fixed", DeviceKind::FixedPim, 32,
                                     14);
    auto &progr = platform.addDevice("progr", DeviceKind::ProgrPim, 1, 4);
    auto &fq = platform.createQueue(fixed);
    auto &pq = platform.createQueue(progr);

    auto producer = fq.enqueue(kernelOf(OpType::MatMul, 5000.0));
    fq.finish(toyTiming);
    auto consumer =
        pq.enqueue(kernelOf(OpType::Softmax, 1000.0), {producer});
    pq.finish(toyTiming);
    EXPECT_GE(consumer->startSec, producer->endSec);
}

TEST(PlatformDeath, FixedQueueRejectsUnsupportedKernels)
{
    Platform platform(1 << 20);
    auto &fixed = platform.addDevice("fixed", DeviceKind::FixedPim, 32,
                                     14);
    auto &queue = platform.createQueue(fixed);
    EXPECT_EXIT(queue.enqueue(kernelOf(OpType::MaxPool, 10.0)),
                testing::ExitedWithCode(1), "cannot run kernel");
}

TEST(Platform, EventIdsAreUnique)
{
    Platform platform(1 << 20);
    auto &progr = platform.addDevice("progr", DeviceKind::ProgrPim, 1, 4);
    auto &queue = platform.createQueue(progr);
    auto a = queue.enqueue(kernelOf(OpType::Relu, 1.0));
    auto b = queue.enqueue(kernelOf(OpType::Relu, 1.0));
    EXPECT_NE(a->id, b->id);
}

TEST(Platform, GlobalMemorySharedAcrossDevices)
{
    Platform platform(4096);
    auto buf = platform.globalMemory().alloc(1024, "shared");
    EXPECT_EQ(buf.bytes, 1024u);
    EXPECT_EQ(platform.globalMemory().allocatedBytes(), 1024u);
}
