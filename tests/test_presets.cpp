/**
 * @file
 * Unit tests for the evaluated system-configuration presets.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"

using namespace hpim;
using namespace hpim::baseline;

TEST(Presets, Names)
{
    EXPECT_EQ(systemName(SystemKind::CpuOnly), "CPU");
    EXPECT_EQ(systemName(SystemKind::Gpu), "GPU");
    EXPECT_EQ(systemName(SystemKind::ProgrPimOnly), "Progr PIM");
    EXPECT_EQ(systemName(SystemKind::FixedPimOnly), "Fixed PIM");
    EXPECT_EQ(systemName(SystemKind::HeteroPim), "Hetero PIM");
    EXPECT_EQ(systemName(SystemKind::Neurocube), "Neurocube");
}

TEST(Presets, CpuOnlyHasNoPims)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    EXPECT_FALSE(config.hasFixedPim);
    EXPECT_FALSE(config.hasProgrPim);
    EXPECT_FALSE(config.dynamicScheduling);
    // DDR4 host memory.
    EXPECT_DOUBLE_EQ(config.cpu.memBandwidth, 50e9);
}

TEST(Presets, HeteroPimEnablesEverything)
{
    auto config = makeConfig(SystemKind::HeteroPim);
    EXPECT_TRUE(config.hasFixedPim);
    EXPECT_TRUE(config.hasProgrPim);
    EXPECT_TRUE(config.dynamicScheduling);
    EXPECT_TRUE(config.recursiveKernels);
    EXPECT_TRUE(config.operationPipeline);
    EXPECT_EQ(config.fixed.totalUnits, 444u);
    EXPECT_EQ(config.progr.cores, 4u);
    // Host memory is the stack behind serial links.
    EXPECT_DOUBLE_EQ(config.cpu.memBandwidth, 120e9);
}

TEST(Presets, MakeHeteroFlagControl)
{
    auto config = makeHetero(true, false, true);
    EXPECT_TRUE(config.dynamicScheduling);
    EXPECT_FALSE(config.recursiveKernels);
    EXPECT_TRUE(config.operationPipeline);
}

TEST(Presets, FrequencyScalePropagates)
{
    auto config = makeConfig(SystemKind::HeteroPim, 4.0);
    EXPECT_DOUBLE_EQ(config.fixed.frequencyScale, 4.0);
    EXPECT_DOUBLE_EQ(config.progr.frequencyScale, 4.0);
}

TEST(Presets, ProgrScalingTradesFixedUnits)
{
    auto one = makeConfig(SystemKind::HeteroPim, 1.0, 1);
    auto sixteen = makeConfig(SystemKind::HeteroPim, 1.0, 16);
    EXPECT_EQ(one.fixed.totalUnits, 444u);
    EXPECT_LT(sixteen.fixed.totalUnits, 444u);
    EXPECT_EQ(sixteen.progrPimCount, 16u);
}

TEST(Presets, GpuUtilizationsMatchPaperSectionVD)
{
    EXPECT_DOUBLE_EQ(gpuUtilization(nn::ModelId::InceptionV3), 0.62);
    EXPECT_DOUBLE_EQ(gpuUtilization(nn::ModelId::ResNet50), 0.44);
    EXPECT_DOUBLE_EQ(gpuUtilization(nn::ModelId::AlexNet), 0.30);
    EXPECT_DOUBLE_EQ(gpuUtilization(nn::ModelId::Vgg19), 0.63);
    EXPECT_DOUBLE_EQ(gpuUtilization(nn::ModelId::Dcgan), 0.28);
}

TEST(Presets, GpuInputBytesFollowBatchAndGeometry)
{
    // VGG-19: 32 x 224 x 224 x 3 x 4 B.
    EXPECT_DOUBLE_EQ(gpuInputBytes(nn::ModelId::Vgg19),
                     32.0 * 224 * 224 * 3 * 4);
    // ResNet-50 at batch 128 moves 4x the VGG batch bytes.
    EXPECT_DOUBLE_EQ(gpuInputBytes(nn::ModelId::ResNet50),
                     4.0 * gpuInputBytes(nn::ModelId::Vgg19));
}

TEST(Presets, NeurocubeIsProgrammableOnly)
{
    auto config = makeConfig(SystemKind::Neurocube);
    EXPECT_FALSE(config.hasFixedPim);
    EXPECT_TRUE(config.hasProgrPim);
    EXPECT_FALSE(config.dynamicScheduling);
    EXPECT_EQ(config.progr.cores, 16u); // 16 vault-attached PEs
}

TEST(PresetsDeath, GpuConfigThroughSystemConfigIsFatal)
{
    EXPECT_EXIT(makeConfig(SystemKind::Gpu),
                testing::ExitedWithCode(1), "GpuModel");
}

TEST(Presets, RunSystemProducesConsistentReports)
{
    for (auto kind : {SystemKind::CpuOnly, SystemKind::Gpu,
                      SystemKind::HeteroPim}) {
        auto report = runSystem(kind, nn::ModelId::Dcgan, 2);
        EXPECT_GT(report.stepSec, 0.0) << systemName(kind);
        EXPECT_GT(report.energyPerStepJ, 0.0) << systemName(kind);
        EXPECT_EQ(report.configName, systemName(kind));
        EXPECT_EQ(report.workloadName, "DCGAN");
    }
}
