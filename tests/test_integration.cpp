/**
 * @file
 * Integration tests: the paper's headline results, end to end --
 * every module from workload graphs through profiling, selection,
 * the executor and the energy model.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"
#include "cache/hierarchy.hh"
#include "cpu/trace_generator.hh"
#include "mem/hmc_stack.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

using namespace hpim;
using baseline::runSystem;
using baseline::SystemKind;

namespace {

constexpr std::uint32_t kSteps = 3;

} // namespace

TEST(Integration, PimConfigsBeatCpuOnEveryModel)
{
    // Paper SectionVI-A: PIM-based designs beat CPU by 19% to 28x.
    for (auto model : nn::cnnModels()) {
        double cpu =
            runSystem(SystemKind::CpuOnly, model, kSteps).stepSec;
        double hetero =
            runSystem(SystemKind::HeteroPim, model, kSteps).stepSec;
        double progr =
            runSystem(SystemKind::ProgrPimOnly, model, kSteps).stepSec;
        double fixed =
            runSystem(SystemKind::FixedPimOnly, model, kSteps).stepSec;
        EXPECT_GT(cpu / hetero, 1.19) << nn::modelName(model);
        EXPECT_LT(cpu / hetero, 40.0) << nn::modelName(model);
        EXPECT_GT(cpu / progr, 1.0) << nn::modelName(model);
        EXPECT_GT(cpu / fixed, 1.0) << nn::modelName(model);
    }
}

TEST(Integration, HeteroBeatsHomogeneousPims)
{
    // Hetero vs Progr: 2.5-23x; vs Fixed: 1.4-5.7x (shape check:
    // strictly better, by a wide margin vs Progr).
    for (auto model : nn::cnnModels()) {
        double hetero =
            runSystem(SystemKind::HeteroPim, model, kSteps).stepSec;
        double progr =
            runSystem(SystemKind::ProgrPimOnly, model, kSteps).stepSec;
        double fixed =
            runSystem(SystemKind::FixedPimOnly, model, kSteps).stepSec;
        EXPECT_GT(progr / hetero, 2.5) << nn::modelName(model);
        EXPECT_GT(fixed / hetero, 1.2) << nn::modelName(model);
    }
}

TEST(Integration, HeteroBeatsGpuOnResNetOnly)
{
    // Paper: ResNet-50's working set spills the GPU's 11 GB, so
    // Hetero wins there; DCGAN favors the GPU; others are close.
    double resnet_gpu =
        runSystem(SystemKind::Gpu, nn::ModelId::ResNet50, kSteps)
            .stepSec;
    double resnet_het =
        runSystem(SystemKind::HeteroPim, nn::ModelId::ResNet50, kSteps)
            .stepSec;
    EXPECT_GT(resnet_gpu / resnet_het, 1.1);

    double vgg_gpu =
        runSystem(SystemKind::Gpu, nn::ModelId::Vgg19, kSteps).stepSec;
    double vgg_het =
        runSystem(SystemKind::HeteroPim, nn::ModelId::Vgg19, kSteps)
            .stepSec;
    // Within ~2x either way ("close to GPU").
    EXPECT_GT(vgg_gpu / vgg_het, 0.5);
    EXPECT_LT(vgg_gpu / vgg_het, 2.0);
}

TEST(Integration, HeteroEnergyBeatsCpuAndGpu)
{
    // Paper SectionVI-B: 3-24x less than CPU, 1.3-5x less than GPU.
    for (auto model : nn::cnnModels()) {
        double cpu = runSystem(SystemKind::CpuOnly, model, kSteps)
                         .energyPerStepJ;
        double gpu =
            runSystem(SystemKind::Gpu, model, kSteps).energyPerStepJ;
        double hetero = runSystem(SystemKind::HeteroPim, model, kSteps)
                            .energyPerStepJ;
        EXPECT_GT(cpu / hetero, 3.0) << nn::modelName(model);
        EXPECT_GT(gpu / hetero, 1.3) << nn::modelName(model);
    }
}

TEST(Integration, ProgrPimHasHighestDynamicEnergy)
{
    // Paper SectionVI-B: Progr PIM consumes more than every other
    // configuration (barely faster than CPU, more power).
    for (auto model : {nn::ModelId::Vgg19, nn::ModelId::AlexNet}) {
        double progr = runSystem(SystemKind::ProgrPimOnly, model,
                                 kSteps)
                           .energyPerStepJ;
        for (auto other :
             {SystemKind::CpuOnly, SystemKind::Gpu,
              SystemKind::FixedPimOnly, SystemKind::HeteroPim}) {
            EXPECT_GT(progr,
                      runSystem(other, model, kSteps).energyPerStepJ)
                << nn::modelName(model);
        }
    }
}

TEST(Integration, HeteroBeatsNeurocubeByAtLeastThreeX)
{
    // Paper Fig. 10.
    for (auto model : nn::cnnModels()) {
        auto neuro = runSystem(SystemKind::Neurocube, model, kSteps);
        auto hetero = runSystem(SystemKind::HeteroPim, model, kSteps);
        EXPECT_GT(neuro.stepSec / hetero.stepSec, 3.0)
            << nn::modelName(model);
        EXPECT_GT(neuro.energyPerStepJ / hetero.energyPerStepJ, 3.0)
            << nn::modelName(model);
    }
}

TEST(Integration, FrequencyScalingImprovesEdp)
{
    // Paper Fig. 17(a): 4x frequency is the EDP-optimal point.
    for (auto model : {nn::ModelId::Vgg19, nn::ModelId::AlexNet}) {
        double e1 =
            runSystem(SystemKind::HeteroPim, model, kSteps, 1.0).edp;
        double e4 =
            runSystem(SystemKind::HeteroPim, model, kSteps, 4.0).edp;
        EXPECT_LT(e4, e1) << nn::modelName(model);
    }
}

TEST(Integration, RcAndOpTogetherNearSaturateThePool)
{
    // Paper Fig. 15: utilization close to 100% with RC + OP on the
    // large models.
    auto config = baseline::makeHetero(true, true, true);
    config.steps = kSteps;
    rt::HeteroRuntime runtime(config);
    auto result = runtime.train(nn::buildResNet50());
    EXPECT_GT(result.execution.fixedUtilization, 0.75);
}

TEST(Integration, TraceDrivenMemoryPathConsistency)
{
    // The trace generator, cache hierarchy and HMC stack compose: a
    // sampled op trace filtered through the caches produces DRAM
    // requests the stack can service, and the measured row-hit rate
    // of a streaming op is high.
    cpu::TraceGenerator gen;
    auto graph = nn::buildAlexNet();
    const nn::Operation *relu = nullptr;
    for (const auto &op : graph.ops()) {
        if (op.type == nn::OpType::Relu) {
            relu = &op;
            break;
        }
    }
    ASSERT_NE(relu, nullptr);

    auto trace = gen.generate(relu->type, relu->cost, 0);
    cache::CacheHierarchy caches = cache::CacheHierarchy::xeonLike();
    mem::HmcStack stack{mem::HmcConfig{}};
    std::uint64_t dram_requests = 0;
    for (const auto &req : trace) {
        auto result = caches.access(req.addr, req.type);
        if (result.mainMemory) {
            mem::MemoryRequest miss = req;
            miss.addr %= stack.capacity();
            stack.enqueue(miss);
            ++dram_requests;
        }
    }
    ASSERT_GT(dram_requests, 0u);
    auto done = stack.drainAll();
    EXPECT_EQ(done.size(), dram_requests);

    // Streaming misses walk rows sequentially: mostly row hits.
    std::uint64_t hits = 0, misses = 0;
    for (std::uint32_t v = 0; v < stack.vaultCount(); ++v) {
        for (std::uint32_t b = 0; b < stack.vault(v).bankCount(); ++b) {
            hits += stack.vault(v).bank(b).counters().rowHits;
            misses += stack.vault(v).bank(b).counters().rowMisses
                      + stack.vault(v).bank(b).counters().rowConflicts;
        }
    }
    EXPECT_GT(hits + misses, 0u);
}

TEST(Integration, MixedWorkloadCorunWinsForAllPairs)
{
    auto config = baseline::makeConfig(SystemKind::HeteroPim);
    config.steps = 2;
    rt::HeteroRuntime runtime(config);
    const std::vector<std::pair<nn::ModelId, nn::ModelId>> pairs = {
        {nn::ModelId::AlexNet, nn::ModelId::Lstm},
        {nn::ModelId::AlexNet, nn::ModelId::Word2vec},
    };
    for (auto [cnn, guest] : pairs) {
        auto primary = nn::buildModel(cnn);
        auto secondary = nn::buildModel(guest);
        auto seq = runtime.corunSequential(primary, secondary);
        auto co = runtime.corun(primary, secondary);
        EXPECT_LT(co.execution.makespanSec,
                  seq.execution.makespanSec)
            << nn::modelName(cnn) << "+" << nn::modelName(guest);
    }
}
