/**
 * @file
 * Multi-workload scheduling beyond the paper's two-model study: the
 * executor accepts any number of co-running workloads. Verifies
 * priority (managed first), schedule legality with three workloads,
 * and that adding guests never speeds up the primary.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "rt/schedule_validator.hh"

using namespace hpim;
using namespace hpim::rt;

namespace {

WorkloadSpec
spec(const nn::Graph &graph, std::uint32_t steps, bool managed)
{
    WorkloadSpec s;
    s.graph = &graph;
    s.steps = steps;
    s.pimManaged = managed;
    return s;
}

} // namespace

TEST(MultiCorun, ThreeWorkloadsCompleteAndValidate)
{
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    auto cnn = nn::buildAlexNet();
    auto lstm = nn::buildLstm();
    auto w2v = nn::buildWord2vec();

    Executor executor(config);
    ScheduleTrace trace;
    executor.attachTrace(&trace);
    auto report = executor.run(
        {spec(cnn, 2, true), spec(lstm, 2, false),
         spec(w2v, 4, false)});
    EXPECT_GT(report.makespanSec, 0.0);

    auto result = validateSchedule(trace, {&cnn, &lstm, &w2v},
                                   {2, 2, 4}, config);
    for (const auto &violation : result.violations)
        ADD_FAILURE() << violation.what;
}

TEST(MultiCorun, GuestsDoNotAccelerateThePrimary)
{
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    auto cnn = nn::buildAlexNet();
    auto w2v = nn::buildWord2vec();

    Executor solo(config);
    ScheduleTrace solo_trace;
    solo.attachTrace(&solo_trace);
    solo.run({spec(cnn, 2, true)});

    Executor mixed(config);
    ScheduleTrace mixed_trace;
    mixed.attachTrace(&mixed_trace);
    mixed.run({spec(cnn, 2, true), spec(w2v, 8, false)});

    // Primary completion: the latest end among its intervals.
    auto primary_end = [](const ScheduleTrace &trace) {
        double end = 0.0;
        for (const auto &e : trace.entries()) {
            if (e.workload == 0)
                end = std::max(end, e.endSec);
        }
        return end;
    };
    EXPECT_GE(primary_end(mixed_trace),
              primary_end(solo_trace) * 0.999);
}

TEST(MultiCorun, TwoManagedWorkloadsShareThePool)
{
    // Two CNNs both under full management: both must place work on
    // the fixed pool and both must finish.
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    auto a = nn::buildAlexNet();
    auto b = nn::buildDcgan();

    Executor executor(config);
    ScheduleTrace trace;
    executor.attachTrace(&trace);
    auto report = executor.run({spec(a, 2, true), spec(b, 2, true)});

    std::uint64_t pool_a = 0, pool_b = 0;
    for (const auto &e : trace.entries()) {
        if (e.placement == PlacedOn::FixedPool
            || e.placement == PlacedOn::ProgrRecursive) {
            (e.workload == 0 ? pool_a : pool_b) += 1;
        }
    }
    EXPECT_GT(pool_a, 0u);
    EXPECT_GT(pool_b, 0u);
    EXPECT_GT(report.fixedUtilization, 0.0);

    auto result =
        validateSchedule(trace, {&a, &b}, {2, 2}, config);
    for (const auto &violation : result.violations)
        ADD_FAILURE() << violation.what;
}
