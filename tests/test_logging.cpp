/**
 * @file
 * Unit tests for the logging/error-reporting helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace hpim::sim;

TEST(Logging, ThresholdRoundTrips)
{
    LogLevel before = logThreshold();
    setLogThreshold(LogLevel::Inform);
    EXPECT_EQ(logThreshold(), LogLevel::Inform);
    setLogThreshold(before);
}

TEST(Logging, FormatAllConcatenatesMixedTypes)
{
    std::string text =
        detail::formatAll("x=", 42, ", y=", 2.5, ", z=", "str");
    EXPECT_EQ(text, "x=42, y=2.5, z=str");
    EXPECT_EQ(detail::formatAll(), "");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT({ fatal("bad config value ", 7); },
                testing::ExitedWithCode(1), "bad config value 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ panic("invariant ", "broken"); },
                 "invariant broken");
}

TEST(LoggingDeath, FatalIfFiresOnlyWhenTrue)
{
    // The false branch must be side-effect free and survivable.
    fatal_if(false, "never");
    panic_if(false, "never");
    EXPECT_EXIT({ fatal_if(1 + 1 == 2, "arithmetic works"); },
                testing::ExitedWithCode(1), "arithmetic works");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("model approximated: ", 3, " knobs");
    inform("status ok");
    SUCCEED();
}

TEST(Logging, InformSuppressedBelowThreshold)
{
    LogLevel before = logThreshold();
    setLogThreshold(LogLevel::Warn);
    testing::internal::CaptureStdout();
    inform("quiet message");
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
    setLogThreshold(LogLevel::Inform);
    testing::internal::CaptureStdout();
    inform("loud message");
    EXPECT_NE(testing::internal::GetCapturedStdout().find(
                  "loud message"),
              std::string::npos);
    setLogThreshold(before);
}
