/**
 * @file
 * Crash-recovery tests for the journaled sweep engine: resume after a
 * mid-record truncation (the SIGKILL case), corrupt-tail handling,
 * header mismatch rejection, and bit-identical resumed results.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/failpoint.hh"
#include "harness/journal.hh"
#include "harness/report_io.hh"
#include "harness/sweep.hh"

using namespace hpim;
using namespace hpim::harness;

namespace {

constexpr std::size_t kPoints = 7;
constexpr std::uint64_t kGridHash = 0x1234abcd5678ef00ULL;

/** Deterministic synthetic report: a function of (i, rng) only. */
rt::ExecutionReport
makePoint(std::size_t i, sim::Rng &rng)
{
    rt::ExecutionReport r;
    r.configName = "synthetic";
    r.workloadName = "point-" + std::to_string(i);
    r.stepsSimulated = static_cast<std::uint32_t>(i + 1);
    r.stepSec = rng.uniform();
    r.opSec = rng.uniform();
    r.dataMovementSec = rng.uniform();
    r.energyPerStepJ = rng.uniform(1.0, 10.0);
    r.retries = rng.below(100);
    r.opsByPlacement[rt::PlacedOn::Cpu] = rng.below(1000);
    r.capacityTimeline.push_back(
        {rng.uniform(), static_cast<std::uint32_t>(rng.below(512))});
    return r;
}

/** Run the reference grid; @return one JSON string per point. */
std::vector<std::string>
runSweep(const SweepOptions &options, std::size_t *resumed = nullptr)
{
    SweepRunner runner(options);
    auto reports = runner.mapReports(kPoints, kGridHash, makePoint);
    if (resumed)
        *resumed = runner.stats().resumedPoints;
    std::vector<std::string> out;
    out.reserve(reports.size());
    for (const auto &report : reports)
        out.push_back(jsonString(report));
    return out;
}

/** Fresh journal dir one level below a mkdtemp dir, so the journal
 *  code also exercises its own directory creation. */
std::string
tempJournalDir()
{
    std::string tmpl = testing::TempDir() + "hpim-journal-XXXXXX";
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir) + "/journal";
}

std::string
recordsPath(const std::string &dir, std::uint32_t segment = 0)
{
    return dir + "/sweep-" + std::to_string(segment)
           + ".records.jsonl";
}

long
fileSize(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0
               ? static_cast<long>(st.st_size)
               : -1;
}

SweepOptions
journaledOptions(const std::string &dir, std::uint32_t jobs = 1,
                 std::uint64_t seed = sim::defaultSeed)
{
    SweepOptions options;
    options.jobs = jobs;
    options.baseSeed = seed;
    options.journalDir = dir;
    return options;
}

} // namespace

TEST(Checkpoint, JournaledRunMatchesPlainRunByteForByte)
{
    SweepOptions plain;
    plain.jobs = 1;
    auto reference = runSweep(plain);

    auto journaled = runSweep(journaledOptions(tempJournalDir(), 2));
    EXPECT_EQ(journaled, reference);
}

TEST(Checkpoint, SecondRunResumesEveryPointWithoutResimulating)
{
    auto dir = tempJournalDir();
    auto first = runSweep(journaledOptions(dir));

    std::size_t resumed = 0;
    auto second = runSweep(journaledOptions(dir), &resumed);
    EXPECT_EQ(resumed, kPoints);
    EXPECT_EQ(second, first);
}

TEST(Checkpoint, TruncatedTailRecordIsRecomputedBitIdentical)
{
    // The SIGKILL-mid-append crash: the journal ends in a torn
    // record. Resume must drop the tail, re-simulate only what is
    // missing, and still match an uninterrupted --jobs 1 run.
    SweepOptions plain;
    plain.jobs = 1;
    auto reference = runSweep(plain);

    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir)); // jobs=1: appends in index order
    const std::string records = recordsPath(dir);
    long size = fileSize(records);
    ASSERT_GT(size, 20);
    ASSERT_EQ(truncate(records.c_str(), size - 17), 0);

    std::size_t resumed = 0;
    auto recovered = runSweep(journaledOptions(dir), &resumed);
    EXPECT_EQ(resumed, kPoints - 1);
    EXPECT_EQ(recovered, reference);
}

TEST(Checkpoint, MidFileTruncationKeepsOnlyTheGoodPrefix)
{
    auto dir = tempJournalDir();
    auto first = runSweep(journaledOptions(dir));
    const std::string records = recordsPath(dir);
    ASSERT_EQ(truncate(records.c_str(), fileSize(records) / 2), 0);

    std::size_t resumed = 0;
    auto recovered = runSweep(journaledOptions(dir), &resumed);
    EXPECT_GT(resumed, 0u);
    EXPECT_LT(resumed, kPoints);
    EXPECT_EQ(recovered, first);
}

TEST(Checkpoint, CorruptTailRecordIsSkipped)
{
    auto dir = tempJournalDir();
    auto first = runSweep(journaledOptions(dir));
    {
        // A complete but unparsable line after the good records.
        std::ofstream os(recordsPath(dir), std::ios::app);
        os << "{\"index\":0,\"point_hash\":0,\"report\":{}}\n";
    }
    std::size_t resumed = 0;
    auto recovered = runSweep(journaledOptions(dir), &resumed);
    EXPECT_EQ(resumed, kPoints);
    EXPECT_EQ(recovered, first);
}

TEST(Checkpoint, ResumedJournalAcceptsFurtherAppends)
{
    // Resume after truncation, then resume again: the second resume
    // must see a fully repaired journal.
    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir));
    const std::string records = recordsPath(dir);
    ASSERT_EQ(truncate(records.c_str(), fileSize(records) / 2), 0);
    runSweep(journaledOptions(dir));

    std::size_t resumed = 0;
    runSweep(journaledOptions(dir), &resumed);
    EXPECT_EQ(resumed, kPoints);
}

TEST(Checkpoint, MultiSegmentBinariesResumeEachSweep)
{
    // fault_sweep-style binaries run several sweeps per process; each
    // gets its own journal segment, replayed in call order.
    auto dir = tempJournalDir();
    auto options = journaledOptions(dir);
    std::vector<std::string> first_a, first_b;
    {
        SweepRunner runner(options);
        for (const auto &r : runner.mapReports(3, 11, makePoint))
            first_a.push_back(jsonString(r));
        for (const auto &r : runner.mapReports(4, 22, makePoint))
            first_b.push_back(jsonString(r));
    }
    SweepRunner runner(options);
    std::vector<std::string> second_a, second_b;
    for (const auto &r : runner.mapReports(3, 11, makePoint))
        second_a.push_back(jsonString(r));
    for (const auto &r : runner.mapReports(4, 22, makePoint))
        second_b.push_back(jsonString(r));
    EXPECT_EQ(runner.stats().resumedPoints, 7u);
    EXPECT_EQ(second_a, first_a);
    EXPECT_EQ(second_b, first_b);
}

TEST(Checkpoint, GridHashCoversEveryPointParameter)
{
    std::vector<ExperimentPoint> grid(2);
    std::uint64_t base = gridHash(grid);
    auto mutated = [&](auto change) {
        std::vector<ExperimentPoint> g(2);
        change(g);
        return gridHash(g);
    };
    EXPECT_NE(mutated([](auto &g) {
                  g[1].model = nn::ModelId::Vgg19;
              }),
              base);
    EXPECT_NE(mutated([](auto &g) { g[0].steps = 5; }), base);
    EXPECT_NE(mutated([](auto &g) { g[0].freqScale = 2.0; }), base);
    EXPECT_NE(mutated([](auto &g) { g[1].progrPims = 4; }), base);
    EXPECT_NE(mutated([](auto &g) { g[1].batch = 64; }), base);
    EXPECT_NE(gridHash(std::vector<ExperimentPoint>(3)), base);
}

TEST(CheckpointDeath, SeedMismatchIsRejected)
{
    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir, 1, 1111));
    EXPECT_EXIT(runSweep(journaledOptions(dir, 1, 2222)),
                testing::ExitedWithCode(1), "--seed 1111");
}

TEST(CheckpointDeath, GridMismatchIsRejected)
{
    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir));
    SweepRunner runner(journaledOptions(dir));
    EXPECT_EXIT(runner.mapReports(kPoints, kGridHash + 1, makePoint),
                testing::ExitedWithCode(1), "different sweep grid");
}

TEST(CheckpointDeath, GridMismatchNamesExpectedAndFoundHashes)
{
    // Multi-host misconfiguration (two hosts sweeping different
    // grids into one directory) must be diagnosable from one log
    // line: the fatal message carries both hash values.
    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir));
    SweepRunner runner(journaledOptions(dir));
    const std::string both = "expects grid hash "
                             + std::to_string(kGridHash + 1)
                             + ".*found grid hash "
                             + std::to_string(kGridHash);
    EXPECT_EXIT(runner.mapReports(kPoints, kGridHash + 1, makePoint),
                testing::ExitedWithCode(1), both);
}

TEST(CheckpointDeath, PointCountMismatchIsRejected)
{
    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir));
    SweepRunner runner(journaledOptions(dir));
    EXPECT_EXIT(runner.mapReports(kPoints + 2, kGridHash, makePoint),
                testing::ExitedWithCode(1), "different sweep grid");
}

TEST(CheckpointDeath, InterruptedJournaledSweepExitsResumable)
{
    // A journaled runner installs SIGINT/SIGTERM handlers; a pending
    // interrupt makes the sweep drain, flush and leave with the
    // distinct resumable exit code instead of a plain crash.
    static_assert(resumableExitCode == 75); // BSD EX_TEMPFAIL
    auto dir = tempJournalDir();
    EXPECT_EXIT(
        {
            SweepRunner runner(journaledOptions(dir));
            std::raise(SIGTERM);
            runner.mapReports(kPoints, kGridHash, makePoint);
        },
        testing::ExitedWithCode(resumableExitCode),
        "Rerun the same command to resume");

    // The journal the interrupted child left behind is valid: a
    // fresh run resumes from it and completes the grid.
    SweepOptions plain;
    plain.jobs = 1;
    EXPECT_EQ(runSweep(journaledOptions(dir)), runSweep(plain));
}

TEST(CheckpointDeath, CorruptHeaderIsRejected)
{
    auto dir = tempJournalDir();
    runSweep(journaledOptions(dir));
    {
        std::ofstream os(dir + "/sweep-0.meta.json",
                         std::ios::trunc);
        os << "{\"schema_version\":1,\"base_se";
    }
    EXPECT_EXIT(runSweep(journaledOptions(dir)),
                testing::ExitedWithCode(1), "corrupt");
}

TEST(CheckpointFailPoints, InjectedDiskFullSealsAndExitsResumable)
{
    // A durable journal failure mid-sweep (disk full on the 4th
    // append) must seal the log at the last good record and leave
    // with the resumable exit code and the typed diagnostic --
    // exactly the crash contract docs/RESILIENCE.md promises.
    auto dir = tempJournalDir();
    EXPECT_EXIT(
        {
            configureFailPoints(
                "journal.append.write=after(3):enospc");
            runSweep(journaledOptions(dir));
        },
        testing::ExitedWithCode(resumableExitCode),
        "journal IO failure.*No space left");

    // The sealed journal is a valid prefix: a clean rerun resumes
    // the three durable points and reproduces the reference grid
    // byte for byte.
    SweepOptions plain;
    plain.jobs = 1;
    std::size_t resumed = 0;
    EXPECT_EQ(runSweep(journaledOptions(dir), &resumed),
              runSweep(plain));
    EXPECT_EQ(resumed, 3u);
}

TEST(CheckpointFailPoints, HeaderPublishFailureIsResumable)
{
    // rename() of the header tmp file fails: the journal never comes
    // into existence, the sweep leaves resumably, and a rerun starts
    // from scratch without tripping over the unlinked tmp file.
    auto dir = tempJournalDir();
    EXPECT_EXIT(
        {
            configureFailPoints(
                "journal.header.rename=after(0):rename");
            runSweep(journaledOptions(dir));
        },
        testing::ExitedWithCode(resumableExitCode),
        "journal IO failure");

    SweepOptions plain;
    plain.jobs = 1;
    EXPECT_EQ(runSweep(journaledOptions(dir)), runSweep(plain));
}

TEST(CheckpointFailPoints, TransientFaultsAreAbsorbedByteIdentical)
{
    // EINTR storms and repeating short writes are retried inside
    // fpWriteAll: the journaled run completes normally and its
    // records match the uninjected reference byte for byte.
    SweepOptions plain;
    plain.jobs = 1;
    auto reference = runSweep(plain);

    auto dir = tempJournalDir();
    configureFailPoints(
        "journal.append.write=every(2):short(5);"
        "journal.append.fsync=every(3):eintr");
    auto injected = runSweep(journaledOptions(dir));
    clearFailPoints();
    EXPECT_EQ(injected, reference);

    // And the journal those torn writes produced is fully durable.
    std::size_t resumed = 0;
    EXPECT_EQ(runSweep(journaledOptions(dir), &resumed), reference);
    EXPECT_EQ(resumed, kPoints);
}
