/**
 * @file
 * Tests for the cross-point memo cache (sim/memo_cache.hh): exact
 * keying, the enabled/suspended switches, and the end-to-end
 * guarantee the bench goldens rely on -- cached, uncached and
 * parallel sweeps produce byte-identical reports.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/graph_workloads.hh"
#include "harness/report_io.hh"
#include "harness/sweep.hh"
#include "nn/graph_builder.hh"
#include "nn/models.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/memo_cache.hh"

using hpim::sim::MemoCache;

namespace {

/** Reset the process-wide cache around each test. */
class SimCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        MemoCache::setEnabled(true);
        MemoCache::instance().setMaxEntries(0);
        MemoCache::instance().clear();
    }

    void
    TearDown() override
    {
        MemoCache::setEnabled(true);
        MemoCache::instance().setMaxEntries(0);
        MemoCache::instance().clear();
    }
};

std::vector<std::string>
serialize(const std::vector<hpim::rt::ExecutionReport> &reports)
{
    std::vector<std::string> out;
    out.reserve(reports.size());
    for (const auto &report : reports)
        out.push_back(hpim::harness::jsonString(report));
    return out;
}

/** A small fig8-style grid: every CNN on two systems. */
std::vector<hpim::harness::ExperimentPoint>
smallGrid()
{
    std::vector<hpim::harness::ExperimentPoint> points;
    for (hpim::nn::ModelId model : hpim::nn::cnnModels()) {
        for (auto kind : {hpim::baseline::SystemKind::CpuOnly,
                          hpim::baseline::SystemKind::HeteroPim}) {
            hpim::harness::ExperimentPoint p;
            p.kind = kind;
            p.model = model;
            p.steps = 2;
            points.push_back(p);
        }
    }
    return points;
}

} // namespace

TEST_F(SimCacheTest, FindReturnsExactlyWhatPutStored)
{
    auto &cache = MemoCache::instance();
    auto value = std::make_shared<const int>(42);
    cache.put<int>(7, "test.int", value);
    auto hit = cache.find<int>(7, "test.int");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit.get(), value.get()); // the very object, not a copy
    EXPECT_EQ(*hit, 42);
}

TEST_F(SimCacheTest, DifferentKeyOrTagMisses)
{
    auto &cache = MemoCache::instance();
    cache.put<int>(7, "test.int", std::make_shared<const int>(1));
    EXPECT_EQ(cache.find<int>(8, "test.int"), nullptr);
    EXPECT_EQ(cache.find<int>(7, "test.other"), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.insertions, 1u);
}

TEST_F(SimCacheTest, FirstWriterWins)
{
    // Racing sweep workers compute identical values for one key; the
    // first insert sticks so every later find returns one object.
    auto &cache = MemoCache::instance();
    auto first = std::make_shared<const int>(1);
    cache.put<int>(3, "test.int", first);
    cache.put<int>(3, "test.int", std::make_shared<const int>(1));
    auto hit = cache.find<int>(3, "test.int");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit.get(), first.get());
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(SimCacheTest, DisabledCacheNeverStoresOrHits)
{
    MemoCache::setEnabled(false);
    EXPECT_FALSE(MemoCache::active());
    auto &cache = MemoCache::instance();
    cache.put<int>(5, "test.int", std::make_shared<const int>(9));
    EXPECT_EQ(cache.find<int>(5, "test.int"), nullptr);
    MemoCache::setEnabled(true);
    EXPECT_EQ(cache.find<int>(5, "test.int"), nullptr); // never stored
}

TEST_F(SimCacheTest, SuspendIsCountedAndNestable)
{
    EXPECT_TRUE(MemoCache::active());
    MemoCache::suspend();
    MemoCache::suspend();
    EXPECT_FALSE(MemoCache::active());
    MemoCache::resume();
    EXPECT_FALSE(MemoCache::active()); // one suspender still holds it
    MemoCache::resume();
    EXPECT_TRUE(MemoCache::active());
}

TEST_F(SimCacheTest, AttachedTraceSessionSuspendsReuse)
{
    auto &cache = MemoCache::instance();
    cache.put<int>(11, "test.int", std::make_shared<const int>(2));
    ASSERT_NE(cache.find<int>(11, "test.int"), nullptr);
    {
        hpim::obs::TraceSession session;
        session.attach();
        // A hit here would skip the simulation whose events the
        // session expects to record.
        EXPECT_FALSE(MemoCache::active());
        EXPECT_EQ(cache.find<int>(11, "test.int"), nullptr);
        session.detach();
    }
    EXPECT_TRUE(MemoCache::active());
    EXPECT_NE(cache.find<int>(11, "test.int"), nullptr);
}

TEST_F(SimCacheTest, AttachedMetricsRegistrySuspendsReuse)
{
    auto &cache = MemoCache::instance();
    cache.put<int>(13, "test.int", std::make_shared<const int>(3));
    {
        hpim::obs::MetricsRegistry registry;
        registry.attach();
        EXPECT_FALSE(MemoCache::active());
        EXPECT_EQ(cache.find<int>(13, "test.int"), nullptr);
        registry.detach();
    }
    EXPECT_TRUE(MemoCache::active());
}

TEST_F(SimCacheTest, CachedAndUncachedSweepsAreByteIdentical)
{
    const auto points = smallGrid();

    // Reference: cache disabled end to end (the --no-sim-cache path).
    hpim::harness::SweepOptions off;
    off.jobs = 1;
    off.simCache = false;
    const auto reference =
        serialize(hpim::harness::SweepRunner(off).run(points));

    // Cold cache, then warm cache: the second run hits on every
    // memoized sub-result and must not change a byte.
    hpim::harness::SweepOptions on;
    on.jobs = 1;
    on.simCache = true;
    MemoCache::instance().clear();
    const auto cold =
        serialize(hpim::harness::SweepRunner(on).run(points));
    const auto hit_stats_before = MemoCache::instance().stats();
    const auto warm =
        serialize(hpim::harness::SweepRunner(on).run(points));
    const auto hit_stats_after = MemoCache::instance().stats();

    EXPECT_EQ(reference, cold);
    EXPECT_EQ(reference, warm);
    // The warm run actually exercised the hit path.
    EXPECT_GT(hit_stats_after.hits, hit_stats_before.hits);
}

TEST_F(SimCacheTest, CachedSweepIsByteIdenticalAcrossJobCounts)
{
    const auto points = smallGrid();

    hpim::harness::SweepOptions serial;
    serial.jobs = 1;
    MemoCache::instance().clear();
    const auto j1 =
        serialize(hpim::harness::SweepRunner(serial).run(points));

    for (std::uint32_t jobs : {2u, 4u}) {
        hpim::harness::SweepOptions parallel;
        parallel.jobs = jobs;
        MemoCache::instance().clear();
        const auto jn = serialize(
            hpim::harness::SweepRunner(parallel).run(points));
        EXPECT_EQ(j1, jn) << "sweep diverged at --jobs " << jobs;
        // And with workers racing on a shared warm cache:
        const auto jn_warm = serialize(
            hpim::harness::SweepRunner(parallel).run(points));
        EXPECT_EQ(j1, jn_warm)
            << "warm-cache sweep diverged at --jobs " << jobs;
    }
}

TEST_F(SimCacheTest, GraphSignatureDistinguishesStructure)
{
    using hpim::nn::ModelId;
    hpim::nn::Graph a = hpim::nn::buildModel(ModelId::AlexNet);
    hpim::nn::Graph b = hpim::nn::buildModel(ModelId::AlexNet);
    hpim::nn::Graph c = hpim::nn::buildModel(ModelId::Vgg19);
    EXPECT_EQ(a.signature(), b.signature());
    EXPECT_NE(a.signature(), c.signature());
}

TEST_F(SimCacheTest, PartialTierKeysOnBothHalvesAndCountsApart)
{
    auto &cache = MemoCache::instance();
    cache.putPartial<int>(21, 31, "test.partial",
                          std::make_shared<const int>(5));
    auto hit = cache.findPartial<int>(21, 31, "test.partial");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 5);
    // Either half of the key changing is a miss.
    EXPECT_EQ(cache.findPartial<int>(22, 31, "test.partial"), nullptr);
    EXPECT_EQ(cache.findPartial<int>(21, 32, "test.partial"), nullptr);
    // A partial hit counts as partialHits, never as hits.
    const auto stats = cache.stats();
    EXPECT_EQ(stats.partialHits, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
}

TEST_F(SimCacheTest, MaxEntriesEvictsOldestInsertionFirst)
{
    auto &cache = MemoCache::instance();
    cache.setMaxEntries(2);
    cache.put<int>(1, "test.int", std::make_shared<const int>(1));
    cache.put<int>(2, "test.int", std::make_shared<const int>(2));
    cache.put<int>(3, "test.int", std::make_shared<const int>(3));
    // Key 1 was inserted first, so it is the one evicted.
    EXPECT_EQ(cache.find<int>(1, "test.int"), nullptr);
    EXPECT_NE(cache.find<int>(2, "test.int"), nullptr);
    EXPECT_NE(cache.find<int>(3, "test.int"), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.insertions, 3u);
}

TEST_F(SimCacheTest, ZeroMaxEntriesMeansUnbounded)
{
    auto &cache = MemoCache::instance();
    cache.setMaxEntries(1);
    cache.setMaxEntries(0);
    for (std::uint64_t key = 0; key < 16; ++key)
        cache.put<int>(key, "test.int",
                       std::make_shared<const int>(1));
    EXPECT_EQ(cache.stats().entries, 16u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST_F(SimCacheTest, OpSignatureIsPositionIndependent)
{
    using namespace hpim::nn;
    CostStructure cost;
    cost.muls = 1e6;
    cost.adds = 1e6;
    cost.bytesRead = 4096;
    cost.bytesWritten = 2048;
    FixedParallelism par{241, 64.0};
    CostStructure pre_cost;
    pre_cost.specials = 512;

    // The same op (same costs, same parallelism) at op 0 of one graph
    // and op 1 of another, under different labels and inputs.
    Graph a("a");
    OpId a0 = a.add(OpType::MatMul, "x/MatMul", cost, par);
    Graph b("b");
    OpId b0 = b.add(OpType::Relu, "pre/Relu", pre_cost, {});
    OpId b1 = b.add(OpType::MatMul, "y/MatMul", cost, par, {b0});

    EXPECT_EQ(a.opSignature(a0), b.opSignature(b1));
    // The input cone differs, so the subtree signature must not.
    EXPECT_NE(a.subtreeSignature(a0), b.subtreeSignature(b1));
    // Position-independent != cost-independent: nudge one cost field
    // (same type, shape of work, parallelism) and the digest moves.
    CostStructure nudged = cost;
    nudged.bytesWritten += 1.0;
    OpId a1 = a.add(OpType::MatMul, "x/MatMul", nudged, par);
    EXPECT_NE(a.opSignature(a0), a.opSignature(a1));
}

TEST_F(SimCacheTest, RepeatedBlocksShareSubtreeSignatures)
{
    using namespace hpim::nn;
    CostStructure leaf_cost;
    leaf_cost.specials = 128;
    CostStructure mm_cost;
    mm_cost.muls = 4096;
    mm_cost.adds = 4096;
    FixedParallelism par{31, 16.0};

    // Two structurally identical towers in one graph: leaf -> matmul.
    Graph g("towers");
    OpId l0 = g.add(OpType::Relu, "t0/Relu", leaf_cost, {});
    OpId l1 = g.add(OpType::Relu, "t1/Relu", leaf_cost, {});
    OpId m0 = g.add(OpType::MatMul, "t0/MatMul", mm_cost, par, {l0});
    OpId m1 = g.add(OpType::MatMul, "t1/MatMul", mm_cost, par, {l1});

    // Labels and ids differ, but the repeated block hashes equal --
    // what lets the delta tier profile a transformer layer once.
    EXPECT_EQ(g.subtreeSignature(m0), g.subtreeSignature(m1));
    EXPECT_EQ(g.opSignature(l0), g.opSignature(l1));
    // And a consumer of a *different* cone does not alias.
    OpId mx = g.add(OpType::MatMul, "tx/MatMul", mm_cost, par, {m0});
    EXPECT_NE(g.subtreeSignature(mx), g.subtreeSignature(m0));
}

TEST_F(SimCacheTest, CappedCacheSweepIsByteIdentical)
{
    // A tiny cap forces constant eviction (the "partial cache" mode):
    // some points hit, most miss, and nothing may change a byte.
    const auto points = smallGrid();

    hpim::harness::SweepOptions off;
    off.jobs = 1;
    off.simCache = false;
    const auto reference =
        serialize(hpim::harness::SweepRunner(off).run(points));

    for (std::uint32_t jobs : {1u, 2u, 4u}) {
        hpim::harness::SweepOptions capped;
        capped.jobs = jobs;
        capped.simCacheMaxEntries = 4;
        MemoCache::instance().clear();
        const auto got = serialize(
            hpim::harness::SweepRunner(capped).run(points));
        EXPECT_EQ(reference, got)
            << "capped-cache sweep diverged at --jobs " << jobs;
    }
    EXPECT_GT(MemoCache::instance().stats().evictions, 0u);
}

TEST_F(SimCacheTest, UserGraphAppendixIdenticalAcrossCacheModes)
{
    using hpim::baseline::SystemKind;

    // An in-memory user graph (the graph_sweep path without file IO).
    hpim::nn::Builder builder("cache-test");
    hpim::nn::TensorRef x =
        builder.input(hpim::nn::TensorShape({8, 32}));
    x = builder.dense(x, 32);
    x = builder.layerNorm(x);
    hpim::nn::TensorRef logits = builder.dense(x, 8, false);
    auto graph = std::make_shared<const hpim::nn::Graph>(
        builder.trainingStep(logits));
    const std::vector<hpim::harness::GraphWorkload> workloads = {
        {"inline:cache-test", graph}};
    const std::vector<SystemKind> systems = {SystemKind::CpuOnly,
                                             SystemKind::HeteroPim};

    auto appendix = [&](hpim::harness::SweepOptions options) {
        MemoCache::instance().clear();
        hpim::harness::SweepRunner runner(std::move(options));
        std::ostringstream os;
        hpim::harness::runGraphAppendix(os, runner, workloads, systems,
                                        /*steps=*/2);
        return os.str();
    };

    hpim::harness::SweepOptions off;
    off.jobs = 1;
    off.simCache = false;
    const std::string reference = appendix(off);
    ASSERT_FALSE(reference.empty());

    for (std::uint32_t jobs : {1u, 2u, 4u}) {
        hpim::harness::SweepOptions full;
        full.jobs = jobs;
        EXPECT_EQ(reference, appendix(full))
            << "full-cache appendix diverged at --jobs " << jobs;

        hpim::harness::SweepOptions capped;
        capped.jobs = jobs;
        capped.simCacheMaxEntries = 4;
        EXPECT_EQ(reference, appendix(capped))
            << "capped-cache appendix diverged at --jobs " << jobs;

        hpim::harness::SweepOptions none;
        none.jobs = jobs;
        none.simCache = false;
        EXPECT_EQ(reference, appendix(none))
            << "uncached appendix diverged at --jobs " << jobs;
    }
}
