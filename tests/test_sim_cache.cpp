/**
 * @file
 * Tests for the cross-point memo cache (sim/memo_cache.hh): exact
 * keying, the enabled/suspended switches, and the end-to-end
 * guarantee the bench goldens rely on -- cached, uncached and
 * parallel sweeps produce byte-identical reports.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/report_io.hh"
#include "harness/sweep.hh"
#include "nn/models.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/memo_cache.hh"

using hpim::sim::MemoCache;

namespace {

/** Reset the process-wide cache around each test. */
class SimCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        MemoCache::setEnabled(true);
        MemoCache::instance().clear();
    }

    void
    TearDown() override
    {
        MemoCache::setEnabled(true);
        MemoCache::instance().clear();
    }
};

std::vector<std::string>
serialize(const std::vector<hpim::rt::ExecutionReport> &reports)
{
    std::vector<std::string> out;
    out.reserve(reports.size());
    for (const auto &report : reports)
        out.push_back(hpim::harness::jsonString(report));
    return out;
}

/** A small fig8-style grid: every CNN on two systems. */
std::vector<hpim::harness::ExperimentPoint>
smallGrid()
{
    std::vector<hpim::harness::ExperimentPoint> points;
    for (hpim::nn::ModelId model : hpim::nn::cnnModels()) {
        for (auto kind : {hpim::baseline::SystemKind::CpuOnly,
                          hpim::baseline::SystemKind::HeteroPim}) {
            hpim::harness::ExperimentPoint p;
            p.kind = kind;
            p.model = model;
            p.steps = 2;
            points.push_back(p);
        }
    }
    return points;
}

} // namespace

TEST_F(SimCacheTest, FindReturnsExactlyWhatPutStored)
{
    auto &cache = MemoCache::instance();
    auto value = std::make_shared<const int>(42);
    cache.put<int>(7, "test.int", value);
    auto hit = cache.find<int>(7, "test.int");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit.get(), value.get()); // the very object, not a copy
    EXPECT_EQ(*hit, 42);
}

TEST_F(SimCacheTest, DifferentKeyOrTagMisses)
{
    auto &cache = MemoCache::instance();
    cache.put<int>(7, "test.int", std::make_shared<const int>(1));
    EXPECT_EQ(cache.find<int>(8, "test.int"), nullptr);
    EXPECT_EQ(cache.find<int>(7, "test.other"), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.insertions, 1u);
}

TEST_F(SimCacheTest, FirstWriterWins)
{
    // Racing sweep workers compute identical values for one key; the
    // first insert sticks so every later find returns one object.
    auto &cache = MemoCache::instance();
    auto first = std::make_shared<const int>(1);
    cache.put<int>(3, "test.int", first);
    cache.put<int>(3, "test.int", std::make_shared<const int>(1));
    auto hit = cache.find<int>(3, "test.int");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit.get(), first.get());
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(SimCacheTest, DisabledCacheNeverStoresOrHits)
{
    MemoCache::setEnabled(false);
    EXPECT_FALSE(MemoCache::active());
    auto &cache = MemoCache::instance();
    cache.put<int>(5, "test.int", std::make_shared<const int>(9));
    EXPECT_EQ(cache.find<int>(5, "test.int"), nullptr);
    MemoCache::setEnabled(true);
    EXPECT_EQ(cache.find<int>(5, "test.int"), nullptr); // never stored
}

TEST_F(SimCacheTest, SuspendIsCountedAndNestable)
{
    EXPECT_TRUE(MemoCache::active());
    MemoCache::suspend();
    MemoCache::suspend();
    EXPECT_FALSE(MemoCache::active());
    MemoCache::resume();
    EXPECT_FALSE(MemoCache::active()); // one suspender still holds it
    MemoCache::resume();
    EXPECT_TRUE(MemoCache::active());
}

TEST_F(SimCacheTest, AttachedTraceSessionSuspendsReuse)
{
    auto &cache = MemoCache::instance();
    cache.put<int>(11, "test.int", std::make_shared<const int>(2));
    ASSERT_NE(cache.find<int>(11, "test.int"), nullptr);
    {
        hpim::obs::TraceSession session;
        session.attach();
        // A hit here would skip the simulation whose events the
        // session expects to record.
        EXPECT_FALSE(MemoCache::active());
        EXPECT_EQ(cache.find<int>(11, "test.int"), nullptr);
        session.detach();
    }
    EXPECT_TRUE(MemoCache::active());
    EXPECT_NE(cache.find<int>(11, "test.int"), nullptr);
}

TEST_F(SimCacheTest, AttachedMetricsRegistrySuspendsReuse)
{
    auto &cache = MemoCache::instance();
    cache.put<int>(13, "test.int", std::make_shared<const int>(3));
    {
        hpim::obs::MetricsRegistry registry;
        registry.attach();
        EXPECT_FALSE(MemoCache::active());
        EXPECT_EQ(cache.find<int>(13, "test.int"), nullptr);
        registry.detach();
    }
    EXPECT_TRUE(MemoCache::active());
}

TEST_F(SimCacheTest, CachedAndUncachedSweepsAreByteIdentical)
{
    const auto points = smallGrid();

    // Reference: cache disabled end to end (the --no-sim-cache path).
    hpim::harness::SweepOptions off;
    off.jobs = 1;
    off.simCache = false;
    const auto reference =
        serialize(hpim::harness::SweepRunner(off).run(points));

    // Cold cache, then warm cache: the second run hits on every
    // memoized sub-result and must not change a byte.
    hpim::harness::SweepOptions on;
    on.jobs = 1;
    on.simCache = true;
    MemoCache::instance().clear();
    const auto cold =
        serialize(hpim::harness::SweepRunner(on).run(points));
    const auto hit_stats_before = MemoCache::instance().stats();
    const auto warm =
        serialize(hpim::harness::SweepRunner(on).run(points));
    const auto hit_stats_after = MemoCache::instance().stats();

    EXPECT_EQ(reference, cold);
    EXPECT_EQ(reference, warm);
    // The warm run actually exercised the hit path.
    EXPECT_GT(hit_stats_after.hits, hit_stats_before.hits);
}

TEST_F(SimCacheTest, CachedSweepIsByteIdenticalAcrossJobCounts)
{
    const auto points = smallGrid();

    hpim::harness::SweepOptions serial;
    serial.jobs = 1;
    MemoCache::instance().clear();
    const auto j1 =
        serialize(hpim::harness::SweepRunner(serial).run(points));

    for (std::uint32_t jobs : {2u, 4u}) {
        hpim::harness::SweepOptions parallel;
        parallel.jobs = jobs;
        MemoCache::instance().clear();
        const auto jn = serialize(
            hpim::harness::SweepRunner(parallel).run(points));
        EXPECT_EQ(j1, jn) << "sweep diverged at --jobs " << jobs;
        // And with workers racing on a shared warm cache:
        const auto jn_warm = serialize(
            hpim::harness::SweepRunner(parallel).run(points));
        EXPECT_EQ(j1, jn_warm)
            << "warm-cache sweep diverged at --jobs " << jobs;
    }
}

TEST_F(SimCacheTest, GraphSignatureDistinguishesStructure)
{
    using hpim::nn::ModelId;
    hpim::nn::Graph a = hpim::nn::buildModel(ModelId::AlexNet);
    hpim::nn::Graph b = hpim::nn::buildModel(ModelId::AlexNet);
    hpim::nn::Graph c = hpim::nn::buildModel(ModelId::Vgg19);
    EXPECT_EQ(a.signature(), b.signature());
    EXPECT_NE(a.signature(), c.signature());
}
