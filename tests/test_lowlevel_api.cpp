/**
 * @file
 * Unit tests for the Table-III low-level PIM API.
 */

#include <gtest/gtest.h>

#include "cl/lowlevel_api.hh"
#include "mem/address_mapping.hh"
#include "pim/placement.hh"

using hpim::cl::PimApi;
using hpim::cl::PimOpHandle;
using hpim::mem::AddressMapping;
using hpim::mem::Interleave;
using hpim::pim::StatusRegisterFile;

namespace {

struct Fixture
{
    Fixture()
        : mapping(32, 8, 1024, 256, Interleave::RoBaVaCo),
          regs(32, hpim::pim::placeUnits(hpim::pim::BankGrid{}, 444,
                                         0.35)
                       .unitsPerBank),
          api(regs, mapping)
    {}

    AddressMapping mapping;
    StatusRegisterFile regs;
    PimApi api;
};

} // namespace

TEST(PimApi, DataBanksFollowAddressMapping)
{
    Fixture f;
    // 32 row chunks stripe across all 32 vaults.
    auto banks = f.api.dataBanks(0, 32 * 256);
    EXPECT_EQ(banks.size(), 32u);
    // A single row chunk lives in exactly one bank.
    auto one = f.api.dataBanks(0, 64);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0u);
}

TEST(PimApi, OffloadAcquiresUnitsNearData)
{
    Fixture f;
    PimOpHandle op = f.api.offloadFixed(0, 64, 5);
    ASSERT_NE(op, 0u);
    // Data sits in bank 0; units must come from there first.
    EXPECT_TRUE(f.api.fixedBankBusy(0));
    auto loc = f.api.queryLocation(op);
    ASSERT_FALSE(loc.fixedBanks.empty());
    EXPECT_EQ(loc.fixedBanks[0], 0u);
    EXPECT_FALSE(loc.onProgrPim);
    f.api.complete(op);
    EXPECT_FALSE(f.api.fixedBankBusy(0));
}

TEST(PimApi, OffloadSpillsToOtherBanksWhenLocalFull)
{
    Fixture f;
    std::uint32_t local = f.regs.freeUnits(0);
    PimOpHandle op = f.api.offloadFixed(0, 64, local + 10);
    ASSERT_NE(op, 0u);
    auto loc = f.api.queryLocation(op);
    EXPECT_GE(loc.fixedBanks.size(), 2u);
    EXPECT_EQ(f.regs.freeUnits(0), 0u);
    f.api.complete(op);
}

TEST(PimApi, OffloadFailsWhenPoolExhausted)
{
    Fixture f;
    PimOpHandle big = f.api.offloadFixed(0, 64, 444);
    ASSERT_NE(big, 0u);
    EXPECT_EQ(f.api.offloadFixed(0, 64, 1), 0u);
    f.api.complete(big);
    EXPECT_NE(f.api.offloadFixed(0, 64, 1), 0u);
}

TEST(PimApi, FailedOffloadRollsBackGrants)
{
    Fixture f;
    EXPECT_EQ(f.api.offloadFixed(0, 64, 1000), 0u); // > total units
    EXPECT_EQ(f.regs.totalFreeUnits(), 444u);
}

TEST(PimApi, ProgrOffloadTogglesBusy)
{
    Fixture f;
    EXPECT_FALSE(f.api.progrBusy());
    PimOpHandle op = f.api.offloadProgr();
    ASSERT_NE(op, 0u);
    EXPECT_TRUE(f.api.progrBusy());
    // Busy PIM rejects a second kernel.
    EXPECT_EQ(f.api.offloadProgr(), 0u);
    EXPECT_TRUE(f.api.queryLocation(op).onProgrPim);
    f.api.complete(op);
    EXPECT_FALSE(f.api.progrBusy());
}

TEST(PimApi, QueryCompleteLifecycle)
{
    Fixture f;
    PimOpHandle op = f.api.offloadFixed(0, 64, 3);
    EXPECT_FALSE(f.api.queryComplete(op));
    f.api.complete(op);
    EXPECT_TRUE(f.api.queryComplete(op));
}

TEST(PimApiDeath, DoubleCompletePanics)
{
    Fixture f;
    PimOpHandle op = f.api.offloadFixed(0, 64, 3);
    f.api.complete(op);
    EXPECT_DEATH(f.api.complete(op), "unknown PIM op");
}
