/**
 * @file
 * Unit tests for obs::MetricsRegistry and the serialization of its
 * snapshot through the versioned report (schema v2 "metrics" array).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "harness/report_io.hh"
#include "obs/metrics.hh"
#include "rt/execution_report.hh"

using namespace hpim;
using obs::MetricKind;
using obs::MetricSample;
using obs::MetricsRegistry;

TEST(ObsMetrics, NoRegistryAttachedByDefault)
{
    EXPECT_EQ(MetricsRegistry::current(), nullptr);
}

TEST(ObsMetrics, AttachDetachInstallTheGlobal)
{
    MetricsRegistry registry;
    registry.attach();
    EXPECT_EQ(MetricsRegistry::current(), &registry);
    registry.detach();
    EXPECT_EQ(MetricsRegistry::current(), nullptr);
}

TEST(ObsMetrics, CounterAccumulates)
{
    MetricsRegistry registry;
    auto &c = registry.counter("rt.ops");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Same name returns the same instrument.
    EXPECT_EQ(&registry.counter("rt.ops"), &c);
}

TEST(ObsMetrics, GaugeKeepsLastWrite)
{
    MetricsRegistry registry;
    auto &g = registry.gauge("capacity");
    g.set(100.0);
    g.set(42.5);
    EXPECT_EQ(g.value(), 42.5);
}

TEST(ObsMetrics, HistogramTracksCountSumMinMaxAndBuckets)
{
    MetricsRegistry registry;
    auto &h = registry.histogram("latency");
    h.observe(1.0);  // ilogb 0  -> bucket 64
    h.observe(3.0);  // ilogb 1  -> bucket 65
    h.observe(0.25); // ilogb -2 -> bucket 62
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 4.25);
    EXPECT_EQ(h.min(), 0.25);
    EXPECT_EQ(h.max(), 3.0);
    auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0].index, 62u);
    EXPECT_EQ(buckets[1].index, 64u);
    EXPECT_EQ(buckets[2].index, 65u);
    for (const auto &bucket : buckets)
        EXPECT_EQ(bucket.count, 1u);
}

TEST(ObsMetrics, HistogramDegenerateValuesLandInBucketZero)
{
    MetricsRegistry registry;
    auto &h = registry.histogram("edge");
    h.observe(0.0);
    h.observe(std::numeric_limits<double>::infinity());
    h.observe(std::nan(""));
    auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].index, 0u);
    EXPECT_EQ(buckets[0].count, 3u);
}

TEST(ObsMetrics, KindCollisionIsFatal)
{
    MetricsRegistry registry;
    registry.counter("x");
    EXPECT_DEATH(registry.gauge("x"), "kind");
}

TEST(ObsMetrics, SnapshotIsSortedByName)
{
    MetricsRegistry registry;
    registry.counter("zeta").add(1);
    registry.gauge("alpha").set(2.0);
    registry.histogram("mid").observe(1.0);
    auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "alpha");
    EXPECT_EQ(samples[1].name, "mid");
    EXPECT_EQ(samples[2].name, "zeta");
    EXPECT_EQ(samples[0].kind, MetricKind::Gauge);
    EXPECT_EQ(samples[2].count, 1u);
}

TEST(ObsMetrics, ConcurrentUpdatesAreLossless)
{
    MetricsRegistry registry;
    auto &c = registry.counter("hits");
    auto &h = registry.histogram("obs");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c, &h] {
            for (int i = 0; i < 10000; ++i) {
                c.add(1);
                h.observe(2.0);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(c.value(), 40000u);
    EXPECT_EQ(h.count(), 40000u);
    EXPECT_EQ(h.sum(), 80000.0);
    auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].count, 40000u);
}

TEST(ObsMetrics, KindNamesRoundTrip)
{
    for (MetricKind kind :
         {MetricKind::Counter, MetricKind::Gauge, MetricKind::Histogram})
        EXPECT_EQ(obs::metricKindFromName(obs::metricKindName(kind)),
                  kind);
}

// ---- Snapshot -> report -> JSON -> report round trip. -------------

namespace {

rt::ExecutionReport
reportWithLiveSnapshot()
{
    MetricsRegistry registry;
    registry.counter("rt.ops.cpu").add(12);
    registry.gauge("rt.fixed_capacity").set(444.0);
    auto &h = registry.histogram("mem.request_latency_s");
    h.observe(32e-9);
    h.observe(64e-9);
    h.observe(48e-9);

    rt::ExecutionReport report;
    report.configName = "Hetero PIM";
    report.workloadName = "AlexNet";
    report.metrics = registry.snapshot();
    return report;
}

} // namespace

TEST(ObsMetrics, RegistrySnapshotRoundTripsThroughReportJson)
{
    rt::ExecutionReport in = reportWithLiveSnapshot();
    ASSERT_EQ(in.metrics.size(), 3u);
    rt::ExecutionReport out = harness::readJson(harness::jsonString(in));
    EXPECT_EQ(out.metrics, in.metrics);
}

TEST(ObsMetrics, ReportJsonWithMetricsIsStableUnderReserialization)
{
    // The journal embeds report JSON verbatim, so serialize ->
    // parse -> serialize must be byte-identical with metrics present.
    std::string once = harness::jsonString(reportWithLiveSnapshot());
    EXPECT_EQ(harness::jsonString(harness::readJson(once)), once);
}

TEST(ObsMetrics, ParserRejectsBadMetricKind)
{
    std::string text = harness::jsonString(reportWithLiveSnapshot());
    auto pos = text.find("\"kind\":\"counter\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::strlen("\"kind\":\"counter\""),
                 "\"kind\":\"babbage\"");
    EXPECT_THROW(harness::readJson(text), harness::ParseError);
}

TEST(ObsMetrics, ParserRejectsOutOfRangeBucketIndex)
{
    rt::ExecutionReport report;
    MetricSample bad;
    bad.name = "h";
    bad.kind = MetricKind::Histogram;
    bad.count = 1;
    bad.sum = bad.min = bad.max = 1.0;
    bad.buckets = {{static_cast<std::uint32_t>(
                        obs::kHistogramBuckets),
                    1}};
    report.metrics = {bad};
    std::string text = harness::jsonString(report);
    EXPECT_THROW(harness::readJson(text), harness::ParseError);
}
