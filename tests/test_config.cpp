/**
 * @file
 * Unit tests for the typed key/value configuration store.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

using hpim::sim::Config;

TEST(Config, FallbacksWhenMissing)
{
    Config c;
    EXPECT_DOUBLE_EQ(c.getDouble("x", 1.5), 1.5);
    EXPECT_EQ(c.getInt("y", 7), 7);
    EXPECT_TRUE(c.getBool("z", true));
    EXPECT_EQ(c.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(c.has("x"));
    EXPECT_EQ(c.size(), 0u);
}

TEST(Config, StoresTypedValues)
{
    Config c;
    c.set("freq", 312.5e6);
    c.set("banks", 32);
    c.set("rc", true);
    c.set("name", "hetero");
    EXPECT_DOUBLE_EQ(c.getDouble("freq", 0.0), 312.5e6);
    EXPECT_EQ(c.getInt("banks", 0), 32);
    EXPECT_TRUE(c.getBool("rc", false));
    EXPECT_EQ(c.getString("name", ""), "hetero");
    EXPECT_EQ(c.size(), 4u);
}

TEST(Config, NumericCoercionBothWays)
{
    Config c;
    c.set("i", 42);
    c.set("d", 2.75);
    EXPECT_DOUBLE_EQ(c.getDouble("i", 0.0), 42.0);
    EXPECT_EQ(c.getInt("d", 0), 2);
}

TEST(Config, OverwriteReplacesValue)
{
    Config c;
    c.set("k", 1);
    c.set("k", 2);
    EXPECT_EQ(c.getInt("k", 0), 2);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Config, MergeOverwritesDuplicates)
{
    Config a, b;
    a.set("x", 1);
    a.set("y", 2);
    b.set("y", 20);
    b.set("z", 30);
    a.merge(b);
    EXPECT_EQ(a.getInt("x", 0), 1);
    EXPECT_EQ(a.getInt("y", 0), 20);
    EXPECT_EQ(a.getInt("z", 0), 30);
}

TEST(Config, RequireReturnsPresentValues)
{
    Config c;
    c.set("freq", 2.0e9);
    c.set("cores", 4);
    EXPECT_DOUBLE_EQ(c.requireDouble("freq"), 2.0e9);
    EXPECT_EQ(c.requireInt("cores"), 4);
}

TEST(ConfigDeath, RequireMissingKeyIsFatal)
{
    Config c;
    EXPECT_EXIT(c.requireDouble("nope"), testing::ExitedWithCode(1),
                "missing required config key");
}

TEST(ConfigDeath, TypeMismatchIsFatal)
{
    Config c;
    c.set("s", "text");
    EXPECT_EXIT(c.getDouble("s", 0.0), testing::ExitedWithCode(1),
                "not numeric");
    c.set("b", true);
    EXPECT_EXIT(c.getString("b", ""), testing::ExitedWithCode(1),
                "not a string");
}
