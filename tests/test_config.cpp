/**
 * @file
 * Unit tests for the typed key/value configuration store and its
 * schema validation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/config.hh"

using hpim::sim::Config;
using hpim::sim::ConfigKeySpec;
using hpim::sim::ConfigSchema;
using hpim::sim::ConfigType;

TEST(Config, FallbacksWhenMissing)
{
    Config c;
    EXPECT_DOUBLE_EQ(c.getDouble("x", 1.5), 1.5);
    EXPECT_EQ(c.getInt("y", 7), 7);
    EXPECT_TRUE(c.getBool("z", true));
    EXPECT_EQ(c.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(c.has("x"));
    EXPECT_EQ(c.size(), 0u);
}

TEST(Config, StoresTypedValues)
{
    Config c;
    c.set("freq", 312.5e6);
    c.set("banks", 32);
    c.set("rc", true);
    c.set("name", "hetero");
    EXPECT_DOUBLE_EQ(c.getDouble("freq", 0.0), 312.5e6);
    EXPECT_EQ(c.getInt("banks", 0), 32);
    EXPECT_TRUE(c.getBool("rc", false));
    EXPECT_EQ(c.getString("name", ""), "hetero");
    EXPECT_EQ(c.size(), 4u);
}

TEST(Config, NumericCoercionBothWays)
{
    Config c;
    c.set("i", 42);
    c.set("d", 2.75);
    EXPECT_DOUBLE_EQ(c.getDouble("i", 0.0), 42.0);
    EXPECT_EQ(c.getInt("d", 0), 2);
}

TEST(Config, OverwriteReplacesValue)
{
    Config c;
    c.set("k", 1);
    c.set("k", 2);
    EXPECT_EQ(c.getInt("k", 0), 2);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Config, MergeOverwritesDuplicates)
{
    Config a, b;
    a.set("x", 1);
    a.set("y", 2);
    b.set("y", 20);
    b.set("z", 30);
    a.merge(b);
    EXPECT_EQ(a.getInt("x", 0), 1);
    EXPECT_EQ(a.getInt("y", 0), 20);
    EXPECT_EQ(a.getInt("z", 0), 30);
}

TEST(Config, RequireReturnsPresentValues)
{
    Config c;
    c.set("freq", 2.0e9);
    c.set("cores", 4);
    EXPECT_DOUBLE_EQ(c.requireDouble("freq"), 2.0e9);
    EXPECT_EQ(c.requireInt("cores"), 4);
}

TEST(ConfigDeath, RequireMissingKeyIsFatal)
{
    Config c;
    EXPECT_EXIT(c.requireDouble("nope"), testing::ExitedWithCode(1),
                "missing required config key");
}

TEST(ConfigDeath, TypeMismatchIsFatal)
{
    Config c;
    c.set("s", "text");
    EXPECT_EXIT(c.getDouble("s", 0.0), testing::ExitedWithCode(1),
                "not numeric");
    c.set("b", true);
    EXPECT_EXIT(c.getString("b", ""), testing::ExitedWithCode(1),
                "not a string");
}

TEST(Config, RequireBoolAndStringReturnPresentValues)
{
    Config c;
    c.set("rc", true);
    c.set("model", "alexnet");
    EXPECT_TRUE(c.requireBool("rc"));
    EXPECT_EQ(c.requireString("model"), "alexnet");
}

TEST(ConfigDeath, RequireBoolAndStringMissingKeyIsFatal)
{
    Config c;
    EXPECT_EXIT(c.requireBool("nope"), testing::ExitedWithCode(1),
                "missing required config key");
    EXPECT_EXIT(c.requireString("nope"), testing::ExitedWithCode(1),
                "missing required config key");
}

TEST(Config, KeysAreSorted)
{
    Config c;
    c.set("zeta", 1);
    c.set("alpha", 2);
    c.set("mid", 3);
    auto keys = c.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

// ---- Schema validation. -------------------------------------------

namespace {

ConfigSchema
sampleSchema()
{
    ConfigSchema schema;
    schema.keys = {
        {"freq", ConfigType::Double, true, 1e6, 1e10},
        {"banks", ConfigType::Int, true, 1.0, 512.0},
        {"rc", ConfigType::Bool, false, 0.0, 0.0},
        {"name", ConfigType::String, false, 0.0, 0.0},
    };
    return schema;
}

Config
validConfig()
{
    Config c;
    c.set("freq", 312.5e6);
    c.set("banks", 32);
    c.set("rc", true);
    c.set("name", "hetero");
    return c;
}

/** @return true when some violation message contains @p needle. */
bool
mentions(const std::vector<std::string> &errors,
         const std::string &needle)
{
    for (const auto &error : errors)
        if (error.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(ConfigSchemaValidation, ValidConfigHasNoViolations)
{
    EXPECT_TRUE(validConfig().validate(sampleSchema()).empty());
}

TEST(ConfigSchemaValidation, MissingRequiredKeyIsReported)
{
    Config without;
    without.set("freq", 312.5e6);
    without.set("rc", false);
    auto errors = without.validate(sampleSchema());
    EXPECT_TRUE(mentions(errors, "missing required key 'banks'"));
    // Optional keys may be absent.
    EXPECT_FALSE(mentions(errors, "name"));
}

TEST(ConfigSchemaValidation, TypeMismatchIsReported)
{
    Config c = validConfig();
    c.set("rc", "yes");
    auto errors = c.validate(sampleSchema());
    EXPECT_TRUE(mentions(errors, "'rc' must be bool"));
}

TEST(ConfigSchemaValidation, NumericCoercionIsAccepted)
{
    Config c = validConfig();
    c.set("freq", 312500000); // int entry for a Double key
    c.set("banks", 32.0);     // double entry for an Int key
    EXPECT_TRUE(c.validate(sampleSchema()).empty());
}

TEST(ConfigSchemaValidation, OutOfRangeValueIsReported)
{
    Config c = validConfig();
    c.set("banks", 100000);
    auto errors = c.validate(sampleSchema());
    EXPECT_TRUE(mentions(errors, "'banks'"));
    EXPECT_TRUE(mentions(errors, "out of range"));

    c.set("banks", 0);
    EXPECT_TRUE(mentions(c.validate(sampleSchema()), "out of range"));
}

TEST(ConfigSchemaValidation, RangeEndpointsAreInclusive)
{
    Config c = validConfig();
    c.set("banks", 1);
    EXPECT_TRUE(c.validate(sampleSchema()).empty());
    c.set("banks", 512);
    EXPECT_TRUE(c.validate(sampleSchema()).empty());
}

TEST(ConfigSchemaValidation, UnknownKeyIsReported)
{
    Config c = validConfig();
    c.set("bansk", 32); // typo'd duplicate
    auto errors = c.validate(sampleSchema());
    EXPECT_TRUE(mentions(errors, "unknown key 'bansk'"));
}

TEST(ConfigSchemaValidation, AllowUnknownSuppressesUnknownKeyErrors)
{
    Config c = validConfig();
    c.set("extra", 1);
    ConfigSchema schema = sampleSchema();
    schema.allowUnknown = true;
    EXPECT_TRUE(c.validate(schema).empty());
}

TEST(ConfigSchemaValidation, EveryViolationIsCollected)
{
    Config c;
    c.set("freq", 1.0);   // below range
    c.set("rc", 3);       // wrong type
    c.set("oops", false); // unknown; 'banks' also missing
    auto errors = c.validate(sampleSchema());
    EXPECT_EQ(errors.size(), 4u);
}

TEST(ConfigSchemaDeath, ValidateOrDieListsViolations)
{
    Config c = validConfig();
    c.set("banks", 100000);
    c.set("oops", 1);
    EXPECT_EXIT(c.validateOrDie(sampleSchema()),
                testing::ExitedWithCode(1),
                "invalid configuration");
    EXPECT_TRUE(c.validate(sampleSchema()).size() == 2);
}
