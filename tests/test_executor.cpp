/**
 * @file
 * Unit tests for the heterogeneous execution engine: placement rules,
 * RC/OP behaviour, utilization accounting, and deterministic results.
 */

#include <gtest/gtest.h>

#include "baseline/presets.hh"
#include "nn/builder.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "rt/hetero_runtime.hh"

using namespace hpim;
using namespace hpim::rt;
using baseline::makeConfig;
using baseline::makeHetero;
using baseline::SystemKind;

namespace {

nn::Graph
tinyCnn()
{
    nn::CnnBuilder b("tiny", nn::TensorShape{4, 16, 16, 3});
    b.conv(3, 8, 1).maxPool(2, 2).fc(10, false);
    return b.finish();
}

ExecutionReport
runOn(const SystemConfig &config, const nn::Graph &graph,
      std::uint32_t steps = 2)
{
    HeteroRuntime runtime(config);
    return runtime.train(graph, steps).execution;
}

} // namespace

TEST(Executor, CpuOnlyRunsEverythingOnCpu)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    auto graph = tinyCnn();
    auto report = runOn(config, graph);
    EXPECT_EQ(report.opsByPlacement.count(PlacedOn::FixedPool), 0u);
    EXPECT_EQ(report.opsByPlacement.count(PlacedOn::ProgrPim), 0u);
    EXPECT_EQ(report.opsByPlacement[PlacedOn::Cpu],
              2u * graph.size());
    // Serial CPU: makespan equals busy time.
    EXPECT_NEAR(report.cpuBusySec, report.makespanSec, 1e-9);
}

TEST(Executor, HeteroUsesAllDeviceKinds)
{
    auto config = makeConfig(SystemKind::HeteroPim);
    auto report = runOn(config, tinyCnn());
    EXPECT_GT(report.opsByPlacement[PlacedOn::FixedPool], 0u);
    EXPECT_GT(report.opsByPlacement[PlacedOn::ProgrPim], 0u);
    EXPECT_GT(report.opsByPlacement[PlacedOn::ProgrRecursive], 0u);
}

TEST(Executor, RecursiveKernelsReplaceHostDrivenOffload)
{
    auto with_rc = makeHetero(true, true, false);
    auto without_rc = makeHetero(true, false, false);
    auto graph = tinyCnn();
    auto rc = runOn(with_rc, graph);
    auto no_rc = runOn(without_rc, graph);
    EXPECT_GT(rc.opsByPlacement[PlacedOn::ProgrRecursive], 0u);
    EXPECT_EQ(rc.opsByPlacement[PlacedOn::FixedHostDriven], 0u);
    EXPECT_EQ(no_rc.opsByPlacement[PlacedOn::ProgrRecursive], 0u);
    EXPECT_EQ(no_rc.recursiveLaunches, 0u);
    EXPECT_GT(rc.recursiveLaunches, 0u);
}

TEST(Executor, RcReducesHostLaunches)
{
    // RC merges kernels: the host launches far fewer times.
    auto graph = nn::buildAlexNet();
    auto rc = runOn(makeHetero(true, true, true), graph);
    auto no_rc = runOn(makeHetero(true, false, true), graph);
    EXPECT_LT(rc.hostLaunches, no_rc.hostLaunches);
}

TEST(Executor, OpImprovesUtilizationAndTime)
{
    auto graph = nn::buildAlexNet();
    auto with_op = runOn(makeHetero(true, true, true), graph, 4);
    auto without_op = runOn(makeHetero(true, true, false), graph, 4);
    EXPECT_GE(with_op.fixedUtilization,
              without_op.fixedUtilization - 1e-9);
    EXPECT_LE(with_op.stepSec, without_op.stepSec * 1.001);
}

TEST(Executor, UtilizationIsAFraction)
{
    auto report = runOn(makeConfig(SystemKind::HeteroPim), tinyCnn());
    EXPECT_GE(report.fixedUtilization, 0.0);
    EXPECT_LE(report.fixedUtilization, 1.0);
}

TEST(Executor, BreakdownSumsToStepTime)
{
    auto report = runOn(makeConfig(SystemKind::HeteroPim),
                        nn::buildDcgan());
    EXPECT_NEAR(report.opSec + report.dataMovementSec + report.syncSec,
                report.stepSec, report.stepSec * 1e-6);
}

TEST(Executor, EnergyComponentsSumToTotal)
{
    auto report = runOn(makeConfig(SystemKind::HeteroPim),
                        nn::buildDcgan());
    EXPECT_NEAR(report.totalEnergyJ,
                report.cpuEnergyJ + report.progrEnergyJ
                    + report.fixedEnergyJ + report.dramEnergyJ,
                report.totalEnergyJ * 1e-9);
    EXPECT_GT(report.averagePowerW, 0.0);
    EXPECT_GT(report.edp, 0.0);
}

TEST(Executor, DeterministicAcrossRuns)
{
    auto config = makeConfig(SystemKind::HeteroPim);
    auto graph = nn::buildDcgan();
    auto a = runOn(config, graph);
    auto b = runOn(config, graph);
    EXPECT_DOUBLE_EQ(a.stepSec, b.stepSec);
    EXPECT_DOUBLE_EQ(a.totalEnergyJ, b.totalEnergyJ);
    EXPECT_EQ(a.hostLaunches, b.hostLaunches);
}

TEST(Executor, MakespanScalesWithSteps)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    auto graph = tinyCnn();
    auto two = runOn(config, graph, 2);
    auto four = runOn(config, graph, 4);
    EXPECT_NEAR(four.makespanSec, 2.0 * two.makespanSec,
                0.01 * four.makespanSec);
}

TEST(Executor, ProgrOnlyKeepsFixedPoolIdle)
{
    auto report = runOn(makeConfig(SystemKind::ProgrPimOnly),
                        tinyCnn());
    EXPECT_DOUBLE_EQ(report.fixedUnitSeconds, 0.0);
    EXPECT_GT(report.progrBusySec, 0.0);
}

TEST(Executor, FixedOnlySendsSpecialOpsToCpu)
{
    auto report = runOn(makeConfig(SystemKind::FixedPimOnly),
                        tinyCnn());
    EXPECT_GT(report.opsByPlacement[PlacedOn::Cpu], 0u);
    EXPECT_GT(report.opsByPlacement[PlacedOn::FixedPool], 0u);
    EXPECT_EQ(report.opsByPlacement[PlacedOn::ProgrPim], 0u);
    EXPECT_GT(report.opsByPlacement[PlacedOn::FixedHostDriven], 0u);
}

TEST(Executor, LinkTrafficOnlyFromHostSideWork)
{
    // In a hetero system most traffic is in-stack.
    auto report = runOn(makeConfig(SystemKind::HeteroPim),
                        nn::buildAlexNet());
    EXPECT_GT(report.internalBytes, report.linkBytes);
}

TEST(Executor, GuestWorkloadRunsOnCpuAndProgrOnly)
{
    // Run a guest workload alone on a hetero system: it must never be
    // placed on the fixed pool or use recursive kernels even though
    // both exist (paper SectionVI-F: the non-CNN model executes on
    // the CPU or the programmable PIM).
    auto config = makeConfig(SystemKind::HeteroPim);
    Executor executor(config);
    auto guest = nn::buildLstm();
    WorkloadSpec spec;
    spec.graph = &guest;
    spec.steps = 1;
    spec.pimManaged = false;
    auto report = executor.run({spec});
    EXPECT_EQ(report.opsByPlacement[PlacedOn::FixedPool], 0u);
    EXPECT_EQ(report.opsByPlacement[PlacedOn::ProgrRecursive], 0u);
    EXPECT_EQ(report.opsByPlacement[PlacedOn::FixedHostDriven], 0u);
    EXPECT_GT(report.opsByPlacement[PlacedOn::Cpu]
                  + report.opsByPlacement[PlacedOn::ProgrPim],
              0u);
}

TEST(ExecutorDeath, EmptyWorkloadListIsFatal)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    Executor executor(config);
    EXPECT_EXIT(executor.run({}), testing::ExitedWithCode(1),
                "no workloads");
}

TEST(ExecutorDeath, ZeroStepsIsFatal)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    Executor executor(config);
    auto graph = tinyCnn();
    WorkloadSpec spec;
    spec.graph = &graph;
    spec.steps = 0;
    EXPECT_EXIT(executor.run({spec}), testing::ExitedWithCode(1),
                "zero steps");
}

TEST(ExecutorDeath, RunningTwiceIsFatal)
{
    auto config = makeConfig(SystemKind::CpuOnly);
    Executor executor(config);
    auto graph = tinyCnn();
    executor.run(graph, 1);
    EXPECT_EXIT(executor.run(graph, 1), testing::ExitedWithCode(1),
                "called twice");
}
