/**
 * @file
 * Unit tests for the shared-global-memory model with relaxed
 * consistency and explicit synchronization (paper Table II).
 */

#include <gtest/gtest.h>

#include "cl/memory_model.hh"

using namespace hpim::cl;

TEST(SharedMemory, BumpAllocation)
{
    SharedGlobalMemory mem(1024);
    GlobalBuffer a = mem.alloc(256, "weights");
    GlobalBuffer b = mem.alloc(128, "activations");
    EXPECT_EQ(a.base, 0u);
    EXPECT_EQ(b.base, 256u);
    EXPECT_EQ(mem.allocatedBytes(), 384u);
    EXPECT_NE(a.id, b.id);
}

TEST(SharedMemoryDeath, ExhaustionIsFatal)
{
    SharedGlobalMemory mem(100);
    mem.alloc(80, "a");
    EXPECT_EXIT(mem.alloc(21, "b"), testing::ExitedWithCode(1),
                "exhausted");
}

TEST(SharedMemory, FreeToRestoresBreak)
{
    SharedGlobalMemory mem(1024);
    GlobalBuffer a = mem.alloc(256, "keep");
    mem.alloc(128, "scratch1");
    mem.alloc(128, "scratch2");
    mem.freeTo(a); // frees 'a' and everything after it
    EXPECT_EQ(mem.allocatedBytes(), 0u);
}

TEST(SharedMemory, RelaxedConsistencyEpochs)
{
    // "An update ... by a fixed-function PIM is not visible ... until
    // the end of the kernel call" (paper SectionIII-B).
    SharedGlobalMemory mem(1024);
    GlobalBuffer buf = mem.alloc(64, "partial");
    EXPECT_TRUE(mem.visible(buf));
    mem.recordWrite(Agent::FixedPim, buf);
    EXPECT_FALSE(mem.visible(buf));
    mem.kernelEpochEnd(Agent::FixedPim);
    EXPECT_TRUE(mem.visible(buf));
    EXPECT_EQ(mem.epochFlushes(), 1u);
}

TEST(SharedMemory, EpochOnlyFlushesOwnAgent)
{
    SharedGlobalMemory mem(1024);
    GlobalBuffer a = mem.alloc(64, "a");
    GlobalBuffer b = mem.alloc(64, "b");
    mem.recordWrite(Agent::FixedPim, a);
    mem.recordWrite(Agent::ProgrPim, b);
    mem.kernelEpochEnd(Agent::FixedPim);
    EXPECT_TRUE(mem.visible(a));
    EXPECT_FALSE(mem.visible(b));
}

TEST(SharedMemory, FreeDropsPendingWrites)
{
    SharedGlobalMemory mem(1024);
    GlobalBuffer mark = mem.alloc(64, "mark");
    GlobalBuffer buf = mem.alloc(64, "temp");
    mem.recordWrite(Agent::ProgrPim, buf);
    mem.freeTo(mark);
    EXPECT_TRUE(mem.visible(buf));
}

TEST(GlobalLock, MutualExclusion)
{
    GlobalLock lock;
    EXPECT_TRUE(lock.tryAcquire(Agent::Host));
    EXPECT_TRUE(lock.held());
    EXPECT_FALSE(lock.tryAcquire(Agent::ProgrPim));
    EXPECT_EQ(lock.contentionCount(), 1u);
    lock.release(Agent::Host);
    EXPECT_TRUE(lock.tryAcquire(Agent::ProgrPim));
    lock.release(Agent::ProgrPim);
}

TEST(GlobalLockDeath, NonOwnerReleasePanics)
{
    GlobalLock lock;
    lock.tryAcquire(Agent::Host);
    EXPECT_DEATH(lock.release(Agent::FixedPim), "non-owner");
}

TEST(GlobalLockDeath, UnheldReleasePanics)
{
    GlobalLock lock;
    EXPECT_DEATH(lock.release(Agent::Host), "unheld");
}
