/**
 * @file
 * Unit tests for schedule tracing and its executor integration.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "rt/schedule_trace.hh"

using namespace hpim;
using namespace hpim::rt;

TEST(ScheduleTrace, RecordsIntervals)
{
    ScheduleTrace trace;
    auto t0 = trace.begin("conv1", 0, PlacedOn::FixedPool, 0, 0, 1.0);
    auto t1 = trace.begin("relu1", 1, PlacedOn::ProgrPim, 0, 0, 1.5);
    trace.end(t0, 2.0);
    trace.end(t1, 1.75);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace.entries()[0].durationSec(), 1.0);
    EXPECT_DOUBLE_EQ(trace.entries()[1].durationSec(), 0.25);
    EXPECT_DOUBLE_EQ(trace.busySeconds(PlacedOn::FixedPool), 1.0);
    EXPECT_DOUBLE_EQ(trace.busySeconds(PlacedOn::ProgrPim), 0.25);
    EXPECT_DOUBLE_EQ(trace.busySeconds(PlacedOn::Cpu), 0.0);
}

TEST(ScheduleTraceDeath, EndBeforeStartPanics)
{
    ScheduleTrace trace;
    auto t = trace.begin("x", 0, PlacedOn::Cpu, 0, 0, 5.0);
    EXPECT_DEATH(trace.end(t, 4.0), "before it starts");
}

TEST(ScheduleTrace, CsvHasHeaderAndRows)
{
    ScheduleTrace trace;
    auto t = trace.begin("conv1/Conv2D", 3, PlacedOn::FixedPool, 0,
                         1, 0.5);
    trace.end(t, 0.75);
    std::ostringstream os;
    trace.dumpCsv(os);
    std::string text = os.str();
    EXPECT_NE(text.find("label,placement"), std::string::npos);
    EXPECT_NE(text.find("conv1/Conv2D,fixed,0,1"), std::string::npos);
}

TEST(ScheduleTrace, ChromeTraceIsWellFormedJson)
{
    ScheduleTrace trace;
    auto t = trace.begin("op", 0, PlacedOn::ProgrRecursive, 0, 0, 0.0);
    trace.end(t, 1e-3);
    std::ostringstream os;
    trace.dumpChromeTrace(os);
    std::string text = os.str();
    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text.back(), '}');
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    // Balanced braces.
    int depth = 0;
    for (char c : text) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ScheduleTrace, ExecutorFillsTraceForEveryOp)
{
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    auto graph = nn::buildDcgan();
    Executor executor(config);
    ScheduleTrace trace;
    executor.attachTrace(&trace);
    auto report = executor.run(graph, 2);
    // One interval per (op, step).
    EXPECT_EQ(trace.size(), graph.size() * 2u);
    // Every interval is closed and within the makespan.
    for (const auto &entry : trace.entries()) {
        EXPECT_GE(entry.durationSec(), 0.0);
        EXPECT_LE(entry.endSec, report.makespanSec + 1e-9);
    }
    // Device busy time from the trace matches the report for the
    // serial devices.
    EXPECT_NEAR(trace.busySeconds(PlacedOn::Cpu), report.cpuBusySec,
                report.cpuBusySec * 0.5 + 1e-6);
}

TEST(ScheduleTrace, OpOverlapsStepsOnlyWithPipeline)
{
    auto graph = nn::buildAlexNet();
    auto count_overlap = [&graph](bool op_enabled) {
        auto config = baseline::makeHetero(true, true, op_enabled);
        Executor executor(config);
        ScheduleTrace trace;
        executor.attachTrace(&trace);
        executor.run(graph, 2);
        // Find whether any step-1 interval starts before the last
        // step-0 interval ends.
        double step0_end = 0.0;
        for (const auto &e : trace.entries()) {
            if (e.step == 0)
                step0_end = std::max(step0_end, e.endSec);
        }
        int overlapping = 0;
        for (const auto &e : trace.entries()) {
            if (e.step == 1 && e.startSec < step0_end - 1e-12)
                ++overlapping;
        }
        return overlapping;
    };
    EXPECT_EQ(count_overlap(false), 0);
    EXPECT_GT(count_overlap(true), 0);
}
