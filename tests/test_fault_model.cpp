/**
 * @file
 * Unit tests for sim::FaultModel: determinism, the kill-prefix
 * property behind monotone capacity sweeps, retry backoff, watchdog
 * timeouts, and thermal throttle derivation.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/fault_model.hh"

using hpim::sim::FaultConfig;
using hpim::sim::FaultModel;

namespace {

std::vector<std::uint32_t>
eightBanks()
{
    return {10, 12, 10, 12, 10, 12, 10, 12};
}

std::set<std::uint32_t>
killedBanks(const FaultModel &model)
{
    std::set<std::uint32_t> banks;
    for (const auto &kill : model.kills())
        banks.insert(kill.bank);
    return banks;
}

} // namespace

TEST(FaultModel, DefaultConfigDrawsNoFaults)
{
    FaultModel model(FaultConfig{}, eightBanks());
    EXPECT_TRUE(model.kills().empty());
    EXPECT_TRUE(model.throttles().empty());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(model.drawAttempt(true), FaultModel::Attempt::Success);
}

TEST(FaultModel, ScheduleIsDeterministicInTheSeed)
{
    FaultConfig config;
    config.killBanks = 3;
    config.transientRatePerOp = 0.3;
    config.stallRatePerOp = 0.1;
    config.seed = 42;

    FaultModel a(config, eightBanks());
    FaultModel b(config, eightBanks());
    ASSERT_EQ(a.kills().size(), b.kills().size());
    for (std::size_t i = 0; i < a.kills().size(); ++i) {
        EXPECT_EQ(a.kills()[i].bank, b.kills()[i].bank);
        EXPECT_DOUBLE_EQ(a.kills()[i].timeSec, b.kills()[i].timeSec);
    }
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(a.drawAttempt(i % 2 == 0), b.drawAttempt(i % 2 == 0));
}

TEST(FaultModel, KillSetIsPrefixOfLargerKillCount)
{
    // The distinct-bank walk makes the k-kill set a prefix of the
    // (k+1)-kill set under the same seed -- capacity-vs-kills sweeps
    // are monotone by construction.
    FaultConfig config;
    config.seed = 7;
    for (std::uint32_t k = 0; k + 1 <= 8; ++k) {
        config.killBanks = k;
        FaultModel small(config, eightBanks());
        config.killBanks = k + 1;
        FaultModel big(config, eightBanks());
        auto small_set = killedBanks(small);
        auto big_set = killedBanks(big);
        EXPECT_EQ(small_set.size(), k);
        EXPECT_EQ(big_set.size(), k + 1);
        for (std::uint32_t bank : small_set)
            EXPECT_TRUE(big_set.count(bank));
    }
}

TEST(FaultModel, KillsAreSortedAndDistinct)
{
    FaultConfig config;
    config.killBanks = 8;
    FaultModel model(config, eightBanks());
    ASSERT_EQ(model.kills().size(), 8u);
    EXPECT_EQ(killedBanks(model).size(), 8u);
    for (std::size_t i = 1; i < model.kills().size(); ++i) {
        EXPECT_LE(model.kills()[i - 1].timeSec,
                  model.kills()[i].timeSec);
    }
    for (const auto &kill : model.kills()) {
        EXPECT_GE(kill.timeSec, 0.0);
        EXPECT_LT(kill.timeSec, config.killSpreadSec);
    }
}

TEST(FaultModel, KillCountClampsToBankCount)
{
    FaultConfig config;
    config.killBanks = 1000;
    FaultModel model(config, eightBanks());
    EXPECT_EQ(model.kills().size(), 8u);
}

TEST(FaultModel, CertainRatesForceOutcomes)
{
    FaultConfig transient;
    transient.transientRatePerOp = 1.0;
    FaultModel t(transient, eightBanks());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.drawAttempt(false), FaultModel::Attempt::Transient);

    FaultConfig stall;
    stall.stallRatePerOp = 1.0;
    FaultModel s(stall, eightBanks());
    for (int i = 0; i < 100; ++i) {
        // Stalls only exist for programmable kernel launches.
        EXPECT_EQ(s.drawAttempt(true), FaultModel::Attempt::Stall);
        EXPECT_EQ(s.drawAttempt(false), FaultModel::Attempt::Success);
    }
}

TEST(FaultModel, BackoffIsExponentialAndCapped)
{
    FaultConfig config;
    config.backoffBaseSec = 1e-5;
    config.backoffCapSec = 6e-5;
    FaultModel model(config, eightBanks());
    EXPECT_DOUBLE_EQ(model.backoffSec(1), 1e-5);
    EXPECT_DOUBLE_EQ(model.backoffSec(2), 2e-5);
    EXPECT_DOUBLE_EQ(model.backoffSec(3), 4e-5);
    EXPECT_DOUBLE_EQ(model.backoffSec(4), 6e-5); // capped
    EXPECT_DOUBLE_EQ(model.backoffSec(10), 6e-5);
}

TEST(FaultModel, StallTimeoutHasFloorAndMultiplier)
{
    FaultConfig config;
    config.stallTimeoutMult = 4.0;
    config.stallTimeoutFloorSec = 1e-4;
    FaultModel model(config, eightBanks());
    EXPECT_DOUBLE_EQ(model.stallTimeoutSec(1e-6), 1e-4);  // floor
    EXPECT_DOUBLE_EQ(model.stallTimeoutSec(1e-3), 4e-3);  // 4x
}

TEST(FaultModel, ThrottlesDeriveFromBankTemperatures)
{
    FaultConfig config;
    config.throttleTempC = 60.0;
    config.throttlePeriodSec = 1e-3;
    config.throttleDutyFrac = 0.25;
    std::vector<double> temps = {45.0, 75.0, 59.9, 60.1,
                                 45.0, 45.0, 90.0, 45.0};
    FaultModel model(config, eightBanks(), temps);
    ASSERT_EQ(model.throttles().size(), 3u);
    std::set<std::uint32_t> hot;
    for (const auto &spec : model.throttles()) {
        hot.insert(spec.bank);
        EXPECT_DOUBLE_EQ(spec.onSec, 0.25e-3);
        EXPECT_DOUBLE_EQ(spec.offSec, 0.75e-3);
        EXPECT_GE(spec.firstStartSec, 0.0);
        EXPECT_LT(spec.firstStartSec, config.throttlePeriodSec);
    }
    EXPECT_EQ(hot, (std::set<std::uint32_t>{1, 3, 6}));
}

TEST(FaultModelDeath, InvalidRateIsFatal)
{
    FaultConfig config;
    config.transientRatePerOp = 1.5;
    EXPECT_EXIT(FaultModel(config, eightBanks()),
                testing::ExitedWithCode(1), "transientRatePerOp");
}

TEST(FaultModelDeath, ZeroAttemptsIsFatal)
{
    FaultConfig config;
    config.maxAttempts = 0;
    EXPECT_EXIT(FaultModel(config, eightBanks()),
                testing::ExitedWithCode(1), "maxAttempts");
}
