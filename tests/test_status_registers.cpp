/**
 * @file
 * Unit tests for the PIM status register file (paper Fig. 7).
 */

#include <gtest/gtest.h>

#include "pim/status_registers.hh"

using hpim::pim::BankState;
using hpim::pim::StatusRegisterFile;

namespace {

StatusRegisterFile
fourBanks()
{
    return StatusRegisterFile(4, {10, 10, 10, 10});
}

} // namespace

TEST(StatusRegisters, InitialStateAllFree)
{
    auto regs = fourBanks();
    EXPECT_EQ(regs.totalUnits(), 40u);
    EXPECT_EQ(regs.totalFreeUnits(), 40u);
    EXPECT_FALSE(regs.bankBusy(0));
    EXPECT_FALSE(regs.progrBusy());
}

TEST(StatusRegisters, AcquireReservesUnits)
{
    auto regs = fourBanks();
    EXPECT_TRUE(regs.acquire(1, 6));
    EXPECT_EQ(regs.freeUnits(1), 4u);
    EXPECT_TRUE(regs.bankBusy(1));
    EXPECT_EQ(regs.totalFreeUnits(), 34u);
}

TEST(StatusRegisters, AcquireFailsWhenShort)
{
    auto regs = fourBanks();
    EXPECT_TRUE(regs.acquire(0, 10));
    EXPECT_FALSE(regs.acquire(0, 1));
    // Failed acquire leaves state unchanged.
    EXPECT_EQ(regs.freeUnits(0), 0u);
    EXPECT_EQ(regs.totalFreeUnits(), 30u);
}

TEST(StatusRegisters, ReleaseReturnsUnits)
{
    auto regs = fourBanks();
    regs.acquire(2, 7);
    regs.release(2, 3);
    EXPECT_EQ(regs.freeUnits(2), 6u);
    regs.release(2, 4);
    EXPECT_FALSE(regs.bankBusy(2));
}

TEST(StatusRegisters, ProgrBusyFlag)
{
    auto regs = fourBanks();
    regs.setProgrBusy(true);
    EXPECT_TRUE(regs.progrBusy());
    regs.setProgrBusy(false);
    EXPECT_FALSE(regs.progrBusy());
}

TEST(StatusRegisters, UnevenBankCapacities)
{
    // Edge-biased placement gives banks unequal unit counts.
    StatusRegisterFile regs(3, {20, 5, 15});
    EXPECT_EQ(regs.totalUnits(), 40u);
    EXPECT_TRUE(regs.acquire(0, 20));
    EXPECT_FALSE(regs.acquire(1, 6));
    EXPECT_TRUE(regs.acquire(1, 5));
}

TEST(StatusRegisters, OverReleaseIsCheckedError)
{
    auto regs = fourBanks();
    regs.acquire(0, 2);
    // Releasing more than is busy is rejected with a log message and
    // leaves the register state untouched.
    EXPECT_FALSE(regs.release(0, 3));
    EXPECT_EQ(regs.freeUnits(0), 8u);
    EXPECT_TRUE(regs.release(0, 2));
    EXPECT_FALSE(regs.bankBusy(0));
}

TEST(StatusRegisters, OutOfRangeAcquireReleaseAreCheckedErrors)
{
    auto regs = fourBanks();
    EXPECT_FALSE(regs.acquire(4, 1));
    EXPECT_FALSE(regs.release(99, 1));
    EXPECT_EQ(regs.totalFreeUnits(), 40u);
}

TEST(StatusRegisters, FailedBankRetiresPermanently)
{
    auto regs = fourBanks();
    regs.markFailed(2);
    EXPECT_EQ(regs.bankState(2), BankState::Failed);
    EXPECT_EQ(regs.failedBanks(), 1u);
    EXPECT_EQ(regs.freeUnits(2), 0u);
    EXPECT_FALSE(regs.acquire(2, 1));
    EXPECT_EQ(regs.availableUnits(), 30u);
    EXPECT_EQ(regs.aliveUnits(), 30u);
    // Idempotent; un-throttling cannot resurrect a failed bank.
    regs.markFailed(2);
    EXPECT_EQ(regs.failedBanks(), 1u);
    regs.setThrottled(2, false);
    EXPECT_EQ(regs.bankState(2), BankState::Failed);
}

TEST(StatusRegisters, ThrottledBankComesBack)
{
    auto regs = fourBanks();
    regs.setThrottled(1, true);
    EXPECT_EQ(regs.bankState(1), BankState::Throttled);
    EXPECT_EQ(regs.availableUnits(), 30u);
    EXPECT_EQ(regs.aliveUnits(), 40u); // throttled still counts alive
    EXPECT_FALSE(regs.acquire(1, 1));
    regs.setThrottled(1, false);
    EXPECT_EQ(regs.availableUnits(), 40u);
    EXPECT_TRUE(regs.acquire(1, 1));
}

TEST(StatusRegisters, HealthMaskTracksStates)
{
    auto regs = fourBanks();
    EXPECT_EQ(regs.healthMask(), 0b1111u);
    regs.markFailed(0);
    regs.setThrottled(2, true);
    EXPECT_EQ(regs.healthMask(), 0b1010u);
    regs.setThrottled(2, false);
    EXPECT_EQ(regs.healthMask(), 0b1110u);
}

TEST(StatusRegistersDeath, BadBankPanics)
{
    auto regs = fourBanks();
    EXPECT_DEATH(regs.freeUnits(4), "out of range");
}

TEST(StatusRegistersDeath, MismatchedVectorIsFatal)
{
    EXPECT_EXIT(StatusRegisterFile(4, {1, 2}),
                testing::ExitedWithCode(1), "entries");
}
