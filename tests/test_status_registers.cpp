/**
 * @file
 * Unit tests for the PIM status register file (paper Fig. 7).
 */

#include <gtest/gtest.h>

#include "pim/status_registers.hh"

using hpim::pim::StatusRegisterFile;

namespace {

StatusRegisterFile
fourBanks()
{
    return StatusRegisterFile(4, {10, 10, 10, 10});
}

} // namespace

TEST(StatusRegisters, InitialStateAllFree)
{
    auto regs = fourBanks();
    EXPECT_EQ(regs.totalUnits(), 40u);
    EXPECT_EQ(regs.totalFreeUnits(), 40u);
    EXPECT_FALSE(regs.bankBusy(0));
    EXPECT_FALSE(regs.progrBusy());
}

TEST(StatusRegisters, AcquireReservesUnits)
{
    auto regs = fourBanks();
    EXPECT_TRUE(regs.acquire(1, 6));
    EXPECT_EQ(regs.freeUnits(1), 4u);
    EXPECT_TRUE(regs.bankBusy(1));
    EXPECT_EQ(regs.totalFreeUnits(), 34u);
}

TEST(StatusRegisters, AcquireFailsWhenShort)
{
    auto regs = fourBanks();
    EXPECT_TRUE(regs.acquire(0, 10));
    EXPECT_FALSE(regs.acquire(0, 1));
    // Failed acquire leaves state unchanged.
    EXPECT_EQ(regs.freeUnits(0), 0u);
    EXPECT_EQ(regs.totalFreeUnits(), 30u);
}

TEST(StatusRegisters, ReleaseReturnsUnits)
{
    auto regs = fourBanks();
    regs.acquire(2, 7);
    regs.release(2, 3);
    EXPECT_EQ(regs.freeUnits(2), 6u);
    regs.release(2, 4);
    EXPECT_FALSE(regs.bankBusy(2));
}

TEST(StatusRegisters, ProgrBusyFlag)
{
    auto regs = fourBanks();
    regs.setProgrBusy(true);
    EXPECT_TRUE(regs.progrBusy());
    regs.setProgrBusy(false);
    EXPECT_FALSE(regs.progrBusy());
}

TEST(StatusRegisters, UnevenBankCapacities)
{
    // Edge-biased placement gives banks unequal unit counts.
    StatusRegisterFile regs(3, {20, 5, 15});
    EXPECT_EQ(regs.totalUnits(), 40u);
    EXPECT_TRUE(regs.acquire(0, 20));
    EXPECT_FALSE(regs.acquire(1, 6));
    EXPECT_TRUE(regs.acquire(1, 5));
}

TEST(StatusRegistersDeath, OverReleasePanics)
{
    auto regs = fourBanks();
    regs.acquire(0, 2);
    EXPECT_DEATH(regs.release(0, 3), "releasing");
}

TEST(StatusRegistersDeath, BadBankPanics)
{
    auto regs = fourBanks();
    EXPECT_DEATH(regs.freeUnits(4), "out of range");
}

TEST(StatusRegistersDeath, MismatchedVectorIsFatal)
{
    EXPECT_EXIT(StatusRegisterFile(4, {1, 2}),
                testing::ExitedWithCode(1), "entries");
}
