/**
 * @file
 * Top-level runtime facade: profile -> select -> schedule -> execute.
 *
 * This is the piece a machine-learning framework integrates with
 * (the paper adds ~2000 lines to TensorFlow's runtime for the same
 * role): give it a training-step graph and a system configuration and
 * it runs the whole pipeline, including the mixed-workload co-run
 * mode of SectionVI-F.
 */

#ifndef HPIM_RT_HETERO_RUNTIME_HH
#define HPIM_RT_HETERO_RUNTIME_HH

#include <optional>

#include "nn/graph.hh"
#include "rt/executor.hh"
#include "rt/offload_selector.hh"
#include "rt/profiler.hh"
#include "rt/system_config.hh"

namespace hpim::rt {

/** Everything produced by a training run. */
struct TrainingResult
{
    ProfileReport profile;        ///< step-1 profile (empty if unused)
    OffloadSelection selection;   ///< offload candidates
    ExecutionReport execution;    ///< the scheduled run
};

/** The heterogeneous-PIM runtime. */
class HeteroRuntime
{
  public:
    explicit HeteroRuntime(const SystemConfig &config)
        : _config(config)
    {}

    /**
     * Train @p graph for the configured number of steps.
     * When the config enables dynamic scheduling, step 1 is profiled
     * on the CPU and drives candidate selection.
     */
    TrainingResult train(const hpim::nn::Graph &graph,
                         std::uint32_t steps = 0) const;

    /**
     * Co-run a PIM-managed model with a guest model (SectionVI-F).
     * The guest executes on the CPU / programmable PIM when idle.
     * Guest steps are auto-balanced: since LSTM/Word2vec steps are
     * much shorter than a CNN step, the guest runs as many steps as
     * fit the primary's wall time (capped at 50x).
     */
    TrainingResult corun(const hpim::nn::Graph &primary,
                         const hpim::nn::Graph &guest,
                         std::uint32_t steps = 0) const;

    /** Guest steps chosen by the balancing rule above. */
    std::uint32_t guestSteps(const hpim::nn::Graph &primary,
                             const hpim::nn::Graph &guest,
                             std::uint32_t steps) const;

    /**
     * Sequential-execution baseline for the co-run study: the primary
     * trains to completion, then the guest. Reported step time is the
     * sum of the two per-step times.
     */
    TrainingResult corunSequential(const hpim::nn::Graph &primary,
                                   const hpim::nn::Graph &guest,
                                   std::uint32_t steps = 0) const;

    const SystemConfig &config() const { return _config; }

  private:
    TrainingResult prepare(const hpim::nn::Graph &graph) const;

    SystemConfig _config;
};

} // namespace hpim::rt

#endif // HPIM_RT_HETERO_RUNTIME_HH
