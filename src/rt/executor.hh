/**
 * @file
 * The heterogeneous-PIM execution engine.
 *
 * A discrete-event list scheduler over one or more training workloads:
 *  - the host CPU executes kernels one at a time (TF-style inter-op
 *    serialization; intra-op uses the whole socket);
 *  - each programmable PIM executes one kernel at a time;
 *  - the fixed-function pool is a *malleable* resource: active phases
 *    hold whole reduction trees and may gain/lose trees at any event
 *    boundary -- this is what makes the operation pipeline effective.
 *
 * Scheduling follows the paper's three principles (SectionIII-C):
 * favor fixed-function PIMs, avoid CPU idling by keeping candidates on
 * PIMs, and respect data dependences. RC lets Recursive-class ops run
 * on the programmable PIM with their multiply/add core dispatched to
 * the pool; OP admits ops from the next training step while the
 * current one drains.
 */

#ifndef HPIM_RT_EXECUTOR_HH
#define HPIM_RT_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/graph.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pim/status_registers.hh"
#include "rt/execution_report.hh"
#include "rt/offload_selector.hh"
#include "rt/schedule_trace.hh"
#include "rt/system_config.hh"
#include "sim/event_queue.hh"
#include "sim/fault_model.hh"

namespace hpim::rt {

/** One workload to run (co-run studies pass several). */
struct WorkloadSpec
{
    const hpim::nn::Graph *graph = nullptr;
    std::uint32_t steps = 1;
    /**
     * Full PIM management (profiling-based candidates + all devices)
     * when true; when false the workload is a guest restricted to the
     * CPU and programmable PIM at lower priority (paper SectionVI-F).
     */
    bool pimManaged = true;
};

/** The executor. */
class Executor
{
  public:
    /**
     * @param config system description
     * @param selection offload candidates (nullptr = offload
     *        everything eligible; used by non-scheduled baselines)
     */
    explicit Executor(const SystemConfig &config,
                      const OffloadSelection *selection = nullptr);

    ~Executor();

    /** Attach a schedule recorder (must outlive run()). */
    void attachTrace(ScheduleTrace *trace) { _trace = trace; }

    /** Run the workloads to completion and report. */
    ExecutionReport run(const std::vector<WorkloadSpec> &workloads);

    /** Convenience: one pim-managed workload. */
    ExecutionReport
    run(const hpim::nn::Graph &graph, std::uint32_t steps = 0)
    {
        WorkloadSpec spec;
        spec.graph = &graph;
        spec.steps = steps == 0 ? _config.steps : steps;
        return run({spec});
    }

  private:
    struct OpKey
    {
        std::uint32_t workload;
        std::uint32_t step;
        hpim::nn::OpId op;
    };

    /**
     * Placement-relevant facts about one op, precomputed per workload
     * when run() starts. decidePlacement() is the simulator's hottest
     * function; reading these instead of chasing Graph::op ->
     * opTraits -> CpuModel -> selection-set lookups on every pending
     * scan is a large share of the PR-5 speedup
     * (docs/PERFORMANCE.md).
     */
    struct OpMeta
    {
        hpim::nn::OffloadClass cls = hpim::nn::OffloadClass::FixedFunction;
        bool candidate = true; ///< offload candidate per _selection
        /** CPU run time is under config.cpuFallbackThresholdSec. */
        bool smallOnCpu = false;
        std::uint32_t unitsPerLane = 1;
    };

    struct OpState
    {
        std::uint32_t remainingDeps = 0;
        bool ready = false;
        bool running = false;
        bool done = false;
    };

    /** How an offload attempt failed. */
    enum class FailKind { Transient, Stall, Evicted };

    // Joint completion of RC / host-driven ops (control part on the
    // programmable PIM or CPU + fixed-pool part).
    struct Join
    {
        bool controlDone = false;
        bool fixedDone = false;
        /** A fault poisoned either half: the joint completion becomes
         *  a failed attempt of kind @ref failKind instead of done. */
        bool faulty = false;
        FailKind failKind = FailKind::Transient;
    };

    /**
     * Dense per-step book-keeping, SoA indexed by op id. Replaces the
     * packed-OpKey-keyed hash maps (joins, attempts, degradation
     * levels, running placements, trace tokens) the hot paths used to
     * probe: an op id is already a dense index, so each lookup becomes
     * one vector access instead of a hash + probe chain, and a step's
     * records die with the step instead of churning a process-wide
     * table. Every side array is empty until its feature first writes
     * it (joins: RC/host-driven ops; attempts/degraded/placement:
     * faults; traceToken: attached ScheduleTrace), so fault-free
     * untraced runs allocate only `ops`. The *Live bytes distinguish
     * "slot exists" from a default value, standing in for the old
     * maps' find()/erase().
     */
    struct StepState
    {
        std::vector<OpState> ops;
        std::vector<Join> joins;
        std::vector<std::uint8_t> joinLive;
        std::vector<std::uint32_t> attempts;
        std::vector<std::uint32_t> degraded;
        std::vector<PlacedOn> placement;
        std::vector<std::uint8_t> placementLive;
        std::vector<std::size_t> traceToken;
        std::vector<std::uint8_t> traceLive;
    };

    struct FixedPhase
    {
        OpKey key;
        double remainingFlops = 0.0;
        std::uint32_t treeUnits = 1; ///< units per reduction tree
        std::uint32_t maxTrees = 1;
        double intensity = 1e9;      ///< flops per byte
        std::uint32_t alloc = 0;     ///< currently allocated units
        /** Phase is half of a joined (RC / host-driven) op. */
        bool joined = false;
        /** Injected transient fault: completing re-dispatches the op. */
        bool faulty = false;
        double startSec = 0.0;
        /** Integral of allocated units over this phase's lifetime;
         *  feeds the per-span energy annotation in the obs trace. */
        double unitSeconds = 0.0;
    };

    struct WorkloadState
    {
        WorkloadSpec spec;
        std::vector<OpMeta> meta;                ///< [op]
        std::vector<StepState> steps;            ///< per step
        std::vector<std::uint32_t> remainingOps; ///< per step
        std::uint32_t completedSteps = 0;
        std::uint32_t seededSteps = 0;
    };

    // ---- Scheduling.
    void seedStep(std::uint32_t w, std::uint32_t step);
    void dispatchAll();
    bool tryDispatch(const OpKey &key);
    std::optional<PlacedOn> decidePlacement(const OpKey &key) const;
    void startOnCpu(const OpKey &key);
    void startOnProgr(const OpKey &key, bool recursive);
    void startOnFixed(const OpKey &key);
    void startHostDriven(const OpKey &key);
    void addPhase(const OpKey &key, double flops, double intensity,
                  std::uint32_t tree_units, std::uint32_t max_trees,
                  bool joined, bool faulty);
    void onOpComplete(const OpKey &key);
    void onJoinedPartDone(const OpKey &key, bool fixed_part);

    // ---- Resilience (active only when _config.faults.enabled; every
    // hook below is a no-op / never reached with faults off, keeping
    // fault-free runs bit-identical -- see docs/RESILIENCE.md).
    bool faultsOn() const { return _fault_model != nullptr; }
    void setupFaultLayer();
    void scheduleHealthEvents();
    std::uint32_t degradeLevel(const OpKey &key) const;
    std::optional<PlacedOn> ladderPlacement(const OpKey &key,
                                            std::uint32_t level) const;
    void failAttempt(const OpKey &key, FailKind kind);
    void onBankFailed(std::uint32_t bank);
    void onThrottle(std::size_t index, bool start);
    void refreshFixedCapacity();
    void recordCapacity();
    void evictDeadPoolPhases();
    bool allComplete() const;

    // ---- Fixed pool mechanics.
    void poolDrain();        ///< account work done since last update
    void poolReallocate();   ///< redistribute units over phases
    void poolScheduleNext(); ///< (re)schedule the pool event
    void onPoolEvent();
    double phaseRate(const FixedPhase &phase) const;

    // ---- Helpers.
    const hpim::nn::Operation &op(const OpKey &key) const;
    OpState &state(const OpKey &key);
    StepState &stepState(const OpKey &key);
    /** Fresh live join slot for @p key (sizes the arrays on demand). */
    Join &makeJoin(const OpKey &key);
    std::uint32_t stepWindow(const WorkloadState &w) const;
    double nowSec() const;
    hpim::sim::Tick toTick(double seconds) const;

    SystemConfig _config;
    const OffloadSelection *_selection;
    hpim::cpu::CpuModel _cpu_model;

    hpim::sim::EventQueue _queue;
    std::vector<WorkloadState> _workloads;
    std::vector<OpKey> _pending; ///< ready, not yet placed
    /** _pending gained entries since its last priority sort; cleared
     *  by dispatchAll() (dispatch keeps the order, so a clean list
     *  skips the re-sort entirely). */
    bool _pending_dirty = false;

    // Device state.
    bool _cpu_busy = false;
    std::uint32_t _progr_free = 0;
    std::vector<FixedPhase> _phases;
    std::uint32_t _fixed_free = 0;
    hpim::sim::Tick _pool_last_update = 0;
    class PoolEvent;
    std::unique_ptr<PoolEvent> _pool_event;

    /** Human-readable "w:step:op" form, for trace/obs output only. */
    static std::string keyStr(const OpKey &key);

    // Resilience state (see docs/RESILIENCE.md). The capacity pair is
    // maintained even with faults off (then both simply stay at the
    // configured pool size, preserving the fault-free schedule).
    std::unique_ptr<hpim::sim::FaultModel> _fault_model;
    std::unique_ptr<hpim::pim::StatusRegisterFile> _regs;
    std::uint32_t _fixed_capacity = 0; ///< allocatable (Healthy) units
    std::uint32_t _fixed_alive = 0;    ///< non-Failed units
    // (Per-op attempt counts, degradation levels and running
    // placements live in StepState's dense arrays.)

    // Accounting.
    ExecutionReport _report;
    double _op_accum = 0.0;
    double _dm_accum = 0.0;
    double _sync_accum = 0.0;

    // Optional schedule recording.
    ScheduleTrace *_trace = nullptr;

    // ---- Observability (obs/). Each hook is one atomic load when no
    // session/registry is attached, so untraced runs stay bit-identical.
    /** True when a trace session or metrics registry is attached;
     *  call sites use this to skip building argument vectors. */
    static bool
    obsActive()
    {
        return hpim::obs::TraceSession::current() != nullptr
               || hpim::obs::MetricsRegistry::current() != nullptr;
    }
    /** Record a completed device span [start, now] in the obs trace. */
    void obsSpan(const char *track_name, const OpKey &key,
                 double start_sec, double energy_j,
                 std::vector<hpim::obs::TraceArg> extra = {});
    /** Record an instant event (fault, retry, degradation, ...). */
    void obsInstant(const char *track_name, std::string name,
                    std::vector<hpim::obs::TraceArg> args = {});
    /** Bump a named counter in the attached MetricsRegistry. */
    static void obsCount(const char *name, std::uint64_t n = 1);
};

} // namespace hpim::rt

#endif // HPIM_RT_EXECUTOR_HH
