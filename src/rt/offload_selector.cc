#include "rt/offload_selector.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace hpim::rt {

using hpim::nn::OpType;

OffloadSelection
selectOffloadCandidates(const ProfileReport &report, double coverage_pct)
{
    fatal_if(coverage_pct <= 0.0 || coverage_pct > 100.0,
             "coverage must be in (0, 100], got ", coverage_pct);

    OffloadSelection selection;
    if (report.byType.empty())
        return selection;

    auto by_time = report.topByTime();
    auto by_access = report.topByAccesses();

    std::map<OpType, RankedType> ranked;
    for (std::size_t i = 0; i < by_time.size(); ++i) {
        RankedType &r = ranked[by_time[i].type];
        r.type = by_time[i].type;
        r.timeIndex = i;
        r.timePct = by_time[i].timePct;
    }
    for (std::size_t i = 0; i < by_access.size(); ++i)
        ranked[by_access[i].type].accessIndex = i;

    for (auto &[type, r] : ranked) {
        r.globalIndex = r.timeIndex + r.accessIndex;
        selection.ranking.push_back(r);
    }
    std::sort(selection.ranking.begin(), selection.ranking.end(),
              [](const RankedType &a, const RankedType &b) {
                  if (a.globalIndex != b.globalIndex)
                      return a.globalIndex < b.globalIndex;
                  return a.timeIndex < b.timeIndex; // tie: hotter first
              });

    // Take top entries until the x% time-coverage target is met.
    double covered = 0.0;
    for (const RankedType &r : selection.ranking) {
        if (covered >= coverage_pct)
            break;
        selection.candidates.insert(r.type);
        covered += r.timePct;
    }
    selection.coveredTimePct = covered;
    return selection;
}

} // namespace hpim::rt
