#include "rt/schedule_validator.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "sim/logging.hh"

namespace hpim::rt {

using hpim::nn::Graph;
using hpim::nn::OpId;

namespace {

constexpr double kEps = 2e-12; // one tick of slack

std::string
describe(const TraceEntry &entry)
{
    std::ostringstream os;
    os << "'" << entry.label << "' (w" << entry.workload << " s"
       << entry.step << ") on " << placedOnName(entry.placement)
       << " [" << entry.startSec << ", " << entry.endSec << "]";
    return os.str();
}

} // namespace

ValidationResult
validateSchedule(const ScheduleTrace &trace,
                 const std::vector<const Graph *> &graphs,
                 const std::vector<std::uint32_t> &steps,
                 const SystemConfig &config)
{
    fatal_if(graphs.size() != steps.size(),
             "graphs/steps size mismatch");
    ValidationResult result;
    auto violate = [&result](const std::string &what) {
        result.violations.push_back(ScheduleViolation{what});
    };

    // ---- Index intervals by (workload, step, op). Aborted entries
    // (faulted attempts that were retried) record device occupancy
    // but are not the op's completing execution: they are skipped
    // here and in the completeness check, while the capacity sweep
    // below still sees them.
    using Key = std::tuple<std::uint32_t, std::uint32_t, OpId>;
    std::map<Key, const TraceEntry *> index;
    for (const TraceEntry &entry : trace.entries()) {
        if (entry.workload >= graphs.size()) {
            violate("interval for unknown workload: "
                    + describe(entry));
            continue;
        }
        if (entry.aborted)
            continue;
        Key key{entry.workload, entry.step, entry.opId};
        if (!index.emplace(key, &entry).second)
            violate("duplicate interval: " + describe(entry));
    }

    // ---- Completeness: one interval per (workload, step, op).
    for (std::uint32_t w = 0; w < graphs.size(); ++w) {
        for (std::uint32_t s = 0; s < steps[w]; ++s) {
            for (OpId id = 0; id < graphs[w]->size(); ++id) {
                if (!index.count(Key{w, s, id})) {
                    std::ostringstream os;
                    os << "missing interval for op " << id << " (w"
                       << w << " s" << s << ")";
                    violate(os.str());
                }
            }
        }
    }
    if (!result.ok())
        return result; // later checks assume completeness

    // ---- Dependence safety within each (workload, step).
    for (std::uint32_t w = 0; w < graphs.size(); ++w) {
        const Graph &graph = *graphs[w];
        for (std::uint32_t s = 0; s < steps[w]; ++s) {
            for (const auto &op : graph.ops()) {
                const TraceEntry *self = index[Key{w, s, op.id}];
                for (OpId in : op.inputs) {
                    const TraceEntry *producer =
                        index[Key{w, s, in}];
                    if (self->startSec + kEps
                        < producer->endSec - kEps) {
                        violate("dependence violation: "
                                + describe(*self) + " starts before "
                                + describe(*producer) + " ends");
                    }
                }
            }
        }
    }

    // ---- Serial-device capacity.
    auto check_capacity = [&](PlacedOn placement,
                              std::uint32_t capacity,
                              const char *device) {
        std::vector<const TraceEntry *> intervals;
        for (const TraceEntry &entry : trace.entries()) {
            if (entry.placement == placement)
                intervals.push_back(&entry);
        }
        std::sort(intervals.begin(), intervals.end(),
                  [](const TraceEntry *a, const TraceEntry *b) {
                      return a->startSec < b->startSec;
                  });
        // Sweep: count concurrently-open intervals.
        std::vector<double> open_ends;
        for (const TraceEntry *entry : intervals) {
            open_ends.erase(
                std::remove_if(open_ends.begin(), open_ends.end(),
                               [&](double end) {
                                   return end
                                          <= entry->startSec + kEps;
                               }),
                open_ends.end());
            open_ends.push_back(entry->endSec);
            if (open_ends.size() > capacity) {
                violate(std::string("capacity exceeded on ") + device
                        + " at " + describe(*entry));
            }
        }
    };
    check_capacity(PlacedOn::Cpu, 1, "cpu");
    // Host-driven complex ops also occupy the CPU, but their interval
    // covers the joined fixed part too; they are checked against the
    // CPU separately with the same capacity.
    check_capacity(PlacedOn::ProgrPim,
                   std::max<std::uint32_t>(config.progrPimCount, 1),
                   "progr-pim");

    // ---- Step-window discipline per workload.
    std::uint32_t window =
        config.operationPipeline
            ? std::max<std::uint32_t>(config.pipelineDepth, 1)
            : 1;
    for (std::uint32_t w = 0; w < graphs.size(); ++w) {
        std::vector<double> step_end(steps[w], 0.0);
        std::vector<double> step_start(steps[w], 1e300);
        for (const TraceEntry &entry : trace.entries()) {
            if (entry.workload != w)
                continue;
            step_end[entry.step] =
                std::max(step_end[entry.step], entry.endSec);
            step_start[entry.step] =
                std::min(step_start[entry.step], entry.startSec);
        }
        for (std::uint32_t s = window; s < steps[w]; ++s) {
            if (step_start[s] + kEps < step_end[s - window] - kEps) {
                std::ostringstream os;
                os << "step-window violation (w" << w << "): step "
                   << s << " starts at " << step_start[s]
                   << " before step " << s - window << " ends at "
                   << step_end[s - window];
                violate(os.str());
            }
        }
    }
    return result;
}

} // namespace hpim::rt
