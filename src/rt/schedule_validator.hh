/**
 * @file
 * Schedule validation: checks a recorded ScheduleTrace against the
 * graphs it executed for the invariants any legal schedule must obey:
 *
 *  1. dependence safety -- no op starts before all its producers (in
 *     the same workload and step) have finished;
 *  2. serial-device capacity -- at most one interval at a time on the
 *     CPU; at most `progrPimCount` on the programmable PIM(s);
 *  3. step-window discipline -- ops of step s+k never start while
 *     step s is incomplete for k >= the pipeline window;
 *  4. completeness -- exactly one interval per (workload, step, op).
 *
 * Used by property tests to verify the executor across models and
 * configurations, and available to users as a debugging aid.
 */

#ifndef HPIM_RT_SCHEDULE_VALIDATOR_HH
#define HPIM_RT_SCHEDULE_VALIDATOR_HH

#include <string>
#include <vector>

#include "nn/graph.hh"
#include "rt/schedule_trace.hh"
#include "rt/system_config.hh"

namespace hpim::rt {

/** One detected violation. */
struct ScheduleViolation
{
    std::string what;
};

/** Validation outcome. */
struct ValidationResult
{
    std::vector<ScheduleViolation> violations;
    bool ok() const { return violations.empty(); }
};

/**
 * Validate @p trace against the executed workloads.
 *
 * @param trace the recorded schedule (all intervals closed)
 * @param graphs one graph per workload, indexed by TraceEntry::workload
 * @param steps steps each workload ran
 * @param config the system configuration used
 */
ValidationResult
validateSchedule(const ScheduleTrace &trace,
                 const std::vector<const hpim::nn::Graph *> &graphs,
                 const std::vector<std::uint32_t> &steps,
                 const SystemConfig &config);

} // namespace hpim::rt

#endif // HPIM_RT_SCHEDULE_VALIDATOR_HH
