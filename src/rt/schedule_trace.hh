/**
 * @file
 * Schedule tracing: a per-op timeline of the executor's placement
 * decisions, exportable as CSV or Chrome-trace JSON
 * (chrome://tracing / Perfetto). Invaluable for understanding why a
 * schedule behaves as it does -- e.g. watching next-step ops slide
 * into idle fixed-function units when OP is enabled.
 */

#ifndef HPIM_RT_SCHEDULE_TRACE_HH
#define HPIM_RT_SCHEDULE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rt/execution_report.hh"

namespace hpim::rt {

/** One scheduled interval. */
struct TraceEntry
{
    std::string label;
    std::uint32_t opId = 0; ///< op id within its workload's graph
    PlacedOn placement = PlacedOn::Cpu;
    std::uint32_t workload = 0;
    std::uint32_t step = 0;
    double startSec = 0.0;
    double endSec = 0.0;
    /** The attempt faulted / stalled / was evicted and the op was
     *  re-dispatched; the interval still records real device
     *  occupancy, but it is not the op's completing execution. */
    bool aborted = false;

    double durationSec() const { return endSec - startSec; }
};

/** Recorder the executor fills when attached. */
class ScheduleTrace
{
  public:
    /** Record an op start; returns a token for the matching end. */
    std::size_t begin(std::string label, std::uint32_t op_id,
                      PlacedOn placement, std::uint32_t workload,
                      std::uint32_t step, double start_sec);

    /** Close the interval opened by @p token. */
    void end(std::size_t token, double end_sec);

    /** Close the interval as a faulted attempt (see
     *  TraceEntry::aborted); the op will appear again when retried. */
    void abort(std::size_t token, double end_sec);

    const std::vector<TraceEntry> &entries() const { return _entries; }
    std::size_t size() const { return _entries.size(); }

    /** "label,placement,workload,step,start,end,duration" rows. */
    void dumpCsv(std::ostream &os) const;

    /** Chrome-trace JSON ("traceEvents" array; one row per device). */
    void dumpChromeTrace(std::ostream &os) const;

    /** Busy seconds per placement kind. */
    double busySeconds(PlacedOn placement) const;

  private:
    std::vector<TraceEntry> _entries;
};

} // namespace hpim::rt

#endif // HPIM_RT_SCHEDULE_TRACE_HH
