#include "rt/profiler.hh"

#include <algorithm>
#include <map>

namespace hpim::rt {

using hpim::nn::Graph;
using hpim::nn::Operation;
using hpim::nn::OpType;

std::vector<TypeProfile>
ProfileReport::topByTime() const
{
    auto sorted = byType;
    std::sort(sorted.begin(), sorted.end(),
              [](const TypeProfile &a, const TypeProfile &b) {
                  return a.timeSec > b.timeSec;
              });
    return sorted;
}

std::vector<TypeProfile>
ProfileReport::topByAccesses() const
{
    auto sorted = byType;
    std::sort(sorted.begin(), sorted.end(),
              [](const TypeProfile &a, const TypeProfile &b) {
                  return a.accesses > b.accesses;
              });
    return sorted;
}

ProfileReport
Profiler::profile(const Graph &graph) const
{
    ProfileReport report;
    report.ops.reserve(graph.size());

    std::map<OpType, TypeProfile> agg;
    for (const Operation &op : graph.ops()) {
        OpProfile p;
        p.id = op.id;
        p.type = op.type;
        p.label = op.label;
        p.timeSec = _cpu.opSeconds(op.cost);
        p.mainMemoryAccesses = _cpu.mainMemoryAccesses(op.cost);
        report.totalTimeSec += p.timeSec;
        report.totalAccesses += p.mainMemoryAccesses;

        TypeProfile &t = agg[op.type];
        t.type = op.type;
        t.timeSec += p.timeSec;
        t.accesses += p.mainMemoryAccesses;
        ++t.invocations;

        report.ops.push_back(std::move(p));
    }

    for (auto &[type, t] : agg) {
        if (report.totalTimeSec > 0.0)
            t.timePct = 100.0 * t.timeSec / report.totalTimeSec;
        if (report.totalAccesses > 0.0)
            t.accessPct = 100.0 * t.accesses / report.totalAccesses;
        report.byType.push_back(t);
    }
    return report;
}

} // namespace hpim::rt
