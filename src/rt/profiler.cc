#include "rt/profiler.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "sim/memo_cache.hh"

namespace hpim::rt {

using hpim::nn::Graph;
using hpim::nn::Operation;
using hpim::nn::OpType;

std::vector<TypeProfile>
ProfileReport::topByTime() const
{
    auto sorted = byType;
    std::sort(sorted.begin(), sorted.end(),
              [](const TypeProfile &a, const TypeProfile &b) {
                  return a.timeSec > b.timeSec;
              });
    return sorted;
}

std::vector<TypeProfile>
ProfileReport::topByAccesses() const
{
    auto sorted = byType;
    std::sort(sorted.begin(), sorted.end(),
              [](const TypeProfile &a, const TypeProfile &b) {
                  return a.accesses > b.accesses;
              });
    return sorted;
}

namespace {

/** Per-op memo value: the two metrics a profile pass computes. */
struct OpCostSample
{
    double timeSec = 0.0;
    double mainMemoryAccesses = 0.0;
};

} // namespace

ProfileReport
Profiler::profile(const Graph &graph) const
{
    return profileImpl(graph, nullptr);
}

ProfileReport
Profiler::profileDelta(const Graph &graph, std::uint64_t cpu_key) const
{
    return profileImpl(graph, &cpu_key);
}

ProfileReport
Profiler::profileImpl(const Graph &graph,
                      const std::uint64_t *cpu_key) const
{
    auto &cache = hpim::sim::MemoCache::instance();
    ProfileReport report;
    report.ops.reserve(graph.size());

    std::map<OpType, TypeProfile> agg;
    for (const Operation &op : graph.ops()) {
        OpProfile p;
        // id/type/label locate the sample in *this* graph and are
        // filled from the live op; only the position-independent
        // metrics go through the cache.
        p.id = op.id;
        p.type = op.type;
        p.label = op.label;
        std::shared_ptr<const OpCostSample> sample;
        if (cpu_key != nullptr) {
            sample = cache.findPartial<OpCostSample>(
                graph.opSignature(op.id), *cpu_key, "rt.profile.op");
        }
        if (sample != nullptr) {
            p.timeSec = sample->timeSec;
            p.mainMemoryAccesses = sample->mainMemoryAccesses;
        } else {
            p.timeSec = _cpu.opSeconds(op.cost);
            p.mainMemoryAccesses = _cpu.mainMemoryAccesses(op.cost);
            if (cpu_key != nullptr) {
                cache.putPartial<OpCostSample>(
                    graph.opSignature(op.id), *cpu_key, "rt.profile.op",
                    std::make_shared<const OpCostSample>(OpCostSample{
                        p.timeSec, p.mainMemoryAccesses}));
            }
        }
        report.totalTimeSec += p.timeSec;
        report.totalAccesses += p.mainMemoryAccesses;

        TypeProfile &t = agg[op.type];
        t.type = op.type;
        t.timeSec += p.timeSec;
        t.accesses += p.mainMemoryAccesses;
        ++t.invocations;

        report.ops.push_back(std::move(p));
    }

    for (auto &[type, t] : agg) {
        if (report.totalTimeSec > 0.0)
            t.timePct = 100.0 * t.timeSec / report.totalTimeSec;
        if (report.totalAccesses > 0.0)
            t.accessPct = 100.0 * t.accesses / report.totalAccesses;
        report.byType.push_back(t);
    }
    return report;
}

} // namespace hpim::rt
