#include "rt/schedule_trace.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace hpim::rt {

std::size_t
ScheduleTrace::begin(std::string label, std::uint32_t op_id,
                     PlacedOn placement, std::uint32_t workload,
                     std::uint32_t step, double start_sec)
{
    TraceEntry entry;
    entry.label = std::move(label);
    entry.opId = op_id;
    entry.placement = placement;
    entry.workload = workload;
    entry.step = step;
    entry.startSec = start_sec;
    entry.endSec = start_sec; // open until end()
    _entries.push_back(std::move(entry));
    return _entries.size() - 1;
}

void
ScheduleTrace::end(std::size_t token, double end_sec)
{
    panic_if(token >= _entries.size(), "bad trace token");
    panic_if(end_sec < _entries[token].startSec,
             "trace interval ends before it starts");
    _entries[token].endSec = end_sec;
}

void
ScheduleTrace::abort(std::size_t token, double end_sec)
{
    end(token, end_sec);
    _entries[token].aborted = true;
}

void
ScheduleTrace::dumpCsv(std::ostream &os) const
{
    os << "label,placement,workload,step,start_s,end_s,duration_s\n";
    for (const TraceEntry &e : _entries) {
        os << e.label << ',' << placedOnName(e.placement) << ','
           << e.workload << ',' << e.step << ','
           << std::setprecision(9) << e.startSec << ',' << e.endSec
           << ',' << e.durationSec() << '\n';
    }
}

void
ScheduleTrace::dumpChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEntry &e : _entries) {
        if (!first)
            os << ',';
        first = false;
        // Complete events ("X"): ts/dur in microseconds; one pid per
        // workload, one tid per device kind.
        os << "{\"name\":\"" << e.label << "\",\"ph\":\"X\",\"ts\":"
           << e.startSec * 1e6 << ",\"dur\":" << e.durationSec() * 1e6
           << ",\"pid\":" << e.workload << ",\"tid\":\""
           << placedOnName(e.placement) << " (step " << e.step
           << ")\"}";
    }
    os << "]}";
}

double
ScheduleTrace::busySeconds(PlacedOn placement) const
{
    double total = 0.0;
    for (const TraceEntry &e : _entries) {
        if (e.placement == placement)
            total += e.durationSec();
    }
    return total;
}

} // namespace hpim::rt
