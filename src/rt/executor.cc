#include "rt/executor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hpim::rt {

using hpim::nn::Graph;
using hpim::nn::OffloadClass;
using hpim::nn::Operation;
using hpim::nn::OpId;
using hpim::nn::opTraits;
using hpim::sim::Tick;

namespace {

constexpr double kWorkEpsilon = 1.0; // flops considered "done"

} // namespace

std::string
placedOnName(PlacedOn placement)
{
    switch (placement) {
      case PlacedOn::Cpu:             return "cpu";
      case PlacedOn::FixedPool:       return "fixed";
      case PlacedOn::ProgrPim:        return "progr";
      case PlacedOn::ProgrRecursive:  return "progr+rc";
      case PlacedOn::FixedHostDriven: return "fixed(host)";
    }
    panic("unknown placement");
}

/** Event driving the fixed pool's next phase completion. */
class Executor::PoolEvent : public hpim::sim::Event
{
  public:
    explicit PoolEvent(Executor &executor)
        : Event(Event::completionPriority), _executor(executor)
    {}

    void process() override { _executor.onPoolEvent(); }
    std::string description() const override { return "fixed-pool"; }

  private:
    Executor &_executor;
};

Executor::Executor(const SystemConfig &config,
                   const OffloadSelection *selection)
    : _config(config), _selection(selection), _cpu_model(config.cpu),
      _pool_event(std::make_unique<PoolEvent>(*this))
{
    _progr_free = config.hasProgrPim ? config.progrPimCount : 0;
    _fixed_free = config.hasFixedPim ? config.fixed.totalUnits : 0;
}

Executor::~Executor()
{
    if (_pool_event && _pool_event->scheduled())
        _queue.deschedule(_pool_event.get());
}

std::string
Executor::keyStr(const OpKey &key)
{
    return std::to_string(key.workload) + ":" + std::to_string(key.step)
           + ":" + std::to_string(key.op);
}

const Operation &
Executor::op(const OpKey &key) const
{
    return _workloads[key.workload].spec.graph->op(key.op);
}

Executor::OpState &
Executor::state(const OpKey &key)
{
    return _workloads[key.workload].steps[key.step][key.op];
}

double
Executor::nowSec() const
{
    return hpim::sim::ticksToSeconds(_queue.now());
}

Tick
Executor::toTick(double seconds) const
{
    return hpim::sim::secondsToTicks(seconds);
}

std::uint32_t
Executor::stepWindow(const WorkloadState &w) const
{
    (void)w;
    return _config.operationPipeline
               ? std::max<std::uint32_t>(_config.pipelineDepth, 1)
               : 1;
}

bool
Executor::offloadCandidate(const OpKey &key) const
{
    if (_selection == nullptr)
        return true;
    return _selection->isCandidate(op(key).type);
}

void
Executor::seedStep(std::uint32_t w, std::uint32_t step)
{
    WorkloadState &wl = _workloads[w];
    if (step >= wl.spec.steps || step < wl.seededSteps)
        return;
    panic_if(step != wl.seededSteps, "steps must seed in order");
    ++wl.seededSteps;

    const Graph &graph = *wl.spec.graph;
    auto &states = wl.steps[step];
    states.assign(graph.size(), OpState{});
    wl.remainingOps[step] = static_cast<std::uint32_t>(graph.size());
    for (const Operation &o : graph.ops()) {
        states[o.id].remainingDeps =
            static_cast<std::uint32_t>(o.inputs.size());
        if (states[o.id].remainingDeps == 0) {
            states[o.id].ready = true;
            _pending.push_back(OpKey{w, step, o.id});
        }
    }
}

std::optional<PlacedOn>
Executor::decidePlacement(const OpKey &key) const
{
    const Operation &o = op(key);
    OffloadClass cls = opTraits(o.type).offloadClass;
    const WorkloadState &wl = _workloads[key.workload];
    bool has_fixed = _config.hasFixedPim;
    bool has_progr = _config.hasProgrPim && _progr_free > 0;
    bool fixed_tree_free =
        has_fixed
        && _fixed_free >= std::min(o.parallelism.unitsPerLane,
                                   _config.fixed.totalUnits);

    // Guest workloads (mixed-workload co-run): CPU or progr PIM only.
    if (!wl.spec.pimManaged) {
        if (!_cpu_busy)
            return PlacedOn::Cpu;
        if (has_progr)
            return PlacedOn::ProgrPim;
        return std::nullopt;
    }

    if (!_config.dynamicScheduling) {
        // Static class-based placement (non-scheduled baselines).
        if (_config.hasProgrPim && !_config.hasFixedPim) {
            // Progr-PIM-only: everything runs on programmable cores.
            return has_progr ? std::optional(PlacedOn::ProgrPim)
                             : std::nullopt;
        }
        switch (cls) {
          case OffloadClass::FixedFunction:
            if (_config.hasFixedPim)
                return fixed_tree_free
                           ? std::optional(PlacedOn::FixedPool)
                           : std::nullopt;
            break;
          case OffloadClass::Recursive:
            if (_config.hasFixedPim) {
                // Host feeds extracted regions; needs CPU + trees.
                if (!_cpu_busy && fixed_tree_free)
                    return PlacedOn::FixedHostDriven;
                return std::nullopt;
            }
            break;
          case OffloadClass::ProgrammableOnly:
          case OffloadClass::DataMovement:
            if (_config.hasProgrPim)
                return has_progr ? std::optional(PlacedOn::ProgrPim)
                                 : std::nullopt;
            break;
        }
        return _cpu_busy ? std::nullopt : std::optional(PlacedOn::Cpu);
    }

    // ---- Dynamic scheduling (paper SectionIII-C step 2).
    bool candidate = offloadCandidate(key);

    if (!candidate) {
        // Class-1/4 ops stay on the CPU unless it is busy and PIMs
        // idle ("we can offload them when there are idling hardware
        // units in PIMs").
        if (!_cpu_busy)
            return PlacedOn::Cpu;
        if (cls == OffloadClass::FixedFunction && fixed_tree_free)
            return PlacedOn::FixedPool;
        if (has_progr && cls != OffloadClass::FixedFunction)
            return PlacedOn::ProgrPim;
        return std::nullopt;
    }

    switch (cls) {
      case OffloadClass::FixedFunction:
        // Principle 1: fixed-function PIMs first. When they are all
        // busy, principle 2 sends *small* candidates to the CPU
        // rather than letting it idle; large kernels wait for trees.
        if (fixed_tree_free)
            return PlacedOn::FixedPool;
        if (!_cpu_busy
            && _cpu_model.opSeconds(o.cost)
                   <= _config.cpuFallbackThresholdSec) {
            return PlacedOn::Cpu;
        }
        return std::nullopt;
      case OffloadClass::Recursive:
        if (_config.recursiveKernels && has_progr && _config.hasFixedPim)
            return PlacedOn::ProgrRecursive;
        if (!_config.recursiveKernels && _config.hasFixedPim
            && !_cpu_busy && fixed_tree_free) {
            return PlacedOn::FixedHostDriven;
        }
        if (!_cpu_busy
            && (!_config.hasFixedPim
                || _cpu_model.opSeconds(o.cost)
                       <= _config.cpuFallbackThresholdSec)) {
            return PlacedOn::Cpu;
        }
        return std::nullopt;
      case OffloadClass::ProgrammableOnly:
      case OffloadClass::DataMovement:
        if (has_progr)
            return PlacedOn::ProgrPim;
        if (!_cpu_busy
            && _cpu_model.opSeconds(o.cost)
                   <= _config.cpuFallbackThresholdSec) {
            return PlacedOn::Cpu;
        }
        return std::nullopt;
    }
    return std::nullopt;
}

bool
Executor::tryDispatch(const OpKey &key)
{
    auto placement = decidePlacement(key);
    if (!placement)
        return false;

    OpState &s = state(key);
    s.ready = false;
    s.running = true;
    ++_report.opsByPlacement[*placement];

    if (_trace) {
        _trace_tokens[keyStr(key)] =
            _trace->begin(op(key).label, key.op, *placement,
                          key.workload, key.step, nowSec());
    }

    switch (*placement) {
      case PlacedOn::Cpu:
        startOnCpu(key);
        break;
      case PlacedOn::FixedPool:
        startOnFixed(key);
        break;
      case PlacedOn::ProgrPim:
        startOnProgr(key, false);
        break;
      case PlacedOn::ProgrRecursive:
        startOnProgr(key, true);
        break;
      case PlacedOn::FixedHostDriven:
        startHostDriven(key);
        break;
    }
    return true;
}

void
Executor::dispatchAll()
{
    // Priority: managed workloads first, then (step, op id) order.
    std::stable_sort(_pending.begin(), _pending.end(),
                     [this](const OpKey &a, const OpKey &b) {
                         bool am = _workloads[a.workload].spec.pimManaged;
                         bool bm = _workloads[b.workload].spec.pimManaged;
                         if (am != bm)
                             return am;
                         if (a.step != b.step)
                             return a.step < b.step;
                         return a.op < b.op;
                     });
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = _pending.begin(); it != _pending.end();) {
            if (tryDispatch(*it)) {
                it = _pending.erase(it);
                progress = true;
            } else {
                ++it;
            }
        }
    }
}

void
Executor::startOnCpu(const OpKey &key)
{
    const Operation &o = op(key);
    auto timing = _cpu_model.opTiming(o.cost);
    double dm = timing.exposedMemorySec();
    double dur = std::max(timing.totalSec(), 1e-12);

    _report.cpuBusySec += dur;
    _report.linkBytes += o.cost.bytes();
    _op_accum += dur - dm;
    _dm_accum += dm;

    _cpu_busy = true;
    _queue.scheduleCallback(
        toTick(nowSec() + dur),
        [this, key] {
            _cpu_busy = false;
            onOpComplete(key);
        },
        hpim::sim::Event::completionPriority);
}

void
Executor::startOnProgr(const OpKey &key, bool recursive)
{
    panic_if(_progr_free == 0, "no free programmable PIM");
    const Operation &o = op(key);
    --_progr_free;

    double launch = _config.progr.launchOverheadSec;
    _report.hostLaunches += 1;

    if (!recursive) {
        double dur =
            launch
            + hpim::pim::progrOpSeconds(
                  _config.progr, o.cost,
                  _config.internalBandwidth * _config.pimBandwidthShare);
        dur = std::max(dur, 1e-12);
        double comp = o.cost.flops() / _config.progr.flops()
                      + o.cost.specials / _config.progr.specials();
        double dm = std::max(0.0, dur - launch - comp);
        _report.progrBusySec += dur;
        _report.internalBytes += o.cost.bytes();
        _sync_accum += launch;
        _op_accum += dur - launch - dm;
        _dm_accum += dm;
        _queue.scheduleCallback(
            toTick(nowSec() + dur),
            [this, key] {
                ++_progr_free;
                onOpComplete(key);
            },
            hpim::sim::Event::completionPriority);
        return;
    }

    // Recursive kernel: the programmable PIM runs the control/special
    // phases and dispatches the extracted mul/add core to the pool.
    auto calls = static_cast<std::uint32_t>(std::max(
        1.0, std::ceil(o.parallelism.lanes / 1048576.0)));
    _report.recursiveLaunches += calls;
    double rc_over = calls * _config.progr.recursiveLaunchSec;
    double control = o.cost.specials / _config.progr.specials();
    double dur = std::max(launch + rc_over + control, 1e-12);

    _report.progrBusySec += dur;
    _sync_accum += launch + rc_over;
    _op_accum += control;

    _joins[keyStr(key)] = Join{};

    double flops = o.cost.flops();
    double intensity =
        o.cost.bytes() > 0.0 ? flops / o.cost.bytes() : 1e9;
    std::uint32_t tree =
        std::min(std::max(o.parallelism.unitsPerLane, 1u),
                 _config.fixed.totalUnits);
    std::uint32_t max_trees = static_cast<std::uint32_t>(std::max<double>(
        1.0,
        std::min<double>(_config.fixed.totalUnits / tree,
                         std::ceil(o.parallelism.lanes))));
    addPhase(key, flops, intensity, tree, max_trees, true);

    _queue.scheduleCallback(
        toTick(nowSec() + dur),
        [this, key] {
            ++_progr_free;
            onJoinedPartDone(key, false);
        },
        hpim::sim::Event::completionPriority);
}

void
Executor::startOnFixed(const OpKey &key)
{
    const Operation &o = op(key);
    double launch = _config.fixed.launchOverheadSec;
    _report.hostLaunches += 1;
    _sync_accum += launch;
    _report.internalBytes += o.cost.bytes();

    double flops = std::max(o.cost.flops(), 1.0);
    double intensity =
        o.cost.bytes() > 0.0 ? flops / o.cost.bytes() : 1e9;
    std::uint32_t tree =
        std::min(std::max(o.parallelism.unitsPerLane, 1u),
                 _config.fixed.totalUnits);
    std::uint32_t max_trees = static_cast<std::uint32_t>(std::max<double>(
        1.0,
        std::min<double>(_config.fixed.totalUnits / tree,
                         std::ceil(o.parallelism.lanes))));
    // The kernel-spawn latency delays the phase start.
    _queue.scheduleCallback(
        toTick(nowSec() + launch),
        [this, key, flops, intensity, tree, max_trees] {
            addPhase(key, flops, intensity, tree, max_trees, false);
        },
        hpim::sim::Event::defaultPriority);
}

void
Executor::startHostDriven(const OpKey &key)
{
    // Without RC: the host CPU runs the non-extractable phases and
    // feeds extracted regions to the pool in small batches.
    const Operation &o = op(key);
    panic_if(_cpu_busy, "host-driven op needs a free CPU");
    _cpu_busy = true;

    double launches =
        static_cast<double>(_config.hostDrivenLaunches);
    double sync = launches * _config.fixed.launchOverheadSec;
    _report.hostLaunches += _config.hostDrivenLaunches;
    _sync_accum += sync;

    hpim::nn::CostStructure control;
    control.specials = o.cost.specials;
    control.bytesRead = o.cost.bytesRead * 0.1; // staging traffic
    auto timing = _cpu_model.opTiming(control);
    double cpu_dur = std::max(timing.totalSec() + sync, 1e-12);
    _report.cpuBusySec += cpu_dur;
    _report.linkBytes += control.bytes();
    _op_accum += timing.totalSec();

    _joins[keyStr(key)] = Join{};

    double flops = std::max(o.cost.flops(), 1.0);
    double intensity =
        o.cost.bytes() > 0.0 ? flops / o.cost.bytes() : 1e9;
    std::uint32_t tree =
        std::min(std::max(o.parallelism.unitsPerLane, 1u),
                 _config.fixed.totalUnits);
    std::uint32_t max_trees =
        std::min(std::max(1u, _config.hostDrivenMaxUnits / tree),
                 std::max(1u, _config.fixed.totalUnits / tree));
    _report.internalBytes += o.cost.bytes();
    addPhase(key, flops, intensity, tree, std::max(max_trees, 1u), true);

    _queue.scheduleCallback(
        toTick(nowSec() + cpu_dur),
        [this, key] {
            _cpu_busy = false;
            onJoinedPartDone(key, false);
        },
        hpim::sim::Event::completionPriority);
}

double
Executor::phaseRate(const FixedPhase &phase) const
{
    if (phase.alloc == 0)
        return 0.0;
    double compute = phase.alloc * _config.fixed.unitFlops();
    double bw_share = _config.internalBandwidth
                      * _config.pimBandwidthShare
                      * (static_cast<double>(phase.alloc)
                         / _config.fixed.totalUnits);
    double by_bw = bw_share
                   * std::min(phase.intensity,
                              _config.fixedOperandReuse);
    return std::max(std::min(compute, by_bw), 1.0);
}

void
Executor::poolDrain()
{
    Tick now = _queue.now();
    if (now <= _pool_last_update) {
        _pool_last_update = now;
        return;
    }
    double elapsed =
        hpim::sim::ticksToSeconds(now - _pool_last_update);
    for (FixedPhase &phase : _phases) {
        if (phase.alloc > 0) {
            phase.remainingFlops -= phaseRate(phase) * elapsed;
            _report.fixedUnitSeconds += phase.alloc * elapsed;
        }
    }
    _pool_last_update = now;
}

void
Executor::poolReallocate()
{
    std::uint32_t free = _config.fixed.totalUnits;
    // Pass 1: one tree per phase, oldest first.
    for (FixedPhase &phase : _phases) {
        phase.alloc = 0;
        if (free >= phase.treeUnits) {
            phase.alloc = phase.treeUnits;
            free -= phase.treeUnits;
        }
    }
    // Pass 2: extra trees, oldest first (current step drains first).
    for (FixedPhase &phase : _phases) {
        if (phase.alloc == 0)
            continue;
        std::uint32_t extra = std::min<std::uint32_t>(
            phase.maxTrees - 1, free / phase.treeUnits);
        phase.alloc += extra * phase.treeUnits;
        free -= extra * phase.treeUnits;
    }
    _fixed_free = free;
}

void
Executor::poolScheduleNext()
{
    if (_pool_event->scheduled())
        _queue.deschedule(_pool_event.get());
    double best = -1.0;
    for (const FixedPhase &phase : _phases) {
        if (phase.alloc == 0)
            continue;
        double eta = std::max(phase.remainingFlops, 0.0)
                     / phaseRate(phase);
        if (best < 0.0 || eta < best)
            best = eta;
    }
    if (best >= 0.0) {
        Tick when = std::max<Tick>(toTick(nowSec() + best),
                                   _queue.now() + 1);
        _queue.schedule(_pool_event.get(), when);
    }
}

void
Executor::addPhase(const OpKey &key, double flops, double intensity,
                   std::uint32_t tree_units, std::uint32_t max_trees,
                   bool joined)
{
    poolDrain();
    FixedPhase phase;
    phase.key = key;
    phase.remainingFlops = std::max(flops, 1.0);
    phase.treeUnits = tree_units;
    phase.maxTrees = max_trees;
    phase.intensity = intensity;
    phase.joined = joined;
    phase.startSec = nowSec();
    _phases.push_back(phase);
    poolReallocate();
    poolScheduleNext();
}

void
Executor::onPoolEvent()
{
    poolDrain();
    std::vector<FixedPhase> finished;
    for (auto it = _phases.begin(); it != _phases.end();) {
        if (it->alloc > 0 && it->remainingFlops <= kWorkEpsilon) {
            finished.push_back(*it);
            it = _phases.erase(it);
        } else {
            ++it;
        }
    }
    poolReallocate();
    poolScheduleNext();

    for (const FixedPhase &phase : finished) {
        _op_accum += nowSec() - phase.startSec;
        if (phase.joined)
            onJoinedPartDone(phase.key, true);
        else
            onOpComplete(phase.key);
    }
    dispatchAll();
}

void
Executor::onJoinedPartDone(const OpKey &key, bool fixed_part)
{
    auto it = _joins.find(keyStr(key));
    panic_if(it == _joins.end(), "join record missing for op");
    if (fixed_part)
        it->second.fixedDone = true;
    else
        it->second.controlDone = true;
    if (it->second.fixedDone && it->second.controlDone) {
        _joins.erase(it);
        onOpComplete(key);
    } else {
        // One side freed a resource; others may now start.
        dispatchAll();
    }
}

void
Executor::onOpComplete(const OpKey &key)
{
    WorkloadState &wl = _workloads[key.workload];
    OpState &s = state(key);
    panic_if(s.done, "op completed twice");
    s.done = true;
    s.running = false;

    if (_trace) {
        auto it = _trace_tokens.find(keyStr(key));
        if (it != _trace_tokens.end()) {
            _trace->end(it->second, nowSec());
            _trace_tokens.erase(it);
        }
    }

    const Graph &graph = *wl.spec.graph;
    for (OpId consumer : graph.consumers()[key.op]) {
        OpState &cs = wl.steps[key.step][consumer];
        panic_if(cs.remainingDeps == 0, "dependence underflow");
        if (--cs.remainingDeps == 0) {
            cs.ready = true;
            _pending.push_back(OpKey{key.workload, key.step, consumer});
        }
    }

    panic_if(wl.remainingOps[key.step] == 0, "step op underflow");
    if (--wl.remainingOps[key.step] == 0) {
        ++wl.completedSteps;
        // Admit the next step(s) within the pipeline window.
        while (wl.seededSteps < wl.spec.steps
               && wl.seededSteps < wl.completedSteps + stepWindow(wl)) {
            seedStep(key.workload, wl.seededSteps);
        }
    }
    dispatchAll();
}

ExecutionReport
Executor::run(const std::vector<WorkloadSpec> &workloads)
{
    fatal_if(workloads.empty(), "no workloads to run");
    // The event queue's clock is monotonic and cannot rewind; one
    // Executor instance runs once.
    fatal_if(_queue.processedCount() != 0,
             "Executor::run() called twice; construct a fresh "
             "Executor per run");
    _workloads.clear();
    _pending.clear();
    _phases.clear();
    _joins.clear();
    _report = ExecutionReport{};
    _report.configName = _config.name;

    for (const WorkloadSpec &spec : workloads) {
        fatal_if(spec.graph == nullptr, "workload without a graph");
        fatal_if(spec.steps == 0, "workload with zero steps");
        WorkloadState wl;
        wl.spec = spec;
        wl.steps.resize(spec.steps);
        wl.remainingOps.assign(spec.steps, 0);
        _workloads.push_back(std::move(wl));
    }
    _report.workloadName = workloads[0].graph->name();
    _report.stepsSimulated = workloads[0].steps;

    for (std::uint32_t w = 0; w < _workloads.size(); ++w) {
        std::uint32_t window = stepWindow(_workloads[w]);
        for (std::uint32_t s = 0;
             s < std::min<std::uint32_t>(window,
                                         _workloads[w].spec.steps);
             ++s) {
            seedStep(w, s);
        }
    }
    dispatchAll();

    std::uint64_t guard = 50'000'000;
    while (_queue.runOne()) {
        panic_if(--guard == 0, "executor exceeded event budget");
    }

    for (const WorkloadState &wl : _workloads) {
        panic_if(wl.completedSteps != wl.spec.steps,
                 "workload '", wl.spec.graph->name(),
                 "' deadlocked: ", wl.completedSteps, "/",
                 wl.spec.steps, " steps done");
    }

    // ---- Finalize the report.
    _report.makespanSec = nowSec();
    _report.stepSec =
        _report.makespanSec / _report.stepsSimulated;

    double accum = _op_accum + _dm_accum + _sync_accum;
    if (accum > 0.0) {
        _report.opSec = _report.stepSec * _op_accum / accum;
        _report.dataMovementSec = _report.stepSec * _dm_accum / accum;
        _report.syncSec = _report.stepSec * _sync_accum / accum;
    } else {
        _report.opSec = _report.stepSec;
    }

    if (_config.hasFixedPim && _report.makespanSec > 0.0) {
        _report.fixedUtilization =
            _report.fixedUnitSeconds
            / (_config.fixed.totalUnits * _report.makespanSec);
    }

    // ---- Energy.
    double makespan = _report.makespanSec;
    double cpu_busy = std::min(_report.cpuBusySec, makespan);
    double host_floor = _config.hostCoordinationFloor * makespan;
    double host_active = std::max(cpu_busy, host_floor);
    _report.cpuEnergyJ =
        host_active * _config.cpu.dynamicPowerW
        + (makespan - host_active) * _config.cpu.idlePowerW;
    if (_config.hasProgrPim) {
        _report.progrEnergyJ =
            _report.progrBusySec * _config.progr.powerW();
    }
    if (_config.hasFixedPim) {
        _report.fixedEnergyJ =
            _report.fixedUnitSeconds * _config.fixed.unitPowerW()
            + _config.fixed.poolStaticPowerW * makespan;
    }
    _report.dramEnergyJ =
        _report.linkBytes
            * (_config.dramEnergy.readPerBytePj
               + _config.dramEnergy.linkPerBytePj)
            * 1e-12
        + _report.internalBytes * _config.dramEnergy.readPerBytePj
              * 1e-12
        + _config.stackBackgroundW * makespan;
    _report.totalEnergyJ = _report.cpuEnergyJ + _report.progrEnergyJ
                           + _report.fixedEnergyJ + _report.dramEnergyJ;
    _report.energyPerStepJ =
        _report.totalEnergyJ / _report.stepsSimulated;
    _report.averagePowerW =
        makespan > 0.0 ? _report.totalEnergyJ / makespan : 0.0;
    _report.edp = _report.energyPerStepJ * _report.stepSec;
    return _report;
}

} // namespace hpim::rt
