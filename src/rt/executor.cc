#include "rt/executor.hh"

#include <algorithm>
#include <cmath>

#include "model/thermal.hh"
#include "obs/metrics.hh"
#include "pim/placement.hh"
#include "sim/deadline.hh"
#include "sim/logging.hh"

namespace hpim::rt {

using hpim::nn::Graph;
using hpim::nn::OffloadClass;
using hpim::nn::Operation;
using hpim::nn::OpId;
using hpim::nn::opTraits;
using hpim::sim::Tick;

namespace {

constexpr double kWorkEpsilon = 1.0; // flops considered "done"

} // namespace

std::string
placedOnName(PlacedOn placement)
{
    switch (placement) {
      case PlacedOn::Cpu:             return "cpu";
      case PlacedOn::FixedPool:       return "fixed";
      case PlacedOn::ProgrPim:        return "progr";
      case PlacedOn::ProgrRecursive:  return "progr+rc";
      case PlacedOn::FixedHostDriven: return "fixed(host)";
    }
    panic("unknown placement");
}

bool
placedOnFromName(const std::string &name, PlacedOn &out)
{
    for (PlacedOn placement :
         {PlacedOn::Cpu, PlacedOn::FixedPool, PlacedOn::ProgrPim,
          PlacedOn::ProgrRecursive, PlacedOn::FixedHostDriven}) {
        if (placedOnName(placement) == name) {
            out = placement;
            return true;
        }
    }
    return false;
}

/** Event driving the fixed pool's next phase completion. */
class Executor::PoolEvent : public hpim::sim::Event
{
  public:
    explicit PoolEvent(Executor &executor)
        : Event(Event::completionPriority), _executor(executor)
    {}

    void process() override { _executor.onPoolEvent(); }
    std::string description() const override { return "fixed-pool"; }

  private:
    Executor &_executor;
};

Executor::Executor(const SystemConfig &config,
                   const OffloadSelection *selection)
    : _config(config), _selection(selection), _cpu_model(config.cpu),
      _pool_event(std::make_unique<PoolEvent>(*this))
{
    _progr_free = config.hasProgrPim ? config.progrPimCount : 0;
    _fixed_free = config.hasFixedPim ? config.fixed.totalUnits : 0;
    _fixed_capacity = _fixed_free;
    _fixed_alive = _fixed_free;
    if (config.faults.enabled)
        setupFaultLayer();
}

void
Executor::setupFaultLayer()
{
    std::vector<std::uint32_t> units;
    std::vector<double> temps;
    if (_config.hasFixedPim) {
        std::uint32_t banks = std::max(_config.fixed.banks, 1u);
        hpim::pim::BankGrid grid;
        if (banks % 4 == 0 && banks >= 8) {
            grid.rows = 4;
            grid.cols = banks / 4;
        } else {
            grid.rows = 1;
            grid.cols = banks;
        }
        auto placement =
            hpim::pim::placeUnits(grid, _config.fixed.totalUnits);
        auto thermal = hpim::model::solveThermal(
            grid, placement, _config.fixed.unitPowerW());
        units = placement.unitsPerBank;
        temps = thermal.tempC;
        _regs = std::make_unique<hpim::pim::StatusRegisterFile>(banks,
                                                                units);
    }
    _fault_model = std::make_unique<hpim::sim::FaultModel>(
        _config.faults, std::move(units), std::move(temps));
}

Executor::~Executor()
{
    if (_pool_event && _pool_event->scheduled())
        _queue.deschedule(_pool_event.get());
}

std::string
Executor::keyStr(const OpKey &key)
{
    return std::to_string(key.workload) + ":" + std::to_string(key.step)
           + ":" + std::to_string(key.op);
}

const Operation &
Executor::op(const OpKey &key) const
{
    return _workloads[key.workload].spec.graph->op(key.op);
}

void
Executor::obsSpan(const char *track_name, const OpKey &key,
                  double start_sec, double energy_j,
                  std::vector<hpim::obs::TraceArg> extra)
{
    if (auto *registry = hpim::obs::MetricsRegistry::current()) {
        registry->histogram("rt.span_s").observe(nowSec() - start_sec);
        registry->histogram("rt.span_energy_j").observe(energy_j);
    }
    auto *session = hpim::obs::TraceSession::current();
    if (session == nullptr)
        return;
    std::vector<hpim::obs::TraceArg> args;
    args.reserve(extra.size() + 2);
    args.push_back({"op", keyStr(key)});
    args.push_back({"energy_j", energy_j});
    for (auto &arg : extra)
        args.push_back(std::move(arg));
    session->span(session->track(track_name), op(key).label, start_sec,
                  nowSec() - start_sec, std::move(args));
}

void
Executor::obsInstant(const char *track_name, std::string name,
                     std::vector<hpim::obs::TraceArg> args)
{
    auto *session = hpim::obs::TraceSession::current();
    if (session == nullptr)
        return;
    session->instant(session->track(track_name), std::move(name),
                     nowSec(), std::move(args));
}

void
Executor::obsCount(const char *name, std::uint64_t n)
{
    if (auto *registry = hpim::obs::MetricsRegistry::current())
        registry->counter(name).add(n);
}

Executor::OpState &
Executor::state(const OpKey &key)
{
    return _workloads[key.workload].steps[key.step].ops[key.op];
}

Executor::StepState &
Executor::stepState(const OpKey &key)
{
    return _workloads[key.workload].steps[key.step];
}

Executor::Join &
Executor::makeJoin(const OpKey &key)
{
    StepState &st = stepState(key);
    if (st.joins.empty()) {
        st.joins.assign(st.ops.size(), Join{});
        st.joinLive.assign(st.ops.size(), 0);
    }
    st.joins[key.op] = Join{};
    st.joinLive[key.op] = 1;
    return st.joins[key.op];
}

double
Executor::nowSec() const
{
    return hpim::sim::ticksToSeconds(_queue.now());
}

Tick
Executor::toTick(double seconds) const
{
    return hpim::sim::secondsToTicks(seconds);
}

std::uint32_t
Executor::stepWindow(const WorkloadState &w) const
{
    (void)w;
    return _config.operationPipeline
               ? std::max<std::uint32_t>(_config.pipelineDepth, 1)
               : 1;
}

void
Executor::seedStep(std::uint32_t w, std::uint32_t step)
{
    WorkloadState &wl = _workloads[w];
    if (step >= wl.spec.steps || step < wl.seededSteps)
        return;
    panic_if(step != wl.seededSteps, "steps must seed in order");
    ++wl.seededSteps;

    const Graph &graph = *wl.spec.graph;
    auto &states = wl.steps[step].ops;
    states.assign(graph.size(), OpState{});
    wl.remainingOps[step] = static_cast<std::uint32_t>(graph.size());
    for (const Operation &o : graph.ops()) {
        states[o.id].remainingDeps =
            static_cast<std::uint32_t>(o.inputs.size());
        if (states[o.id].remainingDeps == 0) {
            states[o.id].ready = true;
            _pending.push_back(OpKey{w, step, o.id});
            _pending_dirty = true;
        }
    }
}

std::optional<PlacedOn>
Executor::decidePlacement(const OpKey &key) const
{
    const WorkloadState &wl = _workloads[key.workload];
    const OpMeta &meta = wl.meta[key.op];
    OffloadClass cls = meta.cls;
    bool has_fixed = _config.hasFixedPim;
    bool has_progr = _config.hasProgrPim && _progr_free > 0;
    bool fixed_tree_free =
        has_fixed && _fixed_capacity > 0
        && _fixed_free >= std::min(meta.unitsPerLane,
                                   _fixed_capacity);

    if (faultsOn()) {
        std::uint32_t level = degradeLevel(key);
        // With every pool bank permanently failed, fixed-destined ops
        // skip straight to the next rung instead of waiting forever.
        if (level == 0 && has_fixed && _fixed_alive == 0
            && (cls == OffloadClass::FixedFunction
                || cls == OffloadClass::Recursive)) {
            level = 1;
        }
        if (level > 0)
            return ladderPlacement(key, level);
    }

    // Guest workloads (mixed-workload co-run): CPU or progr PIM only.
    if (!wl.spec.pimManaged) {
        if (!_cpu_busy)
            return PlacedOn::Cpu;
        if (has_progr)
            return PlacedOn::ProgrPim;
        return std::nullopt;
    }

    if (!_config.dynamicScheduling) {
        // Static class-based placement (non-scheduled baselines).
        if (_config.hasProgrPim && !_config.hasFixedPim) {
            // Progr-PIM-only: everything runs on programmable cores.
            return has_progr ? std::optional(PlacedOn::ProgrPim)
                             : std::nullopt;
        }
        switch (cls) {
          case OffloadClass::FixedFunction:
            if (_config.hasFixedPim)
                return fixed_tree_free
                           ? std::optional(PlacedOn::FixedPool)
                           : std::nullopt;
            break;
          case OffloadClass::Recursive:
            if (_config.hasFixedPim) {
                // Host feeds extracted regions; needs CPU + trees.
                if (!_cpu_busy && fixed_tree_free)
                    return PlacedOn::FixedHostDriven;
                return std::nullopt;
            }
            break;
          case OffloadClass::ProgrammableOnly:
          case OffloadClass::DataMovement:
            if (_config.hasProgrPim)
                return has_progr ? std::optional(PlacedOn::ProgrPim)
                                 : std::nullopt;
            break;
        }
        return _cpu_busy ? std::nullopt : std::optional(PlacedOn::Cpu);
    }

    // ---- Dynamic scheduling (paper SectionIII-C step 2).
    bool candidate = meta.candidate;

    if (!candidate) {
        // Class-1/4 ops stay on the CPU unless it is busy and PIMs
        // idle ("we can offload them when there are idling hardware
        // units in PIMs").
        if (!_cpu_busy)
            return PlacedOn::Cpu;
        if (cls == OffloadClass::FixedFunction && fixed_tree_free)
            return PlacedOn::FixedPool;
        if (has_progr && cls != OffloadClass::FixedFunction)
            return PlacedOn::ProgrPim;
        return std::nullopt;
    }

    switch (cls) {
      case OffloadClass::FixedFunction:
        // Principle 1: fixed-function PIMs first. When they are all
        // busy, principle 2 sends *small* candidates to the CPU
        // rather than letting it idle; large kernels wait for trees.
        if (fixed_tree_free)
            return PlacedOn::FixedPool;
        if (!_cpu_busy && meta.smallOnCpu)
            return PlacedOn::Cpu;
        return std::nullopt;
      case OffloadClass::Recursive:
        if (_config.recursiveKernels && has_progr && _config.hasFixedPim)
            return PlacedOn::ProgrRecursive;
        if (!_config.recursiveKernels && _config.hasFixedPim
            && !_cpu_busy && fixed_tree_free) {
            return PlacedOn::FixedHostDriven;
        }
        if (!_cpu_busy && (!_config.hasFixedPim || meta.smallOnCpu))
            return PlacedOn::Cpu;
        return std::nullopt;
      case OffloadClass::ProgrammableOnly:
      case OffloadClass::DataMovement:
        if (has_progr)
            return PlacedOn::ProgrPim;
        if (!_cpu_busy && meta.smallOnCpu)
            return PlacedOn::Cpu;
        return std::nullopt;
    }
    return std::nullopt;
}

std::uint32_t
Executor::degradeLevel(const OpKey &key) const
{
    // Sized lazily by failAttempt(); empty means no op in this step
    // has ever degraded.
    const std::vector<std::uint32_t> &degraded =
        _workloads[key.workload].steps[key.step].degraded;
    return degraded.empty() ? 0 : degraded[key.op];
}

std::optional<PlacedOn>
Executor::ladderPlacement(const OpKey &key, std::uint32_t level) const
{
    OffloadClass cls = _workloads[key.workload].meta[key.op].cls;
    // Rung 1 is the programmable PIM -- unless the op started there
    // (ProgrammableOnly / DataMovement classes), in which case the
    // first drop already lands on the host.
    bool progr_rung = _config.hasProgrPim
                      && cls != OffloadClass::ProgrammableOnly
                      && cls != OffloadClass::DataMovement;
    if (level == 1 && progr_rung) {
        return _progr_free > 0 ? std::optional(PlacedOn::ProgrPim)
                               : std::nullopt;
    }
    // Final rung: the host CPU, which never faults, so every op
    // eventually completes.
    return _cpu_busy ? std::nullopt : std::optional(PlacedOn::Cpu);
}

bool
Executor::tryDispatch(const OpKey &key)
{
    auto placement = decidePlacement(key);
    if (!placement)
        return false;

    OpState &s = state(key);
    s.ready = false;
    s.running = true;
    // With faults on, the census counts where the op *completes*; a
    // faulted attempt must not leave a phantom tally behind.
    if (faultsOn()) {
        StepState &st = stepState(key);
        if (st.placement.empty()) {
            st.placement.assign(st.ops.size(), PlacedOn::Cpu);
            st.placementLive.assign(st.ops.size(), 0);
        }
        st.placement[key.op] = *placement;
        st.placementLive[key.op] = 1;
    } else {
        ++_report.opsByPlacement[*placement];
    }

    if (_trace) {
        StepState &st = stepState(key);
        if (st.traceToken.empty()) {
            st.traceToken.assign(st.ops.size(), 0);
            st.traceLive.assign(st.ops.size(), 0);
        }
        st.traceToken[key.op] =
            _trace->begin(op(key).label, key.op, *placement,
                          key.workload, key.step, nowSec());
        st.traceLive[key.op] = 1;
    }

    switch (*placement) {
      case PlacedOn::Cpu:
        startOnCpu(key);
        break;
      case PlacedOn::FixedPool:
        startOnFixed(key);
        break;
      case PlacedOn::ProgrPim:
        startOnProgr(key, false);
        break;
      case PlacedOn::ProgrRecursive:
        startOnProgr(key, true);
        break;
      case PlacedOn::FixedHostDriven:
        startHostDriven(key);
        break;
    }
    return true;
}

void
Executor::dispatchAll()
{
    if (_pending.empty())
        return;
    // Priority: managed workloads first, then (step, op id) order.
    // Dispatching never reorders the survivors, so the sort is needed
    // only after new ops were pushed (stable_sort on an already
    // sorted list is the identity, so skipping it changes nothing).
    if (_pending_dirty) {
        std::stable_sort(
            _pending.begin(), _pending.end(),
            [this](const OpKey &a, const OpKey &b) {
                bool am = _workloads[a.workload].spec.pimManaged;
                bool bm = _workloads[b.workload].spec.pimManaged;
                if (am != bm)
                    return am;
                if (a.step != b.step)
                    return a.step < b.step;
                return a.op < b.op;
            });
        _pending_dirty = false;
    }
    // Keep sweeping until a pass places nothing: a dispatch can free
    // pool units for *earlier* entries (poolReallocate may shrink an
    // older phase's extra trees when a new phase claims its base
    // tree), so one pass is not always a fixed point. Survivors are
    // compacted in place instead of erased one by one.
    bool progress = true;
    while (progress) {
        progress = false;
        std::size_t out = 0;
        for (std::size_t i = 0; i < _pending.size(); ++i) {
            if (tryDispatch(_pending[i]))
                progress = true;
            else
                _pending[out++] = _pending[i];
        }
        _pending.resize(out);
    }
}

void
Executor::startOnCpu(const OpKey &key)
{
    const Operation &o = op(key);
    auto timing = _cpu_model.opTiming(o.cost);
    double dm = timing.exposedMemorySec();
    double dur = std::max(timing.totalSec(), 1e-12);

    _report.cpuBusySec += dur;
    _report.linkBytes += o.cost.bytes();
    _op_accum += dur - dm;
    _dm_accum += dm;

    _cpu_busy = true;
    double start = nowSec();
    _queue.scheduleCallback(
        toTick(start + dur),
        [this, key, start, dur] {
            _cpu_busy = false;
            if (obsActive()) {
                obsSpan("cpu", key, start,
                        dur * _config.cpu.dynamicPowerW);
                obsCount("rt.ops.cpu");
            }
            onOpComplete(key);
        },
        hpim::sim::Event::completionPriority);
}

void
Executor::startOnProgr(const OpKey &key, bool recursive)
{
    panic_if(_progr_free == 0, "no free programmable PIM");
    const Operation &o = op(key);
    --_progr_free;

    using Attempt = hpim::sim::FaultModel::Attempt;
    Attempt outcome = faultsOn() ? _fault_model->drawAttempt(true)
                                 : Attempt::Success;

    double launch = _config.progr.launchOverheadSec;
    _report.hostLaunches += 1;

    if (!recursive) {
        double dur =
            launch
            + hpim::pim::progrOpSeconds(
                  _config.progr, o.cost,
                  _config.internalBandwidth * _config.pimBandwidthShare);
        dur = std::max(dur, 1e-12);
        if (outcome == Attempt::Stall) {
            // The kernel hangs; the watchdog reclaims the device after
            // the per-op timeout. Nothing useful ran.
            double hold = _fault_model->stallTimeoutSec(dur);
            _report.progrBusySec += hold;
            _sync_accum += hold;
            double start = nowSec();
            _queue.scheduleCallback(
                toTick(start + hold),
                [this, key, start, hold] {
                    ++_progr_free;
                    if (obsActive()) {
                        obsSpan("progr", key, start,
                                hold * _config.progr.powerW(),
                                {{"outcome", std::string("stall")}});
                    }
                    failAttempt(key, FailKind::Stall);
                },
                hpim::sim::Event::completionPriority);
            return;
        }
        bool faulty = outcome == Attempt::Transient;
        double comp = o.cost.flops() / _config.progr.flops()
                      + o.cost.specials / _config.progr.specials();
        double dm = std::max(0.0, dur - launch - comp);
        _report.progrBusySec += dur;
        _report.internalBytes += o.cost.bytes();
        if (faulty) {
            // Ran to completion but failed result verification: the
            // whole attempt is lost time, recovered by re-execution.
            _sync_accum += dur;
        } else {
            _sync_accum += launch;
            _op_accum += dur - launch - dm;
            _dm_accum += dm;
        }
        double start = nowSec();
        _queue.scheduleCallback(
            toTick(start + dur),
            [this, key, faulty, start, dur] {
                ++_progr_free;
                if (obsActive()) {
                    obsSpan("progr", key, start,
                            dur * _config.progr.powerW(),
                            faulty
                                ? std::vector<hpim::obs::TraceArg>{
                                      {"outcome",
                                       std::string("fault")}}
                                : std::vector<hpim::obs::TraceArg>{});
                    if (!faulty)
                        obsCount("rt.ops.progr");
                }
                if (faulty)
                    failAttempt(key, FailKind::Transient);
                else
                    onOpComplete(key);
            },
            hpim::sim::Event::completionPriority);
        return;
    }

    // Recursive kernel: the programmable PIM runs the control/special
    // phases and dispatches the extracted mul/add core to the pool.
    auto calls = static_cast<std::uint32_t>(std::max(
        1.0, std::ceil(o.parallelism.lanes / 1048576.0)));
    double rc_over = calls * _config.progr.recursiveLaunchSec;
    double control = o.cost.specials / _config.progr.specials();
    double dur = std::max(launch + rc_over + control, 1e-12);

    if (outcome == Attempt::Stall) {
        // The control kernel hangs before dispatching any pool work;
        // no join/phase is created and the watchdog frees the device.
        double hold = _fault_model->stallTimeoutSec(dur);
        _report.progrBusySec += hold;
        _sync_accum += hold;
        double start = nowSec();
        _queue.scheduleCallback(
            toTick(start + hold),
            [this, key, start, hold] {
                ++_progr_free;
                if (obsActive()) {
                    obsSpan("progr", key, start,
                            hold * _config.progr.powerW(),
                            {{"outcome", std::string("stall")},
                             {"part", std::string("rc-control")}});
                }
                failAttempt(key, FailKind::Stall);
            },
            hpim::sim::Event::completionPriority);
        return;
    }
    bool faulty = outcome == Attempt::Transient;

    _report.recursiveLaunches += calls;
    _report.progrBusySec += dur;
    if (faulty) {
        _sync_accum += dur;
    } else {
        _sync_accum += launch + rc_over;
        _op_accum += control;
    }

    Join &join = makeJoin(key);
    if (faulty) {
        join.faulty = true;
        join.failKind = FailKind::Transient;
    }

    double flops = o.cost.flops();
    double intensity =
        o.cost.bytes() > 0.0 ? flops / o.cost.bytes() : 1e9;
    std::uint32_t cap = std::max(_fixed_capacity, 1u);
    std::uint32_t tree =
        std::min(std::max(o.parallelism.unitsPerLane, 1u), cap);
    std::uint32_t max_trees = static_cast<std::uint32_t>(std::max<double>(
        1.0,
        std::min<double>(cap / tree, std::ceil(o.parallelism.lanes))));
    addPhase(key, flops, intensity, tree, max_trees, true, faulty);

    double start = nowSec();
    _queue.scheduleCallback(
        toTick(start + dur),
        [this, key, start, dur] {
            ++_progr_free;
            if (obsActive()) {
                obsSpan("progr", key, start,
                        dur * _config.progr.powerW(),
                        {{"part", std::string("rc-control")}});
            }
            onJoinedPartDone(key, false);
        },
        hpim::sim::Event::completionPriority);
}

void
Executor::startOnFixed(const OpKey &key)
{
    const Operation &o = op(key);
    double launch = _config.fixed.launchOverheadSec;
    _report.hostLaunches += 1;
    _sync_accum += launch;
    _report.internalBytes += o.cost.bytes();

    double flops = std::max(o.cost.flops(), 1.0);
    double intensity =
        o.cost.bytes() > 0.0 ? flops / o.cost.bytes() : 1e9;
    std::uint32_t cap = std::max(_fixed_capacity, 1u);
    std::uint32_t tree =
        std::min(std::max(o.parallelism.unitsPerLane, 1u), cap);
    std::uint32_t max_trees = static_cast<std::uint32_t>(std::max<double>(
        1.0,
        std::min<double>(cap / tree, std::ceil(o.parallelism.lanes))));
    bool faulty =
        faultsOn()
        && _fault_model->drawAttempt(false)
               == hpim::sim::FaultModel::Attempt::Transient;
    // The kernel-spawn latency delays the phase start.
    _queue.scheduleCallback(
        toTick(nowSec() + launch),
        [this, key, flops, intensity, tree, max_trees, faulty] {
            if (faultsOn() && _fixed_alive == 0) {
                // The whole pool died during the launch window.
                failAttempt(key, FailKind::Evicted);
                return;
            }
            addPhase(key, flops, intensity, tree, max_trees, false,
                     faulty);
        },
        hpim::sim::Event::defaultPriority);
}

void
Executor::startHostDriven(const OpKey &key)
{
    // Without RC: the host CPU runs the non-extractable phases and
    // feeds extracted regions to the pool in small batches.
    const Operation &o = op(key);
    panic_if(_cpu_busy, "host-driven op needs a free CPU");
    _cpu_busy = true;

    double launches =
        static_cast<double>(_config.hostDrivenLaunches);
    double sync = launches * _config.fixed.launchOverheadSec;
    _report.hostLaunches += _config.hostDrivenLaunches;
    _sync_accum += sync;

    hpim::nn::CostStructure control;
    control.specials = o.cost.specials;
    control.bytesRead = o.cost.bytesRead * 0.1; // staging traffic
    auto timing = _cpu_model.opTiming(control);
    double cpu_dur = std::max(timing.totalSec() + sync, 1e-12);
    _report.cpuBusySec += cpu_dur;
    _report.linkBytes += control.bytes();

    // The host control loop is trusted; only the pool half can see a
    // transient fault (there is no kernel to stall host-side).
    bool faulty =
        faultsOn()
        && _fault_model->drawAttempt(false)
               == hpim::sim::FaultModel::Attempt::Transient;
    if (faulty)
        _sync_accum += timing.totalSec();
    else
        _op_accum += timing.totalSec();

    Join &join = makeJoin(key);
    if (faulty) {
        join.faulty = true;
        join.failKind = FailKind::Transient;
    }

    double flops = std::max(o.cost.flops(), 1.0);
    double intensity =
        o.cost.bytes() > 0.0 ? flops / o.cost.bytes() : 1e9;
    std::uint32_t cap = std::max(_fixed_capacity, 1u);
    std::uint32_t tree =
        std::min(std::max(o.parallelism.unitsPerLane, 1u), cap);
    std::uint32_t max_trees =
        std::min(std::max(1u, _config.hostDrivenMaxUnits / tree),
                 std::max(1u, cap / tree));
    _report.internalBytes += o.cost.bytes();
    addPhase(key, flops, intensity, tree, std::max(max_trees, 1u), true,
             faulty);

    double start = nowSec();
    _queue.scheduleCallback(
        toTick(start + cpu_dur),
        [this, key, start, cpu_dur] {
            _cpu_busy = false;
            if (obsActive()) {
                obsSpan("cpu", key, start,
                        cpu_dur * _config.cpu.dynamicPowerW,
                        {{"part", std::string("host-driven")}});
            }
            onJoinedPartDone(key, false);
        },
        hpim::sim::Event::completionPriority);
}

double
Executor::phaseRate(const FixedPhase &phase) const
{
    if (phase.alloc == 0)
        return 0.0;
    double compute = phase.alloc * _config.fixed.unitFlops();
    double bw_share = _config.internalBandwidth
                      * _config.pimBandwidthShare
                      * (static_cast<double>(phase.alloc)
                         / _config.fixed.totalUnits);
    double by_bw = bw_share
                   * std::min(phase.intensity,
                              _config.fixedOperandReuse);
    return std::max(std::min(compute, by_bw), 1.0);
}

void
Executor::poolDrain()
{
    Tick now = _queue.now();
    if (now <= _pool_last_update) {
        _pool_last_update = now;
        return;
    }
    double elapsed =
        hpim::sim::ticksToSeconds(now - _pool_last_update);
    for (FixedPhase &phase : _phases) {
        if (phase.alloc > 0) {
            phase.remainingFlops -= phaseRate(phase) * elapsed;
            phase.unitSeconds += phase.alloc * elapsed;
            _report.fixedUnitSeconds += phase.alloc * elapsed;
        }
    }
    _pool_last_update = now;
}

void
Executor::poolReallocate()
{
    std::uint32_t free = _fixed_capacity;
    // Pass 1: one tree per phase, oldest first.
    for (FixedPhase &phase : _phases) {
        phase.alloc = 0;
        if (free >= phase.treeUnits) {
            phase.alloc = phase.treeUnits;
            free -= phase.treeUnits;
        } else if (faultsOn() && free > 0
                   && phase.treeUnits > _fixed_capacity) {
            // Bank kills or throttling shrank the pool below the
            // reduction-tree width, so no amount of waiting yields a
            // full tree; run a partial one rather than starve. Mere
            // contention (tree fits an empty pool) still waits, and
            // the full width is granted again once capacity recovers.
            phase.alloc = free;
            free = 0;
        }
    }
    // Pass 2: extra trees, oldest first (current step drains first).
    for (FixedPhase &phase : _phases) {
        if (phase.alloc == 0)
            continue;
        std::uint32_t extra = std::min<std::uint32_t>(
            phase.maxTrees - 1, free / phase.treeUnits);
        phase.alloc += extra * phase.treeUnits;
        free -= extra * phase.treeUnits;
    }
    _fixed_free = free;
}

void
Executor::poolScheduleNext()
{
    if (_pool_event->scheduled())
        _queue.deschedule(_pool_event.get());
    double best = -1.0;
    for (const FixedPhase &phase : _phases) {
        if (phase.alloc == 0)
            continue;
        double eta = std::max(phase.remainingFlops, 0.0)
                     / phaseRate(phase);
        if (best < 0.0 || eta < best)
            best = eta;
    }
    if (best >= 0.0) {
        Tick when = std::max<Tick>(toTick(nowSec() + best),
                                   _queue.now() + 1);
        _queue.schedule(_pool_event.get(), when);
    }
}

void
Executor::addPhase(const OpKey &key, double flops, double intensity,
                   std::uint32_t tree_units, std::uint32_t max_trees,
                   bool joined, bool faulty)
{
    poolDrain();
    FixedPhase phase;
    phase.key = key;
    phase.remainingFlops = std::max(flops, 1.0);
    phase.treeUnits = tree_units;
    phase.maxTrees = max_trees;
    phase.intensity = intensity;
    phase.joined = joined;
    phase.faulty = faulty;
    phase.startSec = nowSec();
    // Capacity may have shrunk since the tree size was computed; a
    // tree wider than the surviving pool would never be granted.
    if (faultsOn() && _fixed_alive > 0)
        phase.treeUnits = std::min(phase.treeUnits, _fixed_alive);
    _phases.push_back(phase);
    poolReallocate();
    poolScheduleNext();
}

void
Executor::onPoolEvent()
{
    poolDrain();
    std::vector<FixedPhase> finished;
    for (auto it = _phases.begin(); it != _phases.end();) {
        if (it->alloc > 0 && it->remainingFlops <= kWorkEpsilon) {
            finished.push_back(*it);
            it = _phases.erase(it);
        } else {
            ++it;
        }
    }
    poolReallocate();
    poolScheduleNext();

    for (const FixedPhase &phase : finished) {
        double span = nowSec() - phase.startSec;
        if (phase.faulty)
            _sync_accum += span; // wasted attempt; retry recovers it
        else
            _op_accum += span;
        if (obsActive()) {
            std::vector<hpim::obs::TraceArg> extra;
            extra.push_back(
                {"tree_units",
                 static_cast<std::int64_t>(phase.treeUnits)});
            extra.push_back({"unit_s", phase.unitSeconds});
            if (phase.faulty)
                extra.push_back({"outcome", std::string("fault")});
            obsSpan("fixed", phase.key, phase.startSec,
                    phase.unitSeconds * _config.fixed.unitPowerW(),
                    std::move(extra));
            if (!phase.faulty)
                obsCount("rt.ops.fixed_phases");
        }
        if (phase.joined)
            onJoinedPartDone(phase.key, true);
        else if (phase.faulty)
            failAttempt(phase.key, FailKind::Transient);
        else
            onOpComplete(phase.key);
    }
    dispatchAll();
}

void
Executor::onJoinedPartDone(const OpKey &key, bool fixed_part)
{
    StepState &st = stepState(key);
    panic_if(st.joinLive.empty() || !st.joinLive[key.op],
             "join record missing for op");
    Join &join = st.joins[key.op];
    if (fixed_part)
        join.fixedDone = true;
    else
        join.controlDone = true;
    if (join.fixedDone && join.controlDone) {
        bool faulty = join.faulty;
        FailKind kind = join.failKind;
        st.joinLive[key.op] = 0;
        if (faulty)
            failAttempt(key, kind);
        else
            onOpComplete(key);
    } else {
        // One side freed a resource; others may now start.
        dispatchAll();
    }
}

void
Executor::failAttempt(const OpKey &key, FailKind kind)
{
    StepState &stp = stepState(key);
    if (_trace && !stp.traceLive.empty() && stp.traceLive[key.op]) {
        _trace->abort(stp.traceToken[key.op], nowSec());
        stp.traceLive[key.op] = 0;
    }
    if (!stp.placementLive.empty())
        stp.placementLive[key.op] = 0;
    const char *kind_name = nullptr;
    switch (kind) {
      case FailKind::Transient:
        ++_report.transientFaults;
        kind_name = "fault.transient";
        break;
      case FailKind::Stall:
        ++_report.kernelStalls;
        kind_name = "fault.stall";
        break;
      case FailKind::Evicted:
        ++_report.opsEvicted;
        kind_name = "fault.evicted";
        break;
    }
    ++_report.retries;
    obsCount("rt.retries");
    if (stp.attempts.empty()) {
        stp.attempts.assign(stp.ops.size(), 0);
        stp.degraded.assign(stp.ops.size(), 0);
    }
    std::uint32_t attempts = ++stp.attempts[key.op];
    if (obsActive()) {
        obsInstant("sched", kind_name,
                   {{"op", keyStr(key)},
                    {"attempt", static_cast<std::int64_t>(attempts)}});
    }
    if (attempts >= _config.faults.maxAttempts) {
        // Rung exhausted: drop one level on the degradation ladder
        // (fixed-function -> programmable PIM -> CPU) and start the
        // attempt budget over.
        stp.attempts[key.op] = 0;
        ++stp.degraded[key.op];
        ++_report.opsDegraded;
        obsCount("rt.ops_degraded");
        if (obsActive()) {
            obsInstant("sched", "degrade",
                       {{"op", keyStr(key)},
                        {"level",
                         static_cast<std::int64_t>(
                             stp.degraded[key.op])}});
        }
    }
    OpState &s = state(key);
    s.running = false;
    double delay = _fault_model->backoffSec(attempts);
    _report.retryBackoffSec += delay;
    Tick when = std::max<Tick>(toTick(nowSec() + delay),
                               _queue.now() + 1);
    _queue.scheduleCallback(
        when,
        [this, key] {
            OpState &st = state(key);
            if (st.done || st.running || st.ready)
                return;
            st.ready = true;
            _pending.push_back(key);
            _pending_dirty = true;
            dispatchAll();
        },
        hpim::sim::Event::schedulePriority);
}

void
Executor::refreshFixedCapacity()
{
    if (_regs == nullptr)
        return;
    _fixed_capacity = _regs->availableUnits();
    _fixed_alive = _regs->aliveUnits();
}

void
Executor::recordCapacity()
{
    _report.capacityTimeline.push_back({nowSec(), _fixed_capacity});
    if (auto *session = hpim::obs::TraceSession::current()) {
        session->counter(session->track("fixed"), "fixed capacity",
                         nowSec(), _fixed_capacity);
    }
    if (auto *registry = hpim::obs::MetricsRegistry::current())
        registry->gauge("rt.fixed_capacity").set(_fixed_capacity);
}

bool
Executor::allComplete() const
{
    for (const WorkloadState &wl : _workloads) {
        if (wl.completedSteps != wl.spec.steps)
            return false;
    }
    return true;
}

void
Executor::evictDeadPoolPhases()
{
    if (_fixed_alive > 0) {
        // Surviving capacity: just shrink trees that no longer fit.
        for (FixedPhase &phase : _phases)
            phase.treeUnits = std::min(phase.treeUnits, _fixed_alive);
        return;
    }
    // The whole pool is gone; every in-flight phase is evicted and its
    // op re-dispatched (the degradation ladder keeps it off the pool).
    std::vector<FixedPhase> victims;
    victims.swap(_phases);
    for (const FixedPhase &phase : victims) {
        if (phase.joined) {
            StepState &st = stepState(phase.key);
            if (!st.joinLive.empty() && st.joinLive[phase.key.op]) {
                st.joins[phase.key.op].faulty = true;
                st.joins[phase.key.op].failKind = FailKind::Evicted;
                onJoinedPartDone(phase.key, true);
            }
        } else {
            failAttempt(phase.key, FailKind::Evicted);
        }
    }
}

void
Executor::onBankFailed(std::uint32_t bank)
{
    if (_regs == nullptr || bank >= _regs->banks()
        || _regs->bankState(bank) == hpim::pim::BankState::Failed) {
        return;
    }
    poolDrain();
    std::uint32_t lost = _regs->bankCapacity(bank);
    _regs->markFailed(bank);
    ++_report.banksFailed;
    _report.unitsLost += lost;
    obsCount("rt.banks_failed");
    if (obsActive()) {
        obsInstant("sched", "bank.failed",
                   {{"bank", static_cast<std::int64_t>(bank)},
                    {"units_lost", static_cast<std::int64_t>(lost)}});
    }
    refreshFixedCapacity();
    recordCapacity();
    inform("fault: bank ", bank, " failed at ", nowSec(), " s (-",
           lost, " units, ", _fixed_capacity, " allocatable)");
    evictDeadPoolPhases();
    poolReallocate();
    poolScheduleNext();
    dispatchAll();
}

void
Executor::onThrottle(std::size_t index, bool start)
{
    const hpim::sim::ThrottleSpec &spec =
        _fault_model->throttles()[index];
    if (_regs == nullptr || spec.bank >= _regs->banks())
        return;
    poolDrain();
    if (start) {
        ++_report.throttleEvents;
        obsCount("rt.throttle_events");
    }
    if (obsActive()) {
        obsInstant("sched", start ? "throttle.start" : "throttle.end",
                   {{"bank", static_cast<std::int64_t>(spec.bank)}});
    }
    _regs->setThrottled(spec.bank, start);
    refreshFixedCapacity();
    recordCapacity();
    poolReallocate();
    poolScheduleNext();
    if (!allComplete()) {
        // Keep the duty cycle going only while work remains, so the
        // run loop terminates with the last completion.
        double delay = start ? spec.onSec : spec.offSec;
        Tick when = std::max<Tick>(toTick(nowSec() + delay),
                                   _queue.now() + 1);
        _queue.scheduleCallback(
            when, [this, index, start] { onThrottle(index, !start); },
            hpim::sim::Event::defaultPriority);
    }
    if (!start)
        dispatchAll(); // capacity returned; waiting trees may now fit
}

void
Executor::scheduleHealthEvents()
{
    recordCapacity(); // t = 0 baseline sample
    for (const hpim::sim::BankKill &kill : _fault_model->kills()) {
        std::uint32_t bank = kill.bank;
        Tick when = std::max<Tick>(toTick(kill.timeSec),
                                   _queue.now() + 1);
        _queue.scheduleCallback(
            when, [this, bank] { onBankFailed(bank); },
            hpim::sim::Event::defaultPriority);
    }
    for (std::size_t i = 0; i < _fault_model->throttles().size(); ++i) {
        Tick when = std::max<Tick>(
            toTick(_fault_model->throttles()[i].firstStartSec),
            _queue.now() + 1);
        _queue.scheduleCallback(
            when, [this, i] { onThrottle(i, true); },
            hpim::sim::Event::defaultPriority);
    }
}

void
Executor::onOpComplete(const OpKey &key)
{
    WorkloadState &wl = _workloads[key.workload];
    OpState &s = state(key);
    panic_if(s.done, "op completed twice");
    s.done = true;
    s.running = false;

    if (faultsOn()) {
        StepState &st = wl.steps[key.step];
        panic_if(st.placementLive.empty() || !st.placementLive[key.op],
                 "op completed without a recorded placement");
        ++_report.opsByPlacement[st.placement[key.op]];
        st.placementLive[key.op] = 0;
    }

    if (_trace) {
        StepState &st = wl.steps[key.step];
        if (!st.traceLive.empty() && st.traceLive[key.op]) {
            _trace->end(st.traceToken[key.op], nowSec());
            st.traceLive[key.op] = 0;
        }
    }

    obsCount("rt.ops_completed");

    const Graph &graph = *wl.spec.graph;
    for (OpId consumer : graph.consumers()[key.op]) {
        OpState &cs = wl.steps[key.step].ops[consumer];
        panic_if(cs.remainingDeps == 0, "dependence underflow");
        if (--cs.remainingDeps == 0) {
            cs.ready = true;
            _pending.push_back(OpKey{key.workload, key.step, consumer});
            _pending_dirty = true;
        }
    }

    panic_if(wl.remainingOps[key.step] == 0, "step op underflow");
    if (--wl.remainingOps[key.step] == 0) {
        // completedSteps counts the fully-finished PREFIX of steps.
        // With pipelining a later step can drain before an earlier one
        // (placement divergence on wide DAGs), but the step-window
        // contract (schedule_validator) admits step s+window only once
        // step s itself has ended -- so gate on the prefix, not on a
        // raw count of drained steps.
        while (wl.completedSteps < wl.seededSteps
               && wl.remainingOps[wl.completedSteps] == 0)
            ++wl.completedSteps;
        // Admit the next step(s) within the pipeline window.
        while (wl.seededSteps < wl.spec.steps
               && wl.seededSteps < wl.completedSteps + stepWindow(wl)) {
            seedStep(key.workload, wl.seededSteps);
        }
    }
    dispatchAll();
}

ExecutionReport
Executor::run(const std::vector<WorkloadSpec> &workloads)
{
    fatal_if(workloads.empty(), "no workloads to run");
    // The event queue's clock is monotonic and cannot rewind; one
    // Executor instance runs once.
    fatal_if(_queue.processedCount() != 0,
             "Executor::run() called twice; construct a fresh "
             "Executor per run");
    _workloads.clear();
    _pending.clear();
    _phases.clear();
    _report = ExecutionReport{};
    _report.configName = _config.name;

    // Far beyond any study in the paper, but check rather than let a
    // pathological spec allocate per-step state without bound.
    fatal_if(workloads.size() > 255, "too many workloads to pack");
    for (const WorkloadSpec &spec : workloads) {
        fatal_if(spec.graph == nullptr, "workload without a graph");
        fatal_if(spec.steps == 0, "workload with zero steps");
        fatal_if(spec.steps >= (1u << 24), "too many steps to pack");
        WorkloadState wl;
        wl.spec = spec;
        wl.steps.resize(spec.steps);
        wl.remainingOps.assign(spec.steps, 0);
        // Precompute the placement-relevant facts for every op once;
        // decidePlacement() reads these on every pending-list scan.
        const Graph &graph = *spec.graph;
        wl.meta.reserve(graph.size());
        for (OpId id = 0; id < graph.size(); ++id) {
            const Operation &o = graph.op(id);
            OpMeta meta;
            meta.cls = hpim::nn::opTraits(o.type).offloadClass;
            meta.candidate = _selection == nullptr
                             || _selection->isCandidate(o.type);
            meta.smallOnCpu = _cpu_model.opSeconds(o.cost)
                              <= _config.cpuFallbackThresholdSec;
            meta.unitsPerLane = o.parallelism.unitsPerLane;
            wl.meta.push_back(meta);
        }
        _workloads.push_back(std::move(wl));
    }
    _report.workloadName = workloads[0].graph->name();
    _report.stepsSimulated = workloads[0].steps;

    for (std::uint32_t w = 0; w < _workloads.size(); ++w) {
        std::uint32_t window = stepWindow(_workloads[w]);
        for (std::uint32_t s = 0;
             s < std::min<std::uint32_t>(window,
                                         _workloads[w].spec.steps);
             ++s) {
            seedStep(w, s);
        }
    }
    if (faultsOn())
        scheduleHealthEvents();
    dispatchAll();

    // With faults off the queue drains exactly at the last completion,
    // so the allComplete() guard never changes behaviour; with faults
    // on it stops the run before any still-pending throttle window.
    hpim::sim::checkDeadline("simulate");
    std::uint64_t guard = 50'000'000;
    while (!allComplete() && _queue.runOne()) {
        panic_if(--guard == 0, "executor exceeded event budget");
        // Deadline phase boundary: cheap enough to sit in the event
        // loop because 65535 of 65536 iterations only test a counter,
        // and a no-deadline run additionally pays just a TLS load
        // (sim/deadline.hh). Expiry unwinds before the run finalizes,
        // so an aborted run can never publish a partial report.
        if ((guard & 0xFFFF) == 0)
            hpim::sim::checkDeadline("simulate");
    }

    for (const WorkloadState &wl : _workloads) {
        panic_if(wl.completedSteps != wl.spec.steps,
                 "workload '", wl.spec.graph->name(),
                 "' deadlocked: ", wl.completedSteps, "/",
                 wl.spec.steps, " steps done");
    }

    // ---- Finalize the report.
    _report.makespanSec = nowSec();
    _report.stepSec =
        _report.makespanSec / _report.stepsSimulated;

    double accum = _op_accum + _dm_accum + _sync_accum;
    if (accum > 0.0) {
        _report.opSec = _report.stepSec * _op_accum / accum;
        _report.dataMovementSec = _report.stepSec * _dm_accum / accum;
        _report.syncSec = _report.stepSec * _sync_accum / accum;
    } else {
        _report.opSec = _report.stepSec;
    }

    if (_config.hasFixedPim && _report.makespanSec > 0.0) {
        _report.fixedUtilization =
            _report.fixedUnitSeconds
            / (_config.fixed.totalUnits * _report.makespanSec);
    }

    // ---- Energy.
    double makespan = _report.makespanSec;
    double cpu_busy = std::min(_report.cpuBusySec, makespan);
    double host_floor = _config.hostCoordinationFloor * makespan;
    double host_active = std::max(cpu_busy, host_floor);
    _report.cpuEnergyJ =
        host_active * _config.cpu.dynamicPowerW
        + (makespan - host_active) * _config.cpu.idlePowerW;
    if (_config.hasProgrPim) {
        _report.progrEnergyJ =
            _report.progrBusySec * _config.progr.powerW();
    }
    if (_config.hasFixedPim) {
        _report.fixedEnergyJ =
            _report.fixedUnitSeconds * _config.fixed.unitPowerW()
            + _config.fixed.poolStaticPowerW * makespan;
    }
    _report.dramEnergyJ =
        _report.linkBytes
            * (_config.dramEnergy.readPerBytePj
               + _config.dramEnergy.linkPerBytePj)
            * 1e-12
        + _report.internalBytes * _config.dramEnergy.readPerBytePj
              * 1e-12
        + _config.stackBackgroundW * makespan;
    _report.totalEnergyJ = _report.cpuEnergyJ + _report.progrEnergyJ
                           + _report.fixedEnergyJ + _report.dramEnergyJ;
    _report.energyPerStepJ =
        _report.totalEnergyJ / _report.stepsSimulated;
    _report.averagePowerW =
        makespan > 0.0 ? _report.totalEnergyJ / makespan : 0.0;
    _report.edp = _report.energyPerStepJ * _report.stepSec;
    return _report;
}

} // namespace hpim::rt
