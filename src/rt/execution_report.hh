/**
 * @file
 * Result of simulating a training run on one system configuration.
 *
 * Provides the paper's reporting quantities: the Fig. 8 time breakdown
 * (operation / data movement / synchronization), Fig. 9 dynamic
 * energy, Fig. 15 fixed-PIM utilization, and Fig. 17 power / EDP.
 */

#ifndef HPIM_RT_EXECUTION_REPORT_HH
#define HPIM_RT_EXECUTION_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace hpim::rt {

/** Devices an operation may be placed on. */
enum class PlacedOn
{
    Cpu,
    FixedPool,
    ProgrPim,
    ProgrRecursive,  ///< programmable PIM + fixed pool via RC
    FixedHostDriven, ///< fixed pool fed region-by-region by the host
};

/** @return printable placement name. */
std::string placedOnName(PlacedOn placement);

/**
 * Inverse of placedOnName, for report parsers.
 * @return true and set @p out when @p name is a known placement.
 */
bool placedOnFromName(const std::string &name, PlacedOn &out);

/** Simulation outcome for one configuration x workload. */
struct ExecutionReport
{
    std::string configName;
    std::string workloadName;
    std::uint32_t stepsSimulated = 0;

    // ---- Time.
    double makespanSec = 0.0; ///< all simulated steps
    double stepSec = 0.0;     ///< makespan / steps

    /** Fig. 8 stacked components; sum to stepSec. */
    double opSec = 0.0;
    double dataMovementSec = 0.0;
    double syncSec = 0.0;

    // ---- Device occupancy.
    double cpuBusySec = 0.0;
    double progrBusySec = 0.0;
    double fixedUnitSeconds = 0.0; ///< integral of busy units
    double fixedUtilization = 0.0; ///< unitSeconds/(units x makespan)

    // ---- Launch/sync counters.
    std::uint64_t hostLaunches = 0;
    std::uint64_t recursiveLaunches = 0;

    // ---- Traffic.
    double linkBytes = 0.0;     ///< off-stack (host) traffic
    double internalBytes = 0.0; ///< in-stack (PIM) traffic

    // ---- Energy (full system, dynamic; paper Fig. 9 / 17).
    double cpuEnergyJ = 0.0;
    double progrEnergyJ = 0.0;
    double fixedEnergyJ = 0.0;
    double dramEnergyJ = 0.0;
    double totalEnergyJ = 0.0;
    double energyPerStepJ = 0.0;
    double averagePowerW = 0.0;
    /** Energy-delay product per step (J x s). */
    double edp = 0.0;

    // ---- Placement census (where each op finally *completed*;
    // faulted attempts are not counted).
    std::map<PlacedOn, std::uint64_t> opsByPlacement;

    // ---- Resilience (all zero when fault injection is off).
    /** Offload attempts whose result failed verification. */
    std::uint64_t transientFaults = 0;
    /** Programmable-PIM kernels reclaimed by the watchdog timeout. */
    std::uint64_t kernelStalls = 0;
    /** Re-executions scheduled after a fault, stall or eviction. */
    std::uint64_t retries = 0;
    /** Rung drops on the degradation ladder (fixed-function ->
     *  programmable PIM -> CPU) after exhausted attempts. */
    std::uint64_t opsDegraded = 0;
    /** In-flight pool phases evicted because every bank failed. */
    std::uint64_t opsEvicted = 0;
    /** Total exponential-backoff delay injected before retries. */
    double retryBackoffSec = 0.0;
    /** Banks permanently retired during the run. */
    std::uint32_t banksFailed = 0;
    /** Fixed-pool units permanently lost with those banks. */
    std::uint32_t unitsLost = 0;
    /** Thermal-throttle windows entered. */
    std::uint64_t throttleEvents = 0;

    /** Fixed-pool capacity after one health event. */
    struct CapacitySample
    {
        double timeSec = 0.0;
        std::uint32_t units = 0;
    };
    /** Allocatable fixed-pool units over time: one sample at t=0 and
     *  one after every bank failure / throttle transition. Empty when
     *  fault injection is off. */
    std::vector<CapacitySample> capacityTimeline;

    // ---- Observability (schema v2).
    /** Snapshot of the obs::MetricsRegistry taken by single-run tools
     *  (hpim_cli). Empty for sweep-produced reports: a global registry
     *  accumulating across parallel points would not be deterministic,
     *  so SweepRunner never captures it. */
    std::vector<obs::MetricSample> metrics;
};

} // namespace hpim::rt

#endif // HPIM_RT_EXECUTION_REPORT_HH
