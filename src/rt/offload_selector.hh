/**
 * @file
 * Offload-candidate selection (paper SectionIII-C, step 1).
 *
 * The runtime sorts op types into two descending lists -- by execution
 * time and by main-memory accesses -- assigns each type its index in
 * each list, sums the two indexes into a global index, sorts by the
 * global index ascending (smaller = both hot and memory-intensive),
 * and picks top entries until they cover x% (default 90) of one
 * step's execution time.
 */

#ifndef HPIM_RT_OFFLOAD_SELECTOR_HH
#define HPIM_RT_OFFLOAD_SELECTOR_HH

#include <set>
#include <vector>

#include "rt/profiler.hh"

namespace hpim::rt {

/** A ranked candidate entry (exposed for tests / reporting). */
struct RankedType
{
    hpim::nn::OpType type;
    std::size_t timeIndex = 0;   ///< rank in the by-time list
    std::size_t accessIndex = 0; ///< rank in the by-accesses list
    std::size_t globalIndex = 0; ///< timeIndex + accessIndex
    double timePct = 0.0;
};

/** Result of the selection. */
struct OffloadSelection
{
    std::vector<RankedType> ranking;     ///< ascending global index
    std::set<hpim::nn::OpType> candidates;
    double coveredTimePct = 0.0;

    bool
    isCandidate(hpim::nn::OpType type) const
    {
        return candidates.count(type) != 0;
    }
};

/**
 * Run the dual-index selection.
 *
 * @param report step-1 profile
 * @param coverage_pct target coverage of step time (paper: x = 90)
 */
OffloadSelection selectOffloadCandidates(const ProfileReport &report,
                                         double coverage_pct = 90.0);

} // namespace hpim::rt

#endif // HPIM_RT_OFFLOAD_SELECTOR_HH
