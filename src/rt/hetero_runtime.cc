#include "rt/hetero_runtime.hh"

#include <algorithm>
#include <memory>

#include "sim/deadline.hh"
#include "sim/hash.hh"
#include "sim/memo_cache.hh"

namespace hpim::rt {

using hpim::nn::Graph;

namespace {

/** The memoizable part of prepare(): profile + candidate selection. */
struct Prepared
{
    ProfileReport profile;
    OffloadSelection selection;
};

/**
 * Exact digest of every CpuParams field the profiler consumes -- the
 * "everything but the graph" half of the profile keys below.
 */
std::uint64_t
cpuKey(const hpim::cpu::CpuParams &cpu)
{
    using hpim::sim::hashDouble;
    using hpim::sim::hashU64;
    std::uint64_t h = hashDouble(cpu.frequencyHz);
    h = hashU64(static_cast<std::uint64_t>(cpu.cores), h);
    h = hashDouble(cpu.flopsPerSec, h);
    h = hashDouble(cpu.specialsPerSec, h);
    h = hashDouble(cpu.memBandwidth, h);
    h = hashDouble(cpu.opOverheadSec, h);
    h = hashDouble(cpu.dynamicPowerW, h);
    h = hashDouble(cpu.idlePowerW, h);
    return h;
}

} // namespace

/**
 * Three memo tiers, coarse to fine, each exact-match on all of its
 * inputs (delta-evaluation, docs/PERFORMANCE.md):
 *
 *  1. "rt.prepared"   (graph, cpu, coverage) -> profile + selection
 *  2. "rt.profile"    (graph, cpu)           -> profile
 *  3. "rt.profile.op" (op signature, cpu)    -> per-op {time, accesses}
 *
 * A sweep point that changes only coverage hits tier 2 and re-derives
 * the (deterministic, cheap) selection; a point that changes the graph
 * or sweeps an orthogonal knob still reuses every op it shares with
 * any earlier point through tier 3. Every tier returns exactly what
 * an identical computation produced, so all cache modes stay
 * byte-identical.
 */
TrainingResult
HeteroRuntime::prepare(const Graph &graph) const
{
    using hpim::sim::hashDouble;
    using hpim::sim::hashU64;

    TrainingResult result;
    if (!_config.dynamicScheduling)
        return result;

    auto &cache = hpim::sim::MemoCache::instance();
    std::uint64_t cpu_key = cpuKey(_config.cpu);
    std::uint64_t profile_key = hashU64(cpu_key,
                                        hashU64(graph.signature()));
    std::uint64_t key = hashDouble(_config.offloadCoveragePct,
                                   profile_key);
    if (auto hit = cache.find<Prepared>(key, "rt.prepared")) {
        result.profile = hit->profile;
        result.selection = hit->selection;
        return result;
    }

    std::shared_ptr<const ProfileReport> profile =
        cache.find<ProfileReport>(profile_key, "rt.profile");
    if (profile == nullptr) {
        // Memo hits above are free; only an actual profile pass is
        // worth a deadline phase boundary (docs/SERVING.md).
        hpim::sim::checkDeadline("profile");
        Profiler profiler{hpim::cpu::CpuModel(_config.cpu)};
        profile = std::make_shared<const ProfileReport>(
            profiler.profileDelta(graph, cpu_key));
        cache.put<ProfileReport>(profile_key, "rt.profile", profile);
    }
    result.profile = *profile;
    result.selection = selectOffloadCandidates(
        result.profile, _config.offloadCoveragePct);
    auto made = std::make_shared<const Prepared>(
        Prepared{result.profile, result.selection});
    cache.put<Prepared>(key, "rt.prepared", std::move(made));
    return result;
}

TrainingResult
HeteroRuntime::train(const Graph &graph, std::uint32_t steps) const
{
    TrainingResult result = prepare(graph);
    hpim::sim::checkDeadline("execute");
    Executor executor(_config, _config.dynamicScheduling
                                   ? &result.selection
                                   : nullptr);
    result.execution =
        executor.run(graph, steps == 0 ? _config.steps : steps);
    return result;
}

std::uint32_t
HeteroRuntime::guestSteps(const Graph &primary, const Graph &guest,
                          std::uint32_t steps) const
{
    std::uint32_t n = steps == 0 ? _config.steps : steps;
    // Balance using quick one-step simulations: the primary at its
    // PIM-accelerated speed, the guest at its CPU/progr-PIM speed.
    TrainingResult primary_probe = prepare(primary);
    Executor first(_config, _config.dynamicScheduling
                                ? &primary_probe.selection
                                : nullptr);
    double primary_est = first.run(primary, 1).stepSec;

    Executor second(_config, nullptr);
    WorkloadSpec guest_probe;
    guest_probe.graph = &guest;
    guest_probe.steps = 1;
    guest_probe.pimManaged = false;
    double guest_est = second.run({guest_probe}).stepSec;

    if (guest_est <= 0.0)
        return n;
    double ratio = primary_est / guest_est;
    // Bound total simulated guest ops to keep the simulation cheap.
    double op_cap = 250000.0
                    / (static_cast<double>(guest.size())
                       * static_cast<double>(n));
    ratio = std::min(std::max(ratio, 1.0), std::max(op_cap, 1.0));
    return static_cast<std::uint32_t>(ratio * n + 0.5);
}

TrainingResult
HeteroRuntime::corun(const Graph &primary, const Graph &guest,
                     std::uint32_t steps) const
{
    TrainingResult result = prepare(primary);
    Executor executor(_config, _config.dynamicScheduling
                                   ? &result.selection
                                   : nullptr);
    std::uint32_t n = steps == 0 ? _config.steps : steps;

    WorkloadSpec primary_spec;
    primary_spec.graph = &primary;
    primary_spec.steps = n;
    primary_spec.pimManaged = true;

    WorkloadSpec guest_spec;
    guest_spec.graph = &guest;
    guest_spec.steps = guestSteps(primary, guest, steps);
    guest_spec.pimManaged = false;

    result.execution = executor.run({primary_spec, guest_spec});
    return result;
}

TrainingResult
HeteroRuntime::corunSequential(const Graph &primary, const Graph &guest,
                               std::uint32_t steps) const
{
    std::uint32_t n = steps == 0 ? _config.steps : steps;

    TrainingResult result = prepare(primary);
    Executor first(_config, _config.dynamicScheduling
                                ? &result.selection
                                : nullptr);
    ExecutionReport a = first.run(primary, n);

    // The guest runs after the primary finishes, still restricted to
    // the CPU and programmable PIM (it is not a PIM-managed model).
    Executor second(_config, nullptr);
    WorkloadSpec guest_spec;
    guest_spec.graph = &guest;
    guest_spec.steps = guestSteps(primary, guest, steps);
    guest_spec.pimManaged = false;
    ExecutionReport b = second.run({guest_spec});

    result.execution = a;
    result.execution.workloadName =
        primary.name() + "+" + guest.name() + " (sequential)";
    result.execution.makespanSec += b.makespanSec;
    result.execution.stepSec += b.stepSec;
    result.execution.opSec += b.opSec;
    result.execution.dataMovementSec += b.dataMovementSec;
    result.execution.syncSec += b.syncSec;
    result.execution.cpuBusySec += b.cpuBusySec;
    result.execution.progrBusySec += b.progrBusySec;
    result.execution.fixedUnitSeconds += b.fixedUnitSeconds;
    result.execution.hostLaunches += b.hostLaunches;
    result.execution.recursiveLaunches += b.recursiveLaunches;
    result.execution.linkBytes += b.linkBytes;
    result.execution.internalBytes += b.internalBytes;
    result.execution.totalEnergyJ += b.totalEnergyJ;
    result.execution.energyPerStepJ += b.energyPerStepJ;
    result.execution.edp =
        result.execution.energyPerStepJ * result.execution.stepSec;
    if (result.execution.makespanSec > 0.0) {
        result.execution.averagePowerW =
            result.execution.totalEnergyJ
            / result.execution.makespanSec;
        result.execution.fixedUtilization =
            result.execution.fixedUnitSeconds
            / (_config.fixed.totalUnits
               * result.execution.makespanSec);
    }
    return result;
}

} // namespace hpim::rt
