/**
 * @file
 * Step-1 profiler (paper SectionIII-C, step 1).
 *
 * Executes every operation of one training step on the host CPU, one
 * by one (inter-op parallelism disabled for accuracy, SectionII-A),
 * collecting execution time and main-memory access counts -- the two
 * metrics the offload selector consumes. Also produces the per-type
 * aggregation printed in paper Table I.
 */

#ifndef HPIM_RT_PROFILER_HH
#define HPIM_RT_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu_model.hh"
#include "nn/graph.hh"

namespace hpim::rt {

/** Profile of one operation instance. */
struct OpProfile
{
    hpim::nn::OpId id = hpim::nn::invalidOp;
    hpim::nn::OpType type = hpim::nn::OpType::MatMul;
    std::string label;
    double timeSec = 0.0;
    double mainMemoryAccesses = 0.0;
};

/** Per-op-type aggregation (paper Table I rows). */
struct TypeProfile
{
    hpim::nn::OpType type = hpim::nn::OpType::MatMul;
    double timeSec = 0.0;
    double timePct = 0.0;
    double accesses = 0.0;
    double accessPct = 0.0;
    std::uint32_t invocations = 0;
};

/** Complete profiling result for one step. */
struct ProfileReport
{
    std::vector<OpProfile> ops;        ///< per instance, graph order
    std::vector<TypeProfile> byType;   ///< aggregated, arbitrary order
    double totalTimeSec = 0.0;
    double totalAccesses = 0.0;

    /** Types sorted by descending time. */
    std::vector<TypeProfile> topByTime() const;
    /** Types sorted by descending main-memory accesses. */
    std::vector<TypeProfile> topByAccesses() const;
};

/** The profiler. */
class Profiler
{
  public:
    explicit Profiler(const hpim::cpu::CpuModel &cpu) : _cpu(cpu) {}

    /** Profile one training step of @p graph on the CPU. */
    ProfileReport profile(const hpim::nn::Graph &graph) const;

    /**
     * Like profile(), but reuses per-op samples through the
     * sim::MemoCache partial tier (delta-evaluation,
     * docs/PERFORMANCE.md): each op's {time, accesses} pair is keyed
     * on its position-independent Graph::opSignature() plus
     * @p cpu_key, the caller's exact digest of every CpuParams field.
     * A partial hit returns the bit-identical pair an identical
     * (cost, CPU) computation produced, so the report matches
     * profile() byte for byte; only the work is saved.
     */
    ProfileReport profileDelta(const hpim::nn::Graph &graph,
                               std::uint64_t cpu_key) const;

  private:
    ProfileReport profileImpl(const hpim::nn::Graph &graph,
                              const std::uint64_t *cpu_key) const;

    hpim::cpu::CpuModel _cpu;
};

} // namespace hpim::rt

#endif // HPIM_RT_PROFILER_HH
