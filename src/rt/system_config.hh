/**
 * @file
 * Whole-system configuration for one simulated machine.
 *
 * Describes which compute resources exist (host CPU, fixed-function
 * PIM pool, programmable PIM), the runtime feature flags (dynamic
 * scheduling, recursive kernels RC, operation pipeline OP), and the
 * memory-system bandwidth/energy environment. The five evaluated
 * configurations of paper SectionVI are presets over this struct
 * (see hpim::baseline::presets).
 */

#ifndef HPIM_RT_SYSTEM_CONFIG_HH
#define HPIM_RT_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cpu/cpu_model.hh"
#include "mem/dram_energy.hh"
#include "pim/fixed_pim.hh"
#include "pim/progr_pim.hh"
#include "sim/fault_model.hh"

namespace hpim::rt {

/** Complete system description. */
struct SystemConfig
{
    std::string name = "unnamed";

    // ---- Compute resources.
    hpim::cpu::CpuParams cpu;
    bool hasFixedPim = false;
    hpim::pim::FixedPimParams fixed;
    bool hasProgrPim = false;
    hpim::pim::ProgrPimParams progr;
    /** Number of independent programmable PIMs (Progr-PIM-only
     *  configuration instantiates "as many as needed"; area-limited). */
    std::uint32_t progrPimCount = 1;

    // ---- Runtime features (paper SectionIII-C / VI-E).
    bool dynamicScheduling = false; ///< profiling-driven scheduling
    bool recursiveKernels = false;  ///< RC
    bool operationPipeline = false; ///< OP
    /** Training steps allowed in flight when OP is enabled. */
    std::uint32_t pipelineDepth = 2;
    /** Offload candidates must cover this % of step time (x = 90). */
    double offloadCoveragePct = 90.0;
    /**
     * Without RC, a complex op's extracted mul/add regions are fed to
     * the pool by the *host*, one region batch at a time; this caps
     * how many pool units such an op can keep busy (the root of the
     * poor no-RC utilization in paper Fig. 15). At least one whole
     * reduction tree is always granted.
     */
    std::uint32_t hostDrivenMaxUnits = 96;
    /** Host kernel-launches charged per host-driven complex op. */
    std::uint32_t hostDrivenLaunches = 48;
    /**
     * Principle 2 guard: an offload candidate falls back to the CPU
     * while its PIM is busy only when its CPU execution time is below
     * this bound -- moving a multi-second convolution to a 30x slower
     * device would defeat the schedule.
     */
    double cpuFallbackThresholdSec = 2e-3;

    // ---- Energy environment.
    /**
     * Fraction of the makespan the host is charged as busy even when
     * no kernel runs on it (runtime coordination / polling). Hetero
     * PIM keeps this low because the programmable PIM drives
     * synchronization (paper SectionIII-B "Memory model").
     */
    double hostCoordinationFloor = 0.0;

    // ---- Memory system.
    /** In-stack bandwidth available to PIMs, bytes/s. */
    double internalBandwidth = 320e9;
    /** Off-stack link bandwidth available to the host, bytes/s. */
    double externalBandwidth = 120e9;
    /** Fraction of internal bandwidth PIM compute may consume. */
    double pimBandwidthShare = 0.85;
    /**
     * Flops the fixed-function units extract per DRAM byte thanks to
     * in-bank operand buffering (paper SectionIV-D "buffering
     * mechanisms"). Caps pool throughput at
     * internalBandwidth x share x reuse -- the reason frequency
     * scaling saturates (Fig. 11) while the DRAM arrays stay at their
     * native speed.
     */
    double fixedOperandReuse = 45.0;
    hpim::mem::DramEnergyParams dramEnergy =
        hpim::mem::DramEnergyParams::hmc();
    /** Stack background power (refresh, SerDes idle), watts. */
    double stackBackgroundW = 1.8;

    // ---- Simulation control.
    /** Training steps simulated back to back. */
    std::uint32_t steps = 4;

    // ---- Resilience.
    /** Fault injection (transient faults, kernel stalls, bank kills,
     *  thermal throttling); disabled by default and strictly zero-cost
     *  when off -- see docs/RESILIENCE.md. */
    hpim::sim::FaultConfig faults;

    /** Scale PIM clocks (paper Fig. 11/17). Returns a copy. */
    SystemConfig
    withFrequencyScale(double factor) const
    {
        SystemConfig c = *this;
        c.fixed.frequencyScale = factor;
        c.progr.frequencyScale = factor;
        return c;
    }
};

} // namespace hpim::rt

#endif // HPIM_RT_SYSTEM_CONFIG_HH
