/**
 * @file
 * Logic-die area/power modeling (McPAT/DesignCompiler substitute).
 *
 * The paper performs design-space exploration of the 3D DRAM logic die
 * with McPAT + HotSpot and concludes 444 fixed-function units fit next
 * to one ARM core (SectionIV-D). This module reproduces that budget
 * arithmetic: the die area not reserved for vault controllers, link
 * PHYs and buffers is split between programmable cores and fixed
 * units; Fig. 12's 1P/4P/16P variants trade cores for units at
 * constant area.
 */

#ifndef HPIM_MODEL_AREA_POWER_HH
#define HPIM_MODEL_AREA_POWER_HH

#include <cstdint>

namespace hpim::model {

/** Logic-die budget (HMC-class die, 10 nm logic). */
struct LogicDieBudget
{
    double dieAreaMm2 = 68.0;
    /** Fraction consumed by vault controllers, SerDes, buffers. */
    double infrastructureFraction = 0.55;
    /** Power ceiling for compute logic on the die, watts. */
    double powerBudgetW = 10.0;
    /** Junction temperature ceiling, Celsius. */
    double tempLimitC = 85.0;

    /** Area available for PIM compute, mm^2. */
    double
    computeAreaMm2() const
    {
        return dieAreaMm2 * (1.0 - infrastructureFraction);
    }
};

/** Per-unit implementation costs. */
struct UnitCosts
{
    /** FP32 multiplier+adder pair incl. buffering/routing, mm^2. */
    double fixedUnitAreaMm2 = 0.0683;
    /** Active power of one fixed unit at base clock, watts. */
    double fixedUnitPowerW = 0.015;
    /** One ARM core (w/ caches), mm^2 (Cortex-A9 class at 10 nm). */
    double armCoreAreaMm2 = 0.27;
    /** Active power of one ARM core, watts. */
    double armCorePowerW = 0.5;
};

/** Outcome of a design point. */
struct DesignPoint
{
    std::uint32_t armCores = 0;
    std::uint32_t fixedUnits = 0;
    double areaUsedMm2 = 0.0;
    double peakPowerW = 0.0;
    bool areaFeasible = false;
    bool powerFeasible = false;

    bool feasible() const { return areaFeasible && powerFeasible; }
};

/**
 * @return the largest fixed-unit count that fits beside @p arm_cores
 * programmable cores under the area budget (power checked, reported).
 */
DesignPoint exploreDesign(const LogicDieBudget &budget,
                          const UnitCosts &costs,
                          std::uint32_t arm_cores);

} // namespace hpim::model

#endif // HPIM_MODEL_AREA_POWER_HH
