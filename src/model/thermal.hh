/**
 * @file
 * Steady-state thermal model of the logic die (HotSpot substitute).
 *
 * The bank grid is a 2D RC network solved for steady state with
 * Gauss-Seidel: each bank couples laterally to its neighbors and
 * vertically to the heat sink. Edge/corner banks expose more sink
 * conductance -- the physical basis for the paper's placement policy
 * (SectionIV-D: more units on edge and corner banks).
 */

#ifndef HPIM_MODEL_THERMAL_HH
#define HPIM_MODEL_THERMAL_HH

#include <vector>

#include "pim/placement.hh"

namespace hpim::model {

/** Thermal network parameters. */
struct ThermalParams
{
    double ambientC = 45.0;       ///< in-package ambient
    double sinkConductance = 0.8; ///< W/K per interior bank to sink
    /** Extra sink conductance per exposed die edge, W/K. */
    double edgeConductance = 0.35;
    double lateralConductance = 0.5; ///< W/K between adjacent banks
    /** Background power per bank (DRAM + controller share), watts. */
    double backgroundPerBankW = 0.08;
    int maxIterations = 20000;
    double toleranceC = 1e-6;
};

/** Solved temperature field. */
struct ThermalResult
{
    std::vector<double> tempC; ///< per bank, row-major
    double maxC = 0.0;
    double minC = 0.0;
    int iterations = 0;
    bool converged = false;
};

/**
 * Solve the steady-state temperatures for a unit placement.
 *
 * @param grid bank grid
 * @param placement units per bank
 * @param unit_power_w active power per unit, watts
 * @param params thermal network parameters
 */
ThermalResult solveThermal(const hpim::pim::BankGrid &grid,
                           const hpim::pim::Placement &placement,
                           double unit_power_w,
                           const ThermalParams &params = ThermalParams{});

} // namespace hpim::model

#endif // HPIM_MODEL_THERMAL_HH
