#include "model/area_power.hh"

#include <cmath>

#include "sim/logging.hh"

namespace hpim::model {

DesignPoint
exploreDesign(const LogicDieBudget &budget, const UnitCosts &costs,
              std::uint32_t arm_cores)
{
    DesignPoint point;
    point.armCores = arm_cores;

    double core_area = arm_cores * costs.armCoreAreaMm2;
    double avail = budget.computeAreaMm2() - core_area;
    if (avail < 0.0) {
        point.fixedUnits = 0;
        point.areaUsedMm2 = core_area;
        point.areaFeasible = false;
        point.powerFeasible = false;
        return point;
    }

    point.fixedUnits = static_cast<std::uint32_t>(
        std::floor(avail / costs.fixedUnitAreaMm2));
    point.areaUsedMm2 =
        core_area + point.fixedUnits * costs.fixedUnitAreaMm2;
    point.areaFeasible = point.areaUsedMm2 <= budget.computeAreaMm2()
                         + 1e-9;
    point.peakPowerW = arm_cores * costs.armCorePowerW
                       + point.fixedUnits * costs.fixedUnitPowerW;
    point.powerFeasible = point.peakPowerW <= budget.powerBudgetW;
    return point;
}

} // namespace hpim::model
