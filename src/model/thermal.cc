#include "model/thermal.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hpim::model {

using hpim::pim::BankGrid;
using hpim::pim::Placement;

ThermalResult
solveThermal(const BankGrid &grid, const Placement &placement,
             double unit_power_w, const ThermalParams &params)
{
    const std::uint32_t n = grid.count();
    fatal_if(placement.unitsPerBank.size() != n,
             "placement has ", placement.unitsPerBank.size(),
             " banks; grid has ", n);

    std::vector<double> power(n);
    std::vector<double> g_sink(n);
    for (std::uint32_t r = 0; r < grid.rows; ++r) {
        for (std::uint32_t c = 0; c < grid.cols; ++c) {
            std::uint32_t i = r * grid.cols + c;
            power[i] = params.backgroundPerBankW
                       + placement.unitsPerBank[i] * unit_power_w;
            g_sink[i] = params.sinkConductance
                        + params.edgeConductance
                              * grid.exposedEdges(r, c);
        }
    }

    ThermalResult result;
    result.tempC.assign(n, params.ambientC);

    auto idx = [&grid](std::uint32_t r, std::uint32_t c) {
        return r * grid.cols + c;
    };

    // Gauss-Seidel: T_i = (P_i + g_sink T_amb + g_lat sum T_j) /
    //                    (g_sink + g_lat * degree)
    double delta = 0.0;
    int iter = 0;
    for (; iter < params.maxIterations; ++iter) {
        delta = 0.0;
        for (std::uint32_t r = 0; r < grid.rows; ++r) {
            for (std::uint32_t c = 0; c < grid.cols; ++c) {
                std::uint32_t i = idx(r, c);
                double num = power[i] + g_sink[i] * params.ambientC;
                double den = g_sink[i];
                auto couple = [&](std::uint32_t j) {
                    num += params.lateralConductance * result.tempC[j];
                    den += params.lateralConductance;
                };
                if (r > 0) couple(idx(r - 1, c));
                if (r + 1 < grid.rows) couple(idx(r + 1, c));
                if (c > 0) couple(idx(r, c - 1));
                if (c + 1 < grid.cols) couple(idx(r, c + 1));
                double t = num / den;
                delta = std::max(delta, std::abs(t - result.tempC[i]));
                result.tempC[i] = t;
            }
        }
        if (delta < params.toleranceC) {
            result.converged = true;
            break;
        }
    }

    result.iterations = iter;
    result.maxC = *std::max_element(result.tempC.begin(),
                                    result.tempC.end());
    result.minC = *std::min_element(result.tempC.begin(),
                                    result.tempC.end());
    return result;
}

} // namespace hpim::model
