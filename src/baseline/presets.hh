/**
 * @file
 * The evaluated system configurations (paper SectionVI).
 *
 *  - CPU          : all ops on the host CPU, DDR4 main memory.
 *  - GPU          : GTX-1080-Ti-class accelerator (analytic model).
 *  - Progr PIM    : programmable cores only, "as many as needed"
 *                   within the logic-die area, no runtime scheduling.
 *  - Fixed PIM    : fixed-function pool; everything else on the CPU,
 *                   no runtime scheduling.
 *  - Hetero PIM   : the proposed design w/ dynamic scheduling, RC, OP.
 *  - Neurocube    : prior-work comparator (programmable PE array in
 *                   3D DRAM, no fixed-function units, no scheduling).
 *
 * All calibration constants live here with their rationale; see
 * DESIGN.md SectionV and EXPERIMENTS.md for the paper-vs-measured
 * comparison they produce.
 */

#ifndef HPIM_BASELINE_PRESETS_HH
#define HPIM_BASELINE_PRESETS_HH

#include <string>

#include "gpu/gpu_model.hh"
#include "nn/models.hh"
#include "rt/execution_report.hh"
#include "rt/system_config.hh"

namespace hpim::baseline {

/** The comparison systems. */
enum class SystemKind
{
    CpuOnly,
    Gpu,
    ProgrPimOnly,
    FixedPimOnly,
    HeteroPim,
    Neurocube,
};

/** @return printable configuration name as used in the figures. */
std::string systemName(SystemKind kind);

/**
 * Build the SystemConfig for a (non-GPU) configuration.
 *
 * @param kind which system
 * @param freq_scale PIM frequency multiplier (Fig. 11/17)
 * @param progr_pims programmable PIM count for Hetero (Fig. 12)
 */
hpim::rt::SystemConfig makeConfig(SystemKind kind,
                                  double freq_scale = 1.0,
                                  std::uint32_t progr_pims = 1);

/**
 * Hetero PIM with explicit runtime-feature flags (Figs. 13-15).
 */
hpim::rt::SystemConfig makeHetero(bool dynamic_scheduling,
                                  bool recursive_kernels,
                                  bool operation_pipeline,
                                  double freq_scale = 1.0,
                                  std::uint32_t progr_pims = 1);

/** GPU model parameters used by the GPU configuration. */
hpim::gpu::GpuParams gpuParams();

/** Paper SectionV-D average GPU utilization per model. */
double gpuUtilization(hpim::nn::ModelId model);

/** Host->GPU minibatch bytes per training step. */
double gpuInputBytes(hpim::nn::ModelId model);

/**
 * Run @p model on @p kind for @p steps training steps and produce a
 * uniform report (GPU runs through the analytic GpuModel; all other
 * systems through the heterogeneous executor).
 *
 * @param batch minibatch size; 0 uses the model's paper default. The
 *        GPU input-transfer volume scales with the ratio to that
 *        default.
 */
hpim::rt::ExecutionReport runSystem(SystemKind kind,
                                    hpim::nn::ModelId model,
                                    std::uint32_t steps = 4,
                                    double freq_scale = 1.0,
                                    std::uint32_t progr_pims = 1,
                                    int batch = 0);

/**
 * Run a user-supplied graph (nn::Builder / nn::GraphIo) on @p kind.
 *
 * Same execution path as runSystem's non-GPU tail, so a user graph
 * that reproduces a built-in model's op stream reports identical
 * numbers. The GPU system is fatal here: its analytic model needs
 * per-model calibration (utilization, input volume) that a user
 * graph does not carry.
 */
hpim::rt::ExecutionReport runSystemGraph(SystemKind kind,
                                         const hpim::nn::Graph &graph,
                                         std::uint32_t steps = 4,
                                         double freq_scale = 1.0,
                                         std::uint32_t progr_pims = 1);

} // namespace hpim::baseline

#endif // HPIM_BASELINE_PRESETS_HH
