#include "baseline/presets.hh"

#include <memory>

#include "nn/tensor_shape.hh"
#include "rt/hetero_runtime.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::baseline {

using hpim::nn::ModelId;
using hpim::rt::SystemConfig;

std::string
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::CpuOnly:      return "CPU";
      case SystemKind::Gpu:          return "GPU";
      case SystemKind::ProgrPimOnly: return "Progr PIM";
      case SystemKind::FixedPimOnly: return "Fixed PIM";
      case SystemKind::HeteroPim:    return "Hetero PIM";
      case SystemKind::Neurocube:    return "Neurocube";
    }
    panic("unknown system kind");
}

namespace {

/** Common stack-attached host environment for PIM systems. */
void
applyStackHost(SystemConfig &config)
{
    // The host reaches the cube over serial links (4 x 30 GB/s).
    config.externalBandwidth = 120e9;
    config.cpu.memBandwidth = config.externalBandwidth;
    config.internalBandwidth = 320e9;
    config.dramEnergy = hpim::mem::DramEnergyParams::hmc();
}

} // namespace

SystemConfig
makeHetero(bool dynamic_scheduling, bool recursive_kernels,
           bool operation_pipeline, double freq_scale,
           std::uint32_t progr_pims)
{
    SystemConfig config;
    config.name = "Hetero PIM";
    applyStackHost(config);
    config.hasFixedPim = true;
    config.hasProgrPim = true;
    config.progrPimCount = progr_pims;
    // Fig. 12: cores trade against fixed units at constant die area;
    // one ARM core costs ~3.95 fixed units of area (model/area_power).
    if (progr_pims > 1) {
        std::uint32_t cores = progr_pims * config.progr.cores;
        std::uint32_t base_cores = config.progr.cores;
        std::uint32_t lost =
            static_cast<std::uint32_t>((cores - base_cores) * 3.95
                                       / 4.0);
        config.fixed.totalUnits =
            config.fixed.totalUnits > lost
                ? config.fixed.totalUnits - lost
                : 16;
    }
    config.dynamicScheduling = dynamic_scheduling;
    config.recursiveKernels = recursive_kernels;
    config.operationPipeline = operation_pipeline;
    config.fixed.frequencyScale = freq_scale;
    config.progr.frequencyScale = freq_scale;
    // The programmable PIM drives host-PIM synchronization, keeping
    // the host mostly idle (SectionIII-B memory model).
    config.hostCoordinationFloor = 0.12;
    return config;
}

SystemConfig
makeConfig(SystemKind kind, double freq_scale, std::uint32_t progr_pims)
{
    SystemConfig config;
    switch (kind) {
      case SystemKind::CpuOnly: {
        config.name = "CPU";
        // Host-only system: DDR4 DIMMs as in paper Table IV.
        config.cpu.memBandwidth = 50e9;
        config.externalBandwidth = 50e9;
        config.dramEnergy = hpim::mem::DramEnergyParams::ddr4();
        config.hostCoordinationFloor = 0.0;
        return config;
      }
      case SystemKind::ProgrPimOnly: {
        config.name = "Progr PIM";
        applyStackHost(config);
        config.hasProgrPim = true;
        config.progrPimCount = 1;
        // "As many ARM cores as needed": the whole compute area of
        // the logic die filled with cores (model/area_power: ~64).
        config.progr.cores = 64;
        // In-order cores sustain ~half their NEON peak on these
        // kernels; the host stays busy dispatching every op, which
        // is why this configuration's dynamic energy exceeds CPU's
        // (paper SectionVI-B).
        config.progr.flopsPerCore = 2.8e9;
        config.progr.specialsPerCore = 2.8e9;
        config.progr.corePowerW = 0.9;
        config.progr.frequencyScale = freq_scale;
        config.hostCoordinationFloor = 0.75;
        return config;
      }
      case SystemKind::FixedPimOnly: {
        config.name = "Fixed PIM";
        applyStackHost(config);
        config.hasFixedPim = true;
        config.fixed.frequencyScale = freq_scale;
        // Host drives every offload and synchronization.
        config.hostCoordinationFloor = 0.55;
        return config;
      }
      case SystemKind::HeteroPim:
        return makeHetero(true, true, true, freq_scale, progr_pims);
      case SystemKind::Neurocube: {
        config.name = "Neurocube";
        applyStackHost(config);
        config.hasProgrPim = true;
        config.progrPimCount = 1;
        // 16 vault-attached PE clusters (MAC arrays + local SRAM);
        // aggregate throughput calibrated to the published design.
        config.progr.cores = 16;
        config.progr.flopsPerCore = 28.0e9;
        config.progr.specialsPerCore = 4.0e9;
        config.progr.corePowerW = 2.0;
        config.progr.frequencyScale = freq_scale;
        config.hostCoordinationFloor = 0.5;
        return config;
      }
      case SystemKind::Gpu:
        fatal("the GPU system runs through GpuModel, not SystemConfig");
      default:
        panic("unknown system kind");
    }
}

hpim::gpu::GpuParams
gpuParams()
{
    return hpim::gpu::GpuParams{};
}

double
gpuUtilization(ModelId model)
{
    // Paper SectionV-D measured average utilizations.
    switch (model) {
      case ModelId::InceptionV3: return 0.62;
      case ModelId::ResNet50:    return 0.44;
      case ModelId::AlexNet:     return 0.30;
      case ModelId::Vgg19:       return 0.63;
      case ModelId::Dcgan:       return 0.28;
      case ModelId::Lstm:        return 0.35;
      case ModelId::Word2vec:    return 0.20;
    }
    panic("unknown model");
}

double
gpuInputBytes(ModelId model)
{
    using hpim::nn::TensorShape;
    int batch = hpim::nn::defaultBatchSize(model);
    switch (model) {
      case ModelId::Vgg19:
      case ModelId::ResNet50:
        return double(TensorShape{batch, 224, 224, 3}.bytes());
      case ModelId::AlexNet:
        return double(TensorShape{batch, 227, 227, 3}.bytes());
      case ModelId::InceptionV3:
        return double(TensorShape{batch, 299, 299, 3}.bytes());
      case ModelId::Dcgan:
        return double(TensorShape{batch, 28, 28, 1}.bytes());
      case ModelId::Lstm:
        return double(batch) * 35 * 4;  // token ids
      case ModelId::Word2vec:
        return double(batch) * (1 + 64) * 4;
    }
    panic("unknown model");
}

namespace {

/**
 * Model graphs are pure functions of (model, batch), and one sweep
 * point builds the same graph for every system kind it compares;
 * memoize the build (sim::MemoCache, exact-match keys).
 */
std::shared_ptr<const hpim::nn::Graph>
cachedModel(ModelId model, int batch)
{
    auto &cache = hpim::sim::MemoCache::instance();
    std::uint64_t key = hpim::sim::hashU64(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(batch)),
        hpim::sim::hashU64(static_cast<std::uint64_t>(model)));
    if (auto hit = cache.find<hpim::nn::Graph>(key, "nn.graph"))
        return hit;
    auto built = std::make_shared<const hpim::nn::Graph>(
        hpim::nn::buildModel(model, batch));
    cache.put<hpim::nn::Graph>(key, "nn.graph", built);
    return built;
}

} // namespace

hpim::rt::ExecutionReport
runSystem(SystemKind kind, ModelId model, std::uint32_t steps,
          double freq_scale, std::uint32_t progr_pims, int batch)
{
    std::shared_ptr<const hpim::nn::Graph> graph_ptr =
        cachedModel(model, batch);
    const hpim::nn::Graph &graph = *graph_ptr;

    if (kind == SystemKind::Gpu) {
        hpim::gpu::GpuModel gpu(gpuParams());
        double input_bytes = gpuInputBytes(model);
        if (batch > 0) {
            input_bytes *= double(batch)
                           / double(hpim::nn::defaultBatchSize(model));
        }
        auto step = gpu.runStep(graph, gpuUtilization(model),
                                input_bytes);
        hpim::rt::ExecutionReport report;
        report.configName = systemName(kind);
        report.workloadName = graph.name();
        report.stepsSimulated = steps;
        report.stepSec = step.totalSec();
        report.makespanSec = report.stepSec * steps;
        report.opSec = step.opSec;
        report.dataMovementSec = step.dataMovementSec;
        report.syncSec = step.syncSec;
        report.energyPerStepJ = step.energyJ;
        report.totalEnergyJ = step.energyJ * steps;
        report.averagePowerW = step.powerW;
        report.edp = report.energyPerStepJ * report.stepSec;
        return report;
    }

    hpim::rt::SystemConfig config =
        makeConfig(kind, freq_scale, progr_pims);
    config.steps = steps;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(graph).execution;
}

hpim::rt::ExecutionReport
runSystemGraph(SystemKind kind, const hpim::nn::Graph &graph,
               std::uint32_t steps, double freq_scale,
               std::uint32_t progr_pims)
{
    fatal_if(kind == SystemKind::Gpu,
             "the GPU system needs per-model calibration "
             "(utilization, input volume) and cannot run "
             "user-supplied graphs");
    hpim::rt::SystemConfig config =
        makeConfig(kind, freq_scale, progr_pims);
    config.steps = steps;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(graph).execution;
}

} // namespace hpim::baseline
