/**
 * @file
 * Thermally-aware placement of fixed-function units over bank slices.
 *
 * The paper (SectionIV-D) places more units on edge and corner banks
 * because those have better thermal dissipation paths. Banks form an
 * 8x4 grid on the logic die; a bank's thermal headroom weight is
 * 1 + edges-exposed * bias. Units are distributed largest-remainder
 * proportionally to the weights.
 */

#ifndef HPIM_PIM_PLACEMENT_HH
#define HPIM_PIM_PLACEMENT_HH

#include <cstdint>
#include <vector>

namespace hpim::pim {

/** Grid geometry of the bank slices on the logic die. */
struct BankGrid
{
    std::uint32_t rows = 4;
    std::uint32_t cols = 8;

    std::uint32_t count() const { return rows * cols; }

    /** Number of die edges the bank at (r, c) touches (0..2). */
    std::uint32_t
    exposedEdges(std::uint32_t r, std::uint32_t c) const
    {
        std::uint32_t e = 0;
        if (r == 0 || r + 1 == rows)
            ++e;
        if (c == 0 || c + 1 == cols)
            ++e;
        return e;
    }
};

/** Result of placing units across banks. */
struct Placement
{
    std::vector<std::uint32_t> unitsPerBank;

    std::uint32_t totalUnits() const;
    std::uint32_t maxPerBank() const;
    std::uint32_t minPerBank() const;
};

/**
 * Distribute @p total_units over the grid with edge/corner bias.
 *
 * @param grid bank grid geometry
 * @param total_units units to place
 * @param edge_bias extra weight per exposed edge (0 = uniform)
 */
Placement placeUnits(const BankGrid &grid, std::uint32_t total_units,
                     double edge_bias = 0.35);

} // namespace hpim::pim

#endif // HPIM_PIM_PLACEMENT_HH
