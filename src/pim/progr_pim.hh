/**
 * @file
 * Programmable PIM parameters (paper SectionIV-D).
 *
 * An ARM Cortex-A9-class processor on the logic die: four 2 GHz
 * in-order cores by default (scalable 1..16 for Fig. 12). Executes any
 * operation; with recursive kernels (RC) it dispatches the extracted
 * multiply/add portions to the fixed-function pool without returning
 * to the host.
 */

#ifndef HPIM_PIM_PROGR_PIM_HH
#define HPIM_PIM_PROGR_PIM_HH

#include <cstdint>

#include "nn/op_cost.hh"

namespace hpim::pim {

/** Programmable PIM parameters. */
struct ProgrPimParams
{
    std::uint32_t cores = 4;
    double frequencyHz = 2.0e9;
    double frequencyScale = 1.0;   ///< PLL multiplier (Fig. 11/17)
    /** Effective FP32 flops/s per core (in-order, 4-wide NEON FMA at
     *  ~40% sustained efficiency). */
    double flopsPerCore = 6.0e9;
    /** Effective special ops/s per core (compares/selects run
     *  4-wide in NEON; exp-class ops are amortized into the mix). */
    double specialsPerCore = 8.0e9;
    /** Active power per core, watts. */
    double corePowerW = 0.5;
    /** Host -> programmable-PIM kernel spawn overhead, seconds. */
    double launchOverheadSec = 6e-6;
    /** Programmable -> fixed-function recursive spawn, seconds. */
    double recursiveLaunchSec = 0.4e-6;

    /** Aggregate FP throughput, flops/s. */
    double
    flops() const
    {
        return flopsPerCore * cores * frequencyScale;
    }

    /** Aggregate special-op throughput, ops/s. */
    double
    specials() const
    {
        return specialsPerCore * cores * frequencyScale;
    }

    /** Active power at the scaled clock (P ~ f). */
    double
    powerW() const
    {
        return corePowerW * cores * frequencyScale;
    }
};

/** Time for @p cost fully executed on the programmable PIM,
 *  given memory bandwidth @p mem_bw (bytes/s, in-stack). */
double progrOpSeconds(const ProgrPimParams &params,
                      const hpim::nn::CostStructure &cost,
                      double mem_bw);

} // namespace hpim::pim

#endif // HPIM_PIM_PROGR_PIM_HH
