#include "pim/status_registers.hh"

#include <numeric>

namespace hpim::pim {

StatusRegisterFile::StatusRegisterFile(
    std::uint32_t banks, std::vector<std::uint32_t> units_per_bank)
    : _capacity(std::move(units_per_bank))
{
    fatal_if(_capacity.size() != banks,
             "units_per_bank has ", _capacity.size(), " entries for ",
             banks, " banks");
    _busy.assign(_capacity.size(), 0);
    _total_units =
        std::accumulate(_capacity.begin(), _capacity.end(), 0u);
}

void
StatusRegisterFile::checkBank(std::uint32_t bank) const
{
    panic_if(bank >= _capacity.size(), "bank ", bank, " out of range ",
             _capacity.size());
}

bool
StatusRegisterFile::acquire(std::uint32_t bank, std::uint32_t units)
{
    checkBank(bank);
    if (_capacity[bank] - _busy[bank] < units)
        return false;
    _busy[bank] += units;
    return true;
}

void
StatusRegisterFile::release(std::uint32_t bank, std::uint32_t units)
{
    checkBank(bank);
    panic_if(_busy[bank] < units, "releasing ", units,
             " units but only ", _busy[bank], " busy in bank ", bank);
    _busy[bank] -= units;
}

std::uint32_t
StatusRegisterFile::freeUnits(std::uint32_t bank) const
{
    checkBank(bank);
    return _capacity[bank] - _busy[bank];
}

std::uint32_t
StatusRegisterFile::totalFreeUnits() const
{
    std::uint32_t free = 0;
    for (std::size_t i = 0; i < _capacity.size(); ++i)
        free += _capacity[i] - _busy[i];
    return free;
}

bool
StatusRegisterFile::bankBusy(std::uint32_t bank) const
{
    checkBank(bank);
    return _busy[bank] != 0;
}

} // namespace hpim::pim
