#include "pim/status_registers.hh"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hh"

namespace hpim::pim {

const char *
bankStateName(BankState state)
{
    switch (state) {
      case BankState::Healthy:   return "healthy";
      case BankState::Throttled: return "throttled";
      case BankState::Failed:    return "failed";
    }
    panic("unknown bank state");
}

StatusRegisterFile::StatusRegisterFile(
    std::uint32_t banks, std::vector<std::uint32_t> units_per_bank)
    : _capacity(std::move(units_per_bank))
{
    fatal_if(_capacity.size() != banks,
             "units_per_bank has ", _capacity.size(), " entries for ",
             banks, " banks");
    _busy.assign(_capacity.size(), 0);
    _state.assign(_capacity.size(), BankState::Healthy);
    _total_units =
        std::accumulate(_capacity.begin(), _capacity.end(), 0u);
}

void
StatusRegisterFile::checkBank(std::uint32_t bank) const
{
    panic_if(bank >= _capacity.size(), "bank ", bank, " out of range ",
             _capacity.size());
}

bool
StatusRegisterFile::acquire(std::uint32_t bank, std::uint32_t units)
{
    if (bank >= _capacity.size()) {
        warn("acquire of ", units, " units on bank ", bank,
             " rejected: only ", _capacity.size(), " banks exist");
        return false;
    }
    if (_state[bank] != BankState::Healthy)
        return false;
    if (_capacity[bank] - _busy[bank] < units)
        return false;
    _busy[bank] += units;
    if (auto *registry = hpim::obs::MetricsRegistry::current()) {
        registry->counter("pim.unit_acquires").add(1);
        registry->histogram("pim.acquire_units").observe(units);
    }
    return true;
}

bool
StatusRegisterFile::release(std::uint32_t bank, std::uint32_t units)
{
    if (bank >= _capacity.size()) {
        warn("release of ", units, " units on bank ", bank,
             " rejected: only ", _capacity.size(), " banks exist");
        return false;
    }
    if (_busy[bank] < units) {
        warn("release of ", units, " units on bank ", bank,
             " rejected: only ", _busy[bank],
             " busy; register state left unchanged");
        return false;
    }
    _busy[bank] -= units;
    return true;
}

std::uint32_t
StatusRegisterFile::freeUnits(std::uint32_t bank) const
{
    checkBank(bank);
    if (_state[bank] != BankState::Healthy)
        return 0;
    return _capacity[bank] - _busy[bank];
}

std::uint32_t
StatusRegisterFile::totalFreeUnits() const
{
    std::uint32_t free = 0;
    for (std::size_t i = 0; i < _capacity.size(); ++i) {
        if (_state[i] == BankState::Healthy)
            free += _capacity[i] - _busy[i];
    }
    return free;
}

bool
StatusRegisterFile::bankBusy(std::uint32_t bank) const
{
    checkBank(bank);
    return _busy[bank] != 0;
}

BankState
StatusRegisterFile::bankState(std::uint32_t bank) const
{
    checkBank(bank);
    return _state[bank];
}

void
StatusRegisterFile::markFailed(std::uint32_t bank)
{
    checkBank(bank);
    if (_state[bank] == BankState::Failed)
        return;
    _state[bank] = BankState::Failed;
    ++_failed_banks;
    if (auto *registry = hpim::obs::MetricsRegistry::current()) {
        registry->counter("pim.banks_failed").add(1);
        registry->gauge("pim.alive_units").set(aliveUnits());
    }
}

void
StatusRegisterFile::setThrottled(std::uint32_t bank, bool throttled)
{
    checkBank(bank);
    if (_state[bank] == BankState::Failed)
        return;
    _state[bank] =
        throttled ? BankState::Throttled : BankState::Healthy;
    if (auto *registry = hpim::obs::MetricsRegistry::current()) {
        if (throttled)
            registry->counter("pim.throttle_windows").add(1);
        registry->gauge("pim.available_units").set(availableUnits());
    }
}

std::uint32_t
StatusRegisterFile::bankCapacity(std::uint32_t bank) const
{
    checkBank(bank);
    return _capacity[bank];
}

std::uint32_t
StatusRegisterFile::availableUnits() const
{
    std::uint32_t units = 0;
    for (std::size_t i = 0; i < _capacity.size(); ++i) {
        if (_state[i] == BankState::Healthy)
            units += _capacity[i];
    }
    return units;
}

std::uint32_t
StatusRegisterFile::aliveUnits() const
{
    std::uint32_t units = 0;
    for (std::size_t i = 0; i < _capacity.size(); ++i) {
        if (_state[i] != BankState::Failed)
            units += _capacity[i];
    }
    return units;
}

std::uint64_t
StatusRegisterFile::healthMask() const
{
    std::uint64_t mask = 0;
    std::size_t bits = std::min<std::size_t>(_capacity.size(), 64);
    for (std::size_t i = 0; i < bits; ++i) {
        if (_state[i] == BankState::Healthy)
            mask |= std::uint64_t(1) << i;
    }
    return mask;
}

} // namespace hpim::pim
