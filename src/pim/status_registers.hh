/**
 * @file
 * PIM status registers (paper SectionIV-D, Fig. 7).
 *
 * One register per bank of fixed-function units plus one for the
 * programmable PIM. The runtime scheduler polls these to decide
 * idleness and query completion; the low-level API (Table III) is a
 * thin veneer over this file.
 *
 * Beyond the paper's BUSY/IDLE view, each bank carries a health state
 * (HEALTHY / THROTTLED / FAILED) driven by the fault-injection layer
 * (sim::FaultModel): failed banks are permanently retired from the
 * pool, throttled banks are temporarily unavailable, and the runtime
 * scheduler reads the aggregate through availableUnits(), aliveUnits()
 * and healthMask() (see docs/RESILIENCE.md).
 */

#ifndef HPIM_PIM_STATUS_REGISTERS_HH
#define HPIM_PIM_STATUS_REGISTERS_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace hpim::pim {

/** Health state of one fixed-function bank. */
enum class BankState : std::uint8_t
{
    Healthy,   ///< full capacity available
    Throttled, ///< thermally offline; recovers when the window ends
    Failed,    ///< permanently retired from the pool
};

/** @return printable bank-state name. */
const char *bankStateName(BankState state);

/** The register file exposed to the host runtime. */
class StatusRegisterFile
{
  public:
    /**
     * @param banks number of fixed-function bank groups
     * @param units_per_bank units in each bank group
     */
    StatusRegisterFile(std::uint32_t banks,
                       std::vector<std::uint32_t> units_per_bank);

    /**
     * Mark @p units busy in bank @p bank.
     * @return false if the bank is out of range (logged), unhealthy,
     *         or short of free units; state is unchanged on failure.
     */
    bool acquire(std::uint32_t bank, std::uint32_t units);

    /**
     * Release @p units in bank @p bank.
     * @return false -- with a clear log message and no state change --
     *         if the bank is out of range or fewer units are busy.
     */
    bool release(std::uint32_t bank, std::uint32_t units);

    /** @return free units in bank @p bank (0 when not Healthy). */
    std::uint32_t freeUnits(std::uint32_t bank) const;

    /** @return free units across all Healthy banks. */
    std::uint32_t totalFreeUnits() const;

    /** @return total units across all banks, ignoring health. */
    std::uint32_t totalUnits() const { return _total_units; }

    /** @return true if any unit in the bank is busy. */
    bool bankBusy(std::uint32_t bank) const;

    // ---- Health (fault-injection interface).

    /** @return health state of bank @p bank. */
    BankState bankState(std::uint32_t bank) const;

    /** Permanently retire bank @p bank (idempotent). */
    void markFailed(std::uint32_t bank);

    /** Enter/leave a thermal-throttle window. Failed banks stay
     *  failed regardless. */
    void setThrottled(std::uint32_t bank, bool throttled);

    /** @return unit capacity of bank @p bank, ignoring health. */
    std::uint32_t bankCapacity(std::uint32_t bank) const;

    /** @return capacity summed over Healthy banks (excludes busy
     *  accounting; this is what the scheduler may allocate from). */
    std::uint32_t availableUnits() const;

    /** @return capacity summed over non-Failed banks (throttled banks
     *  count: they come back). */
    std::uint32_t aliveUnits() const;

    /** @return bit b set iff bank b is Healthy (banks beyond 64 are
     *  not representable and are omitted). */
    std::uint64_t healthMask() const;

    /** @return number of permanently failed banks. */
    std::uint32_t failedBanks() const { return _failed_banks; }

    /** Programmable-PIM busy flag. */
    bool progrBusy() const { return _progr_busy; }
    void setProgrBusy(bool busy) { _progr_busy = busy; }

    std::uint32_t banks() const
    { return static_cast<std::uint32_t>(_capacity.size()); }

  private:
    void checkBank(std::uint32_t bank) const;

    std::vector<std::uint32_t> _capacity;
    std::vector<std::uint32_t> _busy;
    std::vector<BankState> _state;
    std::uint32_t _total_units = 0;
    std::uint32_t _failed_banks = 0;
    bool _progr_busy = false;
};

} // namespace hpim::pim

#endif // HPIM_PIM_STATUS_REGISTERS_HH
