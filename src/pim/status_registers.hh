/**
 * @file
 * PIM status registers (paper SectionIV-D, Fig. 7).
 *
 * One register per bank of fixed-function units plus one for the
 * programmable PIM. The runtime scheduler polls these to decide
 * idleness and query completion; the low-level API (Table III) is a
 * thin veneer over this file.
 */

#ifndef HPIM_PIM_STATUS_REGISTERS_HH
#define HPIM_PIM_STATUS_REGISTERS_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace hpim::pim {

/** The register file exposed to the host runtime. */
class StatusRegisterFile
{
  public:
    /**
     * @param banks number of fixed-function bank groups
     * @param units_per_bank units in each bank group
     */
    StatusRegisterFile(std::uint32_t banks,
                       std::vector<std::uint32_t> units_per_bank);

    /** Mark @p units busy in bank @p bank; returns false if short. */
    bool acquire(std::uint32_t bank, std::uint32_t units);

    /** Release @p units in bank @p bank. */
    void release(std::uint32_t bank, std::uint32_t units);

    /** @return free units in bank @p bank. */
    std::uint32_t freeUnits(std::uint32_t bank) const;

    /** @return free units across all banks. */
    std::uint32_t totalFreeUnits() const;

    /** @return total units across all banks. */
    std::uint32_t totalUnits() const { return _total_units; }

    /** @return true if any unit in the bank is busy. */
    bool bankBusy(std::uint32_t bank) const;

    /** Programmable-PIM busy flag. */
    bool progrBusy() const { return _progr_busy; }
    void setProgrBusy(bool busy) { _progr_busy = busy; }

    std::uint32_t banks() const
    { return static_cast<std::uint32_t>(_capacity.size()); }

  private:
    void checkBank(std::uint32_t bank) const;

    std::vector<std::uint32_t> _capacity;
    std::vector<std::uint32_t> _busy;
    std::uint32_t _total_units = 0;
    bool _progr_busy = false;
};

} // namespace hpim::pim

#endif // HPIM_PIM_STATUS_REGISTERS_HH
