/**
 * @file
 * Fixed-function PIM parameters (paper SectionIV-D).
 *
 * The pool is 444 multiplier+adder pairs distributed over the 32 bank
 * slices of the logic die, clocked at the stack's 312.5 MHz. Units are
 * allocated in whole reduction *trees*: a K-long multiply-accumulate
 * lane occupies K multipliers and K-1 adders (the paper's 11x11 conv
 * example: 121 + 120 = 241 units).
 *
 * Calibration note (documented in DESIGN.md): each unit processes a
 * `vectorWidth`-wide FP32 row segment per cycle. With scalar units the
 * paper's reported Hetero-PIM ~ GPU parity is unreachable at 444 x
 * 312.5 MHz; a row-wide datapath preserves every relative trend the
 * paper reports and is the closest physically sensible reading.
 */

#ifndef HPIM_PIM_FIXED_PIM_HH
#define HPIM_PIM_FIXED_PIM_HH

#include <cmath>
#include <cstdint>

namespace hpim::pim {

/** Fixed-function PIM pool parameters. */
struct FixedPimParams
{
    std::uint32_t totalUnits = 444; ///< multiplier+adder pairs
    std::uint32_t banks = 32;       ///< bank slices hosting units
    double frequencyHz = 312.5e6;   ///< HMC 2.0 clock
    double frequencyScale = 1.0;    ///< PLL multiplier (Fig. 11/17)
    std::uint32_t vectorWidth = 32; ///< FP32 lanes per unit (see above)
    /** Active power per unit at 1x frequency, watts. */
    double unitActivePowerW = 0.015;
    /** Static/leakage power of the whole pool, watts. */
    double poolStaticPowerW = 0.4;
    /** Host -> fixed-function kernel spawn overhead, seconds. */
    double launchOverheadSec = 5e-6;

    /** Effective clock after scaling. */
    double clockHz() const { return frequencyHz * frequencyScale; }

    /** Peak FP32 throughput of one unit, flops/s. */
    double
    unitFlops() const
    {
        return clockHz() * static_cast<double>(vectorWidth);
    }

    /** Peak pool throughput, flops/s. */
    double
    poolFlops() const
    {
        return unitFlops() * static_cast<double>(totalUnits);
    }

    /** Active power of one unit at the scaled clock. The PLL raises
     *  frequency with only a small voltage bump, so P ~ f^1.2. */
    double
    unitPowerW() const
    {
        return unitActivePowerW * std::pow(frequencyScale, 1.2);
    }
};

} // namespace hpim::pim

#endif // HPIM_PIM_FIXED_PIM_HH
