#include "pim/placement.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace hpim::pim {

std::uint32_t
Placement::totalUnits() const
{
    return std::accumulate(unitsPerBank.begin(), unitsPerBank.end(), 0u);
}

std::uint32_t
Placement::maxPerBank() const
{
    panic_if(unitsPerBank.empty(), "empty placement");
    return *std::max_element(unitsPerBank.begin(), unitsPerBank.end());
}

std::uint32_t
Placement::minPerBank() const
{
    panic_if(unitsPerBank.empty(), "empty placement");
    return *std::min_element(unitsPerBank.begin(), unitsPerBank.end());
}

Placement
placeUnits(const BankGrid &grid, std::uint32_t total_units,
           double edge_bias)
{
    fatal_if(grid.count() == 0, "bank grid is empty");
    fatal_if(edge_bias < 0.0, "edge bias must be non-negative");

    std::vector<double> weights;
    weights.reserve(grid.count());
    double weight_sum = 0.0;
    for (std::uint32_t r = 0; r < grid.rows; ++r) {
        for (std::uint32_t c = 0; c < grid.cols; ++c) {
            double w = 1.0 + edge_bias * grid.exposedEdges(r, c);
            weights.push_back(w);
            weight_sum += w;
        }
    }

    // Largest-remainder apportionment.
    Placement placement;
    placement.unitsPerBank.assign(grid.count(), 0);
    std::vector<std::pair<double, std::uint32_t>> remainders;
    std::uint32_t assigned = 0;
    for (std::uint32_t i = 0; i < grid.count(); ++i) {
        double exact = total_units * weights[i] / weight_sum;
        auto whole = static_cast<std::uint32_t>(exact);
        placement.unitsPerBank[i] = whole;
        assigned += whole;
        remainders.emplace_back(exact - whole, i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second; // deterministic tie-break
              });
    for (std::uint32_t i = 0; assigned < total_units; ++i, ++assigned)
        ++placement.unitsPerBank[remainders[i % remainders.size()].second];

    return placement;
}

} // namespace hpim::pim
