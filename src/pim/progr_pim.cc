#include "pim/progr_pim.hh"

#include <algorithm>

namespace hpim::pim {

double
progrOpSeconds(const ProgrPimParams &params,
               const hpim::nn::CostStructure &cost, double mem_bw)
{
    double comp = cost.flops() / params.flops()
                  + cost.specials / params.specials();
    double mem = cost.bytes() / mem_bw;
    return std::max(comp, mem);
}

} // namespace hpim::pim
