#include "gpu/gpu_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::gpu {

using hpim::nn::Graph;
using hpim::nn::Operation;

double
GpuModel::workingSetBytes(const Graph &graph)
{
    // Activations + gradients kept resident for the backward pass:
    // approximate with ~40% of the bytes written across the whole
    // step (forward activations are retained; transients are not).
    return graph.totalCost().bytesWritten * 0.36;
}

GpuStepReport
GpuModel::runStep(const Graph &graph, double utilization,
                  double input_bytes) const
{
    fatal_if(utilization <= 0.0 || utilization > 1.0,
             "GPU utilization must be in (0, 1], got ", utilization);

    GpuStepReport report;
    double eff_flops =
        _params.peakFlops * utilization * _params.kernelEfficiency;
    double eff_specials =
        _params.peakFlops * _params.specialsFraction * utilization;

    for (const Operation &op : graph.ops()) {
        double comp = op.cost.flops() / eff_flops
                      + op.cost.specials / eff_specials;
        double mem = op.cost.bytes() / _params.memBandwidth;
        report.opSec += std::max(comp, mem);
        report.syncSec += _params.launchOverheadSec;
    }

    // Minibatch input transfer, partially hidden by compute.
    report.dataMovementSec +=
        (input_bytes / _params.pcieBandwidth)
        * (1.0 - _params.transferOverlap);

    // Capacity spills: working set beyond device memory crosses PCIe
    // twice (evict + refetch) per step and is not hidden.
    double ws = workingSetBytes(graph);
    if (ws > _params.memCapacityBytes) {
        double spill = ws - _params.memCapacityBytes;
        report.dataMovementSec += 2.0 * spill / _params.pcieBandwidth;
    }

    double total = report.totalSec();
    report.powerW = _params.dynamicPowerW + _params.hostPowerW;
    report.energyJ = report.powerW * total;
    return report;
}

} // namespace hpim::gpu
