/**
 * @file
 * Analytic GPU baseline (GTX 1080 Ti-like, paper Table IV / SectionV-D).
 *
 * Models per-op kernel time from peak throughput derated by the
 * per-model utilization the paper measured (SectionV-D), kernel launch
 * overheads, PCIe minibatch transfer with partial compute overlap, and
 * device-memory capacity: working sets beyond 11 GB spill over PCIe
 * every step (this is why Hetero PIM beats the GPU on ResNet-50).
 */

#ifndef HPIM_GPU_GPU_MODEL_HH
#define HPIM_GPU_GPU_MODEL_HH

#include "nn/graph.hh"

namespace hpim::gpu {

/** GPU hardware/system parameters. */
struct GpuParams
{
    double peakFlops = 11.3e12;       ///< FP32 peak
    /** Kernel efficiency: fraction of (peak x utilization) cuDNN
     *  kernels sustain on training layers. */
    double kernelEfficiency = 0.75;
    double specialsFraction = 0.125;  ///< SFU throughput vs FP peak
    double memBandwidth = 400e9;      ///< effective GDDR5X
    double pcieBandwidth = 12e9;      ///< effective x16 Gen3
    double launchOverheadSec = 5e-6;  ///< per kernel
    double memCapacityBytes = 11.0e9; ///< 11 GB GDDR5X
    /** Fraction of input-transfer time hidden under compute. */
    double transferOverlap = 0.70;
    double dynamicPowerW = 185.0;     ///< board under training load
    double hostPowerW = 30.0;         ///< host feeding the GPU
};

/** Step-time breakdown for a GPU run (paper Fig. 8 categories). */
struct GpuStepReport
{
    double opSec = 0.0;           ///< kernel compute time
    double dataMovementSec = 0.0; ///< unhidden PCIe + spills
    double syncSec = 0.0;         ///< kernel launches / host sync
    double totalSec() const { return opSec + dataMovementSec + syncSec; }
    double energyJ = 0.0;         ///< full-system dynamic energy
    double powerW = 0.0;          ///< average full-system power
};

/** The GPU device model. */
class GpuModel
{
  public:
    explicit GpuModel(const GpuParams &params = GpuParams{})
        : _params(params)
    {}

    /**
     * Simulate one training step.
     *
     * @param graph the step graph
     * @param utilization achieved SM utilization in (0, 1]
     *        (paper SectionV-D per-model averages)
     * @param input_bytes minibatch bytes moved host->device per step
     */
    GpuStepReport runStep(const hpim::nn::Graph &graph,
                          double utilization,
                          double input_bytes) const;

    /** Working-set estimate used for the capacity/spill model. */
    static double workingSetBytes(const hpim::nn::Graph &graph);

    const GpuParams &params() const { return _params; }

  private:
    GpuParams _params;
};

} // namespace hpim::gpu

#endif // HPIM_GPU_GPU_MODEL_HH
