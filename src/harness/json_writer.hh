/**
 * @file
 * A streaming JSON emitter shared by every serializer in the tree.
 *
 * One writer produces all machine-readable output -- execution
 * reports (harness/report_io), sweep-journal records
 * (harness/journal) and observability traces (obs/trace) -- so the
 * escaping rules and the lossless double format live in exactly one
 * place. Output is compact (no whitespace), doubles are printed with
 * max_digits10 significant digits so strtod() recovers the exact
 * value, and strings go through json::escape. The writer validates
 * nesting as it goes: a key outside an object, a bare value where a
 * key is required, or an unbalanced end*() panics, because every
 * caller is program-generated output where such a slip is a bug.
 */

#ifndef HPIM_HARNESS_JSON_WRITER_HH
#define HPIM_HARNESS_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hpim::harness::json {

/** @return @p value formatted with max_digits10 ("%.17g"): the
 *  shortest form strtod() maps back to the identical double. */
std::string numberToString(double value);

/** Streaming emitter; see file comment for the contract. */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : _os(os) {}

    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();

    /** Emit an object key; the next call must produce its value. */
    Writer &key(std::string_view name);

    Writer &value(std::string_view text);
    Writer &value(const char *text) { return value(std::string_view(text)); }
    Writer &value(double number);
    Writer &value(std::int64_t number);
    Writer &value(std::uint64_t number);
    Writer &value(std::uint32_t number)
    { return value(static_cast<std::uint64_t>(number)); }
    Writer &value(std::int32_t number)
    { return value(static_cast<std::int64_t>(number)); }
    Writer &value(bool flag);
    Writer &valueNull();

    /** key() + value() in one call, for every value overload. */
    template <typename T>
    Writer &
    field(std::string_view name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** @return true once the single top-level value is complete. */
    bool done() const;

  private:
    enum class Frame : std::uint8_t { Object, Array };

    /** Comma/colon bookkeeping before a value or container start. */
    void preValue();

    std::ostream &_os;
    std::vector<Frame> _stack;
    std::vector<bool> _first;   ///< first element of each open frame
    bool _expect_value = false; ///< a key was just written
    bool _root_done = false;
};

} // namespace hpim::harness::json

#endif // HPIM_HARNESS_JSON_WRITER_HH
