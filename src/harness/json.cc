#include "harness/json.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace hpim::harness::json {

namespace {

const char *
kindName(Value::Kind kind)
{
    switch (kind) {
      case Value::Kind::Null:   return "null";
      case Value::Kind::Bool:   return "bool";
      case Value::Kind::Number: return "number";
      case Value::Kind::String: return "string";
      case Value::Kind::Array:  return "array";
      case Value::Kind::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
wrongKind(const Value &value, Value::Kind wanted)
{
    throw Error(std::string("expected ") + kindName(wanted) + ", got "
                    + kindName(value.kind),
                value.line);
}

/** Recursive-descent parser over the whole document. */
class Parser
{
  public:
    explicit Parser(const std::string &text)
        : _p(text.data()), _end(text.data() + text.size())
    {
    }

    Value
    document()
    {
        Value value = parseValue();
        skipSpace();
        if (_p != _end)
            fail("trailing characters after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw Error(message, _line);
    }

    void
    skipSpace()
    {
        while (_p != _end && (*_p == ' ' || *_p == '\t' || *_p == '\n'
                              || *_p == '\r')) {
            if (*_p == '\n')
                ++_line;
            ++_p;
        }
    }

    char
    peek()
    {
        if (_p == _end)
            fail("unexpected end of document");
        return *_p;
    }

    void
    expect(char c)
    {
        if (_p == _end || *_p != c)
            fail(std::string("expected '") + c + "'");
        ++_p;
    }

    bool
    consumeWord(const char *word)
    {
        const char *q = _p;
        for (const char *w = word; *w; ++w, ++q)
            if (q == _end || *q != *w)
                return false;
        _p = q;
        return true;
    }

    Value
    parseValue()
    {
        skipSpace();
        Value value;
        value.line = _line;
        switch (peek()) {
          case '{': parseObject(value); break;
          case '[': parseArray(value); break;
          case '"':
            value.kind = Value::Kind::String;
            value.string = parseString();
            break;
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            value.kind = Value::Kind::Bool;
            value.boolean = true;
            break;
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            value.kind = Value::Kind::Bool;
            value.boolean = false;
            break;
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            value.kind = Value::Kind::Null;
            break;
          default:
            value.kind = Value::Kind::Number;
            value.number = parseNumber();
            break;
        }
        return value;
    }

    void
    parseObject(Value &value)
    {
        value.kind = Value::Kind::Object;
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++_p;
            return;
        }
        for (;;) {
            skipSpace();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipSpace();
            expect(':');
            value.object.emplace_back(std::move(key), parseValue());
            skipSpace();
            char c = peek();
            ++_p;
            if (c == '}')
                return;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    void
    parseArray(Value &value)
    {
        value.kind = Value::Kind::Array;
        expect('[');
        skipSpace();
        if (peek() == ']') {
            ++_p;
            return;
        }
        for (;;) {
            value.array.push_back(parseValue());
            skipSpace();
            char c = peek();
            ++_p;
            if (c == ']')
                return;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (_p == _end)
                fail("unterminated string");
            char c = *_p++;
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_p == _end)
                fail("unterminated escape");
            char e = *_p++;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': appendCodepoint(out, parseHex4()); break;
              default: fail("unknown escape");
            }
        }
    }

    unsigned
    parseHex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            if (_p == _end)
                fail("unterminated \\u escape");
            char c = *_p++;
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= unsigned(c - 'A' + 10);
            else
                fail("bad \\u escape digit");
        }
        return value;
    }

    static void
    appendCodepoint(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(char(cp));
        } else if (cp < 0x800) {
            out.push_back(char(0xc0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(char(0xe0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        }
    }

    std::string
    parseNumber()
    {
        const char *start = _p;
        if (_p != _end && *_p == '-')
            ++_p;
        bool digits = false;
        while (_p != _end && *_p >= '0' && *_p <= '9') {
            ++_p;
            digits = true;
        }
        if (_p != _end && *_p == '.') {
            ++_p;
            while (_p != _end && *_p >= '0' && *_p <= '9')
                ++_p;
        }
        if (_p != _end && (*_p == 'e' || *_p == 'E')) {
            ++_p;
            if (_p != _end && (*_p == '+' || *_p == '-'))
                ++_p;
            while (_p != _end && *_p >= '0' && *_p <= '9')
                ++_p;
        }
        if (!digits)
            fail("expected a value");
        return std::string(start, _p);
    }

    const char *_p;
    const char *_end;
    std::size_t _line = 1;
};

} // namespace

bool
Value::asBool() const
{
    if (kind != Kind::Bool)
        wrongKind(*this, Kind::Bool);
    return boolean;
}

const std::string &
Value::asString() const
{
    if (kind != Kind::String)
        wrongKind(*this, Kind::String);
    return string;
}

double
Value::asDouble() const
{
    if (kind != Kind::Number)
        wrongKind(*this, Kind::Number);
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size())
        throw Error("malformed number '" + number + "'", line);
    return value;
}

std::int64_t
Value::asInt64() const
{
    if (kind != Kind::Number)
        wrongKind(*this, Kind::Number);
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(number.c_str(), &end, 10);
    if (end != number.c_str() + number.size() || errno == ERANGE)
        throw Error("expected an integer, got '" + number + "'", line);
    return value;
}

std::uint64_t
Value::asUInt64() const
{
    if (kind != Kind::Number)
        wrongKind(*this, Kind::Number);
    if (!number.empty() && number[0] == '-')
        throw Error("expected a non-negative integer, got '" + number
                        + "'",
                    line);
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(number.c_str(), &end, 10);
    if (end != number.c_str() + number.size() || errno == ERANGE)
        throw Error("expected an integer, got '" + number + "'", line);
    return value;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        wrongKind(*this, Kind::Object);
    for (const auto &[name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *value = find(key);
    if (!value)
        throw Error("missing key '" + key + "'", line);
    return *value;
}

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

void
escape(std::string &out, const std::string &text)
{
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
}

} // namespace hpim::harness::json
