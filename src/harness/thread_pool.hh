/**
 * @file
 * Fixed-size worker pool with a bounded task queue.
 *
 * The substrate of the parallel experiment engine (harness/sweep):
 * submit() hands a callable to the pool and returns a std::future for
 * its result; exceptions thrown inside a task surface at future.get().
 * The queue is bounded, so a producer enumerating a huge sweep blocks
 * instead of materializing every closure up front. Destruction is
 * graceful: every task already submitted still runs to completion.
 *
 * A pool constructed with zero threads degrades to inline execution
 * (submit() runs the task on the calling thread), which keeps
 * single-threaded runs free of any scheduling nondeterminism and
 * gives tests a trivial reference behaviour.
 */

#ifndef HPIM_HARNESS_THREAD_POOL_HH
#define HPIM_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hpim::harness {

/**
 * Exit code of a run stopped early by SIGINT/SIGTERM after draining
 * in-flight work and flushing the sweep journal: rerunning the same
 * command resumes from the journal (75 = BSD EX_TEMPFAIL, "temporary
 * failure, retry").
 */
constexpr int resumableExitCode = 75;

/**
 * Install SIGINT/SIGTERM handlers that record the signal instead of
 * killing the process. The sweep engine polls interruptRequested()
 * between point submissions: in-flight points drain, the journal is
 * flushed, and the process exits with resumableExitCode. Installed
 * only for journaled sweeps -- plain runs keep default signal
 * behaviour. Idempotent.
 */
void installInterruptHandlers();

/** @return true once SIGINT or SIGTERM has been received. */
bool interruptRequested();

/** @return the received signal number, or 0. */
int interruptSignal();

/** Fixed worker pool; see file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means inline execution
     * @param queue_capacity bound on queued (not yet running) tasks;
     *        0 picks 4x the worker count
     */
    explicit ThreadPool(std::uint32_t threads,
                        std::size_t queue_capacity = 0);

    /** Drains all queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return worker count (0 = inline mode). */
    std::uint32_t threadCount() const { return _thread_count; }

    /**
     * Submit a task. Blocks while the queue is full. The returned
     * future yields the task's result or rethrows its exception.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        // std::function requires copyable targets; packaged_task is
        // move-only, so it rides behind a shared_ptr.
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        if (_thread_count == 0)
            (*task)();
        else
            enqueue([task] { (*task)(); });
        return future;
    }

    /** Block until the queue is empty and every worker is idle. */
    void drain();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::uint32_t _thread_count;
    std::size_t _capacity;
    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _not_empty; ///< queue gained work / stop
    std::condition_variable _not_full;  ///< queue lost work
    std::condition_variable _idle;      ///< queue empty, workers idle
    std::deque<std::function<void()>> _queue;
    std::size_t _active = 0; ///< tasks currently executing
    bool _stopping = false;
};

} // namespace hpim::harness

#endif // HPIM_HARNESS_THREAD_POOL_HH
