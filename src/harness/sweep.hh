/**
 * @file
 * The parallel experiment engine.
 *
 * The paper's evaluation is a grid of independent trace-driven
 * simulations (systems x models x frequency/batch sweeps, Figs 8-17).
 * SweepRunner executes such a grid on a harness::ThreadPool and
 * returns the reports in submission order regardless of completion
 * order, so every table a bench prints is identical whatever
 * `--jobs` says.
 *
 * Determinism contract: point i of a sweep runs against its own
 * sim::Rng stream seeded `Rng::streamSeed(baseSeed, i)`. A point's
 * result is a function of (point, baseSeed, i) only -- never of the
 * worker count, worker identity, or completion order -- so a sweep is
 * bit-identical across `--jobs 1..N` and across reruns with the same
 * seed. tests/test_sweep_determinism.cpp enforces this contract.
 *
 * Crash safety: with a journal directory set (`--journal DIR`),
 * report-producing sweeps (run() and mapReports()) persist every
 * completed point to an fsync'd journal (harness/journal) keyed by
 * (pointHash, baseSeed, index). A rerun of the same grid and seed
 * loads journaled points instead of re-simulating them; because a
 * point's result depends only on (point, baseSeed, i), the resumed
 * table is bit-identical to an uninterrupted run. A grid or seed
 * mismatch is rejected via the journal header. SIGINT/SIGTERM during
 * a journaled sweep drains in-flight points, flushes the journal and
 * exits with resumableExitCode. tests/test_checkpoint.cpp enforces
 * all of this.
 *
 * Sharded distribution: with `--shard i/N` (requires --journal), N
 * independent processes -- or hosts on a shared filesystem -- split
 * one grid. Shard i owns the deterministic slice { j : j % N == i-1 }
 * and journals it to its own per-shard segment files; per-point
 * `Rng::streamSeed(baseSeed, j)` makes a point's bytes independent of
 * which shard computes it. A shard that finishes its slice scans the
 * sibling record logs for unfinished points and steals them under
 * per-point claim files (flock-arbitrated, so a point has exactly one
 * live owner and a SIGKILLed shard never strands work). The merged
 * table comes from `hpim_merge` (harness/shard_merge), which
 * validates the shard headers and emits the byte-identical unsharded
 * journal. tests/test_shard_sweep.cpp enforces all of this.
 */

#ifndef HPIM_HARNESS_SWEEP_HH
#define HPIM_HARNESS_SWEEP_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/thread_pool.hh"
#include "nn/models.hh"
#include "obs/trace.hh"
#include "rt/execution_report.hh"
#include "sim/rng.hh"

namespace hpim::harness {

/** One independent simulation in a sweep grid. */
struct ExperimentPoint
{
    hpim::baseline::SystemKind kind =
        hpim::baseline::SystemKind::HeteroPim;
    hpim::nn::ModelId model = hpim::nn::ModelId::AlexNet;
    std::uint32_t steps = 4;
    double freqScale = 1.0;
    std::uint32_t progrPims = 1;
    int batch = 0; ///< minibatch size; 0 = the model's default
};

/** Journal identity of one ExperimentPoint grid. */
std::uint64_t gridHash(const std::vector<ExperimentPoint> &points);

/** Engine options, usually parsed from argv (parseSweepArgs). */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    std::uint32_t jobs = 0;
    /** Base seed of the per-point Rng streams. */
    std::uint64_t baseSeed = hpim::sim::defaultSeed;
    /** Checkpoint/resume journal directory; empty = journaling off. */
    std::string journalDir;
    /** Chrome/Perfetto trace output path; empty = tracing off. */
    std::string traceFile;
    /** Cross-point memo cache (sim::MemoCache); `--no-sim-cache`
     *  clears it. Cached and uncached runs are byte-identical. */
    bool simCache = true;
    /** Entry cap for the memo cache (`--sim-cache-max-entries`);
     *  0 = unbounded. Oldest-insertion-first eviction; affects hit
     *  rate only, never results. */
    std::size_t simCacheMaxEntries = 0;
    /** This process's 1-based shard (`--shard i/N`); 1/1 = unsharded.
     *  Sharding requires a journal directory. */
    std::uint32_t shardIndex = 1;
    /** Total shards splitting the grid (`--shard i/N`). */
    std::uint32_t shardCount = 1;
    /** Steal unfinished sibling points after this shard's slice is
     *  done; `--no-steal` disables (each shard then computes exactly
     *  its slice). Meaningless when shardCount == 1. */
    bool workSteal = true;
    /** Host-IO fail-point spec (`--failpoints`, harness/failpoint.hh);
     *  empty = nothing armed and every site is a relaxed-load no-op. */
    std::string failPoints;
    /** User graph files (`--graph`, repeatable; nn::GraphIo JSON).
     *  Benches that support user workloads run each file as an extra
     *  appendix table (harness/graph_workloads.hh); empty = built-in
     *  models only and the appendix prints nothing. */
    std::vector<std::string> graphFiles;
};

/** One sweep point that threw instead of producing a result. */
struct PointFailure
{
    std::size_t index = 0; ///< submission index within its sweep
    std::string what;      ///< exception message
};

/** Wall-clock accounting, cumulative over one runner's sweeps. */
struct SweepStats
{
    std::size_t points = 0;
    std::uint32_t jobs = 1;
    double wallSec = 0.0;   ///< elapsed time inside run()/map()
    /** Sum of per-point thread-CPU times: what a serial run of the
     *  same points would cost. CPU time (not per-task wall time) so
     *  preemption on an oversubscribed machine doesn't inflate it. */
    double serialSec = 0.0;
    /** Points loaded from the journal instead of re-simulated. */
    std::size_t resumedPoints = 0;
    /** Shard assignment of this process (1/1 when unsharded). */
    std::uint32_t shardIndex = 1;
    std::uint32_t shardCount = 1;
    /** Points in this shard's own slices, cumulative over sweeps. */
    std::size_t slicePoints = 0;
    /** Sibling-slice points this shard completed via work-stealing. */
    std::size_t stolenPoints = 0;
    /** Points whose fn threw; index order, independent of --jobs.
     *  Their result slots are default-constructed. */
    std::vector<PointFailure> failures;

    /** Estimated speedup over a serial run of the same points. */
    double
    speedup() const
    {
        return wallSec > 0.0 ? serialSec / wallSec : 1.0;
    }
};

/**
 * Drain-then-exit path of an interrupted journaled sweep: print where
 * the run stopped and leave with resumableExitCode. Called by the
 * engine once in-flight points have completed and the journal holds
 * every finished point.
 */
[[noreturn]] void exitResumable(const SweepStats &stats);

/** Runs experiment grids on a worker pool. See file comment. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /** Exports the trace (if tracing was requested) to traceFile. */
    ~SweepRunner();

    /** Worker count after resolving jobs=0 to the hardware. */
    std::uint32_t jobs() const { return _jobs; }

    /** Base seed of the per-point streams. */
    std::uint64_t baseSeed() const { return _options.baseSeed; }

    /** Journal directory; empty when journaling is off. */
    const std::string &journalDir() const
    {
        return _options.journalDir;
    }

    /**
     * Simulate every point via baseline::runSystem. Journaled when a
     * journal directory is set (see file comment).
     * @return reports, index-aligned with @p points
     */
    std::vector<hpim::rt::ExecutionReport>
    run(const std::vector<ExperimentPoint> &points);

    /** Callable producing one report per sweep point. */
    using ReportFn = std::function<hpim::rt::ExecutionReport(
        std::size_t, hpim::sim::Rng &)>;

    /**
     * map() for report-producing sweeps, with checkpoint/resume.
     * Behaves exactly like map(count, fn) when no journal directory
     * is set. With one set, completed points are journaled under
     * @p grid_hash -- the caller-supplied identity of this sweep's
     * parameter grid (hash every input that shapes a point's result;
     * harness/journal.hh has the hash helpers) -- and a rerun loads
     * them instead of re-simulating.
     */
    template <typename Fn>
    std::vector<hpim::rt::ExecutionReport>
    mapReports(std::size_t count, std::uint64_t grid_hash, Fn &&fn)
    {
        if (_options.journalDir.empty())
            return map(count, std::forward<Fn>(fn));
        return mapJournaled(count, grid_hash,
                            ReportFn(std::forward<Fn>(fn)));
    }

    /**
     * Generic fan-out: evaluate `fn(i, rng)` for i in [0, count) on
     * the pool, where rng is the point's private stream. @p fn must
     * not touch shared mutable state; its only inputs should be i and
     * rng, or the determinism contract is forfeit.
     *
     * A point whose fn throws does not abort the sweep: its slot holds
     * a default-constructed Result and the failure is recorded (in
     * index order, whatever the worker count) in stats().failures for
     * the sweep footer. Result must be default-constructible.
     *
     * @return results, index-aligned
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{0},
                                   std::declval<hpim::sim::Rng &>()))>
    {
        using Result = decltype(fn(std::size_t{0},
                                   std::declval<hpim::sim::Rng &>()));
        const auto wall_start = std::chrono::steady_clock::now();
        // Trace scopes must stay unique across successive sweeps on
        // one runner, or two sweeps' point-i events would interleave
        // ambiguously; offset by the points already run.
        const std::size_t scope_base = _stats.points;
        std::vector<double> durations(count, 0.0);
        // Not vector<bool>: workers write distinct indices in parallel.
        std::vector<std::uint8_t> failed(count, 0);
        std::vector<std::string> errors(count);
        std::vector<std::future<Result>> futures;
        futures.reserve(count);
        {
            // jobs=1 runs inline on the calling thread: no pool, no
            // scheduling, the obvious serial reference.
            ThreadPool pool(_jobs > 1 ? _jobs : 0);
            for (std::size_t i = 0; i < count; ++i) {
                // Journaled runs install interrupt handlers: stop
                // submitting, drain what is in flight, exit resumable.
                if (interruptRequested())
                    break;
                futures.push_back(pool.submit([i, scope_base, &fn,
                                               &durations, &failed,
                                               &errors,
                                               seed = _options.baseSeed] {
                    const double start = threadCpuSeconds();
                    hpim::sim::Rng rng(
                        hpim::sim::Rng::streamSeed(seed, i));
                    Result result{};
                    // The point's simulation events record under this
                    // scope so the export reproduces program order
                    // whatever worker ran it. The bracketing instants
                    // use synthetic ts=0 (a point's simulated clock
                    // starts at 0); wall-clock would break the
                    // byte-identical-across---jobs contract.
                    hpim::obs::TraceSession::Scope trace_scope(
                        static_cast<std::uint32_t>(scope_base + i + 1));
                    if (auto *session =
                            hpim::obs::TraceSession::current()) {
                        session->instant(
                            session->track("sweep"), "point start", 0.0,
                            {{"index", static_cast<std::int64_t>(i)}});
                    }
                    try {
                        result = fn(i, rng);
                    } catch (const std::exception &e) {
                        failed[i] = 1;
                        errors[i] = e.what();
                    } catch (...) {
                        failed[i] = 1;
                        errors[i] = "unknown exception";
                    }
                    if (auto *session =
                            hpim::obs::TraceSession::current()) {
                        session->instant(
                            session->track("sweep"), "point done", 0.0,
                            {{"index", static_cast<std::int64_t>(i)},
                             {"outcome",
                              std::string(failed[i] ? "failed"
                                                    : "ok")}});
                    }
                    durations[i] = threadCpuSeconds() - start;
                    return result;
                }));
            }
        }
        std::vector<Result> results;
        results.reserve(count);
        for (auto &future : futures)
            results.push_back(future.get()); // submission order
        for (std::size_t i = 0; i < count; ++i) {
            if (failed[i])
                _stats.failures.push_back(PointFailure{i, errors[i]});
        }
        accumulateStats(durations, secondsSince(wall_start));
        if (interruptRequested())
            exitResumable(_stats);
        return results;
    }

    /** Cumulative accounting over all run()/map() calls so far. */
    const SweepStats &stats() const { return _stats; }

  private:
    static double
    secondsSince(std::chrono::steady_clock::time_point start)
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    /** CPU seconds consumed by the calling thread so far. */
    static double threadCpuSeconds();

    /** Journaled mapReports body; see file comment. */
    std::vector<hpim::rt::ExecutionReport>
    mapJournaled(std::size_t count, std::uint64_t grid_hash,
                 const ReportFn &fn);

    void accumulateStats(const std::vector<double> &durations,
                         double wall_sec);

    SweepOptions _options;
    std::uint32_t _jobs;
    std::uint32_t _segment = 0; ///< next journal segment number
    SweepStats _stats;
    /** Owned session when options.traceFile is set; else null. */
    std::unique_ptr<hpim::obs::TraceSession> _trace;
};

/**
 * Parse engine flags from a bench/example command line:
 * `--jobs N` (default hardware_concurrency), `--seed S`,
 * `--journal DIR` (crash-safe checkpoint/resume), `--shard i/N`
 * (own slice i of an N-way distributed sweep; requires --journal),
 * `--no-steal` (disable sibling work-stealing), `--trace FILE`
 * (Chrome/Perfetto timeline, docs/OBSERVABILITY.md) and
 * `--failpoints SPEC` (deterministic host-IO fault injection,
 * docs/RESILIENCE.md). Strict: an
 * unknown flag or an out-of-range value prints usage and exits
 * non-zero instead of being silently ignored.
 */
SweepOptions parseSweepArgs(int argc, char **argv);

/** Print the `[sweep] N points, J workers, ...` wall-clock footer. */
void printSweepSummary(std::ostream &os, const SweepStats &stats);

} // namespace hpim::harness

#endif // HPIM_HARNESS_SWEEP_HH
