/**
 * @file
 * Deterministic host-IO fail-point injection (docs/RESILIENCE.md,
 * "Host-IO fault injection").
 *
 * Where sim::FaultModel injects *simulated hardware* faults into the
 * modelled machine, FailPoint injects *host* failures -- ENOSPC,
 * EINTR, short writes, failed fsyncs, failed renames, allocation
 * failures -- into the process's own IO paths: journal appends,
 * header publishes, directory fsyncs, claim files, shard-merge
 * reads, report writers, trace export, and the serve daemon's socket
 * framing. Every durability decision in the harness can thus be
 * exercised in CI instead of waiting for a full disk at 3am.
 *
 * Each IO boundary declares one named *site* (a static FailPoint).
 * When no site is armed, FailPoint::fire() is a single relaxed
 * atomic load -- the same near-zero-cost-when-off discipline as
 * rt::Executor::obsActive() -- so production runs pay nothing and
 * bench output stays byte-identical. Arming happens through a spec
 * string (`--failpoints` on the sweep benches, hpim_cli and
 * hpim_serve, or the HPIM_FAILPOINTS environment variable):
 *
 *   spec     := program (';' program)*
 *   program  := site '=' trigger ':' outcome
 *   trigger  := 'off' | 'after(' N ')' | 'every(' N ')'
 *             | 'prob(' P ',' SEED ')'
 *   outcome  := 'enospc' | 'eintr' | 'eio' | 'short(' K ')'
 *             | 'fsync' | 'rename' | 'alloc'
 *
 * `after(N)` passes the first N activations, fails activation N+1
 * once, then passes forever (the one-shot crash). `every(N)` fails
 * every Nth activation (the repeating transient). `prob(P,SEED)`
 * fails each activation independently with probability P, drawn
 * deterministically from (SEED, activation index) -- two runs with
 * the same spec see the same failure schedule. Example:
 *
 *   --failpoints 'journal.append.write=after(3):enospc'
 *   HPIM_FAILPOINTS='serve.send=every(2):eintr;journal.dir.fsync=after(0):fsync'
 *
 * Sites interpret outcomes through the fpWrite/fpFsync/fpRename/
 * fpOpen/fpSend/fpRecv wrappers below, which turn a decision into
 * the errno the real syscall would have produced (or a genuinely
 * short transfer, so retry loops are exercised against real bytes).
 * An unknown site or malformed program throws FailPointError naming
 * the offending token and the registered sites.
 */

#ifndef HPIM_HARNESS_FAILPOINT_HH
#define HPIM_HARNESS_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/types.h>

namespace hpim::harness {

/** What an armed fail-point makes its site do. */
enum class FailKind : std::uint8_t
{
    None,       ///< site passes; perform the real operation
    Enospc,     ///< fail with ENOSPC (disk full)
    Eintr,      ///< fail with EINTR (interrupted syscall)
    Eio,        ///< fail with EIO (generic hard IO error)
    ShortWrite, ///< transfer only `bytes` bytes (a real short write)
    FsyncFail,  ///< fsync/fdatasync reports EIO
    RenameFail, ///< rename reports EIO
    AllocFail,  ///< throw std::bad_alloc at the site
};

/** @return stable spec-grammar name, e.g. "enospc". */
const char *failKindName(FailKind kind);

/** One activation's verdict. Contextually false when the site passes. */
struct FailDecision
{
    FailKind kind = FailKind::None;
    /** ShortWrite only: bytes the transfer is allowed to move. */
    std::uint64_t bytes = 0;

    explicit operator bool() const { return kind != FailKind::None; }
};

/** A malformed --failpoints/HPIM_FAILPOINTS spec. */
struct FailPointError : std::runtime_error
{
    explicit FailPointError(const std::string &message)
        : std::runtime_error("failpoints: " + message)
    {
    }
};

/**
 * A host-IO operation that failed, possibly by injection. The typed
 * escalation path of every hardened IO site: callers classify on
 * `err` (EINTR is transient, ENOSPC/EIO are durable) instead of
 * matching message text.
 */
struct IoError : std::runtime_error
{
    IoError(std::string operation, std::string file_path, int error);

    std::string op;   ///< "write", "fsync", "rename", ...
    std::string path; ///< file the operation targeted
    int err;          ///< errno at failure time
};

/**
 * One named injection site. Declare as a namespace-scope static in
 * the file owning the IO boundary; construction registers the site
 * with the process-wide registry (destruction unregisters, for
 * test-local sites). fire() is the hot path: a single relaxed load
 * of the global armed-site count when nothing is armed.
 */
class FailPoint
{
  public:
    explicit FailPoint(const char *site);
    ~FailPoint();

    FailPoint(const FailPoint &) = delete;
    FailPoint &operator=(const FailPoint &) = delete;

    const std::string &site() const { return _site; }

    /** Decide this activation. Cheap when off; armed sites count the
     *  activation and evaluate their trigger program. */
    FailDecision
    fire()
    {
        if (armedCount().load(std::memory_order_relaxed) == 0)
            return {};
        return fireSlow();
    }

    /** Activations seen while this site was armed (tests). */
    std::uint64_t hits() const;

  private:
    friend void configureFailPoints(const std::string &);
    friend void clearFailPoints();
    friend bool failPointsArmed();
    friend struct FailPointDetail; ///< failpoint.cc internals

    /** Process-wide count of armed sites; fire()'s fast-path gate. */
    static std::atomic<std::uint32_t> &armedCount();

    FailDecision fireSlow();

    struct Program; ///< parsed trigger + outcome; null when off
    std::string _site;
    /** Owned; swapped under the registry mutex, read in fireSlow()
     *  under the same mutex (the slow path may lock: it only runs
     *  while a chaos program is armed). */
    Program *_program = nullptr;
    std::uint64_t _hits = 0;
};

/**
 * Parse @p spec and arm the named sites, replacing any earlier
 * programs (sites not named keep their state; name a site with
 * trigger `off` to disarm just it). Throws FailPointError on a
 * malformed program or unknown site. Thread-safe, but meant to run
 * at startup or between test cases, not concurrently with hot IO.
 */
void configureFailPoints(const std::string &spec);

/** Disarm every site and reset activation counters. */
void clearFailPoints();

/** Arm from $HPIM_FAILPOINTS if set. Idempotent per process; the
 *  entry points (SweepRunner, Server, hpim_cli) all call it, so any
 *  binary honours the variable. fatal() on a malformed value: an
 *  ignored chaos spec would silently test nothing. */
void configureFailPointsFromEnv();

/** @return sorted names of every registered site. */
std::vector<std::string> failPointSites();

/** @return true iff any site is currently armed. */
bool failPointsArmed();

// ------------------------------------------------------- syscall wrappers
//
// Each wrapper consults @p fp, then either performs the real syscall
// or produces the injected failure (errno set exactly as the kernel
// would). ShortWrite performs a *real* transfer of min(size, k)
// bytes, so retry loops re-issue against genuinely persisted data.
// AllocFail throws std::bad_alloc from the wrapper.

/** write(2) with injection. */
ssize_t fpWrite(FailPoint &fp, int fd, const void *data,
                std::size_t size);

/** fsync(2) with injection (FsyncFail/Enospc/Eio/Eintr). */
int fpFsync(FailPoint &fp, int fd);

/** rename(2) with injection (RenameFail/Enospc/Eio). */
int fpRename(FailPoint &fp, const char *from, const char *to);

/** open(2) with injection (Enospc/Eio/Eintr). */
int fpOpen(FailPoint &fp, const char *path, int flags,
           unsigned int mode);

/** send(2) with injection; ShortWrite caps the transfer. */
ssize_t fpSend(FailPoint &fp, int fd, const void *data,
               std::size_t size, int flags);

/** read(2) with injection; ShortWrite caps the transfer. */
ssize_t fpRecv(FailPoint &fp, int fd, void *data, std::size_t size);

/**
 * Fire @p fp and throw on an injected failure: IoError(@p op,
 * @p path, the outcome's errno) for errno-shaped outcomes (short
 * writes count as EIO here), std::bad_alloc for alloc. For sites
 * guarding whole-file operations (trace export, shard-merge reads)
 * where no single syscall is wrapped.
 */
void fpCheck(FailPoint &fp, const char *op, const std::string &path);

/**
 * write(2) the whole buffer through @p fp with bounded
 * retry-with-backoff for the transient outcomes: EINTR and short
 * writes retry (with an exponential microsleep once they repeat
 * without progress); everything else -- and a transient storm that
 * exhausts the bound -- throws IoError carrying the errno. Does NOT
 * fsync; durability is the caller's separate, separately-injectable
 * step.
 */
void fpWriteAll(FailPoint &fp, int fd, const std::string &data,
                const std::string &path);

/** Consecutive zero-progress attempts fpWriteAll tolerates before
 *  escalating a transient failure to IoError. */
constexpr std::uint32_t failPointTransientRetryLimit = 64;

} // namespace hpim::harness

#endif // HPIM_HARNESS_FAILPOINT_HH
