#include "harness/table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace hpim::harness {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    fatal_if(_headers.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    fatal_if(row.size() != _headers.size(), "row has ", row.size(),
             " cells; table has ", _headers.size(), " columns");
    _rows.push_back(std::move(row));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << std::left << std::setw(int(widths[c]))
               << cells[c] << ' ';
        }
        os << "|\n";
    };

    rule();
    line(_headers);
    rule();
    for (const auto &row : _rows)
        line(row);
    rule();
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(_headers);
    for (const auto &row : _rows)
        emit(row);
}

std::string
fmt(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string
fmtRatio(double value, int digits)
{
    return fmt(value, digits) + "x";
}

std::string
fmtPct(double value, int digits)
{
    return fmt(value, digits) + "%";
}

void
banner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(72, '=') << '\n'
       << "  " << title << '\n'
       << std::string(72, '=') << '\n';
}

} // namespace hpim::harness
