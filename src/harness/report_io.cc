#include "harness/report_io.hh"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "harness/failpoint.hh"
#include "harness/json.hh"
#include "harness/json_writer.hh"

namespace hpim::harness {

using hpim::rt::ExecutionReport;
using hpim::rt::placedOnFromName;
using hpim::rt::placedOnName;

namespace {

/** CSV version line; readCsv rejects any other version. */
const char *const kCsvVersionLine = "#hpim-report-csv v1";

// Covers every report serialization: CLI stdout, inspect_schedule
// files, journal record bodies (jsonString) and the daemon's
// encodeReport payloads. A relaxed-load no-op until armed.
FailPoint fpReportWrite("report.write");

/** Typed escalation of a stream that went bad mid-write. Streams
 *  hide the errno, so the best available classification is EIO. */
void
checkStream(const std::ostream &os, const char *what)
{
    if (!os)
        throw IoError("write", what, EIO);
}

/** CSV cells share the writer's lossless double format. */
std::string
num(double value)
{
    return json::numberToString(value);
}

// ---- Strict JSON object consumption. ------------------------------

/**
 * Walks one JSON object, handing out each known field exactly once;
 * finish() turns every entry nobody asked for into a ParseError, so
 * unknown and duplicated fields are both caught.
 */
class ObjectReader
{
  public:
    explicit ObjectReader(const json::Value &value) : _value(value)
    {
        if (!value.isObject())
            throw ParseError("expected a JSON object", value.line);
        _used.assign(value.object.size(), false);
    }

    const json::Value &
    get(const char *key)
    {
        const json::Value *found = nullptr;
        for (std::size_t i = 0; i < _value.object.size(); ++i) {
            if (_value.object[i].first != key)
                continue;
            if (found)
                throw ParseError("duplicate field",
                                 _value.object[i].second.line, key);
            found = &_value.object[i].second;
            _used[i] = true;
        }
        if (!found)
            throw ParseError("missing field", _value.line, key);
        return *found;
    }

    double
    number(const char *key)
    {
        return get(key).asDouble();
    }

    std::uint64_t
    u64(const char *key)
    {
        return get(key).asUInt64();
    }

    std::uint32_t
    u32(const char *key)
    {
        std::uint64_t value = get(key).asUInt64();
        if (value > std::numeric_limits<std::uint32_t>::max())
            throw ParseError("value out of 32-bit range", _value.line,
                             key);
        return static_cast<std::uint32_t>(value);
    }

    std::string
    str(const char *key)
    {
        return get(key).asString();
    }

    /** Every field must have been consumed. */
    void
    finish() const
    {
        for (std::size_t i = 0; i < _value.object.size(); ++i)
            if (!_used[i])
                throw ParseError("unknown field",
                                 _value.object[i].second.line,
                                 _value.object[i].first);
    }

  private:
    const json::Value &_value;
    std::vector<bool> _used;
};

// ---- Strict CSV cell parsing. -------------------------------------

double
csvDouble(const std::string &cell, std::size_t line, const char *col)
{
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(cell.c_str(), &end);
    if (cell.empty() || end != cell.c_str() + cell.size())
        throw ParseError("expected a number, got '" + cell + "'", line,
                         col);
    return value;
}

std::uint64_t
csvU64(const std::string &cell, std::size_t line, const char *col)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(cell.c_str(), &end, 10);
    if (cell.empty() || end != cell.c_str() + cell.size()
        || cell[0] == '-' || errno == ERANGE)
        throw ParseError("expected a non-negative integer, got '"
                             + cell + "'",
                         line, col);
    return value;
}

std::uint32_t
csvU32(const std::string &cell, std::size_t line, const char *col)
{
    std::uint64_t value = csvU64(cell, line, col);
    if (value > std::numeric_limits<std::uint32_t>::max())
        throw ParseError("value out of 32-bit range", line, col);
    return static_cast<std::uint32_t>(value);
}

} // namespace

void
writeCsvHeader(std::ostream &os)
{
    os << "config,workload,steps,step_s,op_s,data_movement_s,sync_s,"
          "cpu_busy_s,progr_busy_s,fixed_unit_s,fixed_utilization,"
          "host_launches,recursive_launches,link_bytes,"
          "internal_bytes,energy_per_step_j,avg_power_w,edp,"
          "transient_faults,kernel_stalls,retries,ops_degraded,"
          "ops_evicted,retry_backoff_s,banks_failed,units_lost,"
          "throttle_events\n";
}

void
writeCsvRow(std::ostream &os, const ExecutionReport &report)
{
    os << report.configName << ',' << report.workloadName << ','
       << report.stepsSimulated << ',' << num(report.stepSec) << ','
       << num(report.opSec) << ',' << num(report.dataMovementSec)
       << ',' << num(report.syncSec) << ',' << num(report.cpuBusySec)
       << ',' << num(report.progrBusySec) << ','
       << num(report.fixedUnitSeconds) << ','
       << num(report.fixedUtilization) << ',' << report.hostLaunches
       << ',' << report.recursiveLaunches << ','
       << num(report.linkBytes) << ',' << num(report.internalBytes)
       << ',' << num(report.energyPerStepJ) << ','
       << num(report.averagePowerW) << ',' << num(report.edp) << ','
       << report.transientFaults << ',' << report.kernelStalls << ','
       << report.retries << ',' << report.opsDegraded << ','
       << report.opsEvicted << ',' << num(report.retryBackoffSec)
       << ',' << report.banksFailed << ',' << report.unitsLost << ','
       << report.throttleEvents << '\n';
}

void
writeCsv(std::ostream &os, const std::vector<ExecutionReport> &reports)
{
    fpCheck(fpReportWrite, "write", "report csv stream");
    os << kCsvVersionLine << '\n';
    writeCsvHeader(os);
    for (const auto &report : reports)
        writeCsvRow(os, report);
    checkStream(os, "report csv stream");
}

void
writeJson(std::ostream &os, const ExecutionReport &report)
{
    fpCheck(fpReportWrite, "write", "report json stream");
    json::Writer w(os);
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(reportSchemaVersion));
    w.field("config", report.configName);
    w.field("workload", report.workloadName);
    w.field("steps", report.stepsSimulated);
    w.field("makespan_s", report.makespanSec);
    w.field("step_s", report.stepSec);

    w.key("breakdown").beginObject();
    w.field("op_s", report.opSec);
    w.field("data_movement_s", report.dataMovementSec);
    w.field("sync_s", report.syncSec);
    w.endObject();

    w.key("occupancy").beginObject();
    w.field("cpu_busy_s", report.cpuBusySec);
    w.field("progr_busy_s", report.progrBusySec);
    w.field("fixed_unit_s", report.fixedUnitSeconds);
    w.endObject();

    w.field("fixed_utilization", report.fixedUtilization);

    w.key("launches").beginObject();
    w.field("host", report.hostLaunches);
    w.field("recursive", report.recursiveLaunches);
    w.endObject();

    w.key("traffic").beginObject();
    w.field("link_bytes", report.linkBytes);
    w.field("internal_bytes", report.internalBytes);
    w.endObject();

    w.key("energy").beginObject();
    w.field("cpu_j", report.cpuEnergyJ);
    w.field("progr_j", report.progrEnergyJ);
    w.field("fixed_j", report.fixedEnergyJ);
    w.field("dram_j", report.dramEnergyJ);
    w.field("total_j", report.totalEnergyJ);
    w.endObject();

    w.field("energy_per_step_j", report.energyPerStepJ);
    w.field("avg_power_w", report.averagePowerW);
    w.field("edp", report.edp);

    w.key("placements").beginObject();
    for (const auto &[placement, count] : report.opsByPlacement)
        w.field(placedOnName(placement), count);
    w.endObject();

    w.key("resilience").beginObject();
    w.field("transient_faults", report.transientFaults);
    w.field("kernel_stalls", report.kernelStalls);
    w.field("retries", report.retries);
    w.field("ops_degraded", report.opsDegraded);
    w.field("ops_evicted", report.opsEvicted);
    w.field("retry_backoff_s", report.retryBackoffSec);
    w.field("banks_failed", report.banksFailed);
    w.field("units_lost", report.unitsLost);
    w.field("throttle_events", report.throttleEvents);
    w.key("capacity_timeline").beginArray();
    for (const auto &sample : report.capacityTimeline) {
        w.beginArray();
        w.value(sample.timeSec);
        w.value(sample.units);
        w.endArray();
    }
    w.endArray();
    w.endObject();

    w.key("metrics").beginArray();
    for (const auto &metric : report.metrics) {
        w.beginObject();
        w.field("name", metric.name);
        w.field("kind", metricKindName(metric.kind));
        switch (metric.kind) {
          case obs::MetricKind::Counter:
            w.field("count", metric.count);
            break;
          case obs::MetricKind::Gauge:
            w.field("value", metric.value);
            break;
          case obs::MetricKind::Histogram:
            w.field("count", metric.count);
            w.field("sum", metric.sum);
            w.field("min", metric.min);
            w.field("max", metric.max);
            w.key("buckets").beginArray();
            for (const auto &bucket : metric.buckets) {
                w.beginArray();
                w.value(bucket.index);
                w.value(bucket.count);
                w.endArray();
            }
            w.endArray();
            break;
        }
        w.endObject();
    }
    w.endArray();

    w.endObject();
    checkStream(os, "report json stream");
}

std::string
jsonString(const ExecutionReport &report)
{
    std::ostringstream os;
    writeJson(os, report);
    return os.str();
}

ExecutionReport
reportFromJson(const json::Value &root)
{
    ObjectReader top(root);

    int version = static_cast<int>(top.get("schema_version").asInt64());
    if (version != reportSchemaVersion)
        throw ParseError("unsupported schema version "
                             + std::to_string(version) + " (expected "
                             + std::to_string(reportSchemaVersion)
                             + ")",
                         root.line, "schema_version");

    ExecutionReport report;
    report.configName = top.str("config");
    report.workloadName = top.str("workload");
    report.stepsSimulated = top.u32("steps");
    report.makespanSec = top.number("makespan_s");
    report.stepSec = top.number("step_s");

    ObjectReader breakdown(top.get("breakdown"));
    report.opSec = breakdown.number("op_s");
    report.dataMovementSec = breakdown.number("data_movement_s");
    report.syncSec = breakdown.number("sync_s");
    breakdown.finish();

    ObjectReader occupancy(top.get("occupancy"));
    report.cpuBusySec = occupancy.number("cpu_busy_s");
    report.progrBusySec = occupancy.number("progr_busy_s");
    report.fixedUnitSeconds = occupancy.number("fixed_unit_s");
    occupancy.finish();

    report.fixedUtilization = top.number("fixed_utilization");

    ObjectReader launches(top.get("launches"));
    report.hostLaunches = launches.u64("host");
    report.recursiveLaunches = launches.u64("recursive");
    launches.finish();

    ObjectReader traffic(top.get("traffic"));
    report.linkBytes = traffic.number("link_bytes");
    report.internalBytes = traffic.number("internal_bytes");
    traffic.finish();

    ObjectReader energy(top.get("energy"));
    report.cpuEnergyJ = energy.number("cpu_j");
    report.progrEnergyJ = energy.number("progr_j");
    report.fixedEnergyJ = energy.number("fixed_j");
    report.dramEnergyJ = energy.number("dram_j");
    report.totalEnergyJ = energy.number("total_j");
    energy.finish();

    report.energyPerStepJ = top.number("energy_per_step_j");
    report.averagePowerW = top.number("avg_power_w");
    report.edp = top.number("edp");

    const json::Value &placements = top.get("placements");
    if (!placements.isObject())
        throw ParseError("expected an object", placements.line,
                         "placements");
    for (const auto &[name, count] : placements.object) {
        rt::PlacedOn placement;
        if (!placedOnFromName(name, placement))
            throw ParseError("unknown placement '" + name + "'",
                             count.line, "placements");
        if (report.opsByPlacement.count(placement))
            throw ParseError("duplicate placement '" + name + "'",
                             count.line, "placements");
        report.opsByPlacement[placement] = count.asUInt64();
    }

    ObjectReader resilience(top.get("resilience"));
    report.transientFaults = resilience.u64("transient_faults");
    report.kernelStalls = resilience.u64("kernel_stalls");
    report.retries = resilience.u64("retries");
    report.opsDegraded = resilience.u64("ops_degraded");
    report.opsEvicted = resilience.u64("ops_evicted");
    report.retryBackoffSec = resilience.number("retry_backoff_s");
    report.banksFailed = resilience.u32("banks_failed");
    report.unitsLost = resilience.u32("units_lost");
    report.throttleEvents = resilience.u64("throttle_events");
    const json::Value &timeline = resilience.get("capacity_timeline");
    if (!timeline.isArray())
        throw ParseError("expected an array", timeline.line,
                         "capacity_timeline");
    for (const json::Value &sample : timeline.array) {
        if (!sample.isArray() || sample.array.size() != 2)
            throw ParseError("expected a [time, units] pair",
                             sample.line, "capacity_timeline");
        ExecutionReport::CapacitySample cs;
        cs.timeSec = sample.array[0].asDouble();
        std::uint64_t units = sample.array[1].asUInt64();
        if (units > std::numeric_limits<std::uint32_t>::max())
            throw ParseError("units out of 32-bit range", sample.line,
                             "capacity_timeline");
        cs.units = static_cast<std::uint32_t>(units);
        report.capacityTimeline.push_back(cs);
    }
    resilience.finish();

    const json::Value &metrics = top.get("metrics");
    if (!metrics.isArray())
        throw ParseError("expected an array", metrics.line, "metrics");
    for (const json::Value &entry : metrics.array) {
        ObjectReader metric(entry);
        obs::MetricSample sample;
        sample.name = metric.str("name");
        std::string kind = metric.str("kind");
        if (kind == "counter") {
            sample.kind = obs::MetricKind::Counter;
            sample.count = metric.u64("count");
        } else if (kind == "gauge") {
            sample.kind = obs::MetricKind::Gauge;
            sample.value = metric.number("value");
        } else if (kind == "histogram") {
            sample.kind = obs::MetricKind::Histogram;
            sample.count = metric.u64("count");
            sample.sum = metric.number("sum");
            sample.min = metric.number("min");
            sample.max = metric.number("max");
            const json::Value &buckets = metric.get("buckets");
            if (!buckets.isArray())
                throw ParseError("expected an array", buckets.line,
                                 "buckets");
            for (const json::Value &bucket : buckets.array) {
                if (!bucket.isArray() || bucket.array.size() != 2)
                    throw ParseError("expected an [index, count] pair",
                                     bucket.line, "buckets");
                obs::HistogramBucket hb;
                std::uint64_t index = bucket.array[0].asUInt64();
                if (index >= obs::kHistogramBuckets)
                    throw ParseError("bucket index out of range",
                                     bucket.line, "buckets");
                hb.index = static_cast<std::uint32_t>(index);
                hb.count = bucket.array[1].asUInt64();
                sample.buckets.push_back(hb);
            }
        } else {
            throw ParseError("unknown metric kind '" + kind + "'",
                             entry.line, "kind");
        }
        metric.finish();
        report.metrics.push_back(std::move(sample));
    }

    top.finish();
    return report;
}

ExecutionReport
readJson(const std::string &text)
{
    try {
        return reportFromJson(json::parse(text));
    } catch (const json::Error &e) {
        throw ParseError(e.what(), e.line);
    }
}

std::vector<ExecutionReport>
readCsv(std::istream &is)
{
    std::string line;
    std::size_t line_no = 1;
    if (!std::getline(is, line) || line != kCsvVersionLine)
        throw ParseError("missing '" + std::string(kCsvVersionLine)
                             + "' version line",
                         line_no);

    std::ostringstream expected_os;
    writeCsvHeader(expected_os);
    std::string expected = expected_os.str();
    expected.pop_back(); // writeCsvHeader appends '\n'
    ++line_no;
    if (!std::getline(is, line) || line != expected)
        throw ParseError("header row does not match CSV v"
                             + std::to_string(reportCsvVersion),
                         line_no);

    // Column names, for error messages.
    std::vector<std::string> columns;
    {
        std::istringstream hs(expected);
        std::string col;
        while (std::getline(hs, col, ','))
            columns.push_back(col);
    }

    std::vector<ExecutionReport> reports;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            throw ParseError("blank row", line_no);
        std::vector<std::string> cells;
        std::string::size_type start = 0;
        for (;;) {
            auto comma = line.find(',', start);
            cells.push_back(line.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (cells.size() != columns.size())
            throw ParseError("expected "
                                 + std::to_string(columns.size())
                                 + " columns, got "
                                 + std::to_string(cells.size()),
                             line_no);

        std::size_t c = 0;
        auto col = [&]() { return columns[c].c_str(); };
        ExecutionReport r;
        r.configName = cells[c++];
        r.workloadName = cells[c++];
        r.stepsSimulated = csvU32(cells[c], line_no, col()); ++c;
        r.stepSec = csvDouble(cells[c], line_no, col()); ++c;
        r.opSec = csvDouble(cells[c], line_no, col()); ++c;
        r.dataMovementSec = csvDouble(cells[c], line_no, col()); ++c;
        r.syncSec = csvDouble(cells[c], line_no, col()); ++c;
        r.cpuBusySec = csvDouble(cells[c], line_no, col()); ++c;
        r.progrBusySec = csvDouble(cells[c], line_no, col()); ++c;
        r.fixedUnitSeconds = csvDouble(cells[c], line_no, col()); ++c;
        r.fixedUtilization = csvDouble(cells[c], line_no, col()); ++c;
        r.hostLaunches = csvU64(cells[c], line_no, col()); ++c;
        r.recursiveLaunches = csvU64(cells[c], line_no, col()); ++c;
        r.linkBytes = csvDouble(cells[c], line_no, col()); ++c;
        r.internalBytes = csvDouble(cells[c], line_no, col()); ++c;
        r.energyPerStepJ = csvDouble(cells[c], line_no, col()); ++c;
        r.averagePowerW = csvDouble(cells[c], line_no, col()); ++c;
        r.edp = csvDouble(cells[c], line_no, col()); ++c;
        r.transientFaults = csvU64(cells[c], line_no, col()); ++c;
        r.kernelStalls = csvU64(cells[c], line_no, col()); ++c;
        r.retries = csvU64(cells[c], line_no, col()); ++c;
        r.opsDegraded = csvU64(cells[c], line_no, col()); ++c;
        r.opsEvicted = csvU64(cells[c], line_no, col()); ++c;
        r.retryBackoffSec = csvDouble(cells[c], line_no, col()); ++c;
        r.banksFailed = csvU32(cells[c], line_no, col()); ++c;
        r.unitsLost = csvU32(cells[c], line_no, col()); ++c;
        r.throttleEvents = csvU64(cells[c], line_no, col()); ++c;
        reports.push_back(std::move(r));
    }
    return reports;
}

} // namespace hpim::harness
