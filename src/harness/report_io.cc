#include "harness/report_io.hh"

#include <iomanip>

namespace hpim::harness {

using hpim::rt::ExecutionReport;
using hpim::rt::placedOnName;

void
writeCsvHeader(std::ostream &os)
{
    os << "config,workload,steps,step_s,op_s,data_movement_s,sync_s,"
          "cpu_busy_s,progr_busy_s,fixed_unit_s,fixed_utilization,"
          "host_launches,recursive_launches,link_bytes,"
          "internal_bytes,energy_per_step_j,avg_power_w,edp,"
          "transient_faults,kernel_stalls,retries,ops_degraded,"
          "ops_evicted,retry_backoff_s,banks_failed,units_lost,"
          "throttle_events\n";
}

void
writeCsvRow(std::ostream &os, const ExecutionReport &report)
{
    os << std::setprecision(9) << report.configName << ','
       << report.workloadName << ',' << report.stepsSimulated << ','
       << report.stepSec << ',' << report.opSec << ','
       << report.dataMovementSec << ',' << report.syncSec << ','
       << report.cpuBusySec << ',' << report.progrBusySec << ','
       << report.fixedUnitSeconds << ',' << report.fixedUtilization
       << ',' << report.hostLaunches << ','
       << report.recursiveLaunches << ',' << report.linkBytes << ','
       << report.internalBytes << ',' << report.energyPerStepJ << ','
       << report.averagePowerW << ',' << report.edp << ','
       << report.transientFaults << ',' << report.kernelStalls << ','
       << report.retries << ',' << report.opsDegraded << ','
       << report.opsEvicted << ',' << report.retryBackoffSec << ','
       << report.banksFailed << ',' << report.unitsLost << ','
       << report.throttleEvents << '\n';
}

void
writeCsv(std::ostream &os, const std::vector<ExecutionReport> &reports)
{
    writeCsvHeader(os);
    for (const auto &report : reports)
        writeCsvRow(os, report);
}

void
writeJson(std::ostream &os, const ExecutionReport &report)
{
    os << std::setprecision(9) << "{"
       << "\"config\":\"" << report.configName << "\","
       << "\"workload\":\"" << report.workloadName << "\","
       << "\"steps\":" << report.stepsSimulated << ","
       << "\"step_s\":" << report.stepSec << ","
       << "\"breakdown\":{"
       << "\"op_s\":" << report.opSec << ","
       << "\"data_movement_s\":" << report.dataMovementSec << ","
       << "\"sync_s\":" << report.syncSec << "},"
       << "\"fixed_utilization\":" << report.fixedUtilization << ","
       << "\"energy_per_step_j\":" << report.energyPerStepJ << ","
       << "\"avg_power_w\":" << report.averagePowerW << ","
       << "\"edp\":" << report.edp << ","
       << "\"placements\":{";
    bool first = true;
    for (const auto &[placement, count] : report.opsByPlacement) {
        if (!first)
            os << ',';
        first = false;
        os << "\"" << placedOnName(placement) << "\":" << count;
    }
    os << "},"
       << "\"resilience\":{"
       << "\"transient_faults\":" << report.transientFaults << ","
       << "\"kernel_stalls\":" << report.kernelStalls << ","
       << "\"retries\":" << report.retries << ","
       << "\"ops_degraded\":" << report.opsDegraded << ","
       << "\"ops_evicted\":" << report.opsEvicted << ","
       << "\"retry_backoff_s\":" << report.retryBackoffSec << ","
       << "\"banks_failed\":" << report.banksFailed << ","
       << "\"units_lost\":" << report.unitsLost << ","
       << "\"throttle_events\":" << report.throttleEvents << ","
       << "\"capacity_timeline\":[";
    first = true;
    for (const auto &sample : report.capacityTimeline) {
        if (!first)
            os << ',';
        first = false;
        os << "[" << sample.timeSec << "," << sample.units << "]";
    }
    os << "]}}";
}

} // namespace hpim::harness
