/**
 * @file
 * A minimal strict JSON reader for the harness.
 *
 * Parses the JSON that report_io writes (reports, journal records)
 * back into a document tree. Numbers keep their raw source text so
 * 64-bit counters round-trip losslessly instead of being squeezed
 * through a double. Objects preserve entry order and keep duplicate
 * keys, so a strict consumer can detect both unknown and repeated
 * fields. Every node carries the 1-based source line it started on
 * for error messages.
 */

#ifndef HPIM_HARNESS_JSON_HH
#define HPIM_HARNESS_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hpim::harness::json {

/** Malformed JSON text or a type/number conversion that cannot work. */
struct Error : std::runtime_error
{
    Error(const std::string &message, std::size_t line_number)
        : std::runtime_error("json: " + message + " (line "
                             + std::to_string(line_number) + ")"),
          line(line_number)
    {
    }

    std::size_t line; ///< 1-based source line of the offence
};

/** One JSON node. See file comment for the representation choices. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    std::size_t line = 0; ///< 1-based line the token started on

    bool boolean = false;
    std::string number; ///< raw numeric token, e.g. "-1.25e-3"
    std::string string; ///< decoded string contents
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return boolean contents; throws Error on kind mismatch. */
    bool asBool() const;

    /** @return string contents; throws Error on kind mismatch. */
    const std::string &asString() const;

    /** @return numeric token as a double; throws Error. */
    double asDouble() const;

    /** @return integral token as int64; throws Error on kind
     *  mismatch, a fractional value, or overflow. */
    std::int64_t asInt64() const;

    /** @return non-negative integral token as uint64; throws Error. */
    std::uint64_t asUInt64() const;

    /** @return first entry named @p key, or nullptr. Object only. */
    const Value *find(const std::string &key) const;

    /** @return entry named @p key; throws Error when absent. */
    const Value &at(const std::string &key) const;
};

/**
 * Parse one complete JSON document. Trailing non-whitespace after the
 * document is an Error, as is any syntax violation.
 */
Value parse(const std::string &text);

/** Write @p text JSON-escaped (quotes, backslashes, control chars). */
void escape(std::string &out, const std::string &text);

} // namespace hpim::harness::json

#endif // HPIM_HARNESS_JSON_HH
