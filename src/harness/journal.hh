/**
 * @file
 * Crash-safe sweep journal (docs/RESILIENCE.md, "Process-level
 * resilience").
 *
 * A journal directory holds one *segment* per report-producing sweep
 * a binary runs (fault_sweep runs two, most benches one). Segment k
 * is a pair of files:
 *
 *   sweep-k.meta.json     header: schema version, base seed, grid
 *                         hash, point count. Written once via atomic
 *                         tmp-file + rename (both fsync'd), so a
 *                         crash never leaves a half header.
 *   sweep-k.records.jsonl append-only log, one JSON record per
 *                         completed point:
 *                         {"index":i,"point_hash":h,"report":{...}}
 *                         Each append is a single write + fsync, so a
 *                         crash can only truncate the final record.
 *
 * On reopen the header is validated against the current run -- a
 * different grid, seed, point count or schema version is rejected
 * with a fatal error instead of silently mixing results -- and the
 * record log is replayed. A corrupt or truncated tail record (the
 * crash case) is dropped with a warning; everything before it is
 * reused. Reports are serialized with max_digits10 precision
 * (report_io), so a resumed sweep is bit-identical to an
 * uninterrupted one.
 */

#ifndef HPIM_HARNESS_JOURNAL_HH
#define HPIM_HARNESS_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rt/execution_report.hh"

namespace hpim::harness {

/** Version of the journal directory layout and record format. */
constexpr int journalSchemaVersion = 1;

/** FNV-1a over raw bytes; the sweep grid/point hash primitive. */
std::uint64_t hashBytes(const void *data, std::size_t size,
                        std::uint64_t seed = 0xcbf29ce484222325ULL);

/** hashBytes over a string's characters. */
std::uint64_t hashString(std::string_view text, std::uint64_t seed);

/** hashBytes over one little-endian 64-bit word. */
std::uint64_t hashU64(std::uint64_t value, std::uint64_t seed);

/** One sweep's crash-safe record log. See file comment. */
class SweepJournal
{
  public:
    /** Identity of the sweep a segment belongs to. */
    struct Header
    {
        int schemaVersion = journalSchemaVersion;
        std::uint64_t baseSeed = 0;
        std::uint64_t gridHash = 0;
        std::uint64_t points = 0;
    };

    /** One replayed record. */
    struct Record
    {
        std::size_t index = 0;
        std::uint64_t pointHash = 0;
        hpim::rt::ExecutionReport report;
    };

    /**
     * Open segment @p segment of the journal in @p dir, creating the
     * directory and files on first use. When the segment already
     * exists its header must equal @p header (fatal otherwise) and
     * its records are replayed into loaded().
     */
    SweepJournal(const std::string &dir, std::uint32_t segment,
                 const Header &header);

    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Records replayed from an earlier run of this segment. */
    const std::vector<Record> &loaded() const { return _loaded; }

    /**
     * Durably append one completed point. Thread-safe; the record is
     * fsync'd before return, so after a crash every append that
     * returned is replayable.
     */
    void append(std::size_t index, std::uint64_t point_hash,
                const hpim::rt::ExecutionReport &report);

  private:
    void writeHeader(const std::string &path, const Header &header);
    void checkHeader(const std::string &path, const Header &expect);
    void replay(const std::string &path, const Header &header);

    std::mutex _mutex;
    std::string _recordsPath;
    int _fd = -1;
    std::vector<Record> _loaded;
};

} // namespace hpim::harness

#endif // HPIM_HARNESS_JOURNAL_HH
