/**
 * @file
 * Crash-safe, shardable sweep journal (docs/RESILIENCE.md,
 * "Process-level resilience"; docs/SWEEP_ENGINE.md, "Sharded
 * distributed sweeps").
 *
 * A journal directory holds one *segment* per report-producing sweep
 * a binary runs (fault_sweep runs two, most benches one). Unsharded,
 * segment k is a pair of files:
 *
 *   sweep-k.meta.json     header: schema version, base seed, grid
 *                         hash, point count, shard assignment.
 *                         Written once via atomic tmp-file + rename
 *                         (both fsync'd), so a crash never leaves a
 *                         half header.
 *   sweep-k.records.jsonl append-only log, one JSON record per
 *                         completed point:
 *                         {"index":i,"point_hash":h,"report":{...}}
 *                         Each append is a single write + fsync, so a
 *                         crash can only truncate the final record.
 *
 * With `--shard i/N` the same directory is shared by N cooperating
 * processes (or hosts on a shared filesystem). Shard i of N owns the
 * deterministic slice { j : j % N == i-1 } and writes its own pair
 *
 *   sweep-k.shard-<i>of<N>.meta.json
 *   sweep-k.shard-<i>of<N>.records.jsonl
 *
 * plus transient per-point *claim* files `sweep-k.claim-<j>` that
 * arbitrate work-stealing: ownership of a point is an exclusive
 * flock(2) on its claim file, so exactly one process simulates it at
 * a time and a SIGKILLed owner's claim is auto-released by the
 * kernel (the on-disk claim record then reads as *stale* and any
 * sibling may take the point over). `hpim_merge` validates the shard
 * headers and fuses the shard record logs back into the unsharded
 * layout above.
 *
 * On reopen the header is validated against the current run -- a
 * different grid, seed, point count, shard assignment or schema
 * version is rejected with a fatal error instead of silently mixing
 * results -- and the record log is replayed. A corrupt or truncated
 * tail record (the crash case) is dropped with a warning; everything
 * before it is reused. Reports are serialized with max_digits10
 * precision (report_io), so a resumed sweep is bit-identical to an
 * uninterrupted one.
 */

#ifndef HPIM_HARNESS_JOURNAL_HH
#define HPIM_HARNESS_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rt/execution_report.hh"

namespace hpim::harness {

/** Version of the journal directory layout and record format.
 *  v2 added the shard assignment (shard_index/shard_count) to the
 *  segment header. */
constexpr int journalSchemaVersion = 2;

/** FNV-1a over raw bytes; the sweep grid/point hash primitive. */
std::uint64_t hashBytes(const void *data, std::size_t size,
                        std::uint64_t seed = 0xcbf29ce484222325ULL);

/** hashBytes over a string's characters. */
std::uint64_t hashString(std::string_view text, std::uint64_t seed);

/** hashBytes over one little-endian 64-bit word. */
std::uint64_t hashU64(std::uint64_t value, std::uint64_t seed);

/**
 * Identity of one journaled point: mixes (gridHash, index) so a
 * record can only replay into the grid slot it was computed for.
 */
std::uint64_t journalPointHash(std::uint64_t grid_hash,
                               std::size_t index);

/** 1-based shard that owns point @p index of an N-way sharded grid. */
std::uint32_t journalShardOwner(std::size_t index,
                                std::uint32_t shard_count);

/** Meta-file path of segment @p segment for one shard (1/1 uses the
 *  legacy unsharded name). */
std::string journalMetaPath(const std::string &dir,
                            std::uint32_t segment,
                            std::uint32_t shard_index = 1,
                            std::uint32_t shard_count = 1);

/** Records-file path; same naming rule as journalMetaPath. */
std::string journalRecordsPath(const std::string &dir,
                               std::uint32_t segment,
                               std::uint32_t shard_index = 1,
                               std::uint32_t shard_count = 1);

/** Claim-file path of point @p index of segment @p segment. */
std::string journalClaimPath(const std::string &dir,
                             std::uint32_t segment, std::size_t index);

/** A journal header or claim file that cannot be parsed. */
struct JournalFormatError : std::runtime_error
{
    JournalFormatError(const std::string &message, std::string path,
                       std::string field_name = {})
        : std::runtime_error("journal file '" + path + "': " + message
                             + (field_name.empty()
                                    ? ""
                                    : " (field '" + field_name + "')")),
          file(std::move(path)), field(std::move(field_name))
    {
    }

    std::string file;  ///< offending file
    std::string field; ///< offending header field, may be empty
};

/** One sweep's crash-safe record log. See file comment. */
class SweepJournal
{
  public:
    /** Identity of the sweep a segment belongs to. */
    struct Header
    {
        int schemaVersion = journalSchemaVersion;
        std::uint64_t baseSeed = 0;
        std::uint64_t gridHash = 0;
        std::uint64_t points = 0;
        std::uint32_t shardIndex = 1; ///< 1-based, <= shardCount
        std::uint32_t shardCount = 1;
    };

    /** One replayed record. */
    struct Record
    {
        std::size_t index = 0;
        std::uint64_t pointHash = 0;
        hpim::rt::ExecutionReport report;
    };

    /**
     * Open this shard's segment @p segment of the journal in @p dir,
     * creating the directory and files on first use. When the
     * segment already exists its header must equal @p header (fatal
     * otherwise) and its records are replayed into loaded().
     */
    SweepJournal(const std::string &dir, std::uint32_t segment,
                 const Header &header);

    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Records replayed from an earlier run of this segment. */
    const std::vector<Record> &loaded() const { return _loaded; }

    /**
     * Durably append one completed point. Thread-safe; the record is
     * fsync'd before return, so after a crash every append that
     * returned is replayable.
     *
     * Transient IO conditions (EINTR, short writes) are retried with
     * bounded backoff inside the call. A durable failure (ENOSPC,
     * EIO, a rejected fsync) *seals* the journal -- the records file
     * is cut back to the last fsync'd record, exactly the state a
     * SIGKILL at that point would leave -- and throws IoError. The
     * caller should escalate to resumableExitCode so the operator
     * can clear the condition and resume byte-identically; further
     * appends on a sealed journal throw immediately.
     */
    void append(std::size_t index, std::uint64_t point_hash,
                const hpim::rt::ExecutionReport &report);

  private:
    void checkHeader(const std::string &path, const Header &expect);
    void replay(const std::string &path, const Header &header);
    /** Cut the records file back to the durable watermark. */
    void seal();

    std::mutex _mutex;
    std::string _recordsPath;
    int _fd = -1;
    /** Bytes of _recordsPath known fsync'd (the seal watermark). */
    std::size_t _durableBytes = 0;
    bool _sealed = false;
    std::vector<Record> _loaded;
};

/**
 * Parse a segment header file. Throws JournalFormatError on an
 * unreadable or malformed file. When the file's schema_version
 * differs from journalSchemaVersion only schemaVersion is filled in
 * (older layouts cannot be parsed further); callers must check it
 * before trusting the other fields.
 */
SweepJournal::Header readJournalHeader(const std::string &path);

/** Atomically publish @p header at @p path (tmp + rename + fsync). */
void writeJournalHeaderFile(const std::string &path,
                            const SweepJournal::Header &header);

/** One syntactically valid record line of a records file. */
struct RawRecord
{
    std::size_t index = 0;
    std::uint64_t pointHash = 0;
    std::size_t lineNo = 0; ///< 1-based line in its file
    std::string line;       ///< exact record bytes, no trailing \n
};

/**
 * Tolerantly scan a records file: every record of the good prefix is
 * appended to @p out in file order. Scanning stops at the first
 * truncated or unparsable line (the mid-append crash, or a sibling
 * shard's in-flight write) -- @p tail_note, when non-null, receives a
 * one-line description of the dropped tail (empty when the whole
 * file parsed). @p good_bytes, when non-null, receives the byte
 * offset just past the last good record (what the file should be
 * truncated to on repair). @return false when the file does not
 * exist or cannot be read at all.
 */
bool scanJournalRecords(const std::string &path, std::uint64_t points,
                        std::vector<RawRecord> &out,
                        std::string *tail_note = nullptr,
                        std::size_t *good_bytes = nullptr);

/**
 * Exclusive ownership of one sweep point, arbitrated across shard
 * processes via flock(2) on the point's claim file.
 *
 * Ownership is granted only while the process holds the lock; a
 * SIGKILLed owner's lock is released by the kernel, so its points
 * become stealable without any timeout heuristic (the leftover claim
 * file -- the *stale claim* -- records which shard/pid died holding
 * it, purely for diagnostics). The destructor removes the claim file
 * and releases the lock, in that order, so by the time a sibling can
 * re-acquire the point either its record is durably journaled or the
 * owner abandoned it.
 */
class ShardClaim
{
  public:
    /**
     * Try to take ownership of point @p index of segment
     * @p segment. @return an engaged claim iff this process now owns
     * the point; disengaged when a live process already holds it.
     */
    static std::optional<ShardClaim>
    tryAcquire(const std::string &dir, std::uint32_t segment,
               std::size_t index, std::uint32_t shard_index);

    ~ShardClaim();

    ShardClaim(ShardClaim &&other) noexcept;
    ShardClaim &operator=(ShardClaim &&other) noexcept;
    ShardClaim(const ShardClaim &) = delete;
    ShardClaim &operator=(const ShardClaim &) = delete;

  private:
    ShardClaim(int fd, std::string path)
        : _fd(fd), _path(std::move(path))
    {
    }

    int _fd = -1;
    std::string _path;
};

} // namespace hpim::harness

#endif // HPIM_HARNESS_JOURNAL_HH
