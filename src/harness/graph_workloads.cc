#include "harness/graph_workloads.hh"

#include <cstdlib>
#include <iostream>
#include <ostream>

#include "harness/table_printer.hh"
#include "nn/graph_io.hh"
#include "sim/hash.hh"

namespace hpim::harness {

std::vector<GraphWorkload>
loadGraphWorkloads(const std::vector<std::string> &paths)
{
    std::vector<GraphWorkload> workloads;
    workloads.reserve(paths.size());
    for (const std::string &path : paths) {
        try {
            workloads.push_back(
                {path, std::make_shared<const nn::Graph>(
                           nn::loadGraphFile(path))});
        } catch (const nn::GraphParseError &e) {
            std::cerr << e.what() << "\n";
            std::exit(1);
        }
    }
    return workloads;
}

std::uint64_t
graphGridHash(const std::vector<baseline::SystemKind> &systems,
              const std::vector<GraphWorkload> &graphs,
              std::uint32_t steps)
{
    std::uint64_t hash = hpim::sim::hashString(
        "hpim GraphWorkload grid v1", 0xcbf29ce484222325ULL);
    for (baseline::SystemKind kind : systems)
        hash = hpim::sim::hashU64(static_cast<std::uint64_t>(kind),
                                  hash);
    for (const GraphWorkload &workload : graphs)
        hash = hpim::sim::hashU64(workload.graph->signature(), hash);
    return hpim::sim::hashU64(steps, hash);
}

void
runGraphAppendix(std::ostream &os, SweepRunner &runner,
                 const std::vector<GraphWorkload> &graphs,
                 const std::vector<baseline::SystemKind> &systems,
                 std::uint32_t steps)
{
    if (graphs.empty())
        return;

    const std::size_t count = graphs.size() * systems.size();
    auto reports = runner.mapReports(
        count, graphGridHash(systems, graphs, steps),
        [&](std::size_t i, hpim::sim::Rng &) {
            const GraphWorkload &workload = graphs[i / systems.size()];
            baseline::SystemKind kind = systems[i % systems.size()];
            return baseline::runSystemGraph(kind, *workload.graph,
                                            steps);
        });

    banner(os, "User graphs (--graph)");
    TablePrinter table({"graph", "config", "step (ms)", "op (ms)",
                        "data mv (ms)", "sync (ms)", "energy/step (J)",
                        "EDP"});
    for (std::size_t i = 0; i < count; ++i) {
        const GraphWorkload &workload = graphs[i / systems.size()];
        baseline::SystemKind kind = systems[i % systems.size()];
        const auto &report = reports[i];
        table.addRow({workload.graph->name(),
                      baseline::systemName(kind),
                      fmt(report.stepSec * 1e3, 1),
                      fmt(report.opSec * 1e3, 1),
                      fmt(report.dataMovementSec * 1e3, 1),
                      fmt(report.syncSec * 1e3, 1),
                      fmt(report.energyPerStepJ, 2),
                      fmt(report.edp, 4)});
    }
    table.print(os);
}

} // namespace hpim::harness
