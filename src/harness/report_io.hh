/**
 * @file
 * ExecutionReport serialization: CSV rows (for plotting scripts) and
 * a JSON object (for dashboards / regression tracking / the sweep
 * journal), plus the strict parsers that read both formats back.
 *
 * The on-disk formats are versioned (reportSchemaVersion): writeCsv
 * leads with a `#hpim-report-csv vN` line and writeJson emits a
 * `schema_version` field, and the readers reject any other version
 * instead of guessing. Doubles are written with max_digits10
 * precision, so a write -> read -> write cycle is byte-identical --
 * the property the crash-safe sweep journal (harness/journal) is
 * built on. Parse failures carry the offending line and field in a
 * typed ParseError rather than aborting, so a caller holding a
 * half-written file (the crash case) can drop the bad tail and keep
 * the good prefix.
 */

#ifndef HPIM_HARNESS_REPORT_IO_HH
#define HPIM_HARNESS_REPORT_IO_HH

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/execution_report.hh"

namespace hpim::harness {

namespace json {
class Value;
}

/**
 * Version of the serialized JSON report. v2 added the "metrics"
 * array (obs::MetricsRegistry snapshot).
 */
constexpr int reportSchemaVersion = 2;

/**
 * Version of the CSV layout, tracked separately: v2 of the JSON
 * schema left the CSV columns untouched (metrics are JSON-only), so
 * CSV documents remain v1 and stay readable by older tooling.
 */
constexpr int reportCsvVersion = 1;

/** A report document that cannot be parsed. */
struct ParseError : std::runtime_error
{
    ParseError(const std::string &message, std::size_t line_number = 0,
               std::string field_name = {})
        : std::runtime_error(
              "report parse error: " + message
              + (field_name.empty() ? "" : " (field '" + field_name + "')")
              + (line_number ? " at line " + std::to_string(line_number)
                             : "")),
          line(line_number), field(std::move(field_name))
    {
    }

    std::size_t line;  ///< 1-based line, 0 when unknown
    std::string field; ///< offending field/column, may be empty
};

/** Write the CSV header matching reportToCsvRow(). */
void writeCsvHeader(std::ostream &os);

/** Write one report as a CSV row. */
void writeCsvRow(std::ostream &os,
                 const hpim::rt::ExecutionReport &report);

/** Write a batch of reports as one versioned CSV document. Throws
 *  harness::IoError if the stream goes bad (or by injection via the
 *  `report.write` fail point). */
void writeCsv(std::ostream &os,
              const std::vector<hpim::rt::ExecutionReport> &reports);

/** Write one report as a JSON object (all fields, lossless). Throws
 *  harness::IoError like writeCsv. */
void writeJson(std::ostream &os,
               const hpim::rt::ExecutionReport &report);

/** @return writeJson output as a string. */
std::string jsonString(const hpim::rt::ExecutionReport &report);

/**
 * Parse one report from its JSON form. Strict: every known field
 * must be present exactly once, unknown fields and version
 * mismatches throw ParseError naming the line and field.
 */
hpim::rt::ExecutionReport readJson(const std::string &text);

/** Parse an already-parsed JSON object (journal records reuse this). */
hpim::rt::ExecutionReport reportFromJson(const json::Value &root);

/**
 * Parse a writeCsv document: version line, header, then one report
 * per row. Strict: a wrong version, an unexpected header, a row with
 * the wrong arity or a non-numeric cell throws ParseError with the
 * line and column name. Fields the CSV does not carry (per-device
 * energy, placements, capacity timeline) stay default-initialized;
 * only the JSON form is lossless.
 */
std::vector<hpim::rt::ExecutionReport> readCsv(std::istream &is);

} // namespace hpim::harness

#endif // HPIM_HARNESS_REPORT_IO_HH
