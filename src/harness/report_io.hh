/**
 * @file
 * ExecutionReport serialization: CSV rows (for plotting scripts) and
 * a small JSON object (for dashboards / regression tracking).
 */

#ifndef HPIM_HARNESS_REPORT_IO_HH
#define HPIM_HARNESS_REPORT_IO_HH

#include <ostream>
#include <vector>

#include "rt/execution_report.hh"

namespace hpim::harness {

/** Write the CSV header matching reportToCsvRow(). */
void writeCsvHeader(std::ostream &os);

/** Write one report as a CSV row. */
void writeCsvRow(std::ostream &os,
                 const hpim::rt::ExecutionReport &report);

/** Write a batch of reports as one CSV document. */
void writeCsv(std::ostream &os,
              const std::vector<hpim::rt::ExecutionReport> &reports);

/** Write one report as a JSON object. */
void writeJson(std::ostream &os,
               const hpim::rt::ExecutionReport &report);

} // namespace hpim::harness

#endif // HPIM_HARNESS_REPORT_IO_HH
