#include "harness/failpoint.hh"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "sim/hash.hh"
#include "sim/logging.hh"

namespace hpim::harness {

/** Parsed trigger + outcome of one armed site. */
struct FailPoint::Program
{
    enum class Trigger : std::uint8_t { After, Every, Prob };

    Trigger trigger = Trigger::After;
    std::uint64_t n = 0;    ///< After/Every parameter
    double p = 0.0;         ///< Prob probability
    std::uint64_t seed = 0; ///< Prob stream seed
    FailKind kind = FailKind::Eio;
    std::uint64_t bytes = 0; ///< ShortWrite byte cap
};

namespace {

/** Registration and arming both serialize on one mutex; fireSlow()
 *  (only reachable while some site is armed) takes it too, so a
 *  program can never be torn down under a running activation. */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, FailPoint *> sites;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

/** Uniform double in [0,1) from (seed, index), stable across runs. */
double
uniformAt(std::uint64_t seed, std::uint64_t index)
{
    const std::uint64_t h = hpim::sim::hashU64(index, seed);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

/** Friended helpers that need FailPoint's private internals. */
struct FailPointDetail
{
    /** Recompute the fast-path gate from the armed programs. Caller
     *  holds the registry mutex. */
    static void
    refreshArmedCount()
    {
        std::uint32_t armed = 0;
        for (const auto &[name, site] : registry().sites) {
            if (site->_program != nullptr)
                ++armed;
        }
        FailPoint::armedCount().store(armed,
                                      std::memory_order_relaxed);
    }

    /** Parse "trigger:outcome"; @return null for "off". */
    static FailPoint::Program *parseProgram(const std::string &text,
                                            const std::string &program);
};

const char *
failKindName(FailKind kind)
{
    switch (kind) {
      case FailKind::None: return "none";
      case FailKind::Enospc: return "enospc";
      case FailKind::Eintr: return "eintr";
      case FailKind::Eio: return "eio";
      case FailKind::ShortWrite: return "short";
      case FailKind::FsyncFail: return "fsync";
      case FailKind::RenameFail: return "rename";
      case FailKind::AllocFail: return "alloc";
    }
    return "none";
}

IoError::IoError(std::string operation, std::string file_path,
                 int error)
    : std::runtime_error("io error: " + operation + " '" + file_path
                         + "': " + std::strerror(error)),
      op(std::move(operation)), path(std::move(file_path)), err(error)
{
}

FailPoint::FailPoint(const char *site) : _site(site)
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    registry().sites[_site] = this;
}

FailPoint::~FailPoint()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    auto it = registry().sites.find(_site);
    if (it != registry().sites.end() && it->second == this)
        registry().sites.erase(it);
    delete _program;
    _program = nullptr;
    FailPointDetail::refreshArmedCount();
}

std::atomic<std::uint32_t> &
FailPoint::armedCount()
{
    static std::atomic<std::uint32_t> count{0};
    return count;
}

std::uint64_t
FailPoint::hits() const
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    return _hits;
}

FailDecision
FailPoint::fireSlow()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    if (_program == nullptr)
        return {};
    ++_hits;
    bool fail = false;
    switch (_program->trigger) {
      case Program::Trigger::After:
        // Pass N activations, fail the (N+1)th once, pass forever:
        // the one-shot mid-run crash.
        fail = _hits == _program->n + 1;
        break;
      case Program::Trigger::Every:
        fail = _program->n > 0 && _hits % _program->n == 0;
        break;
      case Program::Trigger::Prob:
        fail = uniformAt(_program->seed, _hits) < _program->p;
        break;
    }
    if (!fail)
        return {};
    return FailDecision{_program->kind, _program->bytes};
}

namespace {

// ------------------------------------------------------------ spec parser

std::string
trimmed(const std::string &text)
{
    std::size_t begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    std::size_t end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

std::uint64_t
parseSpecUint(const std::string &text, const std::string &program)
{
    char *end = nullptr;
    errno = 0;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()
        || text[0] == '-' || errno == ERANGE)
        throw FailPointError("'" + text
                             + "' is not an unsigned integer in '"
                             + program + "'");
    return value;
}

double
parseSpecProb(const std::string &text, const std::string &program)
{
    char *end = nullptr;
    errno = 0;
    double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()
        || value < 0.0 || value > 1.0)
        throw FailPointError("'" + text
                             + "' is not a probability in [0,1] in '"
                             + program + "'");
    return value;
}

/** Split "name(args)" into name and args; args empty when no parens. */
bool
splitCall(const std::string &text, std::string &name,
          std::string &args)
{
    std::size_t open = text.find('(');
    if (open == std::string::npos) {
        name = text;
        args.clear();
        return true;
    }
    if (text.back() != ')')
        return false;
    name = text.substr(0, open);
    args = text.substr(open + 1, text.size() - open - 2);
    return true;
}

FailKind
parseOutcome(const std::string &text, std::uint64_t &bytes,
             const std::string &program)
{
    std::string name, args;
    if (!splitCall(trimmed(text), name, args))
        throw FailPointError("malformed outcome '" + text + "' in '"
                             + program + "'");
    bytes = 0;
    if (name == "enospc") return FailKind::Enospc;
    if (name == "eintr") return FailKind::Eintr;
    if (name == "eio") return FailKind::Eio;
    if (name == "fsync") return FailKind::FsyncFail;
    if (name == "rename") return FailKind::RenameFail;
    if (name == "alloc") return FailKind::AllocFail;
    if (name == "short") {
        if (args.empty())
            throw FailPointError("short needs a byte count, e.g. "
                                 "short(8), in '" + program + "'");
        bytes = parseSpecUint(trimmed(args), program);
        return FailKind::ShortWrite;
    }
    throw FailPointError(
        "unknown outcome '" + name + "' in '" + program
        + "' (expected enospc, eintr, eio, short(K), fsync, rename "
          "or alloc)");
}

} // namespace

FailPoint::Program *
FailPointDetail::parseProgram(const std::string &text,
                              const std::string &program)
{
    std::size_t colon = text.find(':');
    const std::string trigger_text =
        trimmed(colon == std::string::npos ? text
                                           : text.substr(0, colon));
    std::string name, args;
    if (!splitCall(trigger_text, name, args))
        throw FailPointError("malformed trigger '" + trigger_text
                             + "' in '" + program + "'");
    if (name == "off") {
        if (colon != std::string::npos)
            throw FailPointError("'off' takes no outcome in '"
                                 + program + "'");
        return nullptr;
    }
    if (colon == std::string::npos)
        throw FailPointError(
            "missing ':outcome' in '" + program
            + "' (e.g. journal.append.write=after(3):enospc)");

    auto parsed = std::make_unique<FailPoint::Program>();
    if (name == "after") {
        parsed->trigger = FailPoint::Program::Trigger::After;
        parsed->n = parseSpecUint(trimmed(args), program);
    } else if (name == "every") {
        parsed->trigger = FailPoint::Program::Trigger::Every;
        parsed->n = parseSpecUint(trimmed(args), program);
        if (parsed->n == 0)
            throw FailPointError("every needs N >= 1 in '" + program
                                 + "'");
    } else if (name == "prob") {
        std::size_t comma = args.find(',');
        if (comma == std::string::npos)
            throw FailPointError("prob needs (P,SEED) in '" + program
                                 + "'");
        parsed->trigger = FailPoint::Program::Trigger::Prob;
        parsed->p = parseSpecProb(trimmed(args.substr(0, comma)),
                                  program);
        parsed->seed = parseSpecUint(trimmed(args.substr(comma + 1)),
                                     program);
    } else {
        throw FailPointError(
            "unknown trigger '" + name + "' in '" + program
            + "' (expected off, after(N), every(N) or prob(P,SEED))");
    }
    parsed->kind = parseOutcome(text.substr(colon + 1), parsed->bytes,
                                program);
    return parsed.release();
}

void
configureFailPoints(const std::string &spec)
{
    // Parse the whole spec before arming anything, so a malformed
    // tail never leaves a half-armed chaos program behind.
    struct Parsed
    {
        std::string site;
        std::unique_ptr<FailPoint::Program> program;
    };
    std::vector<Parsed> parsed;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t semi = spec.find(';', pos);
        if (semi == std::string::npos)
            semi = spec.size();
        const std::string program =
            trimmed(spec.substr(pos, semi - pos));
        pos = semi + 1;
        if (program.empty())
            continue;
        std::size_t eq = program.find('=');
        if (eq == std::string::npos || eq == 0)
            throw FailPointError(
                "missing 'site=' in '" + program
                + "' (e.g. journal.append.write=after(3):enospc)");
        parsed.push_back(Parsed{
            trimmed(program.substr(0, eq)),
            std::unique_ptr<FailPoint::Program>(
                FailPointDetail::parseProgram(program.substr(eq + 1),
                                              program))});
    }

    std::lock_guard<std::mutex> lock(registry().mutex);
    for (Parsed &entry : parsed) {
        auto it = registry().sites.find(entry.site);
        if (it == registry().sites.end()) {
            std::string known;
            for (const auto &[name, site] : registry().sites)
                known += (known.empty() ? "" : ", ") + name;
            throw FailPointError("unknown site '" + entry.site
                                 + "' (registered sites: " + known
                                 + ")");
        }
        delete it->second->_program;
        it->second->_program = entry.program.release();
        it->second->_hits = 0;
    }
    FailPointDetail::refreshArmedCount();
}

void
clearFailPoints()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    for (auto &[name, site] : registry().sites) {
        delete site->_program;
        site->_program = nullptr;
        site->_hits = 0;
    }
    FailPoint::armedCount().store(0, std::memory_order_relaxed);
}

void
configureFailPointsFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *spec = std::getenv("HPIM_FAILPOINTS");
        if (spec == nullptr || spec[0] == '\0')
            return;
        try {
            configureFailPoints(spec);
        } catch (const FailPointError &e) {
            fatal("HPIM_FAILPOINTS: ", e.what());
        }
    });
}

std::vector<std::string>
failPointSites()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    std::vector<std::string> names;
    names.reserve(registry().sites.size());
    for (const auto &[name, site] : registry().sites)
        names.push_back(name);
    return names; // std::map iterates sorted
}

bool
failPointsArmed()
{
    return FailPoint::armedCount().load(std::memory_order_relaxed)
           != 0;
}

// ----------------------------------------------------- syscall wrappers

namespace {

/** Map a non-short decision to its errno; 0 = not errno-shaped. */
int
decisionErrno(const FailDecision &decision)
{
    switch (decision.kind) {
      case FailKind::Enospc: return ENOSPC;
      case FailKind::Eintr: return EINTR;
      case FailKind::Eio: return EIO;
      case FailKind::FsyncFail: return EIO;
      case FailKind::RenameFail: return EIO;
      default: return 0;
    }
}

[[noreturn]] void
throwAlloc()
{
    throw std::bad_alloc();
}

} // namespace

ssize_t
fpWrite(FailPoint &fp, int fd, const void *data, std::size_t size)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        if (decision.kind == FailKind::ShortWrite) {
            const std::size_t cap = std::min<std::size_t>(
                size, static_cast<std::size_t>(decision.bytes));
            if (cap == 0) {
                // A zero-byte allowance degenerates to disk-full.
                errno = ENOSPC;
                return -1;
            }
            return ::write(fd, data, cap);
        }
        errno = decisionErrno(decision);
        return -1;
    }
    return ::write(fd, data, size);
}

int
fpFsync(FailPoint &fp, int fd)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        errno = decisionErrno(decision);
        if (errno == 0)
            errno = EIO; // short has no fsync analogue
        return -1;
    }
    return ::fsync(fd);
}

int
fpRename(FailPoint &fp, const char *from, const char *to)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        errno = decisionErrno(decision);
        if (errno == 0)
            errno = EIO;
        return -1;
    }
    return ::rename(from, to);
}

int
fpOpen(FailPoint &fp, const char *path, int flags, unsigned int mode)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        errno = decisionErrno(decision);
        if (errno == 0)
            errno = EIO;
        return -1;
    }
    return ::open(path, flags, static_cast<mode_t>(mode));
}

ssize_t
fpSend(FailPoint &fp, int fd, const void *data, std::size_t size,
       int flags)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        if (decision.kind == FailKind::ShortWrite) {
            const std::size_t cap = std::min<std::size_t>(
                std::max<std::uint64_t>(decision.bytes, 1), size);
            return ::send(fd, data, cap, flags);
        }
        errno = decisionErrno(decision);
        return -1;
    }
    return ::send(fd, data, size, flags);
}

ssize_t
fpRecv(FailPoint &fp, int fd, void *data, std::size_t size)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        if (decision.kind == FailKind::ShortWrite) {
            const std::size_t cap = std::min<std::size_t>(
                std::max<std::uint64_t>(decision.bytes, 1), size);
            return ::read(fd, data, cap);
        }
        errno = decisionErrno(decision);
        return -1;
    }
    return ::read(fd, data, size);
}

void
fpCheck(FailPoint &fp, const char *op, const std::string &path)
{
    if (FailDecision decision = fp.fire()) {
        if (decision.kind == FailKind::AllocFail)
            throwAlloc();
        int err = decisionErrno(decision);
        throw IoError(op, path, err != 0 ? err : EIO);
    }
}

void
fpWriteAll(FailPoint &fp, int fd, const std::string &data,
           const std::string &path)
{
    std::size_t written = 0;
    std::uint32_t stalled = 0; ///< consecutive zero-progress attempts
    while (written < data.size()) {
        ssize_t n = fpWrite(fp, fd, data.data() + written,
                            data.size() - written);
        if (n < 0) {
            if (errno != EINTR)
                throw IoError("write", path, errno);
            if (++stalled > failPointTransientRetryLimit)
                throw IoError("write", path, EINTR);
        } else if (n == 0) {
            // A 0-byte "success" on a regular file is a stall, not
            // progress; treat like a transient and bound it.
            if (++stalled > failPointTransientRetryLimit)
                throw IoError("write", path, ENOSPC);
        } else {
            written += static_cast<std::size_t>(n);
            stalled = 0;
            continue;
        }
        if (stalled > 1) {
            // Exponential backoff, capped at ~1 ms: long enough for
            // a genuinely transient condition to clear, short enough
            // that the bounded retry budget stays well under 100 ms.
            const std::uint32_t shift = std::min(stalled, 10u);
            std::this_thread::sleep_for(
                std::chrono::microseconds(1u << shift));
        }
    }
}

} // namespace hpim::harness
