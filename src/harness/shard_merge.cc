#include "harness/shard_merge.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "harness/failpoint.hh"
#include "harness/json.hh"

namespace hpim::harness {

namespace {

FailPoint fpMergeRead("merge.read");

/**
 * Fire the merge.read fail point for one shard-file read, converting
 * an injected IoError into the ShardMergeError contract every caller
 * of mergeShardJournals() already handles.
 */
void
checkMergeRead(const std::string &path)
{
    try {
        fpCheck(fpMergeRead, "read", path);
    } catch (const IoError &e) {
        throw ShardMergeError(e.what(), path);
    }
}

/** One journal file discovered in the directory scan. */
struct ShardFile
{
    std::uint32_t shardIndex = 1;
    std::uint32_t shardCount = 1;
    std::string metaPath;
};

/** Parse a non-negative decimal; @return false on any other text. */
bool
parseNum(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(text.c_str(), &end, 10);
    return errno == 0 && end == text.c_str() + text.size()
           && text.find_first_not_of("0123456789") == std::string::npos;
}

/**
 * Decompose a journal file name. Recognized:
 *   sweep-<k>.meta.json
 *   sweep-<k>.shard-<i>of<N>.meta.json
 *   sweep-<k>.claim-<j>
 * Everything else (records files, temp files, strangers) is skipped;
 * record and claim paths are derived from the meta entries instead.
 */
bool
parseMetaName(const std::string &name, std::uint32_t &segment,
              std::uint32_t &shard_index, std::uint32_t &shard_count)
{
    const std::string prefix = "sweep-";
    const std::string suffix = ".meta.json";
    if (name.size() <= prefix.size() + suffix.size()
        || name.compare(0, prefix.size(), prefix) != 0
        || name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix)
               != 0)
        return false;
    std::string middle = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    std::uint64_t seg = 0, idx = 1, cnt = 1;
    std::size_t dot = middle.find('.');
    if (dot == std::string::npos) {
        if (!parseNum(middle, seg))
            return false;
    } else {
        std::string shard_part = middle.substr(dot + 1);
        if (!parseNum(middle.substr(0, dot), seg))
            return false;
        const std::string shard_prefix = "shard-";
        if (shard_part.compare(0, shard_prefix.size(), shard_prefix)
            != 0)
            return false;
        shard_part = shard_part.substr(shard_prefix.size());
        std::size_t of = shard_part.find("of");
        if (of == std::string::npos
            || !parseNum(shard_part.substr(0, of), idx)
            || !parseNum(shard_part.substr(of + 2), cnt))
            return false;
    }
    segment = static_cast<std::uint32_t>(seg);
    shard_index = static_cast<std::uint32_t>(idx);
    shard_count = static_cast<std::uint32_t>(cnt);
    return true;
}

bool
parseClaimName(const std::string &name, std::uint32_t &segment,
               std::uint64_t &index)
{
    const std::string prefix = "sweep-";
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    std::size_t claim = name.find(".claim-");
    if (claim == std::string::npos)
        return false;
    std::uint64_t seg = 0;
    if (!parseNum(name.substr(prefix.size(), claim - prefix.size()),
                  seg)
        || !parseNum(name.substr(claim + 7), index))
        return false;
    segment = static_cast<std::uint32_t>(seg);
    return true;
}

/**
 * A claim file left behind by a crashed owner must still be readable
 * (the complete `{"index":..,"shard":..,"pid":..}` record the owner
 * wrote under the lock); a torn or empty one means the directory was
 * damaged by something other than a clean SIGKILL and the merge
 * cannot vouch for the record set.
 */
void
checkClaimFile(const std::string &path, std::uint64_t points)
{
    checkMergeRead(path);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw ShardMergeError("cannot read leftover claim record",
                              path);
    std::ostringstream os;
    os << is.rdbuf();
    std::uint64_t index = 0;
    try {
        json::Value root = json::parse(os.str());
        index = root.at("index").asUInt64();
        (void)root.at("shard").asUInt64();
    } catch (const json::Error &e) {
        throw ShardMergeError(std::string("torn claim record: ")
                                  + e.what(),
                              path);
    }
    if (index >= points)
        throw ShardMergeError("torn claim record: point "
                                  + std::to_string(index)
                                  + " outside the sweep grid",
                              path);
}

std::string
describeHeader(const SweepJournal::Header &h)
{
    std::ostringstream os;
    os << "seed " << h.baseSeed << ", grid hash " << h.gridHash
       << ", " << h.points << " points, shard " << h.shardIndex << "/"
       << h.shardCount;
    return os.str();
}

SegmentMerge
mergeSegment(const std::string &dir, std::uint32_t segment,
             const std::vector<ShardFile> &files,
             const std::vector<std::uint64_t> &claim_indices)
{
    // One coherent shard layout: either the single legacy unsharded
    // pair, or shards 1..N of one N.
    const ShardFile &first = files.front();
    for (const ShardFile &file : files) {
        if (file.shardCount != first.shardCount)
            throw ShardMergeError(
                "segment " + std::to_string(segment)
                    + " mixes shard layouts: found "
                    + std::to_string(file.shardCount) + "-way and "
                    + std::to_string(first.shardCount)
                    + "-way journals",
                file.metaPath, "shard_count");
    }
    const std::uint32_t shards = first.shardCount;

    // Headers: schema understood, all describing the same sweep, and
    // each filed under the shard its file name announces.
    std::vector<const ShardFile *> by_shard(shards + 1, nullptr);
    for (const ShardFile &file : files) {
        if (by_shard[file.shardIndex] != nullptr)
            throw ShardMergeError("duplicate journal for shard "
                                      + std::to_string(file.shardIndex)
                                      + "/" + std::to_string(shards),
                                  file.metaPath);
        by_shard[file.shardIndex] = &file;
    }
    // A shard may be missing entirely (a host that died and never
    // restarted); the record-level gap check below is what actually
    // proves its slice was stolen and completed.
    SweepJournal::Header ref;
    bool have_ref = false;
    for (std::uint32_t s = 1; s <= shards; ++s) {
        if (by_shard[s] == nullptr)
            continue;
        const std::string &path = by_shard[s]->metaPath;
        checkMergeRead(path);
        SweepJournal::Header header = readJournalHeader(path);
        if (header.schemaVersion != journalSchemaVersion)
            throw ShardMergeError(
                "journal has schema version "
                    + std::to_string(header.schemaVersion)
                    + ", this build merges version "
                    + std::to_string(journalSchemaVersion),
                path, "schema_version");
        if (header.shardIndex != s || header.shardCount != shards)
            throw ShardMergeError(
                "file name announces shard " + std::to_string(s) + "/"
                    + std::to_string(shards)
                    + " but the header says shard "
                    + std::to_string(header.shardIndex) + "/"
                    + std::to_string(header.shardCount),
                path, "shard_index");
        if (!have_ref) {
            ref = header;
            have_ref = true;
        } else if (header.baseSeed != ref.baseSeed) {
            throw ShardMergeError(
                "shards disagree on the sweep: expected "
                    + describeHeader(ref) + ", found "
                    + describeHeader(header),
                path, "base_seed");
        } else if (header.gridHash != ref.gridHash) {
            throw ShardMergeError(
                "shards disagree on the sweep: expected "
                    + describeHeader(ref) + ", found "
                    + describeHeader(header),
                path, "grid_hash");
        } else if (header.points != ref.points) {
            throw ShardMergeError(
                "shards disagree on the sweep: expected "
                    + describeHeader(ref) + ", found "
                    + describeHeader(header),
                path, "points");
        }
    }

    // Claim files must be complete stale records, not torn writes.
    for (std::uint64_t index : claim_indices)
        checkClaimFile(journalClaimPath(dir, segment, index),
                       ref.points);

    // Records: exactly one line per grid point. The line bytes are
    // identical no matter which shard computed the point (streamSeed
    // determinism + max_digits10 serialization), so byte-identical
    // duplicates are benign cross-host redundancy and anything else
    // is corruption.
    SegmentMerge merged;
    merged.segment = segment;
    merged.header = ref;
    merged.header.shardIndex = 1;
    merged.header.shardCount = 1;
    std::vector<const RawRecord *> slot(ref.points, nullptr);
    std::vector<std::vector<RawRecord>> per_shard(shards);
    std::vector<std::string> record_paths(shards);
    for (std::uint32_t s = 1; s <= shards; ++s) {
        const std::string path =
            journalRecordsPath(dir, segment, s, shards);
        record_paths[s - 1] = path;
        // A shard that crashed before its first append may have no
        // records file at all; the gap check below attributes any
        // missing points to it.
        checkMergeRead(path);
        scanJournalRecords(path, ref.points, per_shard[s - 1]);
        for (const RawRecord &record : per_shard[s - 1]) {
            if (record.index >= ref.points)
                throw ShardMergeError(
                    "record at line " + std::to_string(record.lineNo)
                        + " is for point "
                        + std::to_string(record.index)
                        + " of a " + std::to_string(ref.points)
                        + "-point sweep",
                    path);
            if (record.pointHash
                != journalPointHash(ref.gridHash, record.index))
                throw ShardMergeError(
                    "record at line " + std::to_string(record.lineNo)
                        + " (point " + std::to_string(record.index)
                        + ") belongs to a different sweep grid",
                    path);
            const RawRecord *&seen = slot[record.index];
            if (seen == nullptr) {
                seen = &record;
            } else if (seen->line != record.line) {
                throw ShardMergeError(
                    "conflicting records for point "
                        + std::to_string(record.index)
                        + ": line " + std::to_string(record.lineNo)
                        + " disagrees with an already-merged record "
                          "for the same point",
                    path);
            }
        }
    }
    for (std::uint64_t i = 0; i < ref.points; ++i) {
        if (slot[i] != nullptr)
            continue;
        const std::uint32_t owner = journalShardOwner(i, shards);
        throw ShardMergeError(
            "grid point " + std::to_string(i)
                + " was never recorded (owning shard "
                + std::to_string(owner) + "/" + std::to_string(shards)
                + "; is the sweep still running, or did every shard "
                  "fail this point?)",
            record_paths[owner - 1]);
    }
    merged.records.reserve(ref.points);
    for (std::uint64_t i = 0; i < ref.points; ++i)
        merged.records.push_back(*slot[i]);
    return merged;
}

} // namespace

std::vector<SegmentMerge>
mergeShardJournals(const std::string &dir)
{
    DIR *dp = ::opendir(dir.c_str());
    if (dp == nullptr)
        throw ShardMergeError(std::string("cannot open journal "
                                          "directory: ")
                                  + std::strerror(errno),
                              dir);
    std::map<std::uint32_t, std::vector<ShardFile>> segments;
    std::map<std::uint32_t, std::vector<std::uint64_t>> claims;
    while (dirent *entry = ::readdir(dp)) {
        const std::string name = entry->d_name;
        std::uint32_t segment = 0, shard_index = 1, shard_count = 1;
        std::uint64_t claim_index = 0;
        if (parseMetaName(name, segment, shard_index, shard_count)) {
            segments[segment].push_back(ShardFile{
                shard_index, shard_count, dir + "/" + name});
        } else if (parseClaimName(name, segment, claim_index)) {
            claims[segment].push_back(claim_index);
        }
    }
    ::closedir(dp);
    if (segments.empty())
        throw ShardMergeError("no sweep journal segments found", dir);

    std::vector<SegmentMerge> merged;
    merged.reserve(segments.size());
    for (auto &[segment, files] : segments) {
        std::sort(files.begin(), files.end(),
                  [](const ShardFile &a, const ShardFile &b) {
                      return a.shardIndex < b.shardIndex;
                  });
        std::vector<std::uint64_t> claim_indices;
        if (auto it = claims.find(segment); it != claims.end())
            claim_indices = it->second;
        merged.push_back(
            mergeSegment(dir, segment, files, claim_indices));
    }
    return merged;
}

void
writeMergedJournal(const std::string &out_dir,
                   const std::vector<SegmentMerge> &segments)
{
    if (::mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST)
        throw ShardMergeError(
            std::string("cannot create output directory: ")
                + std::strerror(errno),
            out_dir);
    for (const SegmentMerge &merged : segments) {
        const std::string meta_path =
            journalMetaPath(out_dir, merged.segment);
        try {
            writeJournalHeaderFile(meta_path, merged.header);
        } catch (const IoError &e) {
            throw ShardMergeError(e.what(), meta_path);
        }
        const std::string records_path =
            journalRecordsPath(out_dir, merged.segment);
        std::ofstream os(records_path,
                         std::ios::binary | std::ios::trunc);
        if (!os)
            throw ShardMergeError("cannot write merged records file",
                                  records_path);
        for (const RawRecord &record : merged.records)
            os << record.line << '\n';
        os.flush();
        if (!os)
            throw ShardMergeError("write to merged records file "
                                  "failed",
                                  records_path);
    }
}

} // namespace hpim::harness
