#include "harness/json_writer.hh"

#include <cstdio>
#include <limits>

#include "harness/json.hh"
#include "sim/logging.hh"

namespace hpim::harness::json {

std::string
numberToString(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, value);
    return buf;
}

Writer::~Writer()
{
    // A half-written document is a bug in the caller, but a destructor
    // must not throw/abort during unwinding; leave the stream as-is.
}

void
Writer::preValue()
{
    panic_if(_root_done, "json writer: value after complete document");
    if (_expect_value) {
        _expect_value = false;
        return;
    }
    if (_stack.empty())
        return;
    panic_if(_stack.back() == Frame::Object,
             "json writer: object member needs key() first");
    if (!_first.back())
        _os << ',';
    _first.back() = false;
}

Writer &
Writer::beginObject()
{
    preValue();
    _os << '{';
    _stack.push_back(Frame::Object);
    _first.push_back(true);
    return *this;
}

Writer &
Writer::endObject()
{
    panic_if(_stack.empty() || _stack.back() != Frame::Object
                 || _expect_value,
             "json writer: endObject() without matching beginObject()");
    _os << '}';
    _stack.pop_back();
    _first.pop_back();
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::beginArray()
{
    preValue();
    _os << '[';
    _stack.push_back(Frame::Array);
    _first.push_back(true);
    return *this;
}

Writer &
Writer::endArray()
{
    panic_if(_stack.empty() || _stack.back() != Frame::Array,
             "json writer: endArray() without matching beginArray()");
    _os << ']';
    _stack.pop_back();
    _first.pop_back();
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::key(std::string_view name)
{
    panic_if(_stack.empty() || _stack.back() != Frame::Object
                 || _expect_value,
             "json writer: key() outside an object");
    if (!_first.back())
        _os << ',';
    _first.back() = false;
    std::string out = "\"";
    escape(out, std::string(name));
    out += "\":";
    _os << out;
    _expect_value = true;
    return *this;
}

Writer &
Writer::value(std::string_view text)
{
    preValue();
    std::string out = "\"";
    escape(out, std::string(text));
    out += '"';
    _os << out;
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::value(double number)
{
    preValue();
    _os << numberToString(number);
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::value(std::int64_t number)
{
    preValue();
    _os << number;
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::value(std::uint64_t number)
{
    preValue();
    _os << number;
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::value(bool flag)
{
    preValue();
    _os << (flag ? "true" : "false");
    if (_stack.empty())
        _root_done = true;
    return *this;
}

Writer &
Writer::valueNull()
{
    preValue();
    _os << "null";
    if (_stack.empty())
        _root_done = true;
    return *this;
}

bool
Writer::done() const
{
    return _root_done && _stack.empty() && !_expect_value;
}

} // namespace hpim::harness::json
