#include "harness/thread_pool.hh"

#include <csignal>

#include <atomic>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace hpim::harness {

namespace {

std::atomic<int> g_interrupt_signal{0};

extern "C" void
interruptHandler(int signal)
{
    // Async-signal-safe: one relaxed store, no allocation, no I/O.
    g_interrupt_signal.store(signal, std::memory_order_relaxed);
}

} // namespace

void
installInterruptHandlers()
{
    struct sigaction action{};
    action.sa_handler = interruptHandler;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: a second signal while draining still interrupts.
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
}

bool
interruptRequested()
{
    return g_interrupt_signal.load(std::memory_order_relaxed) != 0;
}

int
interruptSignal()
{
    return g_interrupt_signal.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::uint32_t threads, std::size_t queue_capacity)
    : _thread_count(threads),
      _capacity(queue_capacity != 0
                    ? queue_capacity
                    : std::max<std::size_t>(std::size_t{4} * threads, 1))
{
    _workers.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _not_empty.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (auto *registry = hpim::obs::MetricsRegistry::current())
        registry->counter("pool.tasks_submitted").add(1);
    {
        std::unique_lock<std::mutex> lock(_mutex);
        panic_if(_stopping, "submit() on a stopping ThreadPool");
        _not_full.wait(lock,
                       [this] { return _queue.size() < _capacity; });
        _queue.push_back(std::move(task));
    }
    _not_empty.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock,
               [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _not_empty.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            // Graceful shutdown: keep draining queued work; only exit
            // once the queue is empty.
            if (_queue.empty())
                return;
            task = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        _not_full.notify_one();
        // A packaged_task captures its own exceptions into the future,
        // so the worker never dies on a throwing task.
        task();
        if (auto *registry = hpim::obs::MetricsRegistry::current())
            registry->counter("pool.tasks_completed").add(1);
        {
            std::unique_lock<std::mutex> lock(_mutex);
            --_active;
            if (_queue.empty() && _active == 0)
                _idle.notify_all();
        }
    }
}

} // namespace hpim::harness
