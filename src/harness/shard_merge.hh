/**
 * @file
 * Merge the shard journals of a distributed sweep back into the
 * single-process layout (docs/SWEEP_ENGINE.md, "Sharded distributed
 * sweeps").
 *
 * An N-way `--shard i/N` run leaves N record logs per segment in the
 * shared journal directory. mergeShardJournals() validates that every
 * present shard header describes the same sweep (schema version, base
 * seed, grid hash, point count, shard count), that every grid point
 * is recorded exactly once (identical duplicate records -- e.g. a
 * point both journaled and re-stolen across hosts -- are tolerated,
 * conflicting ones are not), and that no torn claim file is left
 * behind. A shard journal may be missing entirely -- a host that died
 * and never restarted -- as long as siblings stole and recorded its
 * whole slice; any unrecorded point is fatal and named together with
 * its owning shard. The merged records are the
 * shards' record lines verbatim, ordered by point index, which makes
 * the merged records file byte-identical to the one an unsharded
 * `--jobs 1` run writes. writeMergedJournal() persists that as a
 * valid unsharded journal a bench can resume from to reproduce the
 * full table.
 *
 * Every validation failure throws ShardMergeError naming the
 * offending file (and field where one applies), mirroring report_io's
 * ParseError so tools can print one actionable line.
 */

#ifndef HPIM_HARNESS_SHARD_MERGE_HH
#define HPIM_HARNESS_SHARD_MERGE_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "harness/journal.hh"

namespace hpim::harness {

/** A shard journal set that cannot be merged. */
struct ShardMergeError : std::runtime_error
{
    ShardMergeError(const std::string &message, std::string path,
                    std::string field_name = {})
        : std::runtime_error("shard merge: " + message + " [file '"
                             + path + "'"
                             + (field_name.empty()
                                    ? "]"
                                    : ", field '" + field_name + "']")),
          file(std::move(path)), field(std::move(field_name))
    {
    }

    std::string file;  ///< offending shard file
    std::string field; ///< offending header field, may be empty
};

/** One merged segment: the unsharded header plus every record line,
 *  ordered by point index. */
struct SegmentMerge
{
    std::uint32_t segment = 0;
    SweepJournal::Header header; ///< shardIndex/shardCount == 1
    std::vector<RawRecord> records;
};

/**
 * Validate and merge every segment found in journal directory
 * @p dir. Segments may be unsharded (passed through after record
 * validation) or N-way sharded. @return the merged segments in
 * segment order. Throws ShardMergeError (or JournalFormatError for
 * an unreadable header) on any inconsistency; never mutates @p dir.
 */
std::vector<SegmentMerge>
mergeShardJournals(const std::string &dir);

/**
 * Write @p segments into @p out_dir (created if absent) as an
 * unsharded journal: sweep-k.meta.json + sweep-k.records.jsonl per
 * segment, records in point order. The result is byte-identical to
 * the journal an uninterrupted `--jobs 1` run of the same sweep
 * writes, and any bench accepts it for `--journal` resume.
 */
void writeMergedJournal(const std::string &out_dir,
                        const std::vector<SegmentMerge> &segments);

} // namespace hpim::harness

#endif // HPIM_HARNESS_SHARD_MERGE_HH
