#include "harness/sweep.hh"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <string>
#include <thread>

#include "harness/journal.hh"
#include "harness/table_printer.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::harness {

namespace {

constexpr std::uint32_t kMaxJobs = 4096;

const char *const kUsage =
    "usage: <binary> [--jobs N] [--seed S] [--journal DIR] "
    "[--trace FILE] [--no-sim-cache]\n"
    "  --jobs N       worker threads, 1..4096 (0 or absent: all "
    "hardware threads)\n"
    "  --seed S       base seed of the per-point rng streams\n"
    "  --journal DIR  crash-safe checkpoint/resume directory "
    "(docs/RESILIENCE.md)\n"
    "  --trace FILE   write a Chrome/Perfetto timeline of the run "
    "(docs/OBSERVABILITY.md)\n"
    "  --no-sim-cache disable the cross-point memo cache "
    "(docs/PERFORMANCE.md)";

std::uint32_t
resolveJobs(std::uint32_t requested)
{
    if (requested != 0)
        return requested;
    std::uint32_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::uint64_t
parseUint(const char *flag, const std::string &text)
{
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || text[0] == '-')
        fatal(flag, " expects an unsigned integer, got '", text,
              "'\n", kUsage);
    return value;
}

/** Identity of one journaled point: mixes (gridHash, index). */
std::uint64_t
pointHash(std::uint64_t grid_hash, std::size_t index)
{
    return hpim::sim::Rng::streamSeed(grid_hash, index);
}

} // namespace

std::uint64_t
gridHash(const std::vector<ExperimentPoint> &points)
{
    std::uint64_t hash = hashString("hpim ExperimentPoint grid v1",
                                    0xcbf29ce484222325ULL);
    for (const ExperimentPoint &p : points) {
        hash = hashU64(static_cast<std::uint64_t>(p.kind), hash);
        hash = hashU64(static_cast<std::uint64_t>(p.model), hash);
        hash = hashU64(p.steps, hash);
        hash = hashU64(std::bit_cast<std::uint64_t>(p.freqScale), hash);
        hash = hashU64(p.progrPims, hash);
        hash = hashU64(static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(p.batch)),
                       hash);
    }
    return hash;
}

void
exitResumable(const SweepStats &stats)
{
    // stderr, not stdout: the tables a resumed run prints must stay
    // byte-identical to an uninterrupted run.
    std::cerr << "[sweep] interrupted by signal " << interruptSignal()
              << " after " << stats.points
              << " points; in-flight points drained, journal "
                 "flushed. Rerun the same command to resume (exit "
              << resumableExitCode << ").\n";
    std::exit(resumableExitCode);
}

SweepRunner::SweepRunner(SweepOptions options)
    : _options(std::move(options)), _jobs(resolveJobs(_options.jobs))
{
    _stats.jobs = _jobs;
    hpim::sim::MemoCache::setEnabled(_options.simCache);
    // Only journaled runs trade the default die-on-SIGINT for the
    // drain + flush + resumable-exit path.
    if (!_options.journalDir.empty())
        installInterruptHandlers();
    if (!_options.traceFile.empty()) {
        _trace = std::make_unique<hpim::obs::TraceSession>();
        _trace->attach();
    }
}

SweepRunner::~SweepRunner()
{
    if (!_trace)
        return;
    _trace->detach();
    _trace->exportChromeTrace(_options.traceFile);
    // stderr: a bench's stdout tables must stay byte-identical
    // whether or not tracing is on.
    std::cerr << "[trace] wrote " << _options.traceFile << " ("
              << _trace->eventCount() << " events)\n";
}

std::vector<hpim::rt::ExecutionReport>
SweepRunner::run(const std::vector<ExperimentPoint> &points)
{
    // runSystem is a deterministic analytic simulation, so the
    // per-point stream is unused here; it exists so stochastic
    // extensions inherit the same (baseSeed, index) contract.
    return mapReports(points.size(), gridHash(points),
                      [&points](std::size_t i, hpim::sim::Rng &) {
                          const ExperimentPoint &p = points[i];
                          return hpim::baseline::runSystem(
                              p.kind, p.model, p.steps, p.freqScale,
                              p.progrPims, p.batch);
                      });
}

std::vector<hpim::rt::ExecutionReport>
SweepRunner::mapJournaled(std::size_t count, std::uint64_t grid_hash,
                          const ReportFn &fn)
{
    const auto wall_start = std::chrono::steady_clock::now();

    SweepJournal::Header header;
    header.baseSeed = _options.baseSeed;
    header.gridHash = grid_hash;
    header.points = count;
    SweepJournal journal(_options.journalDir, _segment++, header);

    std::vector<hpim::rt::ExecutionReport> results(count);
    std::vector<std::uint8_t> have(count, 0);
    std::size_t resumed = 0;
    for (const SweepJournal::Record &record : journal.loaded()) {
        fatal_if(record.pointHash
                     != pointHash(grid_hash, record.index),
                 "journal record for point ", record.index,
                 " does not match this sweep's grid; delete the "
                 "journal directory '",
                 _options.journalDir, "' to start over");
        if (have[record.index])
            continue; // duplicate record: first one wins
        results[record.index] = record.report;
        have[record.index] = 1;
        ++resumed;
    }

    // Same scope discipline as map(); see the comment there. A
    // resumed point records no events (it never simulates), which is
    // why trace comparisons always use uninterrupted runs.
    const std::size_t scope_base = _stats.points;
    std::vector<double> durations(count, 0.0);
    std::vector<std::uint8_t> failed(count, 0);
    std::vector<std::string> errors(count);
    std::vector<std::future<void>> futures;
    futures.reserve(count - resumed);
    {
        ThreadPool pool(_jobs > 1 ? _jobs : 0);
        for (std::size_t i = 0; i < count; ++i) {
            if (have[i])
                continue;
            if (interruptRequested())
                break;
            futures.push_back(pool.submit(
                [i, scope_base, grid_hash, &fn, &results, &durations,
                 &failed, &errors, &journal,
                 seed = _options.baseSeed] {
                    const double start = threadCpuSeconds();
                    hpim::sim::Rng rng(
                        hpim::sim::Rng::streamSeed(seed, i));
                    hpim::obs::TraceSession::Scope trace_scope(
                        static_cast<std::uint32_t>(scope_base + i + 1));
                    if (auto *session =
                            hpim::obs::TraceSession::current()) {
                        session->instant(
                            session->track("sweep"), "point start",
                            0.0,
                            {{"index", static_cast<std::int64_t>(i)}});
                    }
                    try {
                        results[i] = fn(i, rng);
                        // Journal only successes: a failed point is
                        // re-attempted by the next resume.
                        journal.append(i, pointHash(grid_hash, i),
                                       results[i]);
                    } catch (const std::exception &e) {
                        failed[i] = 1;
                        errors[i] = e.what();
                    } catch (...) {
                        failed[i] = 1;
                        errors[i] = "unknown exception";
                    }
                    if (auto *session =
                            hpim::obs::TraceSession::current()) {
                        session->instant(
                            session->track("sweep"), "point done", 0.0,
                            {{"index", static_cast<std::int64_t>(i)},
                             {"outcome",
                              std::string(failed[i] ? "failed"
                                                    : "ok")}});
                    }
                    durations[i] = threadCpuSeconds() - start;
                }));
        }
    }
    for (auto &future : futures)
        future.get();
    for (std::size_t i = 0; i < count; ++i) {
        if (failed[i])
            _stats.failures.push_back(PointFailure{i, errors[i]});
    }
    _stats.resumedPoints += resumed;
    accumulateStats(durations, secondsSince(wall_start));
    if (interruptRequested())
        exitResumable(_stats);
    return results;
}

double
SweepRunner::threadCpuSeconds()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
SweepRunner::accumulateStats(const std::vector<double> &durations,
                             double wall_sec)
{
    _stats.points += durations.size();
    _stats.wallSec += wall_sec;
    for (double d : durations)
        _stats.serialSec += d;
}

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        auto flagValue = [&](const char *flag) -> bool {
            std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0)
                return false;
            if (arg.size() > n && arg[n] == '=') {
                value = arg.substr(n + 1);
                return true;
            }
            if (arg.size() == n) {
                fatal_if(i + 1 >= argc, flag, " needs a value\n",
                         kUsage);
                value = argv[++i];
                return true;
            }
            return false;
        };
        if (flagValue("--jobs")) {
            std::uint64_t jobs = parseUint("--jobs", value);
            if (jobs > kMaxJobs)
                fatal("--jobs must be in 0..", kMaxJobs, ", got ",
                      jobs, "\n", kUsage);
            options.jobs = static_cast<std::uint32_t>(jobs);
        } else if (flagValue("--seed")) {
            options.baseSeed = parseUint("--seed", value);
        } else if (flagValue("--journal")) {
            if (value.empty())
                fatal("--journal needs a directory\n", kUsage);
            options.journalDir = value;
        } else if (flagValue("--trace")) {
            if (value.empty())
                fatal("--trace needs a file path\n", kUsage);
            options.traceFile = value;
        } else if (arg == "--no-sim-cache") {
            options.simCache = false;
        } else {
            fatal("unknown argument '", arg, "'\n", kUsage);
        }
    }
    return options;
}

void
printSweepSummary(std::ostream &os, const SweepStats &stats)
{
    os << "\n[sweep] " << stats.points << " points, " << stats.jobs
       << (stats.jobs == 1 ? " worker" : " workers") << ": wall "
       << fmt(stats.wallSec, 2) << " s, serial-equivalent "
       << fmt(stats.serialSec, 2) << " s, speedup "
       << fmtRatio(stats.speedup()) << "\n";
    if (stats.resumedPoints > 0) {
        os << "[sweep] " << stats.resumedPoints
           << (stats.resumedPoints == 1 ? " point" : " points")
           << " resumed from journal, "
           << stats.points - stats.resumedPoints << " simulated\n";
    }
    if (!stats.failures.empty()) {
        os << "[sweep] " << stats.failures.size() << " point"
           << (stats.failures.size() == 1 ? "" : "s")
           << " FAILED:\n";
        for (const PointFailure &f : stats.failures)
            os << "[sweep]   point " << f.index << ": " << f.what
               << "\n";
    }
}

} // namespace hpim::harness
