#include "harness/sweep.hh"

#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>

#include "harness/table_printer.hh"
#include "sim/logging.hh"

namespace hpim::harness {

namespace {

std::uint32_t
resolveJobs(std::uint32_t requested)
{
    if (requested != 0)
        return requested;
    std::uint32_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::uint64_t
parseUint(const char *flag, const std::string &text)
{
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    fatal_if(end == text.c_str() || *end != '\0',
             flag, " expects an unsigned integer, got '", text, "'");
    return value;
}

} // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : _options(options), _jobs(resolveJobs(options.jobs))
{
    _stats.jobs = _jobs;
}

std::vector<hpim::rt::ExecutionReport>
SweepRunner::run(const std::vector<ExperimentPoint> &points)
{
    // runSystem is a deterministic analytic simulation, so the
    // per-point stream is unused here; it exists so stochastic
    // extensions inherit the same (baseSeed, index) contract.
    return map(points.size(),
               [&points](std::size_t i, hpim::sim::Rng &) {
                   const ExperimentPoint &p = points[i];
                   return hpim::baseline::runSystem(
                       p.kind, p.model, p.steps, p.freqScale,
                       p.progrPims, p.batch);
               });
}

double
SweepRunner::threadCpuSeconds()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
SweepRunner::accumulateStats(const std::vector<double> &durations,
                             double wall_sec)
{
    _stats.points += durations.size();
    _stats.wallSec += wall_sec;
    for (double d : durations)
        _stats.serialSec += d;
}

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        auto flagValue = [&](const char *flag) -> bool {
            std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0)
                return false;
            if (arg.size() > n && arg[n] == '=') {
                value = arg.substr(n + 1);
                return true;
            }
            if (arg.size() == n) {
                fatal_if(i + 1 >= argc, flag, " needs a value");
                value = argv[++i];
                return true;
            }
            return false;
        };
        if (flagValue("--jobs")) {
            options.jobs =
                static_cast<std::uint32_t>(parseUint("--jobs", value));
        } else if (flagValue("--seed")) {
            options.baseSeed = parseUint("--seed", value);
        } else {
            warn("ignoring unknown argument '", arg,
                 "' (supported: --jobs N, --seed S)");
        }
    }
    return options;
}

void
printSweepSummary(std::ostream &os, const SweepStats &stats)
{
    os << "\n[sweep] " << stats.points << " points, " << stats.jobs
       << (stats.jobs == 1 ? " worker" : " workers") << ": wall "
       << fmt(stats.wallSec, 2) << " s, serial-equivalent "
       << fmt(stats.serialSec, 2) << " s, speedup "
       << fmtRatio(stats.speedup()) << "\n";
    if (!stats.failures.empty()) {
        os << "[sweep] " << stats.failures.size() << " point"
           << (stats.failures.size() == 1 ? "" : "s")
           << " FAILED:\n";
        for (const PointFailure &f : stats.failures)
            os << "[sweep]   point " << f.index << ": " << f.what
               << "\n";
    }
}

} // namespace hpim::harness
