#include "harness/sweep.hh"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <string>
#include <thread>

#include "harness/failpoint.hh"
#include "harness/journal.hh"
#include "harness/table_printer.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::harness {

namespace {

constexpr std::uint32_t kMaxJobs = 4096;
constexpr std::uint32_t kMaxShards = 4096;

const char *const kUsage =
    "usage: <binary> [--jobs N] [--seed S] [--journal DIR] "
    "[--shard i/N] [--no-steal] [--trace FILE] [--no-sim-cache] "
    "[--sim-cache-max-entries N] "
    "[--failpoints SPEC] [--graph FILE]...\n"
    "  --jobs N       worker threads, 1..4096 (0 or absent: all "
    "hardware threads)\n"
    "  --seed S       base seed of the per-point rng streams\n"
    "  --journal DIR  crash-safe checkpoint/resume directory "
    "(docs/RESILIENCE.md)\n"
    "  --shard i/N    own slice i of an N-way distributed sweep; "
    "requires --journal (docs/SWEEP_ENGINE.md)\n"
    "  --no-steal     do not steal unfinished sibling-shard points\n"
    "  --trace FILE   write a Chrome/Perfetto timeline of the run "
    "(docs/OBSERVABILITY.md)\n"
    "  --no-sim-cache disable the cross-point memo cache "
    "(docs/PERFORMANCE.md)\n"
    "  --sim-cache-max-entries N  cap the memo cache at N entries "
    "(oldest evicted first; 0 = unbounded)\n"
    "  --failpoints SPEC arm host-IO fail points, e.g. "
    "'journal.append.write=after(3):enospc' (docs/RESILIENCE.md)\n"
    "  --graph FILE   also sweep a user graph (nn::GraphIo JSON; "
    "repeatable, docs/GRAPHS.md)";

std::uint32_t
resolveJobs(std::uint32_t requested)
{
    if (requested != 0)
        return requested;
    std::uint32_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

// The trace file is written by obs (which sits below the harness in
// the link order and cannot name FailPoint), so the injection site
// lives here at the call boundary instead.
FailPoint fpTraceExport("trace.export.write");

/**
 * Typed escalation of a durable journal IO failure (ENOSPC, EIO,
 * rejected fsync): everything appended before the failure is sealed
 * and durable, so the operator clears the condition and reruns the
 * same command for a byte-identical resume -- exactly the SIGINT
 * drain contract, with the cause spelled out.
 */
[[noreturn]] void
exitJournalFailure(const std::string &what, const SweepStats &stats)
{
    // stderr, not stdout: the tables a resumed run prints must stay
    // byte-identical to an uninterrupted run.
    std::cerr << "[sweep] journal IO failure: " << what
              << "; journal sealed at the last durable record after "
              << stats.points
              << " points, in-flight points drained. Clear the "
                 "condition and rerun the same command to resume "
                 "(exit "
              << resumableExitCode << ").\n";
    std::exit(resumableExitCode);
}

std::uint64_t
parseUint(const char *flag, const std::string &text)
{
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || text[0] == '-')
        fatal(flag, " expects an unsigned integer, got '", text,
              "'\n", kUsage);
    return value;
}

} // namespace

std::uint64_t
gridHash(const std::vector<ExperimentPoint> &points)
{
    std::uint64_t hash = hashString("hpim ExperimentPoint grid v1",
                                    0xcbf29ce484222325ULL);
    for (const ExperimentPoint &p : points) {
        hash = hashU64(static_cast<std::uint64_t>(p.kind), hash);
        hash = hashU64(static_cast<std::uint64_t>(p.model), hash);
        hash = hashU64(p.steps, hash);
        hash = hashU64(std::bit_cast<std::uint64_t>(p.freqScale), hash);
        hash = hashU64(p.progrPims, hash);
        hash = hashU64(static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(p.batch)),
                       hash);
    }
    return hash;
}

void
exitResumable(const SweepStats &stats)
{
    // stderr, not stdout: the tables a resumed run prints must stay
    // byte-identical to an uninterrupted run.
    std::cerr << "[sweep] interrupted by signal " << interruptSignal()
              << " after " << stats.points
              << " points; in-flight points drained, journal "
                 "flushed. Rerun the same command to resume (exit "
              << resumableExitCode << ").\n";
    std::exit(resumableExitCode);
}

SweepRunner::SweepRunner(SweepOptions options)
    : _options(std::move(options)), _jobs(resolveJobs(_options.jobs))
{
    fatal_if(_options.shardCount == 0 || _options.shardIndex == 0
                 || _options.shardIndex > _options.shardCount,
             "shard assignment ", _options.shardIndex, "/",
             _options.shardCount, " is invalid (need 1 <= i <= N)");
    fatal_if(_options.shardCount > 1 && _options.journalDir.empty(),
             "--shard requires --journal: shards coordinate and "
             "publish results through the journal directory");
    _stats.jobs = _jobs;
    _stats.shardIndex = _options.shardIndex;
    _stats.shardCount = _options.shardCount;
    configureFailPointsFromEnv();
    if (!_options.failPoints.empty()) {
        try {
            configureFailPoints(_options.failPoints);
        } catch (const FailPointError &e) {
            fatal("--failpoints: ", e.what(), "\n", kUsage);
        }
    }
    hpim::sim::MemoCache::setEnabled(_options.simCache);
    hpim::sim::MemoCache::instance().setMaxEntries(
        _options.simCacheMaxEntries);
    // Only journaled runs trade the default die-on-SIGINT for the
    // drain + flush + resumable-exit path.
    if (!_options.journalDir.empty())
        installInterruptHandlers();
    if (!_options.traceFile.empty()) {
        _trace = std::make_unique<hpim::obs::TraceSession>();
        _trace->attach();
    }
}

SweepRunner::~SweepRunner()
{
    if (!_trace)
        return;
    _trace->detach();
    // A trace that cannot be written costs an artifact, not the
    // sweep: the tables are already printed, so warn and move on.
    try {
        fpCheck(fpTraceExport, "write", _options.traceFile);
        _trace->exportChromeTrace(_options.traceFile);
        // stderr: a bench's stdout tables must stay byte-identical
        // whether or not tracing is on.
        std::cerr << "[trace] wrote " << _options.traceFile << " ("
                  << _trace->eventCount() << " events)\n";
    } catch (const std::exception &e) {
        std::cerr << "[trace] export of " << _options.traceFile
                  << " failed: " << e.what() << "\n";
    }
}

std::vector<hpim::rt::ExecutionReport>
SweepRunner::run(const std::vector<ExperimentPoint> &points)
{
    // runSystem is a deterministic analytic simulation, so the
    // per-point stream is unused here; it exists so stochastic
    // extensions inherit the same (baseSeed, index) contract.
    return mapReports(points.size(), gridHash(points),
                      [&points](std::size_t i, hpim::sim::Rng &) {
                          const ExperimentPoint &p = points[i];
                          return hpim::baseline::runSystem(
                              p.kind, p.model, p.steps, p.freqScale,
                              p.progrPims, p.batch);
                      });
}

std::vector<hpim::rt::ExecutionReport>
SweepRunner::mapJournaled(std::size_t count, std::uint64_t grid_hash,
                          const ReportFn &fn)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint32_t shard = _options.shardIndex;
    const std::uint32_t shards = _options.shardCount;
    const std::string &dir = _options.journalDir;

    SweepJournal::Header header;
    header.baseSeed = _options.baseSeed;
    header.gridHash = grid_hash;
    header.points = count;
    header.shardIndex = shard;
    header.shardCount = shards;
    const std::uint32_t segment = _segment++;
    // An IO failure opening the journal (disk full creating the
    // directory, header publish rejected, ...) is already the
    // resumable case: nothing was lost, the header publish is atomic.
    auto journal_ptr = [&]() -> std::unique_ptr<SweepJournal> {
        try {
            return std::make_unique<SweepJournal>(dir, segment,
                                                  header);
        } catch (const IoError &e) {
            exitJournalFailure(e.what(), _stats);
        }
    }();
    SweepJournal &journal = *journal_ptr;

    std::vector<hpim::rt::ExecutionReport> results(count);
    // Not vector<bool>: workers mark distinct indices in parallel.
    std::vector<std::uint8_t> have(count, 0);
    std::size_t resumed = 0;
    for (const SweepJournal::Record &record : journal.loaded()) {
        fatal_if(record.pointHash
                     != journalPointHash(grid_hash, record.index),
                 "journal record for point ", record.index,
                 " does not match this sweep's grid; delete the "
                 "journal directory '",
                 dir, "' to start over");
        if (have[record.index])
            continue; // duplicate record: first one wins
        results[record.index] = record.report;
        have[record.index] = 1;
        ++resumed;
    }

    // Same scope discipline as map(); see the comment there. A
    // resumed point records no events (it never simulates), which is
    // why trace comparisons always use uninterrupted runs.
    const std::size_t scope_base = _stats.points;
    std::vector<double> durations(count, 0.0);
    std::vector<std::uint8_t> failed(count, 0);
    std::vector<std::string> errors(count);
    // attempted[i]: this process simulated point i (successfully or
    // not). Bounds work-stealing on deterministically failing points
    // to one attempt per process.
    std::vector<std::uint8_t> attempted(count, 0);

    // First durable journal IO failure, if any: workers stop
    // submitting, in-flight points drain, and the run escalates to
    // the resumable exit below instead of mislabelling the sweep as
    // complete with silently unjournaled points.
    std::atomic<bool> journal_failed{false};
    std::mutex journal_error_mutex;
    std::string journal_error;
    auto recordJournalFailure = [&](const std::exception &e) {
        std::lock_guard<std::mutex> lock(journal_error_mutex);
        if (!journal_failed.exchange(true, std::memory_order_release))
            journal_error = e.what();
    };

    // Simulate point i on the calling worker thread: the journaled
    // twin of the map() task body. Exactly one process runs this per
    // point at a time (claim-arbitrated when sharded).
    auto simulate = [&, seed = _options.baseSeed](std::size_t i) {
        const double start = threadCpuSeconds();
        hpim::sim::Rng rng(hpim::sim::Rng::streamSeed(seed, i));
        hpim::obs::TraceSession::Scope trace_scope(
            static_cast<std::uint32_t>(scope_base + i + 1));
        if (auto *session = hpim::obs::TraceSession::current()) {
            session->instant(session->track("sweep"), "point start",
                             0.0,
                             {{"index", static_cast<std::int64_t>(i)}});
        }
        bool simulated = false;
        try {
            results[i] = fn(i, rng);
            simulated = true;
        } catch (const std::exception &e) {
            failed[i] = 1;
            errors[i] = e.what();
        } catch (...) {
            failed[i] = 1;
            errors[i] = "unknown exception";
        }
        // Journal only successes: a failed point is re-attempted by
        // the next resume (or by a sibling shard). The append sits
        // outside the fn catch on purpose -- a journal IO failure is
        // a property of the run, not of the point, and must escalate
        // (the point stays unjournaled and is re-simulated on
        // resume) rather than masquerade as a point failure in the
        // table.
        if (simulated && !journal_failed.load(std::memory_order_acquire)) {
            try {
                journal.append(i, journalPointHash(grid_hash, i),
                               results[i]);
                have[i] = 1;
            } catch (const IoError &e) {
                recordJournalFailure(e);
            }
        }
        if (auto *session = hpim::obs::TraceSession::current()) {
            session->instant(
                session->track("sweep"), "point done", 0.0,
                {{"index", static_cast<std::int64_t>(i)},
                 {"outcome",
                  std::string(failed[i] ? "failed" : "ok")}});
        }
        attempted[i] = 1;
        durations[i] = threadCpuSeconds() - start;
    };

    // Is point i already recorded in a sibling shard's log? A scan of
    // the sibling record files (their good prefixes; a torn tail or
    // an in-flight append is simply not visible yet).
    auto recordedBySibling = [&](std::size_t i) {
        for (std::uint32_t s = 1; s <= shards; ++s) {
            if (s == shard)
                continue;
            std::vector<RawRecord> raw;
            if (!scanJournalRecords(
                    journalRecordsPath(dir, segment, s, shards),
                    count, raw))
                continue;
            for (const RawRecord &record : raw) {
                if (record.index == i)
                    return true;
            }
        }
        return false;
    };

    // Phase 1: this shard's own slice. Claims keep a restarted shard
    // and an actively stealing sibling from simulating a point twice.
    std::size_t slice_points = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (journalShardOwner(i, shards) == shard)
            ++slice_points;
    }
    {
        std::vector<std::future<void>> futures;
        futures.reserve(count);
        // jobs=1 runs inline on the calling thread: no pool, no
        // scheduling, the obvious serial reference.
        ThreadPool pool(_jobs > 1 ? _jobs : 0);
        for (std::size_t i = 0; i < count; ++i) {
            if (have[i] || journalShardOwner(i, shards) != shard)
                continue;
            // Journaled runs install interrupt handlers: stop
            // submitting, drain what is in flight, exit resumable.
            // A sealed journal stops submission the same way.
            if (interruptRequested()
                || journal_failed.load(std::memory_order_acquire))
                break;
            futures.push_back(pool.submit([&, i] {
                if (shards > 1) {
                    std::optional<ShardClaim> claim;
                    try {
                        claim = ShardClaim::tryAcquire(dir, segment,
                                                       i, shard);
                    } catch (const IoError &e) {
                        // Claim files live on the same volume as the
                        // records: an unopenable claim is the same
                        // durable condition, escalated the same way.
                        recordJournalFailure(e);
                        return;
                    }
                    if (!claim)
                        return; // a live sibling stole it already
                    if (recordedBySibling(i))
                        return; // finished elsewhere; drop the claim
                    simulate(i);
                } else {
                    simulate(i);
                }
            }));
        }
        for (auto &future : futures)
            future.get();
    }

    // Phase 2: work-stealing. The slice is done (or failed), so scan
    // the sibling logs for points nobody has finished and claim them
    // one by one. A SIGKILLed sibling's claims were released by the
    // kernel, so its unfinished points are immediately stealable;
    // points a live sibling is working on stay claimed and are left
    // alone. Loop until a scan finds nothing this process can take.
    std::size_t stolen = 0;
    if (shards > 1 && _options.workSteal) {
        while (!interruptRequested()
               && !journal_failed.load(std::memory_order_acquire)) {
            std::vector<std::uint8_t> done = have;
            for (std::uint32_t s = 1; s <= shards; ++s) {
                if (s == shard)
                    continue;
                std::vector<RawRecord> raw;
                if (!scanJournalRecords(
                        journalRecordsPath(dir, segment, s, shards),
                        count, raw))
                    continue;
                for (const RawRecord &record : raw)
                    done[record.index] = 1;
            }
            std::vector<std::size_t> todo;
            for (std::size_t i = 0; i < count; ++i) {
                if (!done[i] && !attempted[i])
                    todo.push_back(i);
            }
            if (todo.empty())
                break;
            std::atomic<std::size_t> progress{0};
            std::atomic<std::size_t> stolen_now{0};
            {
                std::vector<std::future<void>> futures;
                futures.reserve(todo.size());
                ThreadPool pool(_jobs > 1 ? _jobs : 0);
                for (std::size_t i : todo) {
                    if (interruptRequested()
                        || journal_failed.load(
                            std::memory_order_acquire))
                        break;
                    futures.push_back(pool.submit([&, i] {
                        std::optional<ShardClaim> claim;
                        try {
                            claim = ShardClaim::tryAcquire(
                                dir, segment, i, shard);
                        } catch (const IoError &e) {
                            recordJournalFailure(e);
                            return;
                        }
                        if (!claim)
                            return; // a live process owns the point
                        if (recordedBySibling(i)) {
                            // Completed between our scan and claim;
                            // rescan will pick it up.
                            progress.fetch_add(1);
                            return;
                        }
                        simulate(i);
                        if (!failed[i])
                            stolen_now.fetch_add(1);
                        progress.fetch_add(1);
                    }));
                }
                for (auto &future : futures)
                    future.get();
            }
            stolen += stolen_now.load();
            // No claim acquired and nothing newly finished: whatever
            // remains is being worked by live siblings. Their crash
            // would be recovered by the next resume of any shard.
            if (progress.load() == 0)
                break;
        }
    }

    for (std::size_t i = 0; i < count; ++i) {
        if (failed[i])
            _stats.failures.push_back(PointFailure{i, errors[i]});
    }
    _stats.resumedPoints += resumed;
    _stats.slicePoints += slice_points;
    _stats.stolenPoints += stolen;
    accumulateStats(durations, secondsSince(wall_start));
    if (journal_failed.load(std::memory_order_acquire))
        exitJournalFailure(journal_error, _stats);
    if (interruptRequested())
        exitResumable(_stats);
    return results;
}

double
SweepRunner::threadCpuSeconds()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
SweepRunner::accumulateStats(const std::vector<double> &durations,
                             double wall_sec)
{
    _stats.points += durations.size();
    _stats.wallSec += wall_sec;
    for (double d : durations)
        _stats.serialSec += d;
}

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        auto flagValue = [&](const char *flag) -> bool {
            std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0)
                return false;
            if (arg.size() > n && arg[n] == '=') {
                value = arg.substr(n + 1);
                return true;
            }
            if (arg.size() == n) {
                fatal_if(i + 1 >= argc, flag, " needs a value\n",
                         kUsage);
                value = argv[++i];
                return true;
            }
            return false;
        };
        if (flagValue("--jobs")) {
            std::uint64_t jobs = parseUint("--jobs", value);
            if (jobs > kMaxJobs)
                fatal("--jobs must be in 0..", kMaxJobs, ", got ",
                      jobs, "\n", kUsage);
            options.jobs = static_cast<std::uint32_t>(jobs);
        } else if (flagValue("--seed")) {
            options.baseSeed = parseUint("--seed", value);
        } else if (flagValue("--journal")) {
            if (value.empty())
                fatal("--journal needs a directory\n", kUsage);
            options.journalDir = value;
        } else if (flagValue("--trace")) {
            if (value.empty())
                fatal("--trace needs a file path\n", kUsage);
            options.traceFile = value;
        } else if (flagValue("--graph")) {
            if (value.empty())
                fatal("--graph needs a file path\n", kUsage);
            options.graphFiles.push_back(value);
        } else if (flagValue("--failpoints")) {
            if (value.empty())
                fatal("--failpoints needs a spec, e.g. "
                      "'journal.append.write=after(3):enospc'\n",
                      kUsage);
            options.failPoints = value;
        } else if (flagValue("--shard")) {
            std::size_t slash = value.find('/');
            if (slash == std::string::npos || slash == 0
                || slash + 1 >= value.size())
                fatal("--shard expects i/N (e.g. --shard 2/3), got '",
                      value, "'\n", kUsage);
            std::uint64_t index =
                parseUint("--shard", value.substr(0, slash));
            std::uint64_t count =
                parseUint("--shard", value.substr(slash + 1));
            if (count == 0 || count > kMaxShards || index == 0
                || index > count)
                fatal("--shard needs 1 <= i <= N <= ", kMaxShards,
                      ", got ", value, "\n", kUsage);
            options.shardIndex = static_cast<std::uint32_t>(index);
            options.shardCount = static_cast<std::uint32_t>(count);
        } else if (flagValue("--sim-cache-max-entries")) {
            options.simCacheMaxEntries = static_cast<std::size_t>(
                parseUint("--sim-cache-max-entries", value));
        } else if (arg == "--no-steal") {
            options.workSteal = false;
        } else if (arg == "--no-sim-cache") {
            options.simCache = false;
        } else {
            fatal("unknown argument '", arg, "'\n", kUsage);
        }
    }
    if (options.shardCount > 1 && options.journalDir.empty())
        fatal("--shard requires --journal: shards coordinate and "
              "publish results through the journal directory\n",
              kUsage);
    return options;
}

void
printSweepSummary(std::ostream &os, const SweepStats &stats)
{
    os << "\n[sweep] " << stats.points << " points, " << stats.jobs
       << (stats.jobs == 1 ? " worker" : " workers") << ": wall "
       << fmt(stats.wallSec, 2) << " s, serial-equivalent "
       << fmt(stats.serialSec, 2) << " s, speedup "
       << fmtRatio(stats.speedup()) << "\n";
    if (hpim::sim::MemoCache::enabled()) {
        // Always-on atomics, readable without any obs attachment.
        // CI byte-diffs strip [sweep] lines, so reporting cache
        // efficacy here cannot perturb table identity.
        auto cache = hpim::sim::MemoCache::instance().stats();
        os << "[sweep] sim-cache: " << cache.hits << " hits, "
           << cache.partialHits << " partial, " << cache.misses
           << " misses, " << cache.insertions << " insertions, "
           << cache.evictions << " evictions, " << cache.entries
           << " entries\n";
    } else {
        os << "[sweep] sim-cache: disabled\n";
    }
    if (stats.resumedPoints > 0) {
        os << "[sweep] " << stats.resumedPoints
           << (stats.resumedPoints == 1 ? " point" : " points")
           << " resumed from journal, "
           << stats.points - stats.resumedPoints << " simulated\n";
    }
    if (stats.shardCount > 1) {
        os << "[sweep] shard " << stats.shardIndex << "/"
           << stats.shardCount << ": " << stats.slicePoints
           << " slice point"
           << (stats.slicePoints == 1 ? "" : "s") << ", "
           << stats.stolenPoints << " stolen from siblings\n";
    }
    if (!stats.failures.empty()) {
        os << "[sweep] " << stats.failures.size() << " point"
           << (stats.failures.size() == 1 ? "" : "s")
           << " FAILED:\n";
        for (const PointFailure &f : stats.failures)
            os << "[sweep]   point " << f.index << ": " << f.what
               << "\n";
    }
}

} // namespace hpim::harness
