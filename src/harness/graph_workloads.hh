/**
 * @file
 * User-graph workloads for the bench binaries (docs/GRAPHS.md).
 *
 * Every sweep-driven bench accepts repeatable `--graph FILE` flags
 * (harness/sweep.hh: SweepOptions::graphFiles) naming nn::GraphIo
 * JSON documents. This helper loads them once -- a malformed file is
 * a typed error on stderr and exit(1), never a crash -- and appends a
 * "user graphs" table after the bench's built-in figures, running
 * each graph on each requested system through the same SweepRunner
 * (so `--jobs`, `--journal`, `--shard`, and `--trace` all apply).
 *
 * When no `--graph` flag was given the appendix prints nothing and
 * runs nothing, which is what keeps the committed golden outputs of
 * fig8/fig13 byte-identical.
 */

#ifndef HPIM_HARNESS_GRAPH_WORKLOADS_HH
#define HPIM_HARNESS_GRAPH_WORKLOADS_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "nn/graph.hh"

namespace hpim::harness {

/** One `--graph FILE` workload, loaded and validated. */
struct GraphWorkload
{
    std::string path;                       ///< file it came from
    std::shared_ptr<const nn::Graph> graph; ///< parsed graph
};

/**
 * Load every file in @p paths through nn::loadGraphFile.
 *
 * A file that cannot be opened or fails schema validation prints the
 * typed GraphParseError (naming line and field) to stderr and exits
 * with status 1 -- the bench never starts simulating a partial
 * workload list.
 */
std::vector<GraphWorkload>
loadGraphWorkloads(const std::vector<std::string> &paths);

/**
 * Journal identity of a systems x graphs appendix grid: folds each
 * system kind, each graph's Graph::signature(), and @p steps, so a
 * resumed `--journal` run refuses a journal written for different
 * graphs or systems.
 */
std::uint64_t
graphGridHash(const std::vector<baseline::SystemKind> &systems,
              const std::vector<GraphWorkload> &graphs,
              std::uint32_t steps);

/**
 * Run graphs x systems on @p runner and print the appendix table to
 * @p os. No output and no simulation when @p graphs is empty. The
 * GPU system cannot appear in @p systems (its analytic model needs
 * per-model calibration; baseline::runSystemGraph is fatal on it).
 */
void runGraphAppendix(std::ostream &os, SweepRunner &runner,
                      const std::vector<GraphWorkload> &graphs,
                      const std::vector<baseline::SystemKind> &systems,
                      std::uint32_t steps = 4);

} // namespace hpim::harness

#endif // HPIM_HARNESS_GRAPH_WORKLOADS_HH
