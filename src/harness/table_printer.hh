/**
 * @file
 * Text-table and CSV output helpers shared by the bench harnesses.
 */

#ifndef HPIM_HARNESS_TABLE_PRINTER_HH
#define HPIM_HARNESS_TABLE_PRINTER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hpim::harness {

/** A simple fixed-column text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Add a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with @p digits significant decimals. */
std::string fmt(double value, int digits = 3);

/** Format a ratio as "12.3x". */
std::string fmtRatio(double value, int digits = 2);

/** Format a fraction as "98.7%". */
std::string fmtPct(double value, int digits = 1);

/** Print a section banner. */
void banner(std::ostream &os, const std::string &title);

} // namespace hpim::harness

#endif // HPIM_HARNESS_TABLE_PRINTER_HH
