#include "harness/journal.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/failpoint.hh"
#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "harness/report_io.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace hpim::harness {

namespace {

// Injection sites for every durability decision this file makes
// (docs/RESILIENCE.md, "Host-IO fault injection"). All are plain
// relaxed-load no-ops until armed via --failpoints/HPIM_FAILPOINTS.
FailPoint fpAppendWrite("journal.append.write");
FailPoint fpAppendFsync("journal.append.fsync");
FailPoint fpHeaderWrite("journal.header.write");
FailPoint fpHeaderFsync("journal.header.fsync");
FailPoint fpHeaderRename("journal.header.rename");
FailPoint fpDirFsync("journal.dir.fsync");
FailPoint fpClaimOpen("journal.claim.open");

/**
 * fsync(2) through @p fp with bounded EINTR retry. Throws IoError on
 * a durable failure (EIO, ENOSPC, injected fsync-fail): an fsync the
 * kernel rejected means the bytes may not survive a crash, and no
 * retry can make them durable after the page-cache state is
 * undefined -- the caller must seal and escalate, not loop.
 */
void
syncAll(FailPoint &fp, int fd, const std::string &path)
{
    std::uint32_t stalled = 0;
    while (fpFsync(fp, fd) != 0) {
        if (errno != EINTR
            || ++stalled > failPointTransientRetryLimit)
            throw IoError("fsync", path, errno);
    }
}

/**
 * fsync a directory so created/renamed entries are durable. An
 * unopenable directory stays best-effort (the data files themselves
 * are synced, and some filesystems refuse O_DIRECTORY reads), but a
 * *failed* fsync on an open handle is a real durability loss and
 * propagates as a typed IoError.
 */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    try {
        syncAll(fpDirFsync, fd, dir);
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
}

std::string
headerJson(const SweepJournal::Header &header)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(header.schemaVersion));
    w.field("base_seed", header.baseSeed);
    w.field("grid_hash", header.gridHash);
    w.field("points", header.points);
    w.field("shard_index", header.shardIndex);
    w.field("shard_count", header.shardCount);
    w.endObject();
    os << '\n';
    return os.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

std::string
segmentBase(const std::string &dir, std::uint32_t segment)
{
    return dir + "/sweep-" + std::to_string(segment);
}

std::string
shardSuffix(std::uint32_t shard_index, std::uint32_t shard_count)
{
    // 1/1 keeps the legacy unsharded names, so single-process
    // journals (and every pre-shard journal consumer) are unchanged.
    if (shard_count <= 1)
        return "";
    return ".shard-" + std::to_string(shard_index) + "of"
           + std::to_string(shard_count);
}

} // namespace

// The primitives moved to sim/hash.hh (shared with graph signatures
// and the memo cache); these wrappers keep the journal API stable.
std::uint64_t
hashBytes(const void *data, std::size_t size, std::uint64_t seed)
{
    return hpim::sim::hashBytes(data, size, seed);
}

std::uint64_t
hashString(std::string_view text, std::uint64_t seed)
{
    return hpim::sim::hashString(text, seed);
}

std::uint64_t
hashU64(std::uint64_t value, std::uint64_t seed)
{
    return hpim::sim::hashU64(value, seed);
}

std::uint64_t
journalPointHash(std::uint64_t grid_hash, std::size_t index)
{
    return hpim::sim::Rng::streamSeed(grid_hash, index);
}

std::uint32_t
journalShardOwner(std::size_t index, std::uint32_t shard_count)
{
    if (shard_count <= 1)
        return 1;
    return static_cast<std::uint32_t>(index % shard_count) + 1;
}

std::string
journalMetaPath(const std::string &dir, std::uint32_t segment,
                std::uint32_t shard_index, std::uint32_t shard_count)
{
    return segmentBase(dir, segment)
           + shardSuffix(shard_index, shard_count) + ".meta.json";
}

std::string
journalRecordsPath(const std::string &dir, std::uint32_t segment,
                   std::uint32_t shard_index,
                   std::uint32_t shard_count)
{
    return segmentBase(dir, segment)
           + shardSuffix(shard_index, shard_count) + ".records.jsonl";
}

std::string
journalClaimPath(const std::string &dir, std::uint32_t segment,
                 std::size_t index)
{
    return segmentBase(dir, segment) + ".claim-"
           + std::to_string(index);
}

SweepJournal::Header
readJournalHeader(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw JournalFormatError("cannot read header", path);
    std::ostringstream os;
    os << is.rdbuf();

    SweepJournal::Header header;
    json::Value root;
    try {
        root = json::parse(os.str());
        header.schemaVersion =
            static_cast<int>(root.at("schema_version").asInt64());
    } catch (const json::Error &e) {
        throw JournalFormatError(e.what(), path, "schema_version");
    }
    // An unknown version cannot be parsed further; hand the version
    // back so the caller can produce the right diagnostic.
    if (header.schemaVersion != journalSchemaVersion)
        return header;
    try {
        header.baseSeed = root.at("base_seed").asUInt64();
        header.gridHash = root.at("grid_hash").asUInt64();
        header.points = root.at("points").asUInt64();
        header.shardIndex = static_cast<std::uint32_t>(
            root.at("shard_index").asUInt64());
        header.shardCount = static_cast<std::uint32_t>(
            root.at("shard_count").asUInt64());
    } catch (const json::Error &e) {
        throw JournalFormatError(e.what(), path);
    }
    if (header.shardCount == 0)
        throw JournalFormatError("shard_count must be >= 1", path,
                                 "shard_count");
    if (header.shardIndex == 0 || header.shardIndex > header.shardCount)
        throw JournalFormatError(
            "shard_index " + std::to_string(header.shardIndex)
                + " outside 1.." + std::to_string(header.shardCount),
            path, "shard_index");
    return header;
}

void
writeJournalHeaderFile(const std::string &path,
                       const SweepJournal::Header &header)
{
    // Atomic publish: a crash leaves either no header or a complete
    // one, never a torn file that a resume would misparse. Any IO
    // failure throws IoError with the leftover tmp file removed, so
    // a retried run starts from a clean slate.
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw IoError("open", tmp, errno);
    try {
        fpWriteAll(fpHeaderWrite, fd, headerJson(header), tmp);
        syncAll(fpHeaderFsync, fd, tmp);
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(fd);
    if (fpRename(fpHeaderRename, tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw IoError("rename", tmp, err);
    }
}

bool
scanJournalRecords(const std::string &path, std::uint64_t points,
                   std::vector<RawRecord> &out,
                   std::string *tail_note, std::size_t *good_bytes)
{
    if (tail_note)
        tail_note->clear();
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    const std::string text = os.str();

    std::size_t pos = 0;
    std::size_t keep = 0; // byte offset past the last good record
    std::size_t line_no = 0;
    while (pos < text.size()) {
        ++line_no;
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) {
            // No terminator: a process died (or is still) mid-append.
            if (tail_note)
                *tail_note = "truncated tail record at line "
                             + std::to_string(line_no);
            break;
        }
        const std::string line = text.substr(pos, eol - pos);
        RawRecord record;
        try {
            json::Value root = json::parse(line);
            record.index =
                static_cast<std::size_t>(root.at("index").asUInt64());
            record.pointHash = root.at("point_hash").asUInt64();
            if (!root.find("report"))
                throw json::Error("record has no report", root.line);
            if (record.index >= points)
                throw json::Error("index " + std::to_string(record.index)
                                      + " out of range (grid has "
                                      + std::to_string(points)
                                      + " points)",
                                  root.line);
        } catch (const std::exception &e) {
            // A complete-looking but unparsable record: everything
            // after it is suspect too, so stop scanning here.
            if (tail_note)
                *tail_note = std::string("corrupt record at line ")
                             + std::to_string(line_no) + " (" + e.what()
                             + ")";
            break;
        }
        record.lineNo = line_no;
        record.line = line;
        out.push_back(std::move(record));
        pos = eol + 1;
        keep = pos;
    }
    if (good_bytes)
        *good_bytes = keep;
    return true;
}

SweepJournal::SweepJournal(const std::string &dir,
                           std::uint32_t segment, const Header &header)
{
    fatal_if(dir.empty(), "journal directory must not be empty");
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        throw IoError("mkdir", dir, errno);

    const std::string meta_path = journalMetaPath(
        dir, segment, header.shardIndex, header.shardCount);
    _recordsPath = journalRecordsPath(dir, segment, header.shardIndex,
                                      header.shardCount);

    if (fileExists(meta_path)) {
        checkHeader(meta_path, header);
        if (fileExists(_recordsPath))
            replay(_recordsPath, header);
    } else {
        writeJournalHeaderFile(meta_path, header);
    }

    _fd = ::open(_recordsPath.c_str(),
                 O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (_fd < 0)
        throw IoError("open", _recordsPath, errno);
    // Everything on disk right now (the replayed good prefix, or
    // nothing) is durable; seal() may cut back to this watermark.
    struct stat st{};
    if (::fstat(_fd, &st) == 0)
        _durableBytes = static_cast<std::size_t>(st.st_size);
    syncDir(dir);
}

SweepJournal::~SweepJournal()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
SweepJournal::checkHeader(const std::string &path,
                          const Header &expect)
{
    Header found;
    try {
        found = readJournalHeader(path);
    } catch (const JournalFormatError &e) {
        fatal("journal header '", path, "' is corrupt (", e.what(),
              "); delete the journal directory to start over");
    }
    if (found.schemaVersion != expect.schemaVersion)
        fatal("journal '", path, "' has schema version ",
              found.schemaVersion, ", this build writes ",
              expect.schemaVersion,
              "; delete the journal directory to start over");
    if (found.baseSeed != expect.baseSeed)
        fatal("journal '", path, "' was written with --seed ",
              found.baseSeed, ", this run uses --seed ",
              expect.baseSeed,
              "; rerun with the original seed or delete the journal");
    if (found.gridHash != expect.gridHash)
        fatal("journal '", path,
              "' was written for a different sweep grid: this run "
              "expects grid hash ",
              expect.gridHash, ", found grid hash ", found.gridHash,
              "; results will not mix -- delete the journal or rerun "
              "the original binary");
    if (found.points != expect.points)
        fatal("journal '", path,
              "' was written for a different sweep grid: this run "
              "sweeps ",
              expect.points, " points, the journal holds ",
              found.points,
              "; results will not mix -- delete the journal or rerun "
              "the original binary");
    if (found.shardIndex != expect.shardIndex
        || found.shardCount != expect.shardCount)
        fatal("journal '", path, "' belongs to shard ",
              found.shardIndex, "/", found.shardCount,
              ", this run is shard ", expect.shardIndex, "/",
              expect.shardCount,
              "; every process must keep its original --shard "
              "assignment for the life of a journal");
}

void
SweepJournal::replay(const std::string &path, const Header &header)
{
    std::vector<RawRecord> raw;
    std::string tail_note;
    std::size_t keep = 0;
    if (!scanJournalRecords(path, header.points, raw, &tail_note,
                            &keep))
        fatal("cannot read journal records '", path, "'");
    std::size_t replayed_bytes = 0;
    for (const RawRecord &record : raw) {
        Record loaded;
        loaded.index = record.index;
        loaded.pointHash = record.pointHash;
        try {
            json::Value root = json::parse(record.line);
            loaded.report = reportFromJson(root.at("report"));
        } catch (const std::exception &e) {
            // The scanner checked syntax; a report that does not
            // round-trip means a schema change mid-journal. Stop at
            // it like any other bad record.
            tail_note = "unreadable report at line "
                        + std::to_string(record.lineNo) + " ("
                        + e.what() + ")";
            keep = replayed_bytes;
            break;
        }
        replayed_bytes += record.line.size() + 1;
        _loaded.push_back(std::move(loaded));
    }
    if (!tail_note.empty())
        std::cerr << "[journal] dropping " << tail_note << " of "
                  << path << "; resuming from the last good point\n";
    // Cut the file back to the last good record so this run's appends
    // start on a record boundary instead of gluing onto a torn tail.
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0
        && static_cast<std::size_t>(st.st_size) > keep)
        fatal_if(::truncate(path.c_str(),
                            static_cast<off_t>(keep)) != 0,
                 "cannot drop bad tail of journal '", path,
                 "': ", std::strerror(errno));
}

void
SweepJournal::append(std::size_t index, std::uint64_t point_hash,
                     const hpim::rt::ExecutionReport &report)
{
    // The record embeds the report via jsonString() rather than a
    // nested Writer: the journal round-trip tests depend on the
    // embedded object being byte-identical to writeJson() output.
    std::string line = "{\"index\":" + std::to_string(index)
                       + ",\"point_hash\":"
                       + std::to_string(point_hash) + ",\"report\":"
                       + jsonString(report) + "}\n";
    std::lock_guard<std::mutex> lock(_mutex);
    if (_sealed)
        throw IoError("append", _recordsPath, EROFS);
    try {
        fpWriteAll(fpAppendWrite, _fd, line, _recordsPath);
        syncAll(fpAppendFsync, _fd, _recordsPath);
    } catch (const std::bad_alloc &) {
        seal();
        throw IoError("append", _recordsPath, ENOMEM);
    } catch (const IoError &) {
        seal();
        throw;
    }
    _durableBytes += line.size();
}

void
SweepJournal::seal()
{
    // A durable failure leaves the tail of the records file in an
    // undefined state (partially written, or written but never
    // fsync'd). Cut back to the last record known durable so a
    // resumed run replays a clean prefix and re-simulates only the
    // genuinely lost points -- byte-identical to a SIGKILL crash at
    // the same spot. Best-effort: if even the truncate fails, the
    // replay scanner will drop the torn tail on resume anyway.
    _sealed = true;
    struct stat st{};
    if (::fstat(_fd, &st) == 0
        && static_cast<std::size_t>(st.st_size) > _durableBytes)
        (void)::ftruncate(_fd, static_cast<off_t>(_durableBytes));
}

std::optional<ShardClaim>
ShardClaim::tryAcquire(const std::string &dir, std::uint32_t segment,
                       std::size_t index, std::uint32_t shard_index)
{
    const std::string path = journalClaimPath(dir, segment, index);
    // The claim file may be retired (unlinked) by its owner between
    // our open and flock; detect the stale handle and retry against
    // the fresh inode. Bounded: a lost race is never an error, the
    // caller just rescans.
    for (int attempt = 0; attempt < 4; ++attempt) {
        int fd = fpOpen(fpClaimOpen, path.c_str(),
                        O_RDWR | O_CREAT, 0644);
        if (fd < 0) {
            if (errno == EINTR)
                continue; // transient; bounded by the attempt loop
            throw IoError("open", path, errno);
        }
        if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
            // A live process holds the point. (A SIGKILLed holder's
            // lock is released by the kernel, so its points do not
            // stay stuck -- no timeout heuristic needed.)
            ::close(fd);
            return std::nullopt;
        }
        struct stat fst{}, pst{};
        if (::fstat(fd, &fst) != 0 || ::stat(path.c_str(), &pst) != 0
            || fst.st_ino != pst.st_ino || fst.st_dev != pst.st_dev) {
            // We locked an inode that was already retired; whoever
            // retired it completed the point or a sibling re-created
            // the path. Start over against the current file.
            ::close(fd);
            continue;
        }
        // Ownership established. Record the claimant (shard, pid) --
        // purely diagnostic: if this process dies here, the leftover
        // bytes tell the next owner (and hpim_merge) who to blame.
        std::string note = "{\"index\":" + std::to_string(index)
                           + ",\"shard\":"
                           + std::to_string(shard_index) + ",\"pid\":"
                           + std::to_string(::getpid()) + "}\n";
        // Best effort, no fsync: the claim *lock* is what carries
        // ownership; these bytes only name the holder for post-mortem
        // diagnostics, so losing them must never fail the point.
        if (::ftruncate(fd, 0) == 0)
            (void)!::write(fd, note.data(), note.size());
        return ShardClaim(fd, path);
    }
    return std::nullopt;
}

ShardClaim::~ShardClaim()
{
    if (_fd < 0)
        return;
    // Unlink before releasing the lock: a sibling that acquires the
    // point afterwards re-creates the path fresh and re-checks the
    // record logs, so it can never act on our leftover claim bytes.
    ::unlink(_path.c_str());
    ::close(_fd);
}

ShardClaim::ShardClaim(ShardClaim &&other) noexcept
    : _fd(other._fd), _path(std::move(other._path))
{
    other._fd = -1;
}

ShardClaim &
ShardClaim::operator=(ShardClaim &&other) noexcept
{
    if (this != &other) {
        if (_fd >= 0) {
            ::unlink(_path.c_str());
            ::close(_fd);
        }
        _fd = other._fd;
        _path = std::move(other._path);
        other._fd = -1;
    }
    return *this;
}

} // namespace hpim::harness
