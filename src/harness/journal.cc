#include "harness/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "harness/report_io.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"

namespace hpim::harness {

namespace {

/**
 * write(2) the whole buffer, then fsync. fatal() on any I/O error:
 * a journal that cannot persist is worse than no journal.
 */
void
writeAll(int fd, const std::string &data, const std::string &path)
{
    std::size_t written = 0;
    while (written < data.size()) {
        ssize_t n = ::write(fd, data.data() + written,
                            data.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("journal write to '", path,
                  "' failed: ", std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    fatal_if(::fsync(fd) != 0, "journal fsync of '", path,
             "' failed: ", std::strerror(errno));
}

/** fsync a directory so created/renamed entries are durable. */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return; // best effort; the data files themselves are synced
    ::fsync(fd);
    ::close(fd);
}

std::string
headerJson(const SweepJournal::Header &header)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(header.schemaVersion));
    w.field("base_seed", header.baseSeed);
    w.field("grid_hash", header.gridHash);
    w.field("points", header.points);
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot read journal file '", path, "'");
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace

// The primitives moved to sim/hash.hh (shared with graph signatures
// and the memo cache); these wrappers keep the journal API stable.
std::uint64_t
hashBytes(const void *data, std::size_t size, std::uint64_t seed)
{
    return hpim::sim::hashBytes(data, size, seed);
}

std::uint64_t
hashString(std::string_view text, std::uint64_t seed)
{
    return hpim::sim::hashString(text, seed);
}

std::uint64_t
hashU64(std::uint64_t value, std::uint64_t seed)
{
    return hpim::sim::hashU64(value, seed);
}

SweepJournal::SweepJournal(const std::string &dir,
                           std::uint32_t segment, const Header &header)
{
    fatal_if(dir.empty(), "journal directory must not be empty");
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("cannot create journal directory '", dir,
              "': ", std::strerror(errno));

    const std::string base =
        dir + "/sweep-" + std::to_string(segment);
    const std::string meta_path = base + ".meta.json";
    _recordsPath = base + ".records.jsonl";

    if (fileExists(meta_path)) {
        checkHeader(meta_path, header);
        if (fileExists(_recordsPath))
            replay(_recordsPath, header);
    } else {
        writeHeader(meta_path, header);
    }

    _fd = ::open(_recordsPath.c_str(),
                 O_WRONLY | O_CREAT | O_APPEND, 0644);
    fatal_if(_fd < 0, "cannot open journal records '", _recordsPath,
             "': ", std::strerror(errno));
    syncDir(dir);
}

SweepJournal::~SweepJournal()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
SweepJournal::writeHeader(const std::string &path,
                          const Header &header)
{
    // Atomic publish: a crash leaves either no header or a complete
    // one, never a torn file that a resume would misparse.
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    fatal_if(fd < 0, "cannot create journal header '", tmp,
             "': ", std::strerror(errno));
    writeAll(fd, headerJson(header), tmp);
    ::close(fd);
    fatal_if(::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot publish journal header '", path,
             "': ", std::strerror(errno));
}

void
SweepJournal::checkHeader(const std::string &path,
                          const Header &expect)
{
    Header found;
    try {
        json::Value root = json::parse(readFile(path));
        found.schemaVersion =
            static_cast<int>(root.at("schema_version").asInt64());
        found.baseSeed = root.at("base_seed").asUInt64();
        found.gridHash = root.at("grid_hash").asUInt64();
        found.points = root.at("points").asUInt64();
    } catch (const json::Error &e) {
        fatal("journal header '", path, "' is corrupt (", e.what(),
              "); delete the journal directory to start over");
    }
    if (found.schemaVersion != expect.schemaVersion)
        fatal("journal '", path, "' has schema version ",
              found.schemaVersion, ", this build writes ",
              expect.schemaVersion,
              "; delete the journal directory to start over");
    if (found.baseSeed != expect.baseSeed)
        fatal("journal '", path, "' was written with --seed ",
              found.baseSeed, ", this run uses --seed ",
              expect.baseSeed,
              "; rerun with the original seed or delete the journal");
    if (found.gridHash != expect.gridHash
        || found.points != expect.points)
        fatal("journal '", path,
              "' was written for a different sweep grid (",
              found.points, " points, grid hash ", found.gridHash,
              "; this run: ", expect.points, " points, grid hash ",
              expect.gridHash,
              "); results will not mix -- delete the journal or rerun "
              "the original binary");
}

void
SweepJournal::replay(const std::string &path, const Header &header)
{
    const std::string text = readFile(path);
    std::size_t pos = 0;
    std::size_t keep = 0; // byte offset past the last good record
    std::size_t line_no = 0;
    while (pos < text.size()) {
        ++line_no;
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) {
            // No terminator: the process died mid-append. Drop the
            // tail; the point will simply be re-simulated.
            std::cerr << "[journal] dropping truncated tail record "
                         "(line "
                      << line_no << ") of " << path << "\n";
            break;
        }
        const std::string line = text.substr(pos, eol - pos);
        try {
            json::Value root = json::parse(line);
            Record record;
            record.index =
                static_cast<std::size_t>(root.at("index").asUInt64());
            record.pointHash = root.at("point_hash").asUInt64();
            record.report = reportFromJson(root.at("report"));
            if (record.index >= header.points)
                throw ParseError("index out of range", root.line,
                                 "index");
            _loaded.push_back(std::move(record));
        } catch (const std::exception &e) {
            // A complete-looking but unparsable record: everything
            // after it is suspect too, so stop replaying here.
            std::cerr << "[journal] dropping corrupt record at line "
                      << line_no << " of " << path << " (" << e.what()
                      << "); resuming from the last good point\n";
            break;
        }
        pos = eol + 1;
        keep = pos;
    }
    // Cut the file back to the last good record so this run's appends
    // start on a record boundary instead of gluing onto a torn tail.
    if (keep < text.size())
        fatal_if(::truncate(path.c_str(),
                            static_cast<off_t>(keep)) != 0,
                 "cannot drop bad tail of journal '", path,
                 "': ", std::strerror(errno));
}

void
SweepJournal::append(std::size_t index, std::uint64_t point_hash,
                     const hpim::rt::ExecutionReport &report)
{
    // The record embeds the report via jsonString() rather than a
    // nested Writer: the journal round-trip tests depend on the
    // embedded object being byte-identical to writeJson() output.
    std::string line = "{\"index\":" + std::to_string(index)
                       + ",\"point_hash\":"
                       + std::to_string(point_hash) + ",\"report\":"
                       + jsonString(report) + "}\n";
    std::lock_guard<std::mutex> lock(_mutex);
    writeAll(_fd, line, _recordsPath);
}

} // namespace hpim::harness
