/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * A policy tracks per-way metadata inside one set and picks a victim.
 */

#ifndef HPIM_CACHE_REPLACEMENT_HH
#define HPIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace hpim::cache {

/** Per-set replacement state and victim selection. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** @param ways associativity this instance will manage. */
    explicit ReplacementPolicy(std::uint32_t ways) : _ways(ways) {}

    /** Called on every hit to way @p way of set @p set. */
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /** Called when a line is installed in way @p way of set @p set. */
    virtual void install(std::uint32_t set, std::uint32_t way) = 0;

    /** @return victim way for set @p set (all ways valid). */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** @return policy name for reporting. */
    virtual std::string policyName() const = 0;

    std::uint32_t ways() const { return _ways; }

  protected:
    std::uint32_t _ways;
};

/** True LRU via per-set recency stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void install(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    std::string policyName() const override { return "LRU"; }

  private:
    std::vector<std::uint64_t> _stamps; ///< sets x ways recency stamps
    std::uint64_t _clock = 0;
};

/** Tree pseudo-LRU (power-of-two ways). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    void install(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    std::string policyName() const override { return "TreePLRU"; }

  private:
    void updatePath(std::uint32_t set, std::uint32_t way);

    std::vector<std::uint8_t> _bits; ///< sets x (ways-1) tree bits
};

/** Random replacement (deterministic via seeded Rng). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                 std::uint64_t seed = 1);

    void touch(std::uint32_t, std::uint32_t) override {}
    void install(std::uint32_t, std::uint32_t) override {}
    std::uint32_t victim(std::uint32_t set) override;
    std::string policyName() const override { return "Random"; }

  private:
    hpim::sim::Rng _rng;
};

/** Factory: "lru" | "plru" | "random". */
std::unique_ptr<ReplacementPolicy>
makePolicy(const std::string &name, std::uint32_t sets, std::uint32_t ways);

} // namespace hpim::cache

#endif // HPIM_CACHE_REPLACEMENT_HH
