#include "cache/replacement.hh"

#include <bit>

#include "sim/logging.hh"

namespace hpim::cache {

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ReplacementPolicy(ways), _stamps(std::size_t(sets) * ways, 0)
{
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    _stamps[std::size_t(set) * _ways + way] = ++_clock;
}

void
LruPolicy::install(std::uint32_t set, std::uint32_t way)
{
    touch(set, way);
}

std::uint32_t
LruPolicy::victim(std::uint32_t set)
{
    std::uint32_t best = 0;
    std::uint64_t best_stamp = ~std::uint64_t(0);
    for (std::uint32_t w = 0; w < _ways; ++w) {
        std::uint64_t stamp = _stamps[std::size_t(set) * _ways + w];
        if (stamp < best_stamp) {
            best_stamp = stamp;
            best = w;
        }
    }
    return best;
}

TreePlruPolicy::TreePlruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ReplacementPolicy(ways)
{
    fatal_if(ways < 2 || (ways & (ways - 1)) != 0,
             "tree PLRU needs power-of-two ways >= 2, got ", ways);
    _bits.assign(std::size_t(sets) * (ways - 1), 0);
}

void
TreePlruPolicy::updatePath(std::uint32_t set, std::uint32_t way)
{
    // Walk from the root, flipping bits to point *away* from `way`.
    std::uint8_t *bits = &_bits[std::size_t(set) * (_ways - 1)];
    std::uint32_t node = 0;
    std::uint32_t lo = 0, hi = _ways;
    while (hi - lo > 1) {
        std::uint32_t mid = lo + (hi - lo) / 2;
        if (way < mid) {
            bits[node] = 1; // next victim search goes right
            node = 2 * node + 1;
            hi = mid;
        } else {
            bits[node] = 0; // next victim search goes left
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

void
TreePlruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    updatePath(set, way);
}

void
TreePlruPolicy::install(std::uint32_t set, std::uint32_t way)
{
    updatePath(set, way);
}

std::uint32_t
TreePlruPolicy::victim(std::uint32_t set)
{
    const std::uint8_t *bits = &_bits[std::size_t(set) * (_ways - 1)];
    std::uint32_t node = 0;
    std::uint32_t lo = 0, hi = _ways;
    while (hi - lo > 1) {
        std::uint32_t mid = lo + (hi - lo) / 2;
        if (bits[node] == 0) {
            node = 2 * node + 1;
            hi = mid;
        } else {
            node = 2 * node + 2;
            lo = mid;
        }
    }
    return lo;
}

RandomPolicy::RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                           std::uint64_t seed)
    : ReplacementPolicy(ways), _rng(seed)
{
    (void)sets;
}

std::uint32_t
RandomPolicy::victim(std::uint32_t set)
{
    (void)set;
    return static_cast<std::uint32_t>(_rng.below(_ways));
}

std::unique_ptr<ReplacementPolicy>
makePolicy(const std::string &name, std::uint32_t sets, std::uint32_t ways)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>(sets, ways);
    if (name == "plru")
        return std::make_unique<TreePlruPolicy>(sets, ways);
    if (name == "random")
        return std::make_unique<RandomPolicy>(sets, ways);
    fatal("unknown replacement policy '", name, "'");
}

} // namespace hpim::cache
