/**
 * @file
 * A set-associative, write-back/write-allocate cache model.
 *
 * Functional + counting: tracks tags and dirty bits, returns hit/miss
 * outcomes and counts evictions/writebacks. Used standalone in tests
 * and stacked into a CacheHierarchy for the host CPU model.
 */

#ifndef HPIM_CACHE_CACHE_HH
#define HPIM_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "mem/memory_request.hh"
#include "sim/named.hh"

namespace hpim::cache {

/** Cache geometry and behaviour parameters. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 8;
    std::string policy = "lru";
    std::uint32_t hitLatencyCycles = 4;
};

/** Outcome of a single cache access. */
struct AccessResult
{
    bool hit = false;
    /** True when a dirty line was evicted (writeback to next level). */
    bool writeback = false;
    /** Address of the written-back line (valid if writeback). */
    hpim::mem::Addr writebackAddr = 0;
};

/** Hit/miss statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses)
                         / static_cast<double>(accesses);
    }
};

/** One cache level. */
class Cache : public hpim::sim::Named
{
  public:
    Cache(const CacheConfig &config, const std::string &name);

    /**
     * Access one byte-addressable location; the whole containing line
     * is affected. Misses allocate (write-allocate for writes too).
     */
    AccessResult access(hpim::mem::Addr addr, hpim::mem::AccessType type);

    /** Invalidate everything (keeps statistics). */
    void flush();

    /**
     * Publish the hit/miss counters into the attached
     * obs::MetricsRegistry as "cache.<name>.*" gauges. No-op when no
     * registry is attached. Deliberately a snapshot call rather than
     * per-access instrumentation: access() is the hot path.
     */
    void publishMetrics() const;

    const CacheConfig &config() const { return _config; }
    const CacheStats &stats() const { return _stats; }
    std::uint32_t sets() const { return _sets; }

    /** @return true if the line containing @p addr is present. */
    bool probe(hpim::mem::Addr addr) const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t lineAddr(hpim::mem::Addr addr) const
    { return addr / _config.lineBytes; }

    CacheConfig _config;
    std::uint32_t _sets;
    std::vector<Line> _lines; ///< sets x ways
    std::unique_ptr<ReplacementPolicy> _policy;
    CacheStats _stats;
};

} // namespace hpim::cache

#endif // HPIM_CACHE_CACHE_HH
