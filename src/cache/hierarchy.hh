/**
 * @file
 * A multi-level cache hierarchy (inclusive-ish counting model).
 *
 * Accesses walk L1 -> L2 -> ... ; a miss in the last level counts as a
 * main-memory access -- exactly the quantity the paper's profiler
 * collects per operation ("number of main memory accesses").
 */

#ifndef HPIM_CACHE_HIERARCHY_HH
#define HPIM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"

namespace hpim::cache {

/** Result of an access through the whole hierarchy. */
struct HierarchyResult
{
    /** Level that hit: 0 = L1, ...; levels() = main memory. */
    std::uint32_t hitLevel = 0;
    /** Total lookup latency in CPU cycles (excl. DRAM). */
    std::uint32_t latencyCycles = 0;
    /** True if the access reached main memory. */
    bool mainMemory = false;
};

/** Stacked cache levels. */
class CacheHierarchy
{
  public:
    /** Build from per-level configs, L1 first. */
    explicit CacheHierarchy(const std::vector<CacheConfig> &levels);

    /** Xeon-E5-2630-v3-like hierarchy (paper Table IV host). */
    static CacheHierarchy xeonLike();

    HierarchyResult access(hpim::mem::Addr addr,
                           hpim::mem::AccessType type);

    std::uint32_t levels() const
    { return static_cast<std::uint32_t>(_levels.size()); }
    const Cache &level(std::uint32_t i) const;

    /** Main-memory accesses observed so far. */
    std::uint64_t mainMemoryAccesses() const { return _mm_accesses; }
    /** Writebacks that reached main memory. */
    std::uint64_t mainMemoryWritebacks() const { return _mm_writebacks; }

    void flushAll();

    /** Publish every level's counters ("cache.L1.*", ...); see
     *  Cache::publishMetrics. */
    void publishMetrics() const;

  private:
    std::vector<std::unique_ptr<Cache>> _levels;
    std::uint64_t _mm_accesses = 0;
    std::uint64_t _mm_writebacks = 0;
};

} // namespace hpim::cache

#endif // HPIM_CACHE_HIERARCHY_HH
