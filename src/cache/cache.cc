#include "cache/cache.hh"

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace hpim::cache {

using hpim::mem::AccessType;
using hpim::mem::Addr;

Cache::Cache(const CacheConfig &config, const std::string &name)
    : Named(name), _config(config)
{
    fatal_if(config.lineBytes == 0
                 || (config.lineBytes & (config.lineBytes - 1)) != 0,
             "cache line size must be a power of two");
    fatal_if(config.ways == 0, "cache needs at least one way");
    std::uint64_t lines = config.sizeBytes / config.lineBytes;
    fatal_if(lines == 0 || lines % config.ways != 0,
             "cache size ", config.sizeBytes, " not divisible into ",
             config.ways, "-way sets of ", config.lineBytes, "B lines");
    _sets = static_cast<std::uint32_t>(lines / config.ways);
    fatal_if((_sets & (_sets - 1)) != 0,
             "cache set count must be a power of two, got ", _sets);
    _lines.assign(std::size_t(_sets) * config.ways, Line{});
    _policy = makePolicy(config.policy, _sets, config.ways);
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t line = lineAddr(addr);
    std::uint32_t set = static_cast<std::uint32_t>(line % _sets);
    std::uint64_t tag = line / _sets;
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        const Line &l = _lines[std::size_t(set) * _config.ways + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

AccessResult
Cache::access(Addr addr, AccessType type)
{
    ++_stats.accesses;
    std::uint64_t line = lineAddr(addr);
    std::uint32_t set = static_cast<std::uint32_t>(line % _sets);
    std::uint64_t tag = line / _sets;

    Line *ways = &_lines[std::size_t(set) * _config.ways];

    // Hit path.
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ++_stats.hits;
            _policy->touch(set, w);
            if (type == AccessType::Write)
                ways[w].dirty = true;
            return AccessResult{true, false, 0};
        }
    }

    // Miss: find an invalid way or evict a victim.
    ++_stats.misses;
    AccessResult result{false, false, 0};
    std::uint32_t way = _config.ways;
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        if (!ways[w].valid) {
            way = w;
            break;
        }
    }
    if (way == _config.ways) {
        way = _policy->victim(set);
        panic_if(way >= _config.ways, "victim way out of range");
        ++_stats.evictions;
        if (ways[way].dirty) {
            ++_stats.writebacks;
            result.writeback = true;
            result.writebackAddr = (ways[way].tag * _sets + set)
                                   * _config.lineBytes;
        }
    }

    ways[way].valid = true;
    ways[way].tag = tag;
    ways[way].dirty = (type == AccessType::Write);
    _policy->install(set, way);
    return result;
}

void
Cache::flush()
{
    for (auto &line : _lines)
        line = Line{};
}

void
Cache::publishMetrics() const
{
    auto *registry = hpim::obs::MetricsRegistry::current();
    if (registry == nullptr)
        return;
    const std::string prefix = "cache." + name() + ".";
    registry->gauge(prefix + "accesses")
        .set(static_cast<double>(_stats.accesses));
    registry->gauge(prefix + "hits")
        .set(static_cast<double>(_stats.hits));
    registry->gauge(prefix + "misses")
        .set(static_cast<double>(_stats.misses));
    registry->gauge(prefix + "evictions")
        .set(static_cast<double>(_stats.evictions));
    registry->gauge(prefix + "writebacks")
        .set(static_cast<double>(_stats.writebacks));
    registry->gauge(prefix + "miss_rate").set(_stats.missRate());
}

} // namespace hpim::cache
