#include "cache/hierarchy.hh"

#include "sim/logging.hh"

namespace hpim::cache {

using hpim::mem::AccessType;
using hpim::mem::Addr;

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig> &levels)
{
    fatal_if(levels.empty(), "hierarchy needs at least one level");
    std::uint32_t idx = 1;
    for (const auto &cfg : levels) {
        _levels.push_back(
            std::make_unique<Cache>(cfg, "L" + std::to_string(idx)));
        ++idx;
    }
}

CacheHierarchy
CacheHierarchy::xeonLike()
{
    CacheConfig l1{32 * 1024, 64, 8, "lru", 4};
    CacheConfig l2{256 * 1024, 64, 8, "lru", 12};
    // 20 MiB LLC; true-LRU stand-in since the 20-way tree PLRU needs
    // power-of-two associativity.
    CacheConfig l3{20 * 1024 * 1024, 64, 20, "lru", 40};
    return CacheHierarchy({l1, l2, l3});
}

const Cache &
CacheHierarchy::level(std::uint32_t i) const
{
    panic_if(i >= _levels.size(), "cache level ", i, " out of range");
    return *_levels[i];
}

HierarchyResult
CacheHierarchy::access(Addr addr, AccessType type)
{
    HierarchyResult result{};
    for (std::uint32_t i = 0; i < _levels.size(); ++i) {
        result.latencyCycles += _levels[i]->config().hitLatencyCycles;
        AccessResult r = _levels[i]->access(addr, type);
        if (r.writeback) {
            // Dirty eviction: push the victim line to the next level,
            // or count a main-memory write from the last level.
            if (i + 1 < _levels.size()) {
                _levels[i + 1]->access(r.writebackAddr, AccessType::Write);
            } else {
                ++_mm_writebacks;
            }
        }
        if (r.hit) {
            result.hitLevel = i;
            return result;
        }
    }
    result.hitLevel = levels();
    result.mainMemory = true;
    ++_mm_accesses;
    return result;
}

void
CacheHierarchy::flushAll()
{
    for (auto &level : _levels)
        level->flush();
}

void
CacheHierarchy::publishMetrics() const
{
    for (const auto &level : _levels)
        level->publishMetrics();
}

} // namespace hpim::cache
