/**
 * @file
 * The one place a SimulateSpec becomes an ExecutionReport.
 *
 * Both the hpim_serve daemon and hpim_cli's one-shot mode run
 * simulations through this function, so a served response is
 * byte-identical to a local run by construction -- there is no
 * second code path that could drift (docs/SERVING.md,
 * "Byte-identity").
 */

#ifndef HPIM_SERVE_SIMULATE_HH
#define HPIM_SERVE_SIMULATE_HH

#include "rt/execution_report.hh"
#include "serve/protocol.hh"

namespace hpim::serve {

/**
 * Run the simulation @p spec describes and return its report.
 *
 * @p spec must be valid (what parseRequest produces); unknown model
 * or system tokens panic, because they indicate a caller that
 * skipped validation, not a user error. Honors the calling thread's
 * sim::DeadlineScope: the run throws sim::DeadlineExceeded at the
 * next phase boundary once the budget is spent.
 */
hpim::rt::ExecutionReport runSimulate(const SimulateSpec &spec);

} // namespace hpim::serve

#endif // HPIM_SERVE_SIMULATE_HH
