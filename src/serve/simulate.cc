#include "serve/simulate.hh"

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"
#include "sim/logging.hh"

namespace hpim::serve {

hpim::rt::ExecutionReport
runSimulate(const SimulateSpec &spec)
{
    std::optional<hpim::nn::ModelId> model = modelFromToken(spec.model);
    std::optional<hpim::baseline::SystemKind> system =
        systemFromToken(spec.system);
    panic_if(!model || !system,
             "runSimulate() called with an unvalidated spec (model '",
             spec.model, "', system '", spec.system, "')");

    const bool faults = spec.faultRate > 0.0 || spec.killBanks > 0;
    panic_if(faults && *system == hpim::baseline::SystemKind::Gpu,
             "fault injection on the analytic GPU model must be "
             "rejected at request validation");

    // The branch structure deliberately mirrors what hpim_cli always
    // did: the common paths go through baseline::runSystem (and its
    // memoized model build); only fault injection and explicit
    // hetero feature flags need a hand-built SystemConfig.
    if (faults
        || (*system == hpim::baseline::SystemKind::HeteroPim
            && (!spec.rc || !spec.op))) {
        hpim::rt::SystemConfig config =
            *system == hpim::baseline::SystemKind::HeteroPim
                ? hpim::baseline::makeHetero(true, spec.rc, spec.op,
                                             spec.freqScale,
                                             spec.progrPims)
                : hpim::baseline::makeConfig(*system, spec.freqScale,
                                             spec.progrPims);
        config.steps = spec.steps;
        if (faults) {
            config.faults.enabled = true;
            config.faults.transientRatePerOp = spec.faultRate;
            config.faults.killBanks = spec.killBanks;
            config.faults.seed = spec.faultSeed;
        }
        hpim::rt::HeteroRuntime runtime(config);
        hpim::nn::Graph graph =
            hpim::nn::buildModel(*model, spec.batch);
        return runtime.train(graph).execution;
    }
    return hpim::baseline::runSystem(*system, *model, spec.steps,
                                     spec.freqScale, spec.progrPims,
                                     spec.batch);
}

} // namespace hpim::serve
