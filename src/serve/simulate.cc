#include "serve/simulate.hh"

#include <memory>

#include "baseline/presets.hh"
#include "nn/graph_io.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::serve {

namespace {

/**
 * User graphs are pure functions of their document text; memoize the
 * parse + reconstruction the same way presets.cc memoizes built-in
 * model builds, keyed on the exact bytes of the document.
 */
std::shared_ptr<const hpim::nn::Graph>
cachedUserGraph(const std::string &text)
{
    auto &cache = hpim::sim::MemoCache::instance();
    std::uint64_t key = hpim::sim::hashString(text);
    if (auto hit = cache.find<hpim::nn::Graph>(key, "nn.graph.user"))
        return hit;
    auto built = std::make_shared<const hpim::nn::Graph>(
        hpim::nn::loadGraph(text));
    cache.put<hpim::nn::Graph>(key, "nn.graph.user", built);
    return built;
}

} // namespace

hpim::rt::ExecutionReport
runSimulate(const SimulateSpec &spec)
{
    const bool user_graph = !spec.graph.empty();
    std::optional<hpim::nn::ModelId> model = modelFromToken(spec.model);
    std::optional<hpim::baseline::SystemKind> system =
        systemFromToken(spec.system);
    panic_if((!user_graph && !model) || !system,
             "runSimulate() called with an unvalidated spec (model '",
             spec.model, "', system '", spec.system, "')");
    panic_if(user_graph
                 && *system == hpim::baseline::SystemKind::Gpu,
             "graph workloads on the analytic GPU model must be "
             "rejected at request validation");

    const bool faults = spec.faultRate > 0.0 || spec.killBanks > 0;
    panic_if(faults && *system == hpim::baseline::SystemKind::Gpu,
             "fault injection on the analytic GPU model must be "
             "rejected at request validation");

    // The branch structure deliberately mirrors what hpim_cli always
    // did: the common paths go through baseline::runSystem (and its
    // memoized model build); only fault injection and explicit
    // hetero feature flags need a hand-built SystemConfig.
    if (faults
        || (*system == hpim::baseline::SystemKind::HeteroPim
            && (!spec.rc || !spec.op))) {
        hpim::rt::SystemConfig config =
            *system == hpim::baseline::SystemKind::HeteroPim
                ? hpim::baseline::makeHetero(true, spec.rc, spec.op,
                                             spec.freqScale,
                                             spec.progrPims)
                : hpim::baseline::makeConfig(*system, spec.freqScale,
                                             spec.progrPims);
        config.steps = spec.steps;
        if (faults) {
            config.faults.enabled = true;
            config.faults.transientRatePerOp = spec.faultRate;
            config.faults.killBanks = spec.killBanks;
            config.faults.seed = spec.faultSeed;
        }
        hpim::rt::HeteroRuntime runtime(config);
        if (user_graph) {
            std::shared_ptr<const hpim::nn::Graph> graph =
                cachedUserGraph(spec.graph);
            return runtime.train(*graph).execution;
        }
        hpim::nn::Graph graph =
            hpim::nn::buildModel(*model, spec.batch);
        return runtime.train(graph).execution;
    }
    if (user_graph) {
        std::shared_ptr<const hpim::nn::Graph> graph =
            cachedUserGraph(spec.graph);
        return hpim::baseline::runSystemGraph(*system, *graph,
                                              spec.steps,
                                              spec.freqScale,
                                              spec.progrPims);
    }
    return hpim::baseline::runSystem(*system, *model, spec.steps,
                                     spec.freqScale, spec.progrPims,
                                     spec.batch);
}

} // namespace hpim::serve
