#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/io_retry.hh"

namespace hpim::serve {

double
backoffMs(const ClientOptions &options, std::uint32_t attempt)
{
    if (attempt <= 1)
        return std::min(options.backoffBaseMs, options.backoffCapMs);
    const double exp =
        options.backoffBaseMs
        * std::pow(2.0, static_cast<double>(attempt - 1));
    return std::min(exp, options.backoffCapMs);
}

namespace {

void
setTimeout(int fd, int option, double ms)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
    ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

} // namespace

Client::Client(ClientOptions options) : _options(std::move(options))
{
    if (_options.connectAttempts == 0)
        _options.connectAttempts = 1;
}

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _rbuf.clear();
}

void
Client::ensureConnected()
{
    if (_fd >= 0)
        return;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (_options.socketPath.size() >= sizeof(addr.sun_path))
        throw ProtocolError("socket path '" + _options.socketPath
                            + "' exceeds the AF_UNIX limit");
    std::strncpy(addr.sun_path, _options.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    int last_errno = 0;
    for (std::uint32_t attempt = 1;
         attempt <= _options.connectAttempts; ++attempt) {
        if (attempt > 1) {
            const double delay = backoffMs(_options, attempt - 1);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay));
        }
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr))
            == 0) {
            if (_options.ioTimeoutMs > 0.0) {
                setTimeout(fd, SO_RCVTIMEO, _options.ioTimeoutMs);
                setTimeout(fd, SO_SNDTIMEO, _options.ioTimeoutMs);
            }
            _fd = fd;
            _rbuf.clear();
            return;
        }
        last_errno = errno;
        ::close(fd);
    }
    throw ProtocolError(
        "cannot connect to '" + _options.socketPath + "' after "
        + std::to_string(_options.connectAttempts)
        + " attempts: " + std::strerror(last_errno));
}

bool
Client::sendFrame(const std::string &payload)
{
    std::string frame;
    appendFrame(frame, payload);
    std::size_t off = 0;
    while (off < frame.size()) {
        // MSG_NOSIGNAL: a daemon that hung up must surface as EPIPE,
        // not kill the client process with SIGPIPE.
        ssize_t n = retryIntr([&] {
            return ::send(_fd, frame.data() + off,
                          frame.size() - off, MSG_NOSIGNAL);
        });
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        return false; // hard error, or the EINTR bound exhausted
    }
    return true;
}

bool
Client::receiveFrame(std::string &payload)
{
    char chunk[65536];
    while (true) {
        FrameSplit split =
            splitFrame(_rbuf, _options.maxFrameBytes);
        if (split.status == FrameSplit::Status::Frame) {
            payload.assign(split.payload);
            _rbuf.erase(0, split.frameEnd);
            return true;
        }
        if (split.status == FrameSplit::Status::Invalid)
            throw ProtocolError(
                "response frame of " + std::to_string(split.announced)
                + " bytes exceeds the "
                + std::to_string(_options.maxFrameBytes)
                + "-byte client limit");
        ssize_t n = retryIntr(
            [&] { return ::read(_fd, chunk, sizeof chunk); });
        if (n > 0) {
            _rbuf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            throw ProtocolError(
                "timed out waiting for a response on '"
                + _options.socketPath + "'");
        return false; // EOF or hard error
    }
}

Response
Client::call(const Request &request)
{
    const std::string payload = encodeRequest(request);
    // One transparent retry, and only when a *reused* connection
    // turned out to be dead; a failure on a fresh connection is a
    // real error. Requests are idempotent, so the resend is safe.
    for (int round = 0; round < 2; ++round) {
        const bool reused = _fd >= 0;
        ensureConnected();
        std::string reply;
        if (sendFrame(payload) && receiveFrame(reply)) {
            Response response = parseResponse(reply);
            if (response.id != request.id)
                throw ProtocolError(
                    "response id " + std::to_string(response.id)
                    + " does not match request id "
                    + std::to_string(request.id));
            return response;
        }
        disconnect();
        if (!reused)
            break;
    }
    throw ProtocolError("connection to '" + _options.socketPath
                        + "' was closed before a response arrived");
}

} // namespace hpim::serve
