#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/failpoint.hh"
#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "serve/io_retry.hh"
#include "serve/simulate.hh"
#include "sim/deadline.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::serve {

using Clock = std::chrono::steady_clock;

using hpim::harness::FailPoint;
using hpim::harness::fpCheck;
using hpim::harness::fpRecv;
using hpim::harness::fpSend;

namespace {

// Daemon-side socket framing injection sites (docs/RESILIENCE.md,
// "Host-IO fault injection"). Relaxed-load no-ops until armed.
FailPoint fpServeSend("serve.send");
FailPoint fpServeRecv("serve.recv");
// The trace file is written by obs, which cannot name FailPoint
// (link order); the site fires here at the call boundary.
FailPoint fpServeTraceExport("serve.trace.export");

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - since)
        .count();
}

} // namespace

/** One client connection's IO state. All IO is non-blocking. */
struct Server::Connection
{
    int fd = -1;
    std::uint64_t id = 0;
    std::string rbuf;          ///< unparsed request bytes
    std::string wbuf;          ///< unsent response bytes
    std::size_t woff = 0;      ///< bytes of wbuf already written
    Clock::time_point lastProgress{};
    bool closeAfterFlush = false; ///< unrecoverable framing state
};

/** A worker's finished response, addressed by connection id (the
 *  connection may have died in the meantime; then it is dropped). */
struct Server::Completion
{
    std::uint64_t connId = 0;
    std::string payload;
};

struct Server::Instruments
{
    explicit Instruments(hpim::obs::MetricsRegistry &reg)
        : requests(reg.counter("serve.requests")),
          connections(reg.counter("serve.connections.accepted")),
          admitted(reg.counter("serve.admitted")),
          completed(reg.counter("serve.completed")),
          rejectedOverload(reg.counter("serve.rejected.overload")),
          rejectedShutdown(reg.counter("serve.rejected.shutdown")),
          badRequest(reg.counter("serve.rejected.bad_request")),
          frameTooLarge(reg.counter("serve.rejected.frame_too_large")),
          deadlineQueued(reg.counter("serve.deadline.queued")),
          deadlineRunning(reg.counter("serve.deadline.running")),
          internalErrors(reg.counter("serve.internal_errors")),
          ioTimeouts(reg.counter("serve.io_timeouts")),
          droppedResponses(reg.counter("serve.responses.dropped")),
          queueDepth(reg.gauge("serve.queue.depth")),
          connectionsOpen(reg.gauge("serve.connections.open")),
          drainMs(reg.gauge("serve.drain_ms")),
          queueMs(reg.histogram("serve.queue_ms")),
          runMs(reg.histogram("serve.run_ms"))
    {
    }

    hpim::obs::Counter &requests;
    hpim::obs::Counter &connections;
    hpim::obs::Counter &admitted;
    hpim::obs::Counter &completed;
    hpim::obs::Counter &rejectedOverload;
    hpim::obs::Counter &rejectedShutdown;
    hpim::obs::Counter &badRequest;
    hpim::obs::Counter &frameTooLarge;
    hpim::obs::Counter &deadlineQueued;
    hpim::obs::Counter &deadlineRunning;
    hpim::obs::Counter &internalErrors;
    hpim::obs::Counter &ioTimeouts;
    hpim::obs::Counter &droppedResponses;
    hpim::obs::Gauge &queueDepth;
    hpim::obs::Gauge &connectionsOpen;
    hpim::obs::Gauge &drainMs;
    hpim::obs::Histogram &queueMs;
    hpim::obs::Histogram &runMs;
};

Server::Server(ServerOptions options) : _options(std::move(options))
{
    fatal_if(_options.socketPath.empty(),
             "hpim_serve needs a socket path");
    fatal_if(_options.admissionLimit == 0,
             "admission limit must be >= 1");
    fatal_if(_options.maxFrameBytes < 64,
             "max frame size too small to hold any request");
    hpim::harness::configureFailPointsFromEnv();

    int pipe_fds[2];
    fatal_if(pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0,
             "pipe2: ", std::strerror(errno));
    _wake_read_fd = pipe_fds[0];
    _wake_write_fd = pipe_fds[1];

    bindAndListen();

    std::uint32_t workers = _options.workers;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    // Never 0 threads: ThreadPool's inline mode would run
    // simulations on the IO thread and wedge the accept loop. The
    // queue bound sits above the admission limit so submit() of an
    // admitted request can never block the IO thread either.
    _pool = std::make_unique<hpim::harness::ThreadPool>(
        workers, _options.admissionLimit + workers + 8);

    _ins = std::make_unique<Instruments>(_metrics);

    if (!_options.traceFile.empty()) {
        _trace = std::make_unique<hpim::obs::TraceSession>();
        _trace->attach();
    }
}

Server::~Server()
{
    for (auto &[id, conn] : _conns)
        ::close(conn.fd);
    _conns.clear();
    closeListen();
    if (_wake_read_fd >= 0)
        ::close(_wake_read_fd);
    if (_wake_write_fd >= 0)
        ::close(_wake_write_fd);
    // A drain hard-stop must not outlive the server (tests run
    // several servers per process).
    if (_global_stop_armed)
        hpim::sim::disarmGlobalStop();
    if (_trace != nullptr) {
        _trace->detach();
        // The daemon already served its traffic; a trace that cannot
        // be written costs an artifact, never the exit status.
        try {
            fpCheck(fpServeTraceExport, "write", _options.traceFile);
            _trace->exportChromeTrace(_options.traceFile);
            std::fprintf(stderr,
                         "[serve] wrote trace %s (%zu events)\n",
                         _options.traceFile.c_str(),
                         _trace->eventCount());
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "[serve] trace export of %s failed: %s\n",
                         _options.traceFile.c_str(), e.what());
        }
    }
}

void
Server::bindAndListen()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatal_if(_options.socketPath.size() >= sizeof(addr.sun_path),
             "socket path '", _options.socketPath,
             "' exceeds the AF_UNIX limit of ",
             sizeof(addr.sun_path) - 1, " bytes");
    std::strncpy(addr.sun_path, _options.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    _listen_fd = ::socket(AF_UNIX,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    fatal_if(_listen_fd < 0, "socket: ", std::strerror(errno));

    if (::bind(_listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        fatal_if(errno != EADDRINUSE, "bind '", _options.socketPath,
                 "': ", std::strerror(errno));
        // The path exists. Probe it: a live daemon accepts the
        // connect and we must refuse to replace it; a dead one left
        // a stale file we can safely unlink.
        int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        fatal_if(probe < 0, "socket: ", std::strerror(errno));
        int connected = ::connect(
            probe, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
        ::close(probe);
        fatal_if(connected == 0, "another daemon is already serving "
                                 "on '",
                 _options.socketPath, "'");
        fatal_if(::unlink(_options.socketPath.c_str()) != 0,
                 "cannot remove stale socket '", _options.socketPath,
                 "': ", std::strerror(errno));
        fatal_if(::bind(_listen_fd,
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr))
                     != 0,
                 "bind '", _options.socketPath,
                 "': ", std::strerror(errno));
    }
    fatal_if(::listen(_listen_fd, 64) != 0,
             "listen: ", std::strerror(errno));
}

void
Server::closeListen()
{
    if (_listen_fd >= 0) {
        ::close(_listen_fd);
        _listen_fd = -1;
        ::unlink(_options.socketPath.c_str());
    }
}

void
Server::requestStop()
{
    _stop_requested.store(true, std::memory_order_release);
    // Wake the poll loop. Async-signal-safe; a full pipe is fine
    // (the loop is already due to wake).
    if (_wake_write_fd >= 0) {
        char byte = 1;
        [[maybe_unused]] ssize_t n =
            ::write(_wake_write_fd, &byte, 1);
    }
}

void
Server::wakeLoop()
{
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(_wake_write_fd, &byte, 1);
}

void
Server::acceptReady()
{
    while (_conns.size() < _options.maxConnections) {
        int fd = ::accept4(_listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            break; // EAGAIN or transient error; poll retries
        Connection conn;
        conn.fd = fd;
        conn.id = _next_conn_id++;
        conn.lastProgress = Clock::now();
        _conns.emplace(conn.id, std::move(conn));
        _ins->connections.add();
        _ins->connectionsOpen.set(
            static_cast<double>(_conns.size()));
    }
}

void
Server::readReady(Connection &conn)
{
    char chunk[65536];
    bool eof = false;
    while (true) {
        ssize_t n;
        try {
            n = retryIntr([&] {
                return fpRecv(fpServeRecv, conn.fd, chunk,
                              sizeof chunk);
            });
        } catch (const std::bad_alloc &) {
            eof = true; // injected alloc failure: one peer, not us
            break;
        }
        if (n > 0) {
            conn.rbuf.append(chunk, static_cast<std::size_t>(n));
            conn.lastProgress = Clock::now();
            if (static_cast<std::size_t>(n) < sizeof chunk)
                break;
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        // ECONNRESET and friends -- or an EINTR storm that exhausted
        // the retry bound. Either way this one connection is torn
        // down; the daemon keeps serving.
        eof = true;
        break;
    }

    std::size_t consumed = 0;
    while (!conn.closeAfterFlush) {
        FrameSplit split = splitFrame(
            std::string_view(conn.rbuf).substr(consumed),
            _options.maxFrameBytes);
        if (split.status == FrameSplit::Status::NeedMore)
            break;
        if (split.status == FrameSplit::Status::Invalid) {
            _ins->frameTooLarge.add();
            // The stream cannot be resynchronized after a bogus
            // length; answer with the typed error and hang up once
            // it is flushed.
            queueResponse(conn,
                          encodeError(
                              0, ErrorCode::FrameTooLarge,
                              "announced frame of "
                                  + std::to_string(split.announced)
                                  + " bytes exceeds the "
                                  + std::to_string(
                                      _options.maxFrameBytes)
                                  + "-byte limit"));
            conn.closeAfterFlush = true;
            break;
        }
        handleFrame(conn, std::string(split.payload));
        consumed += split.frameEnd;
    }
    if (consumed > 0)
        conn.rbuf.erase(0, consumed);

    if (eof)
        closeConnection(conn.id);
}

void
Server::writeReady(Connection &conn)
{
    while (conn.woff < conn.wbuf.size()) {
        // MSG_NOSIGNAL: a client that hung up must surface as EPIPE
        // here, not SIGPIPE the whole daemon.
        ssize_t n;
        try {
            n = retryIntr([&] {
                return fpSend(fpServeSend, conn.fd,
                              conn.wbuf.data() + conn.woff,
                              conn.wbuf.size() - conn.woff,
                              MSG_NOSIGNAL);
            });
        } catch (const std::bad_alloc &) {
            closeConnection(conn.id);
            return;
        }
        if (n > 0) {
            conn.woff += static_cast<std::size_t>(n);
            conn.lastProgress = Clock::now();
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        // EPIPE and friends, or an exhausted EINTR retry bound:
        // per-connection teardown, never daemon death.
        closeConnection(conn.id);
        return;
    }
    conn.wbuf.clear();
    conn.woff = 0;
    if (conn.closeAfterFlush)
        closeConnection(conn.id);
}

void
Server::queueResponse(Connection &conn, std::string payload)
{
    appendFrame(conn.wbuf, payload);
}

void
Server::closeConnection(std::uint64_t conn_id)
{
    auto it = _conns.find(conn_id);
    if (it == _conns.end())
        return;
    ::close(it->second.fd);
    _conns.erase(it);
    _ins->connectionsOpen.set(static_cast<double>(_conns.size()));
}

std::string
Server::statsObjectJson() const
{
    auto counter = [](const hpim::obs::Counter &c) {
        return std::to_string(c.value());
    };
    hpim::sim::MemoCache::Stats memo =
        hpim::sim::MemoCache::instance().stats();
    std::string out = "{";
    out += "\"draining\":" + std::string(_draining ? "true" : "false");
    out += ",\"queued\":" + std::to_string(_queued.load());
    out += ",\"running\":" + std::to_string(_running.load());
    out += ",\"admission_limit\":"
           + std::to_string(_options.admissionLimit);
    out += ",\"connections\":" + std::to_string(_conns.size());
    out += ",\"requests\":" + counter(_ins->requests);
    out += ",\"admitted\":" + counter(_ins->admitted);
    out += ",\"completed\":" + counter(_ins->completed);
    out += ",\"rejected_overload\":" + counter(_ins->rejectedOverload);
    out += ",\"rejected_shutdown\":" + counter(_ins->rejectedShutdown);
    out += ",\"bad_request\":" + counter(_ins->badRequest);
    out += ",\"frame_too_large\":" + counter(_ins->frameTooLarge);
    out += ",\"deadline_queued\":" + counter(_ins->deadlineQueued);
    out += ",\"deadline_running\":" + counter(_ins->deadlineRunning);
    out += ",\"internal_errors\":" + counter(_ins->internalErrors);
    out += ",\"io_timeouts\":" + counter(_ins->ioTimeouts);
    out += ",\"dropped_responses\":"
           + counter(_ins->droppedResponses);
    out += ",\"memo\":{\"hits\":" + std::to_string(memo.hits)
           + ",\"misses\":" + std::to_string(memo.misses)
           + ",\"partial_hits\":" + std::to_string(memo.partialHits)
           + ",\"insertions\":" + std::to_string(memo.insertions)
           + ",\"evictions\":" + std::to_string(memo.evictions)
           + ",\"entries\":" + std::to_string(memo.entries)
           + ",\"max_entries\":"
           + std::to_string(
                 hpim::sim::MemoCache::instance().maxEntries())
           + "}";
    out += "}";
    return out;
}

void
Server::handleFrame(Connection &conn, const std::string &payload)
{
    _ins->requests.add();
    Request request;
    try {
        request = parseRequest(payload);
    } catch (const ProtocolError &e) {
        _ins->badRequest.add();
        // Best-effort id echo so the client can match the error to
        // its request even when validation failed late.
        std::uint64_t id = 0;
        try {
            harness::json::Value root = harness::json::parse(payload);
            if (root.isObject())
                if (const harness::json::Value *idv = root.find("id"))
                    id = idv->asUInt64();
        } catch (...) {
        }
        queueResponse(conn, encodeError(id, ErrorCode::BadRequest,
                                        e.what()));
        return;
    }

    switch (request.kind) {
      case RequestKind::Ping:
        queueResponse(conn, encodePong(request.id));
        return;
      case RequestKind::Stats:
        queueResponse(conn,
                      encodeStats(request.id, statsObjectJson()));
        return;
      case RequestKind::Simulate:
        admitSimulate(conn, request);
        return;
    }
}

void
Server::admitSimulate(Connection &conn, const Request &request)
{
    if (_draining) {
        _ins->rejectedShutdown.add();
        queueResponse(conn,
                      encodeError(request.id, ErrorCode::ShuttingDown,
                                  "daemon is draining; retry against "
                                  "another instance"));
        return;
    }
    // The IO thread is the only admitter, so this check-then-add
    // cannot race another admission; workers only ever decrement.
    if (_queued.load(std::memory_order_relaxed)
        >= _options.admissionLimit) {
        _ins->rejectedOverload.add();
        queueResponse(
            conn,
            encodeError(request.id, ErrorCode::Overloaded,
                        "admission queue full ("
                            + std::to_string(_options.admissionLimit)
                            + " queued); retry with backoff"));
        return;
    }
    _ins->admitted.add();
    std::size_t depth =
        _queued.fetch_add(1, std::memory_order_relaxed) + 1;
    _ins->queueDepth.set(static_cast<double>(depth));

    // The deadline budget starts at admission: time spent waiting
    // for a worker burns it exactly like simulation time does.
    std::optional<hpim::sim::Deadline> deadline;
    if (request.deadlineMs > 0.0)
        deadline = hpim::sim::Deadline::afterMs(request.deadlineMs);
    const std::uint32_t scope_id = ++_next_scope;
    const std::uint64_t conn_id = conn.id;
    const std::uint64_t id = request.id;
    const SimulateSpec spec = request.sim;
    const Clock::time_point admitted_at = Clock::now();

    // The future is discarded: the lambda catches everything and
    // always produces exactly one completion.
    _pool->submit([this, conn_id, id, spec, deadline, scope_id,
                   admitted_at] {
        std::size_t remaining =
            _queued.fetch_sub(1, std::memory_order_relaxed) - 1;
        _ins->queueDepth.set(static_cast<double>(remaining));
        _running.fetch_add(1, std::memory_order_relaxed);
        const double queue_ms = elapsedMs(admitted_at);

        std::string payload;
        if (deadline && deadline->expired()) {
            // Expired while queued: answer without occupying the
            // worker for any simulation work.
            _ins->deadlineQueued.add();
            payload = encodeError(
                id, ErrorCode::DeadlineExceeded,
                "deadline of "
                    + harness::json::numberToString(
                        deadline->budgetMs())
                    + " ms expired in the admission queue");
        } else {
            try {
                std::optional<hpim::sim::DeadlineScope> scope;
                if (deadline)
                    scope.emplace(*deadline);
                std::optional<hpim::obs::TraceSession::Scope> tscope;
                if (_trace != nullptr) {
                    tscope.emplace(scope_id);
                    _trace->instant(
                        _trace->track("serve"), "request start", 0.0,
                        {{"id", static_cast<std::int64_t>(id)},
                         {"model", spec.model},
                         {"system", spec.system}});
                }
                const Clock::time_point started = Clock::now();
                hpim::rt::ExecutionReport report = runSimulate(spec);
                const double run_ms = elapsedMs(started);
                if (_trace != nullptr)
                    _trace->instant(
                        _trace->track("serve"), "request done", 0.0,
                        {{"id", static_cast<std::int64_t>(id)}});
                payload = encodeReport(id, report, queue_ms, run_ms);
                _ins->completed.add();
                _ins->queueMs.observe(queue_ms);
                _ins->runMs.observe(run_ms);
            } catch (const hpim::sim::DeadlineExceeded &e) {
                if (deadline && deadline->expired()) {
                    _ins->deadlineRunning.add();
                    payload = encodeError(
                        id, ErrorCode::DeadlineExceeded, e.what());
                } else {
                    // The global drain hard-stop unwound us, not
                    // the request's own budget.
                    _ins->rejectedShutdown.add();
                    payload = encodeError(
                        id, ErrorCode::ShuttingDown,
                        "drain grace expired; simulation aborted");
                }
            } catch (const std::exception &e) {
                _ins->internalErrors.add();
                payload =
                    encodeError(id, ErrorCode::Internal, e.what());
            }
        }

        {
            std::lock_guard<std::mutex> lock(_completions_mutex);
            _completions.push_back(
                Completion{conn_id, std::move(payload)});
        }
        _running.fetch_sub(1, std::memory_order_relaxed);
        wakeLoop();
    });
}

void
Server::drainCompletions()
{
    std::vector<Completion> done;
    {
        std::lock_guard<std::mutex> lock(_completions_mutex);
        done.swap(_completions);
    }
    for (Completion &completion : done) {
        auto it = _conns.find(completion.connId);
        if (it == _conns.end()) {
            _ins->droppedResponses.add();
            continue;
        }
        queueResponse(it->second, std::move(completion.payload));
    }
}

void
Server::enforceIoTimeouts()
{
    std::vector<std::uint64_t> expired;
    for (auto &[id, conn] : _conns) {
        const bool pending_io =
            !conn.rbuf.empty() || conn.woff < conn.wbuf.size();
        if (pending_io
            && elapsedMs(conn.lastProgress) > _options.ioTimeoutMs)
            expired.push_back(id);
    }
    for (std::uint64_t id : expired) {
        _ins->ioTimeouts.add();
        closeConnection(id);
    }
}

bool
Server::drainComplete()
{
    if (_queued.load(std::memory_order_relaxed) != 0
        || _running.load(std::memory_order_relaxed) != 0)
        return false;
    {
        std::lock_guard<std::mutex> lock(_completions_mutex);
        if (!_completions.empty())
            return false;
    }
    for (const auto &[id, conn] : _conns)
        if (conn.woff < conn.wbuf.size())
            return false;
    return true;
}

int
Server::pollTimeoutMs() const
{
    double next = -1.0;
    auto consider = [&next](double ms) {
        if (ms < 0.0)
            ms = 0.0;
        if (next < 0.0 || ms < next)
            next = ms;
    };
    for (const auto &[id, conn] : _conns) {
        const bool pending_io =
            !conn.rbuf.empty() || conn.woff < conn.wbuf.size();
        if (pending_io)
            consider(_options.ioTimeoutMs
                     - elapsedMs(conn.lastProgress));
    }
    if (_draining) {
        if (!_global_stop_armed
            && (_queued.load(std::memory_order_relaxed) != 0
                || _running.load(std::memory_order_relaxed) != 0))
            consider(_options.drainGraceMs
                     - elapsedMs(_drain_start));
        // Heartbeat: drain progress can depend on worker timing, so
        // never sleep unbounded while draining.
        consider(100.0);
    }
    if (next < 0.0)
        return -1;
    return static_cast<int>(std::min(next, 60'000.0)) + 1;
}

void
Server::run()
{
    inform("hpim_serve listening on ", _options.socketPath, " (",
           _pool->threadCount(), " workers, admission limit ",
           _options.admissionLimit, ")");

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn_ids;
    while (true) {
        if (_stop_requested.load(std::memory_order_acquire)
            && !_draining) {
            _draining = true;
            _drain_start = Clock::now();
            closeListen();
            inform("hpim_serve draining: ", _queued.load(), " queued, ",
                   _running.load(), " running, ", _conns.size(),
                   " connections");
        }
        if (_draining && !_global_stop_armed
            && (_queued.load(std::memory_order_relaxed) != 0
                || _running.load(std::memory_order_relaxed) != 0)
            && elapsedMs(_drain_start) > _options.drainGraceMs) {
            // Bound the drain: unwind whatever is still simulating
            // at its next phase boundary.
            hpim::sim::armGlobalStop();
            _global_stop_armed = true;
            warn("drain grace of ", _options.drainGraceMs,
                 " ms expired; aborting in-flight simulations");
        }

        drainCompletions();

        // Close connections whose fatal framing error is flushed and
        // enforce the stalled-IO timeouts.
        std::vector<std::uint64_t> flushed;
        for (auto &[id, conn] : _conns)
            if (conn.closeAfterFlush && conn.woff >= conn.wbuf.size())
                flushed.push_back(id);
        for (std::uint64_t id : flushed)
            closeConnection(id);
        enforceIoTimeouts();

        if (_draining && drainComplete())
            break;

        fds.clear();
        fd_conn_ids.clear();
        fds.push_back(pollfd{_wake_read_fd, POLLIN, 0});
        fd_conn_ids.push_back(0);
        if (_listen_fd >= 0
            && _conns.size() < _options.maxConnections) {
            fds.push_back(pollfd{_listen_fd, POLLIN, 0});
            fd_conn_ids.push_back(0);
        }
        for (auto &[id, conn] : _conns) {
            short events = 0;
            if (!conn.closeAfterFlush)
                events |= POLLIN;
            if (conn.woff < conn.wbuf.size())
                events |= POLLOUT;
            if (events == 0)
                continue;
            fds.push_back(pollfd{conn.fd, events, 0});
            fd_conn_ids.push_back(id);
        }

        int ready = retryIntr([&] {
            return ::poll(fds.data(), fds.size(), pollTimeoutMs());
        });
        if (ready < 0) {
            // A serving daemon must never abort after startup. The
            // plausible post-startup errno here is ENOMEM (EINTR is
            // retried above, EBADF/EINVAL would be our own bug);
            // back off briefly and re-enter the loop -- connection
            // timeouts still advance, so a persistent condition
            // degrades service instead of killing it.
            warn("poll: ", std::strerror(errno), "; retrying");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            continue;
        }

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (fds[i].fd == _wake_read_fd) {
                char sink[256];
                while (::read(_wake_read_fd, sink, sizeof sink) > 0) {
                }
                continue;
            }
            if (fds[i].fd == _listen_fd) {
                acceptReady();
                continue;
            }
            auto it = _conns.find(fd_conn_ids[i]);
            if (it == _conns.end())
                continue; // closed earlier this iteration
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                readReady(it->second);
                it = _conns.find(fd_conn_ids[i]);
                if (it == _conns.end())
                    continue;
            }
            if (fds[i].revents & POLLOUT)
                writeReady(it->second);
        }
    }

    _drain_ms = elapsedMs(_drain_start);
    _ins->drainMs.set(_drain_ms);
    if (_global_stop_armed) {
        hpim::sim::disarmGlobalStop();
        _global_stop_armed = false;
    }
    for (auto &[id, conn] : _conns)
        ::close(conn.fd);
    _conns.clear();
    inform("hpim_serve drained in ",
           harness::json::numberToString(_drain_ms), " ms (",
           _ins->completed.value(), " completed, ",
           _ins->rejectedOverload.value(), " overloaded, ",
           _ins->deadlineQueued.value()
               + _ins->deadlineRunning.value(),
           " deadline-expired, ", _ins->droppedResponses.value(),
           " dropped)");
}

} // namespace hpim::serve
