/**
 * @file
 * Wire protocol of the hpim_serve daemon (docs/SERVING.md).
 *
 * Transport is a Unix-domain stream socket carrying *frames*: a
 * 4-byte big-endian payload length followed by that many bytes of
 * UTF-8 JSON. The length may not be zero and may not exceed the
 * configured maximum (defaultMaxFrameBytes unless overridden), so a
 * client announcing a huge frame is rejected before any buffering
 * happens -- the daemon never allocates what a malicious length
 * field asks for.
 *
 * Requests name a kind (ping / stats / simulate), an id the response
 * echoes, an optional deadline_ms admission budget, and -- for
 * simulate -- a `sim` object with the same fields, defaults, and
 * ranges as the hpim_cli flags (validated through the same
 * sim::ConfigSchema machinery, so a typo'd field or out-of-range
 * value is a typed `bad_request`, never a silent default).
 *
 * Responses are either `"status":"ok"` with a kind-specific body --
 * a simulate response embeds the report exactly as
 * harness::writeJson emits it, which is what makes served responses
 * byte-identical to one-shot runs -- or `"status":"error"` with a
 * typed code from ErrorCode. Every request gets exactly one
 * response; a request can complete, be rejected with a typed error,
 * or deadline-expire, but never hang.
 */

#ifndef HPIM_SERVE_PROTOCOL_HH
#define HPIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "baseline/presets.hh"
#include "nn/models.hh"
#include "rt/execution_report.hh"
#include "sim/rng.hh"

namespace hpim::serve {

/** Version of the frame layout and request/response JSON. */
constexpr int protocolVersion = 1;

/** Default cap on one frame's payload bytes (1 MiB). */
constexpr std::size_t defaultMaxFrameBytes = 1u << 20;

/** A frame or request/response document that cannot be parsed. */
struct ProtocolError : std::runtime_error
{
    explicit ProtocolError(const std::string &message)
        : std::runtime_error("protocol: " + message)
    {
    }
};

/** Typed rejection codes; stable wire names via errorCodeName(). */
enum class ErrorCode : std::uint8_t
{
    BadRequest,       ///< unparsable or invalid request
    FrameTooLarge,    ///< announced frame length over the cap
    Overloaded,       ///< admission queue full; retry later
    DeadlineExceeded, ///< budget spent queued or mid-simulation
    ShuttingDown,     ///< daemon is draining; retry elsewhere/later
    Internal,         ///< simulation threw something unexpected
};

/** @return stable wire name, e.g. "overloaded". */
const char *errorCodeName(ErrorCode code);

/** @return parsed code, or nullopt for an unknown name. */
std::optional<ErrorCode> errorCodeFromName(std::string_view name);

// ---------------------------------------------------------------- framing

/** Append one frame (4-byte big-endian length + payload) to @p out. */
void appendFrame(std::string &out, std::string_view payload);

/** Result of trying to split one frame off a receive buffer. */
struct FrameSplit
{
    enum class Status
    {
        NeedMore, ///< buffer holds a partial header or payload
        Frame,    ///< `payload` views the frame; consume `frameEnd`
        Invalid,  ///< zero-length frame or length over the cap
    };

    Status status = Status::NeedMore;
    std::size_t frameEnd = 0;      ///< bytes to consume on Frame
    std::string_view payload;      ///< valid only while buffer lives
    std::uint32_t announced = 0;   ///< header length field (diagnostics)
};

/**
 * Split the first complete frame off @p buffer. Never consumes; the
 * caller erases `frameEnd` bytes after handling the payload. A
 * malformed length (zero, or > @p max_frame_bytes) reports Invalid
 * *before* the payload arrives, so oversize frames are rejected at
 * 4 bytes of input.
 */
FrameSplit splitFrame(std::string_view buffer,
                      std::size_t max_frame_bytes);

// --------------------------------------------------------------- requests

/** What a request asks the daemon to do. */
enum class RequestKind : std::uint8_t
{
    Ping,     ///< liveness probe; answered inline by the IO loop
    Stats,    ///< serve.* metrics + memo-cache stats snapshot
    Simulate, ///< run one simulation; the daemon's real work
};

/** @return wire name ("ping"/"stats"/"simulate"). */
const char *requestKindName(RequestKind kind);

/**
 * One simulation request: the same knobs as the hpim_cli flags,
 * with the same defaults.
 */
struct SimulateSpec
{
    std::string model = "alexnet";
    /**
     * A complete nn::GraphIo JSON document (the *content* of a graph
     * file, carried as a string field). Empty = run the built-in
     * `model`. Mutually exclusive with an explicit `model`, with a
     * non-zero `batch` (a serialized graph bakes its batch into its
     * op costs), and with the analytic `gpu` system.
     */
    std::string graph;
    std::string system = "hetero";
    std::uint32_t steps = 4;
    double freqScale = 1.0;
    std::uint32_t progrPims = 1;
    int batch = 0; ///< 0 = the model's paper default
    bool rc = true;
    bool op = true;
    double faultRate = 0.0;
    std::uint32_t killBanks = 0;
    std::uint64_t faultSeed = hpim::sim::defaultSeed;
};

/** One decoded request frame. */
struct Request
{
    std::uint64_t id = 0; ///< client-chosen; echoed in the response
    RequestKind kind = RequestKind::Ping;
    double deadlineMs = 0.0; ///< total budget; 0 = no deadline
    SimulateSpec sim;        ///< Simulate requests only
};

/** Encode @p request as a request-frame payload. */
std::string encodeRequest(const Request &request);

/**
 * Parse and validate a request payload. Throws ProtocolError naming
 * the offending field on malformed JSON, an unknown kind, an
 * unknown/ill-typed/out-of-range sim field, or an unknown model or
 * system name -- the daemon maps the message into a `bad_request`
 * response, so a bad request can never crash or wedge the server.
 */
Request parseRequest(const std::string &payload);

// -------------------------------------------------------------- responses

/** One decoded response frame (client side). */
struct Response
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string kind; ///< "pong"/"stats"/"report" when ok
    ErrorCode code = ErrorCode::Internal; ///< when !ok
    std::string message;                  ///< when !ok
    double queueMs = 0.0; ///< report responses: admission-queue wait
    double runMs = 0.0;   ///< report responses: simulation wall time
    bool hasReport = false;
    hpim::rt::ExecutionReport report; ///< when hasReport
    std::string statsJson; ///< stats responses: raw "stats" object
};

/** Encode an ok-pong response payload. */
std::string encodePong(std::uint64_t id);

/** Encode an ok-stats response; @p stats_object is raw JSON. */
std::string encodeStats(std::uint64_t id,
                        const std::string &stats_object);

/**
 * Encode an ok-report response. The embedded report bytes are
 * exactly harness::jsonString(report) -- the byte-identity anchor.
 */
std::string encodeReport(std::uint64_t id,
                         const hpim::rt::ExecutionReport &report,
                         double queue_ms, double run_ms);

/** Encode a typed error response. */
std::string encodeError(std::uint64_t id, ErrorCode code,
                        const std::string &message);

/** Parse a response payload; throws ProtocolError when malformed. */
Response parseResponse(const std::string &payload);

// ------------------------------------------------------- name conversion

/** @return the ModelId for a CLI/wire token ("vgg19", "alexnet",
 *  ...), or nullopt for an unknown token. */
std::optional<hpim::nn::ModelId> modelFromToken(const std::string &token);

/** @return the wire token of @p model. */
const char *modelToken(hpim::nn::ModelId model);

/** @return the SystemKind for a token ("cpu", "hetero", ...). */
std::optional<hpim::baseline::SystemKind>
systemFromToken(const std::string &token);

/** @return the wire token of @p kind. */
const char *systemToken(hpim::baseline::SystemKind kind);

/** Space-separated token lists for usage/error messages. */
const char *modelTokenList();
const char *systemTokenList();

} // namespace hpim::serve

#endif // HPIM_SERVE_PROTOCOL_HH
