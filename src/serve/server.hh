/**
 * @file
 * The hpim_serve daemon core (docs/SERVING.md).
 *
 * One IO thread runs a poll(2) loop over a Unix-domain listen
 * socket, a self-pipe (signal + worker wakeups), and every client
 * connection; simulations execute on a harness::ThreadPool and
 * share the process-wide sim::MemoCache, so a hot configuration is
 * answered from memo at near-zero cost. Robustness invariants:
 *
 *  - *Bounded admission.* At most `admissionLimit` simulate
 *    requests may be queued for workers; the next one is rejected
 *    immediately with a typed `overloaded` error. Nothing in the
 *    daemon buffers without a bound: frames are capped by
 *    maxFrameBytes, connections by maxConnections, the worker queue
 *    by the admission limit.
 *  - *Deadlines.* A request's deadline_ms budget is enforced while
 *    it waits in the admission queue (an expired request returns
 *    `deadline_exceeded` without ever occupying a worker) and again
 *    at simulation phase boundaries via sim::DeadlineScope, so a
 *    too-slow simulation unwinds instead of running to completion.
 *  - *Slow-client isolation.* All socket IO is non-blocking; a
 *    connection that stalls mid-frame (read) or stops draining its
 *    responses (write) past ioTimeoutMs is closed. The accept loop
 *    never blocks on any client.
 *  - *Graceful drain.* SIGTERM/SIGINT (wired by the daemon binary
 *    to requestStop()) closes the listen socket, rejects new work
 *    with `shutting_down`, lets queued and running requests finish
 *    or deadline-out, flushes every response, and returns from
 *    run() -- the binary then exits 0. If in-flight work outlives
 *    drainGraceMs, sim::armGlobalStop() unwinds it at the next
 *    phase boundary, so drain time is bounded even for requests
 *    that asked for no deadline.
 *
 * Observability: serve.* metrics live in a registry owned by the
 * server (deliberately *not* attached process-wide -- an attached
 * registry suspends the memo cache and would interleave component
 * metrics across concurrent requests). A `stats` request snapshots
 * it together with the memo-cache hit counters. With a traceFile
 * set, a TraceSession is attached for the daemon's lifetime and
 * every request records under its own trace scope.
 */

#ifndef HPIM_SERVE_SERVER_HH
#define HPIM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/protocol.hh"

namespace hpim::serve {

/** Daemon tuning knobs; every bound has a sane default. */
struct ServerOptions
{
    /** Unix-domain socket path to listen on. Required. */
    std::string socketPath;
    /** Simulation worker threads; 0 = hardware concurrency. */
    std::uint32_t workers = 0;
    /** Max simulate requests queued for workers; the next one is
     *  rejected with `overloaded`. */
    std::size_t admissionLimit = 16;
    /** Cap on one frame's payload bytes. */
    std::size_t maxFrameBytes = defaultMaxFrameBytes;
    /** Close a connection stalled mid-frame or mid-response for
     *  longer than this. */
    double ioTimeoutMs = 10'000.0;
    /** After a stop request, arm the global sim stop once in-flight
     *  work has run this long, bounding drain time. */
    double drainGraceMs = 30'000.0;
    /** Max simultaneously open client connections; beyond it the
     *  daemon stops accepting until one closes. */
    std::size_t maxConnections = 64;
    /** Chrome/Perfetto trace output; empty = tracing off. Tracing
     *  suspends the memo cache (sim/memo_cache.hh). */
    std::string traceFile;
};

/** The daemon. Construct (binds + listens), then run(). */
class Server
{
  public:
    /**
     * Bind and listen on options.socketPath. A stale socket file
     * from a dead daemon is replaced; a *live* daemon on the same
     * path is a fatal() startup error. The socket is ready for
     * connect() as soon as the constructor returns.
     */
    explicit Server(ServerOptions options);

    /** Closes everything; removes the socket file. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve until requestStop(), then drain and return. Every
     * accepted request has been answered (or its connection died)
     * and every response flushed by the time this returns.
     */
    void run();

    /**
     * Begin graceful drain. Async-signal-safe (an atomic store and
     * one pipe write); callable from any thread or signal handler,
     * idempotent.
     */
    void requestStop();

    /** The bound socket path. */
    const std::string &socketPath() const
    {
        return _options.socketPath;
    }

    /** serve.* instruments (owned, never attached process-wide). */
    hpim::obs::MetricsRegistry &metrics() { return _metrics; }

    /** Wall-clock milliseconds the last drain took (after run()). */
    double drainMs() const { return _drain_ms; }

  private:
    struct Connection;
    struct Completion;

    void bindAndListen();
    void closeListen();
    void acceptReady();
    void readReady(Connection &conn);
    void writeReady(Connection &conn);
    void handleFrame(Connection &conn, const std::string &payload);
    void admitSimulate(Connection &conn, const Request &request);
    std::string statsObjectJson() const;
    void queueResponse(Connection &conn, std::string payload);
    void closeConnection(std::uint64_t conn_id);
    void drainCompletions();
    void enforceIoTimeouts();
    bool drainComplete();
    int pollTimeoutMs() const;
    void wakeLoop();

    ServerOptions _options;
    int _listen_fd = -1;
    int _wake_read_fd = -1;
    int _wake_write_fd = -1;

    std::atomic<bool> _stop_requested{false};
    bool _draining = false;
    std::chrono::steady_clock::time_point _drain_start{};
    bool _global_stop_armed = false;
    double _drain_ms = 0.0;

    std::unique_ptr<hpim::harness::ThreadPool> _pool;
    std::atomic<std::size_t> _queued{0};  ///< admitted, not yet running
    std::atomic<std::size_t> _running{0}; ///< occupying a worker
    std::uint64_t _next_conn_id = 1;
    std::uint32_t _next_scope = 0; ///< per-request trace scope ids

    std::map<std::uint64_t, Connection> _conns;

    std::mutex _completions_mutex;
    std::vector<Completion> _completions;

    hpim::obs::MetricsRegistry _metrics;
    std::unique_ptr<hpim::obs::TraceSession> _trace;

    // Cached instrument references (registration takes a lock;
    // updates are lock-free).
    struct Instruments;
    std::unique_ptr<Instruments> _ins;
};

} // namespace hpim::serve

#endif // HPIM_SERVE_SERVER_HH
