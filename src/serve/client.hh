/**
 * @file
 * Blocking client for the hpim_serve wire protocol.
 *
 * hpim_cli's --connect mode and bench/serve_load use this. Connecting
 * retries with bounded exponential backoff (the same
 * `min(base * 2^(attempt-1), cap)` discipline rt::Executor uses for
 * fault retries), so a client racing a daemon that is still binding
 * its socket converges instead of failing. An established connection
 * is reused across call()s; if the daemon went away in between (send
 * fails or the socket is at EOF), call() transparently reconnects and
 * resends once -- requests are idempotent simulations, so a resend is
 * always safe.
 */

#ifndef HPIM_SERVE_CLIENT_HH
#define HPIM_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/protocol.hh"

namespace hpim::serve {

/** Client knobs; defaults suit a local daemon. */
struct ClientOptions
{
    /** Daemon socket path. Required. */
    std::string socketPath;
    /** Connect attempts before giving up (>= 1). */
    std::uint32_t connectAttempts = 5;
    /** First retry delay; doubles per attempt. */
    double backoffBaseMs = 50.0;
    /** Retry delay cap. */
    double backoffCapMs = 2'000.0;
    /** Per-read/write socket timeout; 0 = wait forever. A simulate
     *  call with a long-running request needs this above the
     *  expected simulation time (or a server-side deadline). */
    double ioTimeoutMs = 0.0;
    /** Largest response frame accepted. */
    std::size_t maxFrameBytes = defaultMaxFrameBytes;
};

/**
 * @return the bounded exponential backoff delay before @p attempt
 * (1-based): min(base * 2^(attempt-1), cap).
 */
double backoffMs(const ClientOptions &options, std::uint32_t attempt);

/** One connection to a daemon. Not thread-safe; one per thread. */
class Client
{
  public:
    /** Does not connect; the first call() does. */
    explicit Client(ClientOptions options);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Send @p request and wait for its response. Throws
     * ProtocolError when the daemon is unreachable after all connect
     * attempts, on an IO timeout, or on a malformed response. A
     * response with ok=false (overloaded, deadline_exceeded, ...) is
     * returned, not thrown -- the caller decides the policy.
     */
    Response call(const Request &request);

    /** True while a connection is established. */
    bool connected() const { return _fd >= 0; }

  private:
    void ensureConnected();
    void disconnect();
    bool sendFrame(const std::string &payload);
    bool receiveFrame(std::string &payload);

    ClientOptions _options;
    int _fd = -1;
    std::string _rbuf; ///< bytes read past the last response frame
};

} // namespace hpim::serve

#endif // HPIM_SERVE_CLIENT_HH
