#include "serve/protocol.hh"

#include <cstring>

#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "harness/report_io.hh"
#include "nn/graph_io.hh"
#include "sim/config.hh"

namespace hpim::serve {

namespace json = hpim::harness::json;

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadRequest: return "bad_request";
      case ErrorCode::FrameTooLarge: return "frame_too_large";
      case ErrorCode::Overloaded: return "overloaded";
      case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
      case ErrorCode::ShuttingDown: return "shutting_down";
      case ErrorCode::Internal: return "internal";
    }
    return "internal";
}

std::optional<ErrorCode>
errorCodeFromName(std::string_view name)
{
    for (ErrorCode code :
         {ErrorCode::BadRequest, ErrorCode::FrameTooLarge,
          ErrorCode::Overloaded, ErrorCode::DeadlineExceeded,
          ErrorCode::ShuttingDown, ErrorCode::Internal}) {
        if (name == errorCodeName(code))
            return code;
    }
    return std::nullopt;
}

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Ping: return "ping";
      case RequestKind::Stats: return "stats";
      case RequestKind::Simulate: return "simulate";
    }
    return "ping";
}

// ---------------------------------------------------------------- framing

void
appendFrame(std::string &out, std::string_view payload)
{
    if (payload.empty())
        throw ProtocolError("refusing to send an empty frame");
    if (payload.size() > std::numeric_limits<std::uint32_t>::max())
        throw ProtocolError("frame payload too large to encode");
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    char header[4] = {static_cast<char>((n >> 24) & 0xFF),
                      static_cast<char>((n >> 16) & 0xFF),
                      static_cast<char>((n >> 8) & 0xFF),
                      static_cast<char>(n & 0xFF)};
    out.append(header, 4);
    out.append(payload);
}

FrameSplit
splitFrame(std::string_view buffer, std::size_t max_frame_bytes)
{
    FrameSplit split;
    if (buffer.size() < 4)
        return split; // NeedMore
    const auto *b = reinterpret_cast<const unsigned char *>(
        buffer.data());
    split.announced = (std::uint32_t(b[0]) << 24)
                      | (std::uint32_t(b[1]) << 16)
                      | (std::uint32_t(b[2]) << 8)
                      | std::uint32_t(b[3]);
    if (split.announced == 0 || split.announced > max_frame_bytes) {
        split.status = FrameSplit::Status::Invalid;
        return split;
    }
    if (buffer.size() < 4u + split.announced)
        return split; // NeedMore
    split.status = FrameSplit::Status::Frame;
    split.frameEnd = 4u + split.announced;
    split.payload = buffer.substr(4, split.announced);
    return split;
}

// ------------------------------------------------------- name conversion

namespace {

struct ModelToken
{
    const char *token;
    hpim::nn::ModelId id;
};

constexpr ModelToken kModels[] = {
    {"vgg19", hpim::nn::ModelId::Vgg19},
    {"alexnet", hpim::nn::ModelId::AlexNet},
    {"dcgan", hpim::nn::ModelId::Dcgan},
    {"resnet50", hpim::nn::ModelId::ResNet50},
    {"inception3", hpim::nn::ModelId::InceptionV3},
    {"lstm", hpim::nn::ModelId::Lstm},
    {"word2vec", hpim::nn::ModelId::Word2vec},
};

struct SystemToken
{
    const char *token;
    hpim::baseline::SystemKind kind;
};

constexpr SystemToken kSystems[] = {
    {"cpu", hpim::baseline::SystemKind::CpuOnly},
    {"gpu", hpim::baseline::SystemKind::Gpu},
    {"progr", hpim::baseline::SystemKind::ProgrPimOnly},
    {"fixed", hpim::baseline::SystemKind::FixedPimOnly},
    {"hetero", hpim::baseline::SystemKind::HeteroPim},
    {"neurocube", hpim::baseline::SystemKind::Neurocube},
};

} // namespace

std::optional<hpim::nn::ModelId>
modelFromToken(const std::string &token)
{
    for (const ModelToken &m : kModels)
        if (token == m.token)
            return m.id;
    return std::nullopt;
}

const char *
modelToken(hpim::nn::ModelId model)
{
    for (const ModelToken &m : kModels)
        if (m.id == model)
            return m.token;
    return "alexnet";
}

std::optional<hpim::baseline::SystemKind>
systemFromToken(const std::string &token)
{
    for (const SystemToken &s : kSystems)
        if (token == s.token)
            return s.kind;
    return std::nullopt;
}

const char *
systemToken(hpim::baseline::SystemKind kind)
{
    for (const SystemToken &s : kSystems)
        if (s.kind == kind)
            return s.token;
    return "hetero";
}

const char *
modelTokenList()
{
    return "vgg19 alexnet dcgan resnet50 inception3 lstm word2vec";
}

const char *
systemTokenList()
{
    return "cpu gpu progr fixed hetero neurocube";
}

// --------------------------------------------------------------- requests

namespace {

/**
 * The validity contract of a request's `sim` object: exactly the
 * hpim_cli flag schema (plus batch and fault_seed, which the CLI
 * parses outside its schema). Shared with the thin client so both
 * ends agree on what a well-formed request is.
 */
sim::ConfigSchema
simSchema()
{
    using sim::ConfigType;
    sim::ConfigSchema schema;
    schema.keys = {
        {"model", ConfigType::String, false, 0.0, 0.0},
        {"graph", ConfigType::String, false, 0.0, 0.0},
        {"system", ConfigType::String, false, 0.0, 0.0},
        {"steps", ConfigType::Int, false, 1.0, 1e6},
        {"freq_scale", ConfigType::Double, false, 1.0 / 64, 128.0},
        {"progr_pims", ConfigType::Int, false, 1.0, 256.0},
        {"batch", ConfigType::Int, false, 0.0, 65536.0},
        {"rc", ConfigType::Bool, false, 0.0, 0.0},
        {"op", ConfigType::Bool, false, 0.0, 0.0},
        {"fault_rate", ConfigType::Double, false, 0.0, 1.0},
        {"kill_banks", ConfigType::Int, false, 0.0, 4096.0},
    };
    return schema;
}

/**
 * Lower a parsed JSON object into a typed sim::Config so the
 * ConfigSchema range/type/unknown-key validation can run on it.
 * JSON numbers become Int when they parse as one, Double otherwise
 * (the schema coerces between the two, matching Config's own rule).
 */
sim::Config
configFromJsonObject(const json::Value &object)
{
    sim::Config config;
    for (const auto &[key, value] : object.object) {
        // fault_seed is a full-range uint64: it neither fits
        // Config's int64 storage nor survives a double round-trip,
        // so parseSimulateSpec extracts it exactly via asUInt64.
        if (key == "fault_seed")
            continue;
        switch (value.kind) {
          case json::Value::Kind::Bool:
            config.set(key, value.asBool());
            break;
          case json::Value::Kind::String:
            config.set(key, value.asString());
            break;
          case json::Value::Kind::Number:
            try {
                config.set(key, value.asInt64());
            } catch (const json::Error &) {
                config.set(key, value.asDouble());
            }
            break;
          default:
            throw ProtocolError("sim field '" + key
                                + "' has an unsupported JSON type");
        }
    }
    return config;
}

SimulateSpec
parseSimulateSpec(const json::Value &object)
{
    sim::Config config = configFromJsonObject(object);
    std::vector<std::string> violations = config.validate(simSchema());
    if (!violations.empty()) {
        std::string all;
        for (const std::string &v : violations) {
            if (!all.empty())
                all += "; ";
            all += v;
        }
        throw ProtocolError("invalid sim config: " + all);
    }

    SimulateSpec spec;
    spec.model = config.getString("model", spec.model);
    spec.graph = config.getString("graph", spec.graph);
    spec.system = config.getString("system", spec.system);
    spec.steps = static_cast<std::uint32_t>(
        config.getInt("steps", spec.steps));
    spec.freqScale = config.getDouble("freq_scale", spec.freqScale);
    spec.progrPims = static_cast<std::uint32_t>(
        config.getInt("progr_pims", spec.progrPims));
    spec.batch = static_cast<int>(config.getInt("batch", spec.batch));
    spec.rc = config.getBool("rc", spec.rc);
    spec.op = config.getBool("op", spec.op);
    spec.faultRate = config.getDouble("fault_rate", spec.faultRate);
    spec.killBanks = static_cast<std::uint32_t>(
        config.getInt("kill_banks", spec.killBanks));
    if (const json::Value *seed = object.find("fault_seed")) {
        try {
            spec.faultSeed = seed->asUInt64();
        } catch (const json::Error &) {
            throw ProtocolError(
                "sim field 'fault_seed' must be an unsigned 64-bit "
                "integer, got " + seed->number);
        }
    }

    if (!spec.graph.empty()) {
        if (object.find("model") != nullptr)
            throw ProtocolError("'graph' and 'model' are mutually "
                                "exclusive; a graph document is a "
                                "complete workload");
        if (spec.batch != 0)
            throw ProtocolError("'batch' does not apply to 'graph' "
                                "workloads: a serialized graph bakes "
                                "its batch into its op costs");
        if (spec.system == "gpu")
            throw ProtocolError("the analytic GPU model needs "
                                "per-model calibration and cannot "
                                "run 'graph' workloads");
        try {
            hpim::nn::loadGraph(spec.graph);
        } catch (const hpim::nn::GraphParseError &e) {
            throw ProtocolError(e.what());
        }
    } else if (!modelFromToken(spec.model)) {
        throw ProtocolError("unknown model '" + spec.model + "' ("
                            + modelTokenList() + ")");
    }
    if (!systemFromToken(spec.system))
        throw ProtocolError("unknown system '" + spec.system + "' ("
                            + systemTokenList() + ")");
    bool faults = spec.faultRate > 0.0 || spec.killBanks > 0;
    if (faults && spec.system == "gpu")
        throw ProtocolError("fault injection needs a simulated "
                            "system; the analytic GPU model has no "
                            "fault layer");
    return spec;
}

void
appendSimFields(std::string &out, const SimulateSpec &sim)
{
    // A graph workload replaces the model field on the wire; the
    // parser rejects requests carrying both.
    if (!sim.graph.empty()) {
        out += "\"sim\":{\"graph\":\"";
        json::escape(out, sim.graph);
    } else {
        out += "\"sim\":{\"model\":\"";
        json::escape(out, sim.model);
    }
    out += "\",\"system\":\"";
    json::escape(out, sim.system);
    out += "\",\"steps\":" + std::to_string(sim.steps);
    out += ",\"freq_scale\":" + json::numberToString(sim.freqScale);
    out += ",\"progr_pims\":" + std::to_string(sim.progrPims);
    out += ",\"batch\":" + std::to_string(sim.batch);
    out += std::string(",\"rc\":") + (sim.rc ? "true" : "false");
    out += std::string(",\"op\":") + (sim.op ? "true" : "false");
    out += ",\"fault_rate\":" + json::numberToString(sim.faultRate);
    out += ",\"kill_banks\":" + std::to_string(sim.killBanks);
    out += ",\"fault_seed\":" + std::to_string(sim.faultSeed);
    out += "}";
}

} // namespace

std::string
encodeRequest(const Request &request)
{
    std::string out = "{\"v\":" + std::to_string(protocolVersion);
    out += ",\"id\":" + std::to_string(request.id);
    out += std::string(",\"kind\":\"") + requestKindName(request.kind)
           + "\"";
    if (request.deadlineMs > 0.0)
        out += ",\"deadline_ms\":"
               + json::numberToString(request.deadlineMs);
    if (request.kind == RequestKind::Simulate) {
        out += ",";
        appendSimFields(out, request.sim);
    }
    out += "}";
    return out;
}

Request
parseRequest(const std::string &payload)
{
    json::Value root;
    try {
        root = json::parse(payload);
    } catch (const json::Error &e) {
        throw ProtocolError(e.what());
    }
    if (!root.isObject())
        throw ProtocolError("request is not a JSON object");

    Request request;
    bool saw_v = false, saw_id = false, saw_kind = false;
    const json::Value *sim_object = nullptr;
    try {
        for (const auto &[key, value] : root.object) {
            if (key == "v") {
                saw_v = true;
                if (value.asInt64() != protocolVersion)
                    throw ProtocolError(
                        "unsupported protocol version "
                        + value.number + " (this daemon speaks v"
                        + std::to_string(protocolVersion) + ")");
            } else if (key == "id") {
                saw_id = true;
                request.id = value.asUInt64();
            } else if (key == "kind") {
                saw_kind = true;
                const std::string &kind = value.asString();
                if (kind == "ping")
                    request.kind = RequestKind::Ping;
                else if (kind == "stats")
                    request.kind = RequestKind::Stats;
                else if (kind == "simulate")
                    request.kind = RequestKind::Simulate;
                else
                    throw ProtocolError("unknown request kind '"
                                        + kind + "'");
            } else if (key == "deadline_ms") {
                request.deadlineMs = value.asDouble();
                if (!(request.deadlineMs >= 0.0)
                    || request.deadlineMs > 1e9)
                    throw ProtocolError(
                        "deadline_ms out of range [0, 1e9]");
            } else if (key == "sim") {
                if (!value.isObject())
                    throw ProtocolError("'sim' must be an object");
                sim_object = &value;
            } else {
                throw ProtocolError("unknown request field '" + key
                                    + "'");
            }
        }
    } catch (const json::Error &e) {
        throw ProtocolError(e.what());
    }
    if (!saw_v)
        throw ProtocolError("request is missing 'v'");
    if (!saw_id)
        throw ProtocolError("request is missing 'id'");
    if (!saw_kind)
        throw ProtocolError("request is missing 'kind'");
    if (request.kind == RequestKind::Simulate) {
        if (sim_object != nullptr)
            request.sim = parseSimulateSpec(*sim_object);
        // No sim object = all defaults, same as bare hpim_cli.
    } else if (sim_object != nullptr) {
        throw ProtocolError("'sim' is only valid on simulate requests");
    }
    return request;
}

// -------------------------------------------------------------- responses

namespace {

std::string
responseHead(std::uint64_t id, const char *status)
{
    return "{\"v\":" + std::to_string(protocolVersion) + ",\"id\":"
           + std::to_string(id) + ",\"status\":\"" + status + "\"";
}

/** Re-emit a parsed JSON value losslessly (numbers keep their raw
 *  source token), for carrying a stats object through the client. */
void
dumpValue(const json::Value &value, std::string &out)
{
    switch (value.kind) {
      case json::Value::Kind::Null:
        out += "null";
        break;
      case json::Value::Kind::Bool:
        out += value.boolean ? "true" : "false";
        break;
      case json::Value::Kind::Number:
        out += value.number;
        break;
      case json::Value::Kind::String:
        out += '"';
        json::escape(out, value.string);
        out += '"';
        break;
      case json::Value::Kind::Array: {
        out += '[';
        bool first = true;
        for (const json::Value &element : value.array) {
            if (!first)
                out += ',';
            first = false;
            dumpValue(element, out);
        }
        out += ']';
        break;
      }
      case json::Value::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, element] : value.object) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            json::escape(out, key);
            out += "\":";
            dumpValue(element, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

std::string
encodePong(std::uint64_t id)
{
    return responseHead(id, "ok") + ",\"kind\":\"pong\"}";
}

std::string
encodeStats(std::uint64_t id, const std::string &stats_object)
{
    return responseHead(id, "ok") + ",\"kind\":\"stats\",\"stats\":"
           + stats_object + "}";
}

std::string
encodeReport(std::uint64_t id,
             const hpim::rt::ExecutionReport &report, double queue_ms,
             double run_ms)
{
    // The report is embedded exactly as harness::writeJson emits it;
    // the thin client round-trips it through reportFromJson ->
    // writeJson, which report_io guarantees is byte-identical.
    return responseHead(id, "ok") + ",\"kind\":\"report\",\"queue_ms\":"
           + json::numberToString(queue_ms) + ",\"run_ms\":"
           + json::numberToString(run_ms) + ",\"report\":"
           + hpim::harness::jsonString(report) + "}";
}

std::string
encodeError(std::uint64_t id, ErrorCode code,
            const std::string &message)
{
    std::string out = responseHead(id, "error");
    out += std::string(",\"error\":{\"code\":\"") + errorCodeName(code)
           + "\",\"message\":\"";
    json::escape(out, message);
    out += "\"}}";
    return out;
}

Response
parseResponse(const std::string &payload)
{
    json::Value root;
    try {
        root = json::parse(payload);
    } catch (const json::Error &e) {
        throw ProtocolError(e.what());
    }
    if (!root.isObject())
        throw ProtocolError("response is not a JSON object");

    Response response;
    try {
        if (root.at("v").asInt64() != protocolVersion)
            throw ProtocolError("unsupported response version");
        response.id = root.at("id").asUInt64();
        const std::string &status = root.at("status").asString();
        if (status == "ok") {
            response.ok = true;
            response.kind = root.at("kind").asString();
            if (const json::Value *queue_ms = root.find("queue_ms"))
                response.queueMs = queue_ms->asDouble();
            if (const json::Value *run_ms = root.find("run_ms"))
                response.runMs = run_ms->asDouble();
            if (const json::Value *report = root.find("report")) {
                response.report = hpim::harness::reportFromJson(*report);
                response.hasReport = true;
            }
            if (const json::Value *stats = root.find("stats"))
                dumpValue(*stats, response.statsJson);
        } else if (status == "error") {
            response.ok = false;
            const json::Value &error = root.at("error");
            const std::string &code = error.at("code").asString();
            std::optional<ErrorCode> parsed = errorCodeFromName(code);
            if (!parsed)
                throw ProtocolError("unknown error code '" + code
                                    + "'");
            response.code = *parsed;
            response.message = error.at("message").asString();
        } else {
            throw ProtocolError("unknown status '" + status + "'");
        }
    } catch (const json::Error &e) {
        throw ProtocolError(e.what());
    } catch (const hpim::harness::ParseError &e) {
        throw ProtocolError(e.what());
    }
    return response;
}

} // namespace hpim::serve
