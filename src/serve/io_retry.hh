/**
 * @file
 * Shared bounded-EINTR retry for the serve IO paths.
 *
 * Every syscall loop on the daemon and client side -- poll(2), send,
 * recv -- restarts on EINTR through this one helper, so all of them
 * behave identically: retry immediately up to a fixed bound, then
 * surface the failure to the caller's normal error path. The bound
 * exists for injected EINTR storms (harness/failpoint.hh,
 * `serve.recv=every(1):eintr`): a real signal burst never comes close,
 * while an unbounded loop would wedge the IO thread forever.
 */

#ifndef HPIM_SERVE_IO_RETRY_HH
#define HPIM_SERVE_IO_RETRY_HH

#include <cerrno>
#include <cstdint>

namespace hpim::serve {

/** Consecutive EINTRs tolerated before the failure surfaces. */
constexpr std::uint32_t eintrRetryLimit = 64;

/**
 * Invoke @p op (a callable returning a signed syscall result) until
 * it stops failing with EINTR or the retry bound is exhausted.
 * @return the final result; on exhaustion that is the last -1 with
 *         errno still EINTR, which callers treat like any other hard
 *         IO error (typed error / connection teardown, never abort).
 */
template <typename Op>
auto
retryIntr(Op &&op) -> decltype(op())
{
    for (std::uint32_t attempt = 0;; ++attempt) {
        auto result = op();
        if (result >= 0 || errno != EINTR
            || attempt >= eintrRetryLimit)
            return result;
    }
}

} // namespace hpim::serve

#endif // HPIM_SERVE_IO_RETRY_HH
