/**
 * @file
 * Lightweight statistics package.
 *
 * Devices register Scalar / Vector / Histogram stats with a StatGroup;
 * the harness dumps them as name = value lines or CSV. Mirrors the
 * gem5 stats idea at a much smaller scale.
 */

#ifndef HPIM_SIM_STATS_HH
#define HPIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace hpim::sim {

/** A named scalar statistic (double-valued accumulator). */
class ScalarStat
{
  public:
    ScalarStat() = default;

    void operator+=(double v) { _value += v; }
    void operator-=(double v) { _value -= v; }
    void set(double v) { _value = v; }
    void inc() { _value += 1.0; }
    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** A fixed-size vector of scalar statistics. */
class VectorStat
{
  public:
    VectorStat() = default;
    explicit VectorStat(std::size_t n) : _values(n, 0.0) {}

    void resize(std::size_t n) { _values.assign(n, 0.0); }
    std::size_t size() const { return _values.size(); }

    double &operator[](std::size_t i)
    {
        panic_if(i >= _values.size(), "VectorStat index ", i,
                 " out of range ", _values.size());
        return _values[i];
    }

    double at(std::size_t i) const
    {
        panic_if(i >= _values.size(), "VectorStat index ", i,
                 " out of range ", _values.size());
        return _values[i];
    }

    double total() const;
    void reset() { for (auto &v : _values) v = 0.0; }

  private:
    std::vector<double> _values;
};

/** A fixed-bucket histogram with underflow/overflow bins. */
class HistogramStat
{
  public:
    /**
     * @param min lower bound of the first bucket
     * @param max upper bound of the last bucket (exclusive)
     * @param buckets number of equal-width buckets; must be > 0
     */
    HistogramStat(double min, double max, std::size_t buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t buckets() const { return _counts.size(); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t samples() const { return _samples; }
    double mean() const;
    void reset();

  private:
    double _min;
    double _max;
    double _bucket_width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _samples = 0;
    double _sum = 0.0;
};

/**
 * A registry of named scalar stats with dump support.
 *
 * Names are hierarchical by convention ("hmc.vault3.rowHits").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Create (or fetch) a scalar stat under this group. */
    ScalarStat &scalar(const std::string &name, const std::string &desc);

    /** @return true if the named scalar exists. */
    bool hasScalar(const std::string &name) const;

    /** @return value of the named scalar; fatal if missing. */
    double lookup(const std::string &name) const;

    /** Write "group.name = value  # desc" lines. */
    void dump(std::ostream &os) const;

    /** Reset every scalar to zero. */
    void resetAll();

    const std::string &name() const { return _name; }

  private:
    struct Entry
    {
        ScalarStat stat;
        std::string desc;
    };

    std::string _name;
    std::map<std::string, Entry> _stats;
};

} // namespace hpim::sim

#endif // HPIM_SIM_STATS_HH
