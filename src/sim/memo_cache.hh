/**
 * @file
 * Deterministic cross-point memo cache (docs/PERFORMANCE.md).
 *
 * Sweeps re-run identical sub-simulations thousands of times: every
 * system kind of a fig8 point rebuilds the same model graph, and every
 * RC/OP variant of a fig13 point re-profiles the same graph against
 * the same CPU. The cache keys such results on a canonical FNV-1a
 * hash of *all* inputs (sim/hash.hh) and reuses them on exact match
 * only, so cached and uncached runs are bit-identical by
 * construction -- a hit returns the very object an identical
 * computation produced.
 *
 * Two rules keep that guarantee honest:
 *  - exact-match keys: every input that can influence the result is
 *    hashed (graph signature, config slice field by field); nothing
 *    is rounded or canonicalized beyond its bit pattern;
 *  - observability wins over reuse: while a TraceSession or
 *    MetricsRegistry is attached the cache is suspended, because a
 *    cache hit would skip the simulation whose trace events and
 *    counters the observer expects (obs attach()/detach() call
 *    suspend()/resume()).
 *
 * `--no-sim-cache` (harness sweeps) maps to setEnabled(false).
 */

#ifndef HPIM_SIM_MEMO_CACHE_HH
#define HPIM_SIM_MEMO_CACHE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/hash.hh"

namespace hpim::sim {

/** Process-wide memo cache for deterministic sub-simulation results. */
class MemoCache
{
  public:
    static MemoCache &instance();

    /** Master switch (the `--no-sim-cache` sweep flag clears it). */
    static void setEnabled(bool on);
    static bool enabled();

    /**
     * Suspend/resume reuse (counted; nestable). Held by obs trace
     * sessions and metrics registries for their attachment lifetime.
     */
    static void suspend();
    static void resume();

    /** True when lookups may hit: enabled and not suspended. */
    static bool active();

    /**
     * Find a cached value. @p tag names the value type ("nn.graph",
     * "rt.prepared") and is mixed into the key, so two consumers can
     * never alias each other's entries. Returns nullptr on miss or
     * when the cache is inactive.
     */
    template <typename T>
    std::shared_ptr<const T>
    find(std::uint64_t key, const char *tag)
    {
        return std::static_pointer_cast<const T>(lookup(mix(key, tag)));
    }

    /** Insert a value (no-op while inactive). */
    template <typename T>
    void
    put(std::uint64_t key, const char *tag,
        std::shared_ptr<const T> value)
    {
        insert(mix(key, tag), std::move(value));
    }

    /**
     * Partial-key tier (delta-evaluation, docs/PERFORMANCE.md).
     *
     * A partial entry is keyed on a (primary, sub) pair: @p primary
     * identifies the invariant part of the computation (e.g. a
     * position-independent op signature) and @p sub the remaining
     * inputs (e.g. the CPU-model slice). Both halves are still hashed
     * exactly, so a hit is still the result of an identical
     * computation -- "partial" refers to reusing one op's result
     * while the rest of the point changed, never to approximate
     * matching. Hits here count as partialHits, not hits, so the
     * delta tier's efficacy is visible on its own.
     */
    template <typename T>
    std::shared_ptr<const T>
    findPartial(std::uint64_t primary, std::uint64_t sub,
                const char *tag)
    {
        return std::static_pointer_cast<const T>(
            lookup(mix(hashU64(sub, hashU64(primary)), tag),
                   /*partial=*/true));
    }

    /** Insert into the partial-key tier (no-op while inactive). */
    template <typename T>
    void
    putPartial(std::uint64_t primary, std::uint64_t sub,
               const char *tag, std::shared_ptr<const T> value)
    {
        insert(mix(hashU64(sub, hashU64(primary)), tag),
               std::move(value));
    }

    /**
     * Bound the entry count; 0 (default) means unbounded. When full,
     * the oldest inserted entry is evicted first. Eviction can only
     * cost future hits, never change a result: a hit still returns
     * what the identical computation produced.
     */
    void setMaxEntries(std::size_t max);
    std::size_t maxEntries() const;

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t partialHits = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
    };

    Stats stats() const;

    /** Drop all entries and reset the stats (tests). */
    void clear();

  private:
    MemoCache() = default;

    static std::uint64_t mix(std::uint64_t key, const char *tag)
    { return hashString(tag, hashU64(key)); }

    std::shared_ptr<const void> lookup(std::uint64_t key,
                                       bool partial = false);
    void insert(std::uint64_t key, std::shared_ptr<const void> value);

    mutable std::mutex _mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const void>>
        _entries;
    std::deque<std::uint64_t> _insertion_order; ///< only when capped
    std::size_t _max_entries = 0;
    // Always-on counters: plain relaxed atomics so the [sweep] footer
    // and the serve stats endpoint can report cache efficacy without
    // any obs attachment (which would suspend the cache itself).
    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
    std::atomic<std::uint64_t> _partial_hits{0};
    std::atomic<std::uint64_t> _insertions{0};
    std::atomic<std::uint64_t> _evictions{0};
};

} // namespace hpim::sim

#endif // HPIM_SIM_MEMO_CACHE_HH
