#include "sim/config.hh"

#include <sstream>

namespace hpim::sim {

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *d = std::get_if<double>(&it->second))
        return *d;
    if (const auto *i = std::get_if<std::int64_t>(&it->second))
        return static_cast<double>(*i);
    fatal("config key '", key, "' is not numeric");
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *i = std::get_if<std::int64_t>(&it->second))
        return *i;
    if (const auto *d = std::get_if<double>(&it->second))
        return static_cast<std::int64_t>(*d);
    fatal("config key '", key, "' is not an integer");
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *b = std::get_if<bool>(&it->second))
        return *b;
    fatal("config key '", key, "' is not a bool");
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *s = std::get_if<std::string>(&it->second))
        return *s;
    fatal("config key '", key, "' is not a string");
}

double
Config::requireDouble(const std::string &key) const
{
    fatal_if(!has(key), "missing required config key '", key, "'");
    return getDouble(key, 0.0);
}

std::int64_t
Config::requireInt(const std::string &key) const
{
    fatal_if(!has(key), "missing required config key '", key, "'");
    return getInt(key, 0);
}

bool
Config::requireBool(const std::string &key) const
{
    fatal_if(!has(key), "missing required config key '", key, "'");
    return getBool(key, false);
}

std::string
Config::requireString(const std::string &key) const
{
    fatal_if(!has(key), "missing required config key '", key, "'");
    return getString(key, "");
}

void
Config::merge(const Config &other)
{
    for (const auto &[key, value] : other._values)
        _values[key] = value;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(_values.size());
    for (const auto &[key, value] : _values)
        out.push_back(key);
    return out;
}

namespace {

const char *
typeName(ConfigType type)
{
    switch (type) {
      case ConfigType::Double: return "double";
      case ConfigType::Int:    return "int";
      case ConfigType::Bool:   return "bool";
      case ConfigType::String: return "string";
    }
    return "?";
}

const char *
valueTypeName(const Config::Value &value)
{
    if (std::holds_alternative<double>(value)) return "double";
    if (std::holds_alternative<std::int64_t>(value)) return "int";
    if (std::holds_alternative<bool>(value)) return "bool";
    return "string";
}

/** Numeric entries coerce between int and double; others must match. */
bool
typeMatches(const Config::Value &value, ConfigType wanted)
{
    bool numeric = std::holds_alternative<double>(value)
                   || std::holds_alternative<std::int64_t>(value);
    switch (wanted) {
      case ConfigType::Double:
      case ConfigType::Int:
        return numeric;
      case ConfigType::Bool:
        return std::holds_alternative<bool>(value);
      case ConfigType::String:
        return std::holds_alternative<std::string>(value);
    }
    return false;
}

} // namespace

std::vector<std::string>
Config::validate(const ConfigSchema &schema) const
{
    std::vector<std::string> errors;
    for (const ConfigKeySpec &spec : schema.keys) {
        auto it = _values.find(spec.key);
        if (it == _values.end()) {
            if (spec.required)
                errors.push_back("missing required key '" + spec.key
                                 + "'");
            continue;
        }
        if (!typeMatches(it->second, spec.type)) {
            errors.push_back("key '" + spec.key + "' must be "
                             + typeName(spec.type) + ", got "
                             + valueTypeName(it->second));
            continue;
        }
        if (spec.type == ConfigType::Double
            || spec.type == ConfigType::Int) {
            double value = getDouble(spec.key, 0.0);
            if (value < spec.minValue || value > spec.maxValue) {
                std::ostringstream os;
                os << "key '" << spec.key << "' = " << value
                   << " out of range [" << spec.minValue << ", "
                   << spec.maxValue << "]";
                errors.push_back(os.str());
            }
        }
    }
    if (!schema.allowUnknown) {
        for (const auto &[key, value] : _values) {
            bool known = false;
            for (const ConfigKeySpec &spec : schema.keys)
                if (spec.key == key) {
                    known = true;
                    break;
                }
            if (!known)
                errors.push_back("unknown key '" + key + "'");
        }
    }
    return errors;
}

void
Config::validateOrDie(const ConfigSchema &schema) const
{
    std::vector<std::string> errors = validate(schema);
    if (errors.empty())
        return;
    std::string joined;
    for (const std::string &error : errors)
        joined += "\n  " + error;
    fatal("invalid configuration:", joined);
}

} // namespace hpim::sim
