#include "sim/config.hh"

namespace hpim::sim {

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *d = std::get_if<double>(&it->second))
        return *d;
    if (const auto *i = std::get_if<std::int64_t>(&it->second))
        return static_cast<double>(*i);
    fatal("config key '", key, "' is not numeric");
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *i = std::get_if<std::int64_t>(&it->second))
        return *i;
    if (const auto *d = std::get_if<double>(&it->second))
        return static_cast<std::int64_t>(*d);
    fatal("config key '", key, "' is not an integer");
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *b = std::get_if<bool>(&it->second))
        return *b;
    fatal("config key '", key, "' is not a bool");
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return fallback;
    if (const auto *s = std::get_if<std::string>(&it->second))
        return *s;
    fatal("config key '", key, "' is not a string");
}

double
Config::requireDouble(const std::string &key) const
{
    fatal_if(!has(key), "missing required config key '", key, "'");
    return getDouble(key, 0.0);
}

std::int64_t
Config::requireInt(const std::string &key) const
{
    fatal_if(!has(key), "missing required config key '", key, "'");
    return getInt(key, 0);
}

void
Config::merge(const Config &other)
{
    for (const auto &[key, value] : other._values)
        _values[key] = value;
}

} // namespace hpim::sim
