/**
 * @file
 * Discrete-event simulation core.
 *
 * An EventQueue orders Events by (tick, priority, sequence). The executor
 * in hpim::rt drives device models by scheduling completion events here.
 *
 * The queue is an *indexed* 4-ary min-heap: every scheduled event
 * remembers its heap slot, so deschedule() and reschedule() are
 * O(log n) in-place removals instead of lazy squash markers, the heap
 * never holds stale entries, and nextEventTick() is a single O(1)
 * read of the root. One-shot callbacks run on pooled event objects
 * with inline callable storage, so the steady-state schedule/fire
 * cycle performs no heap allocation (docs/PERFORMANCE.md).
 *
 * Same-tick storms (wide graph phases completing together) are
 * *coalesced*: when several entries share the root's tick they are
 * extracted as one sorted batch instead of N successive heap pops.
 * Dispatch order is unchanged -- each serve still compares the batch
 * head against the live heap root, so events scheduled *during* the
 * batch keep their strict (when, priority, sequence) place.
 */

#ifndef HPIM_SIM_EVENT_QUEUE_HH
#define HPIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace hpim::sim {

class EventQueue;

/**
 * Base class for schedulable events.
 *
 * Events are owned by their creators; the queue never deletes them.
 * An event may be scheduled on at most one queue at a time.
 */
class Event
{
  public:
    /** Lower value runs first among events at the same tick. */
    using Priority = std::int32_t;

    static constexpr Priority defaultPriority = 0;
    /** Device-completion events run before scheduler-poll events. */
    static constexpr Priority completionPriority = -10;
    /** Scheduler decisions run after all completions at a tick. */
    static constexpr Priority schedulePriority = 10;

    explicit Event(Priority priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called by the queue when the event fires. */
    virtual void process() = 0;

    /** @return a short human-readable description for tracing. */
    virtual std::string description() const { return "generic event"; }

    /** @return true while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** @return the tick this event is (or was last) scheduled for. */
    Tick when() const { return _when; }

    Priority priority() const { return _priority; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    std::size_t _heap_index = 0; ///< slot in the owning queue's heap
    Priority _priority;
    bool _scheduled = false;
};

/** An Event that invokes a callable. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> callback,
                         Priority priority = defaultPriority)
        : Event(priority), _callback(std::move(callback))
    {}

    void process() override { _callback(); }
    std::string description() const override { return "lambda event"; }

  private:
    std::function<void()> _callback;
};

/**
 * The event queue: an indexed 4-ary min-heap over
 * (when, priority, sequence).
 *
 * Deterministic: ties in (when, priority) break by insertion order.
 * Since the sequence number makes the order strict and total, the pop
 * order is independent of the heap arity or internal layout.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule an event at an absolute tick.
     * It is a bug to schedule in the past or to double-schedule.
     */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event without running it. O(log n). */
    void deschedule(Event *event);

    /** Reschedule: deschedule (if scheduled) then schedule at @p when. */
    void reschedule(Event *event, Tick when);

    /** @return current simulated time. */
    Tick now() const { return _now; }

    /** @return true if no events are pending. */
    bool empty() const { return _heap.empty() && _batch_live == 0; }

    /** @return number of pending events. */
    std::size_t size() const { return _heap.size() + _batch_live; }

    /** @return tick of the next pending event; maxTick when empty. */
    Tick
    nextEventTick() const
    {
        Tick next = _batch_live > 0 ? _batch_when : maxTick;
        if (!_heap.empty() && _heap.front().when < next)
            next = _heap.front().when;
        return next;
    }

    /**
     * Run the next event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /** Run events until the queue drains or @p limit is exceeded. */
    void runAll(std::uint64_t limit = ~std::uint64_t(0));

    /** Run all events up to and including tick @p until. */
    void runUntil(Tick until);

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return _processed; }

    /**
     * Convenience: schedule a one-shot callback. The queue owns the
     * backing event object; after the callback fires the object is
     * recycled into a free list, so steady-state callback traffic
     * allocates nothing. The callable is stored inline (its captures
     * must fit callbackBufferBytes) and must be nothrow-movable.
     */
    template <typename F>
    void
    scheduleCallback(Tick when, F &&callback,
                     Event::Priority priority = Event::defaultPriority)
    {
        PooledCallback *ev = acquireCallback();
        ev->arm(std::forward<F>(callback));
        ev->_priority = priority;
        schedule(ev, when);
    }

    /** Inline capture budget of a pooled callback. */
    static constexpr std::size_t callbackBufferBytes = 64;

    /**
     * Pooled callback events ever allocated (== peak concurrently
     * scheduled callbacks). Flat in steady state: the arena counter
     * the perf tests watch.
     */
    std::size_t callbackPoolCapacity() const
    { return _callback_storage.size(); }

    /** Pooled callback events currently idle in the free list. */
    std::size_t callbackPoolFree() const
    { return _callback_free.size(); }

    ~EventQueue();

  private:
    struct Entry
    {
        Tick when;
        Event::Priority priority;
        std::uint64_t sequence;
        Event *event;

        /** Strict total order: (when, priority, sequence). */
        bool
        before(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return sequence < o.sequence;
        }
    };

    /** A recyclable one-shot event with inline callable storage. */
    class PooledCallback : public Event
    {
      public:
        explicit PooledCallback(EventQueue &queue) : _queue(queue) {}

        ~PooledCallback() override { disarm(); }

        template <typename F>
        void
        arm(F &&callback)
        {
            using Fn = std::decay_t<F>;
            static_assert(sizeof(Fn) <= callbackBufferBytes,
                          "callback captures exceed the pooled "
                          "callback's inline buffer");
            static_assert(alignof(Fn) <= alignof(std::max_align_t),
                          "over-aligned callback");
            new (_buffer) Fn(std::forward<F>(callback));
            _invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
            _destroy = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        }

        void
        disarm()
        {
            if (_destroy != nullptr) {
                _destroy(_buffer);
                _invoke = nullptr;
                _destroy = nullptr;
            }
        }

        void
        process() override
        {
            // Run, then release the captures and return to the free
            // list. Recycling only *after* the invocation keeps the
            // buffer stable if the callback schedules new callbacks
            // (those draw other objects from the pool).
            _invoke(_buffer);
            disarm();
            _queue.recycleCallback(this);
        }

        std::string description() const override
        { return "pooled callback"; }

      private:
        friend class EventQueue;

        alignas(std::max_align_t) unsigned char
            _buffer[callbackBufferBytes];
        void (*_invoke)(void *) = nullptr;
        void (*_destroy)(void *) = nullptr;
        EventQueue &_queue;
    };

    PooledCallback *acquireCallback();
    void recycleCallback(PooledCallback *event)
    { _callback_free.push_back(event); }

    /** Write @p entry to slot @p i and update the back-pointer. */
    void
    placeAt(std::size_t i, const Entry &entry)
    {
        _heap[i] = entry;
        entry.event->_heap_index = i;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /** Remove slot @p i, restoring the heap property. */
    void removeAt(std::size_t i);

    /**
     * If enough entries share the root's tick, extract them all as
     * one sorted batch (runOne() then serves the batch without per-
     * event heap pops). Only called with no live batch.
     */
    void maybeCoalesce();

    /**
     * High bit of Event::_heap_index marks "slot in _batch, not in
     * _heap", so deschedule() can null a batch slot in O(1).
     */
    static constexpr std::size_t kBatchFlag =
        std::size_t(1) << (sizeof(std::size_t) * 8 - 1);
    /** Smallest same-tick group worth the O(n) extract/re-heapify. */
    static constexpr std::size_t kCoalesceMin = 4;

    std::vector<Entry> _heap; ///< indexed 4-ary min-heap
    /** Current same-tick batch, sorted by (priority, sequence).
     *  Served from _batch_pos on; descheduled slots hold nullptr. */
    std::vector<Entry> _batch;
    std::size_t _batch_pos = 0;
    std::size_t _batch_live = 0; ///< non-null entries not yet served
    Tick _batch_when = 0;
    Tick _now = 0;
    std::uint64_t _next_sequence = 0;
    std::uint64_t _processed = 0;
    std::vector<std::unique_ptr<PooledCallback>> _callback_storage;
    std::vector<PooledCallback *> _callback_free;
};

} // namespace hpim::sim

#endif // HPIM_SIM_EVENT_QUEUE_HH
