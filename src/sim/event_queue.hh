/**
 * @file
 * Discrete-event simulation core.
 *
 * An EventQueue orders Events by (tick, priority, sequence). The executor
 * in hpim::rt drives device models by scheduling completion events here.
 */

#ifndef HPIM_SIM_EVENT_QUEUE_HH
#define HPIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace hpim::sim {

class EventQueue;

/**
 * Base class for schedulable events.
 *
 * Events are owned by their creators; the queue never deletes them.
 * An event may be scheduled on at most one queue at a time.
 */
class Event
{
  public:
    /** Lower value runs first among events at the same tick. */
    using Priority = std::int32_t;

    static constexpr Priority defaultPriority = 0;
    /** Device-completion events run before scheduler-poll events. */
    static constexpr Priority completionPriority = -10;
    /** Scheduler decisions run after all completions at a tick. */
    static constexpr Priority schedulePriority = 10;

    explicit Event(Priority priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called by the queue when the event fires. */
    virtual void process() = 0;

    /** @return a short human-readable description for tracing. */
    virtual std::string description() const { return "generic event"; }

    /** @return true while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** @return the tick this event is (or was last) scheduled for. */
    Tick when() const { return _when; }

    Priority priority() const { return _priority; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    Priority _priority;
    bool _scheduled = false;
    bool _squashed = false;
};

/** An Event that invokes a callable. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> callback,
                         Priority priority = defaultPriority)
        : Event(priority), _callback(std::move(callback))
    {}

    void process() override { _callback(); }
    std::string description() const override { return "lambda event"; }

  private:
    std::function<void()> _callback;
};

/**
 * The event queue: a priority queue over (when, priority, sequence).
 *
 * Deterministic: ties in (when, priority) break by insertion order.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule an event at an absolute tick.
     * It is a bug to schedule in the past or to double-schedule.
     */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event without running it. */
    void deschedule(Event *event);

    /** Reschedule: deschedule (if scheduled) then schedule at @p when. */
    void reschedule(Event *event, Tick when);

    /** @return current simulated time. */
    Tick now() const { return _now; }

    /** @return true if no events are pending. */
    bool empty() const { return _live_count == 0; }

    /** @return number of pending (non-squashed) events. */
    std::size_t size() const { return _live_count; }

    /** @return tick of the next pending event; maxTick when empty. */
    Tick nextEventTick() const;

    /**
     * Run the next event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /** Run events until the queue drains or @p limit is exceeded. */
    void runAll(std::uint64_t limit = ~std::uint64_t(0));

    /** Run all events up to and including tick @p until. */
    void runUntil(Tick until);

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return _processed; }

    /**
     * Convenience: schedule a one-shot callback. The queue owns the
     * temporary event and frees it after it fires (or at destruction).
     */
    void scheduleCallback(Tick when, std::function<void()> callback,
                          Event::Priority priority = Event::defaultPriority);

    ~EventQueue();

  private:
    struct Entry
    {
        Tick when;
        Event::Priority priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        _heap;
    Tick _now = 0;
    std::uint64_t _next_sequence = 0;
    std::uint64_t _processed = 0;
    std::size_t _live_count = 0;
    std::vector<Event *> _owned;
};

} // namespace hpim::sim

#endif // HPIM_SIM_EVENT_QUEUE_HH
