/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic()  -- internal invariant violated; a simulator bug. Aborts.
 * fatal()  -- the user asked for something impossible (bad config,
 *             invalid arguments). Exits with an error code.
 * warn()   -- something is modelled approximately; simulation continues.
 * inform() -- status messages.
 */

#ifndef HPIM_SIM_LOGGING_HH
#define HPIM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace hpim::sim {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Global verbosity switch. Messages below the threshold are dropped.
 * Fatal/Panic are never dropped.
 */
void setLogThreshold(LogLevel level);

/** @return the current verbosity threshold. */
LogLevel logThreshold();

/**
 * Emit a log record. Fatal exits(1); Panic aborts.
 *
 * @param level severity
 * @param where "file:line" location string
 * @param message preformatted message body
 */
[[gnu::cold]] void logMessage(LogLevel level, const std::string &where,
                              const std::string &message);

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace hpim::sim

#define HPIM_LOG_SITE_ \
    (std::string(__FILE__) + ":" + std::to_string(__LINE__))

/** Report an unrecoverable internal error (simulator bug) and abort. */
#define panic(...)                                                         \
    do {                                                                   \
        ::hpim::sim::logMessage(::hpim::sim::LogLevel::Panic,              \
            HPIM_LOG_SITE_, ::hpim::sim::detail::formatAll(__VA_ARGS__));  \
        __builtin_unreachable();                                           \
    } while (0)

/** Report an unrecoverable user/config error and exit(1). */
#define fatal(...)                                                         \
    do {                                                                   \
        ::hpim::sim::logMessage(::hpim::sim::LogLevel::Fatal,              \
            HPIM_LOG_SITE_, ::hpim::sim::detail::formatAll(__VA_ARGS__));  \
        __builtin_unreachable();                                           \
    } while (0)

/** Warn about approximate or suspicious behaviour; keep running. */
#define warn(...)                                                          \
    ::hpim::sim::logMessage(::hpim::sim::LogLevel::Warn,                   \
        HPIM_LOG_SITE_, ::hpim::sim::detail::formatAll(__VA_ARGS__))

/** Informational status message. */
#define inform(...)                                                        \
    ::hpim::sim::logMessage(::hpim::sim::LogLevel::Inform,                 \
        HPIM_LOG_SITE_, ::hpim::sim::detail::formatAll(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            panic("panic condition '" #cond "': ",                        \
                  ::hpim::sim::detail::formatAll(__VA_ARGS__));            \
        }                                                                  \
    } while (0)

/** fatal() if the given condition holds. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            fatal("fatal condition '" #cond "': ",                        \
                  ::hpim::sim::detail::formatAll(__VA_ARGS__));            \
        }                                                                  \
    } while (0)

#endif // HPIM_SIM_LOGGING_HH
