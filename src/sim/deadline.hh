/**
 * @file
 * Wall-clock deadlines for simulations (docs/SERVING.md).
 *
 * A simulation normally runs to completion however long it takes; a
 * serving daemon (hpim_serve) and a one-shot CLI run under
 * --timeout-ms cannot afford that. A Deadline is a steady-clock
 * expiry; DeadlineScope installs one for the calling thread, and
 * instrumented phase boundaries (HeteroRuntime profile/execute,
 * the Executor event loop every ~64Ki events) call checkDeadline(),
 * which throws the typed DeadlineExceeded when the budget is gone.
 * The simulation unwinds cleanly -- no partial result is ever
 * published to sim::MemoCache, because insertions happen only after
 * a computation completes.
 *
 * With no deadline installed checkDeadline() is one thread-local
 * load and a null test, so plain runs pay nothing and stay
 * bit-identical (a deadline can only *abort* a run, never change
 * its result: expiry raises, it does not alter any simulated value).
 *
 * A second, process-global stop deadline (armGlobalStop) serves the
 * daemon's drain hard-limit: once armed, every thread's next
 * checkDeadline() throws regardless of per-request budgets, so
 * in-flight work unwinds at its next phase boundary and SIGTERM
 * drain is bounded even for requests that asked for no deadline.
 */

#ifndef HPIM_SIM_DEADLINE_HH
#define HPIM_SIM_DEADLINE_HH

#include <chrono>
#include <stdexcept>
#include <string>

namespace hpim::sim {

/** Thrown at a phase boundary once the installed budget is spent. */
struct DeadlineExceeded : std::runtime_error
{
    DeadlineExceeded(std::string phase_name, double budget_ms)
        : std::runtime_error("deadline exceeded after " + formatMs(budget_ms)
                             + " ms (phase '" + phase_name + "')"),
          phase(std::move(phase_name)), budgetMs(budget_ms)
    {
    }

    std::string phase; ///< phase boundary that observed the expiry
    double budgetMs;   ///< the budget that was exhausted

  private:
    static std::string formatMs(double ms);
};

/** A wall-clock expiry on the steady clock. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** @return a deadline @p ms milliseconds from now. */
    static Deadline afterMs(double ms);

    /** @return an already-expired deadline (a zero budget). */
    static Deadline expiredNow() { return afterMs(0.0); }

    /** True once the expiry has passed. */
    bool expired() const { return Clock::now() >= _expiry; }

    /** Milliseconds until expiry; negative once expired. */
    double remainingMs() const;

    /** The budget this deadline was created with, for messages. */
    double budgetMs() const { return _budget_ms; }

    Clock::time_point expiry() const { return _expiry; }

  private:
    Deadline(Clock::time_point expiry, double budget_ms)
        : _expiry(expiry), _budget_ms(budget_ms)
    {
    }

    Clock::time_point _expiry{};
    double _budget_ms = 0.0;
};

/**
 * Install @p deadline as the calling thread's active deadline for
 * the guard's lifetime. Nests: the previous deadline (if any) is
 * restored on destruction, and the *tighter* of the two applies
 * while both are live (an inner scope can never loosen an outer
 * budget).
 */
class DeadlineScope
{
  public:
    explicit DeadlineScope(const Deadline &deadline);
    ~DeadlineScope();

    DeadlineScope(const DeadlineScope &) = delete;
    DeadlineScope &operator=(const DeadlineScope &) = delete;

    /** The calling thread's active deadline, or nullptr. */
    static const Deadline *current();

  private:
    Deadline _deadline;
    const Deadline *_saved;
};

/**
 * Throw DeadlineExceeded naming @p phase when the calling thread's
 * deadline has expired or the global stop is armed. One TLS load +
 * null test + one relaxed atomic load when neither is set.
 */
void checkDeadline(const char *phase);

/**
 * Arm the process-global stop: every subsequent checkDeadline() on
 * any thread throws. Used by hpim_serve when the drain grace period
 * runs out. Async-signal-safe (one relaxed atomic store).
 */
void armGlobalStop();

/** Disarm the global stop (tests; a fresh server start). */
void disarmGlobalStop();

/** @return true once armGlobalStop() has been called. */
bool globalStopArmed();

} // namespace hpim::sim

#endif // HPIM_SIM_DEADLINE_HH
