#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace hpim::sim {

namespace {

LogLevel g_threshold = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

LogLevel
logThreshold()
{
    return g_threshold;
}

void
logMessage(LogLevel level, const std::string &where,
           const std::string &message)
{
    bool is_error = level == LogLevel::Fatal || level == LogLevel::Panic;
    if (is_error || static_cast<int>(level) >= static_cast<int>(g_threshold))
    {
        std::ostream &os = is_error ? std::cerr : std::cout;
        os << levelName(level) << ": " << message;
        if (is_error)
            os << " (" << where << ")";
        os << std::endl;
    }

    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // namespace hpim::sim
