#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace hpim::sim {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Warn};

/** Serializes emission so concurrent warn()/inform() calls (e.g.
 *  SweepRunner workers) cannot interleave mid-line. */
std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &where,
           const std::string &message)
{
    bool is_error = level == LogLevel::Fatal || level == LogLevel::Panic;
    if (is_error
        || static_cast<int>(level) >= static_cast<int>(logThreshold()))
    {
        // Build the whole line first, then emit it as one write under
        // the mutex: concurrent callers get whole-line interleaving,
        // never spliced fragments.
        std::string line = levelName(level);
        line += ": ";
        line += message;
        if (is_error) {
            line += " (";
            line += where;
            line += ")";
        }
        line += '\n';
        std::ostream &os = is_error ? std::cerr : std::cout;
        std::lock_guard<std::mutex> lock(g_log_mutex);
        os << line << std::flush;
    }

    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

} // namespace hpim::sim
