/**
 * @file
 * A small typed key/value configuration store.
 *
 * Experiment harnesses populate a Config; device constructors read their
 * parameters from it with defaults, so a single object can describe a
 * whole system configuration (paper Table IV plus PIM parameters).
 */

#ifndef HPIM_SIM_CONFIG_HH
#define HPIM_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "sim/logging.hh"

namespace hpim::sim {

/** Typed key/value store: double, int64, bool or string values. */
class Config
{
  public:
    using Value = std::variant<double, std::int64_t, bool, std::string>;

    Config() = default;

    void set(const std::string &key, double v) { _values[key] = v; }
    void set(const std::string &key, std::int64_t v) { _values[key] = v; }
    void set(const std::string &key, int v)
    { _values[key] = static_cast<std::int64_t>(v); }
    void set(const std::string &key, bool v) { _values[key] = v; }
    void set(const std::string &key, const std::string &v)
    { _values[key] = v; }
    void set(const std::string &key, const char *v)
    { _values[key] = std::string(v); }

    bool has(const std::string &key) const
    { return _values.count(key) != 0; }

    /** @return double value, accepting an int64 entry too. */
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Required variants: fatal() when the key is missing. */
    double requireDouble(const std::string &key) const;
    std::int64_t requireInt(const std::string &key) const;

    /** Merge @p other into this config, overwriting duplicates. */
    void merge(const Config &other);

    std::size_t size() const { return _values.size(); }

  private:
    std::map<std::string, Value> _values;
};

} // namespace hpim::sim

#endif // HPIM_SIM_CONFIG_HH
